module Protocol = Secshare_rpc.Protocol

type strictness = Strict | Non_strict

exception Query_error of string

let map_point mapping name =
  match Mapping.value mapping name with
  | Some v -> v
  | None -> raise (Query_error (Printf.sprintf "tag name %S has no map entry" name))

let look_points mapping names = List.map (map_point mapping) names

module Int_map = Map.Make (Int)

let sort_dedup metas =
  let by_pre =
    List.fold_left
      (fun acc (m : Protocol.node_meta) -> Int_map.add m.Protocol.pre m acc)
      Int_map.empty metas
  in
  List.map snd (Int_map.bindings by_pre)

let parents_of filter metas =
  sort_dedup
    (List.filter_map
       (fun (m : Protocol.node_meta) -> Client_filter.parent filter ~pre:m.Protocol.pre)
       metas)
