module Protocol = Secshare_rpc.Protocol

type strictness = Strict | Non_strict

(* What a query evaluates to.  Node queries stream metadata; aggregate
   queries fold server partials and client blinds into one number.
   Sum/Avg are exact rationals ([Qnum]) so fixed-point scales and the
   Avg division never round. *)
type value =
  | Nodes of Protocol.node_meta list
  | Count of int
  | Sum of Qnum.t
  | Avg of Qnum.t

exception Query_error of string

let map_point mapping name =
  match Mapping.value mapping name with
  | Some v -> v
  | None -> raise (Query_error (Printf.sprintf "tag name %S has no map entry" name))

let look_points mapping names = List.map (map_point mapping) names

module Int_map = Map.Make (Int)

let sort_dedup metas =
  let by_pre =
    List.fold_left
      (fun acc (m : Protocol.node_meta) -> Int_map.add m.Protocol.pre m acc)
      Int_map.empty metas
  in
  List.map snd (Int_map.bindings by_pre)

let empty_agg_value = function
  | Secshare_xpath.Ast.Count -> Count 0
  | Secshare_xpath.Ast.Sum -> Sum Qnum.zero
  | Secshare_xpath.Ast.Avg -> Avg Qnum.zero

(* The fixed-point scale an aggregate plan needs: Count has none;
   Sum/Avg read the aggregatable flag of the path's final tag.  Runs
   on the rewritten path, but trie expansion never touches a final
   step without a contains() predicate — which Sum/Avg require. *)
let agg_scale mapping ~func query =
  match (func : Secshare_xpath.Ast.agg_func) with
  | Count -> 0
  | Sum | Avg -> (
      match List.rev query with
      | { Secshare_xpath.Ast.test = Name name; _ } :: _ -> (
          match Mapping.aggregatable_scale mapping name with
          | Some scale -> scale
          | None ->
              raise
                (Query_error
                   (Printf.sprintf
                      "tag %S is not aggregatable (not every occurrence is a numeric \
                       leaf)"
                      name)))
      | _ ->
          raise
            (Query_error
               (Printf.sprintf "%s() needs a path ending in a tag name"
                  (Secshare_xpath.Ast.func_to_string func))))

let parents_of filter metas =
  sort_dedup
    (List.filter_map
       (fun (m : Protocol.node_meta) -> Client_filter.parent filter ~pre:m.Protocol.pre)
       metas)
