module Protocol = Secshare_rpc.Protocol
module Transport = Secshare_rpc.Transport
module Cyclic = Secshare_poly.Cyclic
module Obs = Secshare_obs

exception Filter_error of string

(* Share-cache observability: pure hit/miss/evict counts, no key or
   polynomial material (DESIGN.md §9). *)
let obs_cache_hits =
  Obs.Registry.counter ~help:"Client share-regeneration cache hits."
    "ssdb_client_share_cache_hits_total"

let obs_cache_misses =
  Obs.Registry.counter ~help:"Client share-regeneration cache misses (PRG runs)."
    "ssdb_client_share_cache_misses_total"

let obs_cache_evictions =
  Obs.Registry.counter ~help:"Client share-regeneration cache LRU evictions."
    "ssdb_client_share_cache_evictions_total"

type t = {
  ring : Secshare_poly.Ring.t;
  seed : Secshare_prg.Seed.t;
  transport : Transport.t;
  batch_size : int;
  scan_batch : int;
  batch_eval : bool;
  fused_scan : bool;
  metrics : Metrics.t;
  share_cache : (int, Cyclic.t) Lru.t option;
      (* pre -> regenerated client polynomial; [Cyclic] ops are pure,
         so cached polynomials can never be mutated through use *)
  eval_cache : (int * int, int) Lru.t option;
      (* (pre, point) -> client evaluation, so a repeated query skips
         even the O(degree) Horner pass *)
}

let create ring ~seed ?(batch_size = 64) ?(scan_batch = 256) ?(batch_eval = true)
    ?(fused_scan = true) ?(share_cache = 4096) transport =
  {
    ring;
    seed;
    transport;
    batch_size = max 1 batch_size;
    scan_batch = max 1 scan_batch;
    batch_eval;
    fused_scan;
    metrics = Metrics.create ();
    share_cache = (if share_cache <= 0 then None else Some (Lru.create share_cache));
    eval_cache = (if share_cache <= 0 then None else Some (Lru.create (4 * share_cache)));
  }

let metrics t = t.metrics

let reset_metrics t =
  Metrics.reset t.metrics;
  (* the evaluation memo is per-workload state like the metrics; the
     polynomial cache survives resets (entries stay exact forever) *)
  Option.iter Lru.clear t.eval_cache

let rpc_counters t = Transport.counters t.transport
let batch_size t = t.batch_size
let scan_batch t = t.scan_batch
let batch_eval t = t.batch_eval
let fused_scan t = t.fused_scan
let share_cache_stats t = Option.map Lru.stats t.share_cache
let share_cache_capacity t = Option.fold ~none:0 ~some:Lru.capacity t.share_cache

(* Regenerate (or recall) the client polynomial for [pre]. *)
let client_poly t ~pre =
  match t.share_cache with
  | None -> Share.client t.ring ~seed:t.seed ~pre
  | Some cache -> (
      match Lru.find cache pre with
      | Some poly ->
          Obs.Registry.inc obs_cache_hits;
          poly
      | None ->
          Obs.Registry.inc obs_cache_misses;
          let poly = Share.client t.ring ~seed:t.seed ~pre in
          let before = (Lru.stats cache).Lru.evictions in
          Lru.add cache ~key:pre ~value:poly;
          Obs.Registry.inc ~by:((Lru.stats cache).Lru.evictions - before)
            obs_cache_evictions;
          poly)

(* Evaluate a regenerated client polynomial.  With ring byte tables
   (any q <= 256) this is the flat Horner kernel over the cached
   coefficient buffer — no unpacking, no closure calls; the zero
   point defers to [Cyclic.eval] so its error is unchanged. *)
let eval_poly t poly point =
  match t.ring.Secshare_poly.Ring.table with
  | None -> Cyclic.eval t.ring poly point
  | Some tab ->
      let p = t.ring.Secshare_poly.Ring.normalize point in
      if p = 0 then Cyclic.eval t.ring poly point
      else
        Secshare_poly.Flat.eval_coeffs tab
          ~mul_row:(Secshare_poly.Flat.point_row tab ~point:p)
          (Cyclic.view poly)

let client_eval t ~pre ~point =
  match t.eval_cache with
  | None -> eval_poly t (client_poly t ~pre) point
  | Some cache ->
      Lru.find_or_add cache (pre, point) ~compute:(fun _ ->
          eval_poly t (client_poly t ~pre) point)

let call t request =
  match Transport.call t.transport request with
  | Protocol.Error_msg msg -> raise (Filter_error msg)
  | response -> response

let protocol_error what response =
  raise
    (Filter_error
       (Format.asprintf "unexpected response to %s: %a" what Protocol.pp_response response))

let root t =
  match call t Protocol.Root with
  | Protocol.Node_opt meta -> meta
  | response -> protocol_error "Root" response

let children t ~pre =
  match call t (Protocol.Children pre) with
  | Protocol.Nodes metas -> metas
  | response -> protocol_error "Children" response

let parent t ~pre =
  match call t (Protocol.Parent pre) with
  | Protocol.Node_opt meta -> meta
  | response -> protocol_error "Parent" response

let descendants_cursor t ~pre ~post =
  match call t (Protocol.Descendants { pre; post }) with
  | Protocol.Cursor id -> id
  | response -> protocol_error "Descendants" response

let cursor_next t ~cursor ~max_items =
  match call t (Protocol.Cursor_next { cursor; max_items }) with
  | Protocol.Batch (items, exhausted) -> (items, exhausted)
  | response -> protocol_error "Cursor_next" response

let cursor_close t cursor =
  match call t (Protocol.Cursor_close cursor) with
  | Protocol.Pong -> ()
  | response -> protocol_error "Cursor_close" response

let iter_descendants t (meta : Protocol.node_meta) ~f =
  let cursor = descendants_cursor t ~pre:meta.Protocol.pre ~post:meta.Protocol.post in
  let rec drain () =
    let items, exhausted = cursor_next t ~cursor ~max_items:t.batch_size in
    List.iter f items;
    if not exhausted then drain ()
  in
  drain ()

(* --- fused scans (Scan_eval) --- *)

let scan_eval t ~target ~points ~max_items =
  match call t (Protocol.Scan_eval { target; points; max_items }) with
  | Protocol.Scan_batch { rows; cursor } -> (rows, cursor)
  | response -> protocol_error "Scan_eval" response

let scan_next t ~cursor ~max_items =
  match call t (Protocol.Scan_next { cursor; max_items }) with
  | Protocol.Scan_batch { rows; cursor } -> (rows, cursor)
  | response -> protocol_error "Scan_next" response

(* Merge one fused batch: for each row, regenerate the client share,
   combine with the server evaluations, and keep the rows where every
   point sums to zero (the containment test, one pair per point). *)
let filter_scan_rows t rows ~points =
  match points with
  | [] -> List.map fst rows
  | _ ->
      let n_points = List.length points in
      (* counters accumulate in a batch-local instance and merge once
         at the end: [t.metrics] is only ever touched at batch
         boundaries, on the thread that owns this filter *)
      let batch = Metrics.create () in
      let kept =
        List.filter_map
          (fun ((meta : Protocol.node_meta), server_values) ->
            if List.length server_values <> n_points then
              raise (Filter_error "Scan_batch arity mismatch");
            batch.Metrics.nodes_examined <- batch.Metrics.nodes_examined + 1;
            batch.Metrics.evaluations <- batch.Metrics.evaluations + n_points;
            let contains point server_value =
              let client_value = client_eval t ~pre:meta.Protocol.pre ~point in
              Share.combine_evaluations t.ring ~client:client_value ~server:server_value
              = 0
            in
            if List.for_all2 contains points server_values then Some meta else None)
          rows
      in
      Metrics.add t.metrics batch;
      kept

let descendants t meta =
  let acc = ref [] in
  iter_descendants t meta ~f:(fun m -> acc := m :: !acc);
  List.rev !acc

let table_stats t =
  match call t Protocol.Table_stats with
  | Protocol.Stats stats -> stats
  | response -> protocol_error "Table_stats" response

let containment t (meta : Protocol.node_meta) ~point =
  let server_value =
    match call t (Protocol.Eval { pre = meta.Protocol.pre; point }) with
    | Protocol.Value v -> v
    | response -> protocol_error "Eval" response
  in
  t.metrics.Metrics.evaluations <- t.metrics.Metrics.evaluations + 1;
  t.metrics.Metrics.nodes_examined <- t.metrics.Metrics.nodes_examined + 1;
  let client_value = client_eval t ~pre:meta.Protocol.pre ~point in
  Share.combine_evaluations t.ring ~client:client_value ~server:server_value = 0

let containment_batch t metas ~point =
  match metas with
  | [] -> []
  | _ when not t.batch_eval ->
      (* one Eval round trip per node: the cost model of the paper's
         per-call RMI filter *)
      List.filter (fun meta -> containment t meta ~point) metas
  | _ -> (
      let pres = List.map (fun (m : Protocol.node_meta) -> m.Protocol.pre) metas in
      match call t (Protocol.Eval_batch { pres; point }) with
      | Protocol.Values values ->
          if List.length values <> List.length metas then
            raise (Filter_error "Eval_batch arity mismatch");
          let batch = Metrics.create () in
          batch.Metrics.evaluations <- List.length metas;
          batch.Metrics.nodes_examined <- List.length metas;
          Metrics.add t.metrics batch;
          List.filter_map
            (fun ((meta : Protocol.node_meta), server_value) ->
              let client_value = client_eval t ~pre:meta.Protocol.pre ~point in
              if Share.combine_evaluations t.ring ~client:client_value ~server:server_value = 0
              then Some meta
              else None)
            (List.combine metas values)
      | response -> protocol_error "Eval_batch" response)

(* --- aggregation (Agg_eval) --- *)

let agg_eval t pres =
  match call t (Protocol.Agg_eval { pres }) with
  | Protocol.Agg_partial { count; sum } -> (count, sum)
  | response -> protocol_error "Agg_eval" response

(* The client's half of an aggregate: the sum of the PRG blinding
   values the encoder subtracted from each matched leaf. *)
let blind_sum t pres =
  List.fold_left
    (fun acc pre -> Numeric.add acc (Numeric.blind ~seed:t.seed ~pre))
    0 pres

let fetch_shares t pres =
  match call t (Protocol.Shares pres) with
  | Protocol.Shares_data shares ->
      if List.length shares <> List.length pres then
        raise (Filter_error "Shares arity mismatch");
      shares
  | response -> protocol_error "Shares" response

(* The equality test's product of child polynomials.  The reference
   fold allocates a fresh n-vector per child ([Cyclic.mul]); the
   kernel path ping-pongs two scratch buffers through
   [Flat.mul_into], so an arbitrarily wide node costs exactly two
   allocations.  Same fold order, same field ops (the tables are
   built from them) — bit-identical product. *)
let product_of_children t child_polys =
  match (t.ring.Secshare_poly.Ring.table, child_polys) with
  | None, _ | _, [] ->
      List.fold_left (Cyclic.mul t.ring) (Cyclic.one t.ring) child_polys
  | Some tab, first :: rest ->
      let n = t.ring.Secshare_poly.Ring.n in
      let acc = ref (Array.copy (Cyclic.view first)) in
      let scratch = ref (Array.make n 0) in
      List.iter
        (fun p ->
          Secshare_poly.Flat.mul_into tab ~n ~a:!acc ~b:(Cyclic.view p)
            ~out:!scratch;
          let swap = !acc in
          acc := !scratch;
          scratch := swap)
        rest;
      Cyclic.of_int_array t.ring !acc

let reconstruct t ~pre share_bytes =
  let server = Secshare_poly.Codec.unpack_cyclic t.ring share_bytes in
  (* client + server, with the client half served from the cache *)
  Cyclic.add t.ring (client_poly t ~pre) server

let tag_value t (meta : Protocol.node_meta) =
  let child_metas = children t ~pre:meta.Protocol.pre in
  let pres =
    meta.Protocol.pre :: List.map (fun (m : Protocol.node_meta) -> m.Protocol.pre) child_metas
  in
  let shares = fetch_shares t pres in
  let polys = List.map2 (fun pre share -> reconstruct t ~pre share) pres shares in
  t.metrics.Metrics.equality_tests <- t.metrics.Metrics.equality_tests + 1;
  t.metrics.Metrics.reconstructions <-
    t.metrics.Metrics.reconstructions + List.length polys;
  t.metrics.Metrics.nodes_examined <- t.metrics.Metrics.nodes_examined + 1;
  match polys with
  | [] -> assert false
  | node_poly :: child_polys -> (
      let product = product_of_children t child_polys in
      match Cyclic.recover_linear_factor t.ring ~product ~node:node_poly with
      | Ok value -> Some value
      | Error `Degenerate ->
          t.metrics.Metrics.degenerate_divisions <-
            t.metrics.Metrics.degenerate_divisions + 1;
          None
      | Error `Not_linear -> None)

let equality t meta ~point =
  match tag_value t meta with
  | Some value -> value = point
  | None -> false

let close t = Transport.close t.transport
