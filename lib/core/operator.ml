module Protocol = Secshare_rpc.Protocol
module Transport = Secshare_rpc.Transport
module Obs = Secshare_obs

let () =
  Obs.Registry.declare ~kind:Obs.Registry.K_histogram
    ~help:
      "Operator lifetime wall seconds (cumulative: a pull includes its upstream), by \
       operator."
    "ssdb_client_op_seconds"

(* Operator names carry plan parameters ("scan-children+eval@5"); the
   metric label keeps only the prefix before the first parameter
   delimiter so label values stay a closed enumeration — evaluation
   points never reach the registry. *)
let base_name name =
  let cut = ref (String.length name) in
  String.iteri
    (fun i ch ->
      match ch with ('+' | '(' | '[' | '@') when i < !cut -> cut := i | _ -> ())
    name;
  String.sub name 0 !cut

(* Batch-pull operators: each [next] call returns one bounded batch of
   node metadata (or [None] when the stream is dry), pulling batches
   from the operator upstream on demand.  Frontiers are never
   materialized whole except where the algorithm itself needs a full
   level (the pruned look-ahead walk).

   Batches carry no ordering guarantee and may duplicate nodes across
   batches where axis ranges of distinct sources overlap; plans insert
   [Dedup] where the engines' cost model needs uniqueness, and the
   engine sorts the final result once. *)

type batch = Protocol.node_meta array

type t = {
  stats : Metrics.op_stats;
  next_fn : unit -> batch option;
  close_fn : unit -> unit;
  mutable closed : bool;
  mutable op_trace : int64;  (** ambient trace captured at the first pull *)
  mutable op_started : float;  (** wall clock of the first pull; 0 = never pulled *)
  agg_ref : Query_common.value option ref;
      (** an {!aggregate} sink deposits its result here; every other
          operator leaves it [None] *)
}

let stats t = t.stats

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ();
    (* one span and one histogram sample per operator lifetime, both
       skipped when the operator was never pulled *)
    if t.op_started > 0.0 then begin
      Obs.Histogram.observe
        (Obs.Registry.histogram
           ~labels:[ ("operator", base_name t.stats.Metrics.op_name) ]
           "ssdb_client_op_seconds")
        t.stats.Metrics.wall_seconds;
      Obs.Trace.emit ~trace_id:t.op_trace
        ~name:("op:" ^ t.stats.Metrics.op_name)
        ~start:t.op_started ~duration:t.stats.Metrics.wall_seconds ()
    end
  end

let next t =
  if t.op_started = 0.0 then begin
    t.op_started <- Unix.gettimeofday ();
    t.op_trace <- Obs.Trace.current_id ()
  end;
  let t0 = Unix.gettimeofday () in
  let result = t.next_fn () in
  (* cumulative: a pull from upstream runs inside this window, so an
     operator's wall time includes its inputs (like EXPLAIN ANALYZE) *)
  t.stats.Metrics.wall_seconds <-
    t.stats.Metrics.wall_seconds +. (Unix.gettimeofday () -. t0);
  (match result with
  | Some batch ->
      t.stats.Metrics.batches <- t.stats.Metrics.batches + 1;
      t.stats.Metrics.rows_out <- t.stats.Metrics.rows_out + Array.length batch
  | None -> ());
  result

let make ?(close = fun () -> ()) ?(agg_ref = ref None) stats next_fn =
  {
    stats;
    next_fn;
    close_fn = close;
    closed = false;
    op_trace = 0L;
    op_started = 0.0;
    agg_ref;
  }

let agg_value t = !(t.agg_ref)

(* Pull one batch from upstream, counting it as this operator's input.
   Goes through [next] (not [next_fn]) so the upstream operator's own
   accounting runs. *)
let pull stats input =
  match next input with
  | Some batch ->
      stats.Metrics.rows_in <- stats.Metrics.rows_in + Array.length batch;
      Some batch
  | None -> None

(* Attribute the transport traffic of [f] to this operator. *)
let with_rpc filter stats f =
  let c = Client_filter.rpc_counters filter in
  let calls0 = c.Transport.calls in
  let bytes0 = c.Transport.bytes_sent + c.Transport.bytes_received in
  let result = f () in
  stats.Metrics.rpc_calls <- stats.Metrics.rpc_calls + (c.Transport.calls - calls0);
  stats.Metrics.rpc_bytes <-
    stats.Metrics.rpc_bytes
    + (c.Transport.bytes_sent + c.Transport.bytes_received - bytes0);
  result

let pres_of metas = List.map (fun (m : Protocol.node_meta) -> m.Protocol.pre) metas

(* The containment sieve of a filter step: one [Eval_batch] round trip
   per point over the surviving metas, nodes dropping out at their
   first failing point (the engines' short-circuiting cost model). *)
let contains_all filter stats metas points =
  List.fold_left
    (fun metas point ->
      match metas with
      | [] -> []
      | _ ->
          stats.Metrics.eval_pairs <- stats.Metrics.eval_pairs + List.length metas;
          with_rpc filter stats (fun () ->
              Client_filter.containment_batch filter metas ~point))
    metas points

(* --- fused scan plumbing -------------------------------------------- *)

(* Drive a [Scan_eval] / [Scan_next] conversation over the upstream
   batches: each upstream batch opens one scan (axis ranges + share
   evaluation in a single message), continuation batches stream through
   [Scan_next], and every batch is merged with the regenerated client
   shares so only rows containing [points] come out.  The open cursor
   is tracked so teardown can release it eagerly. *)
let fused_scan_stream filter stats ~points ~target_of_batch input =
  let max_items = Client_filter.scan_batch filter in
  let cursor = ref None in
  let merge rows =
    stats.Metrics.eval_pairs <-
      stats.Metrics.eval_pairs + (List.length rows * List.length points);
    Client_filter.filter_scan_rows filter rows ~points
  in
  let rec next_batch () =
    match !cursor with
    | Some c ->
        let rows, k =
          with_rpc filter stats (fun () ->
              Client_filter.scan_next filter ~cursor:c ~max_items)
        in
        cursor := k;
        let metas = merge rows in
        if metas = [] then next_batch () else Some (Array.of_list metas)
    | None -> (
        match pull stats input with
        | None -> None
        | Some batch -> (
            match target_of_batch batch with
            | None -> next_batch ()
            | Some target ->
                let rows, k =
                  with_rpc filter stats (fun () ->
                      Client_filter.scan_eval filter ~target ~points ~max_items)
                in
                cursor := k;
                let metas = merge rows in
                if metas = [] && k = None then next_batch ()
                else Some (Array.of_list metas)))
  in
  let close () =
    match !cursor with
    | Some c ->
        cursor := None;
        (try Client_filter.cursor_close filter c
         with Client_filter.Filter_error _ -> ())
    | None -> ()
  in
  (next_batch, close)

(* --- sources and scans ---------------------------------------------- *)

(* A one-shot source emitting the virtual document node, whose only
   child is the root: feeding it to the fused child scan turns the
   first query step into a [Scan_eval] too. *)
let document_node_source () =
  let stats = Metrics.op_stats "document-node" in
  let emitted = ref false in
  make stats (fun () ->
      if !emitted then None
      else begin
        emitted := true;
        Some [| { Protocol.pre = 0; post = 0; parent = 0 } |]
      end)

let scan_root name filter ~eval =
  match (eval, Client_filter.fused_scan filter) with
  | Some point, true ->
      let stats = Metrics.op_stats name in
      let next_batch, close =
        fused_scan_stream filter stats ~points:[ point ]
          ~target_of_batch:(fun batch ->
            Some (Protocol.Children_of (pres_of (Array.to_list batch))))
          (document_node_source ())
      in
      make ~close stats next_batch
  | _ ->
      let stats = Metrics.op_stats name in
      let emitted = ref false in
      make stats (fun () ->
          if !emitted then None
          else begin
            emitted := true;
            match with_rpc filter stats (fun () -> Client_filter.root filter) with
            | None -> None
            | Some root -> (
                match eval with
                | None -> Some [| root |]
                | Some point ->
                    Some (Array.of_list (contains_all filter stats [ root ] [ point ])))
          end)

let scan_children name filter ~eval input =
  let stats = Metrics.op_stats name in
  if Client_filter.fused_scan filter then
    let next_batch, close =
      fused_scan_stream filter stats ~points:(Option.to_list eval)
        ~target_of_batch:(fun batch ->
          if Array.length batch = 0 then None
          else Some (Protocol.Children_of (pres_of (Array.to_list batch))))
        input
    in
    make ~close stats next_batch
  else
    let rec next_batch () =
      match pull stats input with
      | None -> None
      | Some parents -> (
          let children =
            List.concat_map
              (fun (m : Protocol.node_meta) ->
                with_rpc filter stats (fun () ->
                    Client_filter.children filter ~pre:m.Protocol.pre))
              (Array.to_list parents)
          in
          let children =
            match eval with
            | None -> children
            | Some point -> contains_all filter stats children [ point ]
          in
          match children with
          | [] -> next_batch ()
          | _ -> Some (Array.of_list children))
    in
    make stats next_batch

let scan_descendants name filter ~eval ~include_self input =
  let stats = Metrics.op_stats name in
  if Client_filter.fused_scan filter then
    (* subtree ranges against the accelerator encoding: descendants of
       v are exactly the rows with pre > v.pre and post < v.post; the
       +self variant starts at v.pre and admits post = v.post *)
    let next_batch, close =
      fused_scan_stream filter stats ~points:(Option.to_list eval)
        ~target_of_batch:(fun batch ->
          if Array.length batch = 0 then None
          else
            Some
              (Protocol.Pre_ranges
                 (List.map
                    (fun (m : Protocol.node_meta) ->
                      if include_self then (m.Protocol.pre, m.Protocol.post + 1)
                      else (m.Protocol.pre + 1, m.Protocol.post))
                    (Array.to_list batch))))
        input
    in
    make ~close stats next_batch
  else begin
    (* one server cursor per source node, streamed in cursor batches *)
    let pending = ref [] in
    let current = ref None in
    let apply metas =
      match eval with
      | None -> metas
      | Some point -> contains_all filter stats metas [ point ]
    in
    let rec next_batch () =
      match !current with
      | Some c -> (
          let items, exhausted =
            with_rpc filter stats (fun () ->
                Client_filter.cursor_next filter ~cursor:c
                  ~max_items:(Client_filter.batch_size filter))
          in
          if exhausted then current := None;
          match apply items with
          | [] -> next_batch ()
          | metas -> Some (Array.of_list metas))
      | None -> (
          match !pending with
          | (m : Protocol.node_meta) :: rest ->
              pending := rest;
              current :=
                Some
                  (with_rpc filter stats (fun () ->
                       Client_filter.descendants_cursor filter ~pre:m.Protocol.pre
                         ~post:m.Protocol.post));
              next_batch ()
          | [] -> (
              match pull stats input with
              | None -> None
              | Some batch -> (
                  let sources = Array.to_list batch in
                  pending := sources;
                  if not include_self then next_batch ()
                  else
                    match apply sources with
                    | [] -> next_batch ()
                    | metas -> Some (Array.of_list metas))))
    in
    let close () =
      match !current with
      | Some c ->
          current := None;
          (try Client_filter.cursor_close filter c
           with Client_filter.Filter_error _ -> ())
      | None -> ()
    in
    make ~close stats next_batch
  end

(* The advanced engine's look-ahead walk: descend level by level from
   the source nodes, keeping (and descending into) only children whose
   subtree contains every prune point — dead branches are never
   entered.  The walk needs a whole level to form the next frontier,
   so it is a per-level pipeline breaker; each [next] emits one
   level's survivors. *)
let pruned_scan name filter ~prune ~include_self input =
  let stats = Metrics.op_stats name in
  let fused = Client_filter.fused_scan filter in
  let started = ref false in
  let frontier = ref [] in
  let open_cursor = ref None in
  let gather_level level =
    if fused then begin
      (* first prune point rides in the scan; the rest drop out via
         [Eval_batch] rounds like the unfused path *)
      let points, rest =
        match prune with [] -> ([], []) | p :: rest -> ([ p ], rest)
      in
      let max_items = Client_filter.scan_batch filter in
      let acc = ref [] in
      let rows, k =
        with_rpc filter stats (fun () ->
            Client_filter.scan_eval filter
              ~target:(Protocol.Children_of (pres_of level))
              ~points ~max_items)
      in
      let merge rows =
        stats.Metrics.eval_pairs <-
          stats.Metrics.eval_pairs + (List.length rows * List.length points);
        Client_filter.filter_scan_rows filter rows ~points
      in
      acc := merge rows;
      open_cursor := k;
      let cursor = ref k in
      while !cursor <> None do
        match !cursor with
        | None -> ()
        | Some c ->
            let rows, k =
              with_rpc filter stats (fun () ->
                  Client_filter.scan_next filter ~cursor:c ~max_items)
            in
            cursor := k;
            open_cursor := k;
            acc := List.rev_append (merge rows) !acc
      done;
      contains_all filter stats (List.rev !acc) rest
    end
    else
      let children =
        Query_common.sort_dedup
          (List.concat_map
             (fun (m : Protocol.node_meta) ->
               with_rpc filter stats (fun () ->
                   Client_filter.children filter ~pre:m.Protocol.pre))
             level)
      in
      contains_all filter stats children prune
  in
  let emit_level () =
    match !frontier with
    | [] -> None
    | level -> (
        let survivors = gather_level level in
        frontier := survivors;
        match survivors with
        | [] -> None
        | _ -> Some (Array.of_list survivors))
  in
  let next_batch () =
    if !started then emit_level ()
    else begin
      started := true;
      let sources = ref [] in
      let rec gather_sources () =
        match pull stats input with
        | Some batch ->
            sources := !sources @ Array.to_list batch;
            gather_sources ()
        | None -> ()
      in
      gather_sources ();
      frontier := !sources;
      if not include_self then emit_level ()
      else
        (* the sources themselves are candidates (first [//] step);
           the walk below descends from them unfiltered either way *)
        match contains_all filter stats !sources prune with
        | [] -> emit_level ()
        | keep -> Some (Array.of_list keep)
    end
  in
  let close () =
    match !open_cursor with
    | Some c ->
        open_cursor := None;
        (try Client_filter.cursor_close filter c
         with Client_filter.Filter_error _ -> ())
    | None -> ()
  in
  make ~close stats next_batch

(* --- per-row transforms --------------------------------------------- *)

let parent_step name filter input =
  let stats = Metrics.op_stats name in
  let rec next_batch () =
    match pull stats input with
    | None -> None
    | Some batch -> (
        let parents =
          List.filter_map
            (fun (m : Protocol.node_meta) ->
              with_rpc filter stats (fun () ->
                  Client_filter.parent filter ~pre:m.Protocol.pre))
            (Array.to_list batch)
        in
        match parents with [] -> next_batch () | _ -> Some (Array.of_list parents))
  in
  make stats next_batch

let filter_containment name filter ~points input =
  let stats = Metrics.op_stats name in
  let rec next_batch () =
    match pull stats input with
    | None -> None
    | Some batch -> (
        match contains_all filter stats (Array.to_list batch) points with
        | [] -> next_batch ()
        | metas -> Some (Array.of_list metas))
  in
  make stats next_batch

let filter_equality name filter ~point input =
  let stats = Metrics.op_stats name in
  let rec next_batch () =
    match pull stats input with
    | None -> None
    | Some batch -> (
        let survivors =
          List.filter
            (fun m ->
              with_rpc filter stats (fun () ->
                  Client_filter.equality filter m ~point))
            (Array.to_list batch)
        in
        match survivors with [] -> next_batch () | _ -> Some (Array.of_list survivors))
  in
  make stats next_batch

let dedup name input =
  let stats = Metrics.op_stats name in
  let seen = Hashtbl.create 256 in
  let rec next_batch () =
    match pull stats input with
    | None -> None
    | Some batch -> (
        let fresh =
          List.filter
            (fun (m : Protocol.node_meta) ->
              if Hashtbl.mem seen m.Protocol.pre then false
              else begin
                Hashtbl.add seen m.Protocol.pre ();
                true
              end)
            (Array.to_list batch)
        in
        match fresh with [] -> next_batch () | _ -> Some (Array.of_list fresh))
  in
  make stats next_batch

let limit name n ~upstream input =
  let stats = Metrics.op_stats name in
  let remaining = ref (max 0 n) in
  let rec next_batch () =
    if !remaining <= 0 then None
    else
      match pull stats input with
      | None -> None
      | Some batch ->
          let take = min !remaining (Array.length batch) in
          remaining := !remaining - take;
          if !remaining = 0 then
            (* satisfied: tear the pipeline down eagerly so server
               cursors are released now, not at end-of-query *)
            List.iter close upstream;
          if take = 0 then next_batch () else Some (Array.sub batch 0 take)
  in
  make stats next_batch

(* The aggregate sink: drain the whole pipeline, then fold the matched
   set into one number.  Count never talks to the server beyond what
   the pipeline already did; Sum/Avg make exactly one [Agg_eval] round
   trip — a constant-size reply however many rows matched — and strip
   the client's blinding sum to recover the scaled total. *)
let aggregate name filter ~func ~scale input =
  let stats = Metrics.op_stats name in
  let agg_ref = ref None in
  let next_batch () =
    if !agg_ref <> None then None
    else begin
      let acc = ref [] in
      let rec drain_upstream () =
        match pull stats input with
        | Some batch ->
            Array.iter (fun m -> acc := m :: !acc) batch;
            drain_upstream ()
        | None -> ()
      in
      drain_upstream ();
      let metas = Query_common.sort_dedup !acc in
      let count = List.length metas in
      let value =
        match (func : Secshare_xpath.Ast.agg_func) with
        | Count -> Query_common.Count count
        | (Sum | Avg) as f ->
            let total =
              if count = 0 then 0
              else begin
                let pres = pres_of metas in
                let server_count, server_sum =
                  with_rpc filter stats (fun () ->
                      Client_filter.agg_eval filter pres)
                in
                if server_count <> count then
                  raise
                    (Query_common.Query_error
                       (Printf.sprintf "Agg_eval folded %d rows, expected %d"
                          server_count count));
                Numeric.lift
                  (Numeric.add server_sum (Client_filter.blind_sum filter pres))
              end
            in
            let sum = Qnum.make total (Qnum.pow10 scale) in
            if f = Sum then Query_common.Sum sum
            else if count = 0 then Query_common.Avg Qnum.zero
            else
              (* divide the already-reduced sum so the denominator
                 stays as small as the fraction allows *)
              Query_common.Avg (Qnum.make sum.Qnum.num (sum.Qnum.den * count))
      in
      agg_ref := Some value;
      None
    end
  in
  make ~agg_ref stats next_batch

(* --- plan execution -------------------------------------------------- *)

let build filter plan =
  let build_op prev op =
    let name = Plan.op_to_string op in
    let input () =
      match prev with
      | Some t -> t
      | None -> invalid_arg ("plan operator needs an input: " ^ name)
    in
    match op with
    | Plan.Scan { axis = Plan.Root_scan; eval } -> scan_root name filter ~eval
    | Plan.Scan { axis = Plan.Child_scan; eval } ->
        scan_children name filter ~eval (input ())
    | Plan.Scan { axis = Plan.Descendant_scan { include_self }; eval } ->
        scan_descendants name filter ~eval ~include_self (input ())
    | Plan.Pruned_scan { prune; include_self } ->
        pruned_scan name filter ~prune ~include_self (input ())
    | Plan.Parent_step -> parent_step name filter (input ())
    | Plan.Filter_containment { points } ->
        filter_containment name filter ~points (input ())
    | Plan.Filter_equality { point } -> filter_equality name filter ~point (input ())
    | Plan.Dedup -> dedup name (input ())
    | Plan.Limit n -> limit name n ~upstream:[] (input ())
    | Plan.Aggregate { func; scale } -> aggregate name filter ~func ~scale (input ())
  in
  let rec go prev built = function
    | [] -> List.rev built
    | op :: rest ->
        let t =
          match op with
          | Plan.Limit n ->
              (* limit wants to close everything upstream when it is
                 satisfied, so rebuild it with the full prefix *)
              let input =
                match prev with
                | Some t -> t
                | None -> invalid_arg "plan operator needs an input: limit"
              in
              limit (Plan.op_to_string op) n ~upstream:(List.rev built) input
          | _ -> build_op prev op
        in
        go (Some t) (t :: built) rest
  in
  go None [] plan

let close_all ops = List.iter close (List.rev ops)

let drain ops =
  match List.rev ops with
  | [] -> []
  | sink :: _ ->
      Fun.protect
        ~finally:(fun () -> close_all ops)
        (fun () ->
          let acc = ref [] in
          let rec go () =
            match next sink with
            | Some batch ->
                Array.iter (fun m -> acc := m :: !acc) batch;
                go ()
            | None -> ()
          in
          go ();
          List.rev !acc)

let stats_list ops = List.map (fun t -> Metrics.copy_op_stats t.stats) ops

let run filter plan = drain (build filter plan)
