module Obs = Secshare_obs

(* Pool observability: how deep the shared run queue is right now, and
   a latency histogram per executor.  Labels are structural ("w0",
   "caller") — nothing about the work's content ever reaches a label,
   per the information-flow rules of DESIGN.md §9. *)
let obs_queue_depth =
  Obs.Registry.gauge ~help:"Evaluation-pool tasks queued but not yet started."
    "ssdb_pool_queue_depth"

let obs_tasks =
  Obs.Registry.counter ~help:"Evaluation-pool tasks executed."
    "ssdb_pool_tasks_total"

let () =
  Obs.Registry.declare ~kind:Obs.Registry.K_histogram
    ~help:"Evaluation-pool task run time in seconds, by executor."
    "ssdb_pool_task_seconds"

let observe_task ~executor seconds =
  Obs.Registry.inc obs_tasks;
  Obs.Histogram.observe
    (Obs.Registry.histogram ~labels:[ ("worker", executor) ] "ssdb_pool_task_seconds")
    seconds

type t = {
  workers : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

(* Run one task, timing it for the per-executor histogram.  Task
   closures never raise: [map_array] wraps the user function so
   failures land in the call's [first_exn] cell instead. *)
let run_task ~executor task =
  let t0 = Unix.gettimeofday () in
  task ();
  observe_task ~executor (Unix.gettimeofday () -. t0)

let worker_loop t i =
  let executor = "w" ^ string_of_int i in
  let rec loop () =
    Mutex.lock t.lock;
    Obs.Race_check.acquired "pool-queue";
    Obs.Race_check.access "pool.closed";
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_available t.lock
    done;
    if Queue.is_empty t.queue then begin
      Obs.Race_check.released "pool-queue";
      Mutex.unlock t.lock (* closed: drain done *)
    end
    else begin
      let task = Queue.pop t.queue in
      Obs.Race_check.access ~write:true "pool.queue";
      Obs.Race_check.released "pool-queue";
      Mutex.unlock t.lock;
      Obs.Registry.gauge_add obs_queue_depth (-1);
      run_task ~executor task;
      loop ()
    end
  in
  loop ()

let create ~workers () =
  let workers = max 1 workers in
  let t =
    {
      workers;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      closed = false;
      domains = [||];
    }
  in
  if workers > 1 then
    t.domains <- Array.init workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let size t = t.workers

let close t =
  (* the flag is part of the queue monitor even when no workers were
     spawned: a racing map on another domain must not observe a torn
     closed/queue pair *)
  Mutex.lock t.lock;
  Obs.Race_check.acquired "pool-queue";
  t.closed <- true;
  Obs.Race_check.access ~write:true "pool.closed";
  Condition.broadcast t.work_available;
  Obs.Race_check.released "pool-queue";
  Mutex.unlock t.lock;
  Array.iter Domain.join t.domains

(* A latch per map call, using the pool lock as its monitor. *)
type call = { mutable remaining : int; finished : Condition.t }

let map_array t a ~f =
  let len = Array.length a in
  if Array.length t.domains = 0 || len <= 1 then Array.map f a
  else begin
    let[@atomic_ok
         "each slot is written by exactly one task; publication to the caller is \
          ordered by the call.remaining monitor"] results =
      Array.make len None
    in
    let[@atomic_ok
         "written under the pool lock; the caller reads it only after remaining = 0, \
          ordered by the same monitor"] first_exn =
      ref None
    in
    (* More chunks than workers so an uneven row (one very deep
       subtree) doesn't leave the other workers idle at the tail. *)
    let nchunks = min len (2 * Array.length t.domains) in
    let chunk_size = (len + nchunks - 1) / nchunks in
    let call = { remaining = nchunks; finished = Condition.create () } in
    let task lo =
      fun () ->
        let hi = min (lo + chunk_size) len - 1 in
        (try
           for i = lo to hi do
             results.(i) <- Some (f a.(i))
           done
         with exn ->
           Mutex.lock t.lock;
           Obs.Race_check.acquired "pool-queue";
           if !first_exn = None then first_exn := Some exn;
           Obs.Race_check.released "pool-queue";
           Mutex.unlock t.lock);
        Mutex.lock t.lock;
        Obs.Race_check.acquired "pool-queue";
        call.remaining <- call.remaining - 1;
        if call.remaining = 0 then Condition.signal call.finished;
        Obs.Race_check.released "pool-queue";
        Mutex.unlock t.lock
    in
    (* gauge goes up before the enqueue so a racing dequeue can only
       leave it transiently high, never negative *)
    Obs.Registry.gauge_add obs_queue_depth nchunks;
    Mutex.lock t.lock;
    Obs.Race_check.acquired "pool-queue";
    for c = 0 to nchunks - 1 do
      Queue.add (task (c * chunk_size)) t.queue
    done;
    Obs.Race_check.access ~write:true "pool.queue";
    Condition.broadcast t.work_available;
    Obs.Race_check.released "pool-queue";
    Mutex.unlock t.lock;
    (* The caller helps: steal queued chunks (of any in-flight call)
       instead of sleeping, so a busy pool never makes a map slower
       than running it inline. *)
    Mutex.lock t.lock;
    Obs.Race_check.acquired "pool-queue";
    while call.remaining > 0 do
      if Queue.is_empty t.queue then Condition.wait call.finished t.lock
      else begin
        let task = Queue.pop t.queue in
        Obs.Race_check.access ~write:true "pool.queue";
        Obs.Race_check.released "pool-queue";
        Mutex.unlock t.lock;
        Obs.Registry.gauge_add obs_queue_depth (-1);
        run_task ~executor:"caller" task;
        Mutex.lock t.lock;
        Obs.Race_check.acquired "pool-queue"
      end
    done;
    Obs.Race_check.released "pool-queue";
    Mutex.unlock t.lock;
    (match !first_exn with Some exn -> raise exn | None -> ());
    Array.map
      (function Some v -> v | None -> failwith "Pool.map_array: missing result")
      results
  end

let map_list t l ~f = Array.to_list (map_array t (Array.of_list l) ~f)
