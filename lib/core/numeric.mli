(** Additive numeric shares over the prime field F_M, M = 2^61 - 1.

    Numeric leaf values are fixed-point integers (a decimal string
    scaled by 10^scale) lifted into F_M and split additively at encode
    time: the server stores [value - blind(seed, pre)] and the client
    can regenerate [blind(seed, pre)] from its secret seed alone, so a
    partial sum returned by the server is one uniformly blinded field
    element — constant size, independent of how many rows went into
    it.  Because the split is linear, the same Lagrange-at-zero
    recombination the polynomial shares use carries partial sums
    across a Shamir t-of-n shard fleet (see {!shard_value} /
    {!lambdas_at_zero}).

    M is a Mersenne prime small enough that every element fits OCaml's
    63-bit [int] and the sum of two elements never overflows;
    multiplication (only needed for Shamir dealing and Lagrange
    weights — never on the per-row hot path) uses a double-and-add
    ladder, trading speed for overflow-proof simplicity. *)

val modulus : int
(** 2^61 - 1 (prime). *)

val default_scale : int
(** Fixed-point fractional digits used by the encoder by default (2). *)

val normalize : int -> int
(** Canonical representative in [\[0, modulus)] (negatives wrap). *)

val add : int -> int -> int
(** Field addition; arguments must already be normalized. *)

val sub : int -> int -> int
val neg : int -> int

val mul : int -> int -> int
(** Field multiplication (double-and-add; no intermediate overflow). *)

val inv : int -> int
(** Multiplicative inverse via Fermat. @raise Division_by_zero on 0. *)

val lift : int -> int
(** Centered lift: the unique representative in
    [\[-(M-1)/2, (M-1)/2\]] — how a recombined sum becomes a signed
    fixed-point integer again. *)

val max_magnitude : int
(** Largest |scaled value| {!parse_decimal} accepts: (M - 1) / 2. *)

val parse_decimal : scale:int -> string -> int option
(** Parse a decimal literal ([-12], [3.50], [ 0.07 ]; surrounding
    whitespace ignored) into an integer scaled by 10^scale.  [None]
    if the text is not a plain decimal, has more than [scale]
    fractional digits, or exceeds {!max_magnitude}. *)

val blind : seed:Secshare_prg.Seed.t -> pre:int -> int
(** The client's additive blind for node [pre]: a uniform field
    element from a ChaCha20 stream keyed by the seed, domain-separated
    from the polynomial-share PRG ({!Secshare_prg.Node_prg}). *)

val dealer_draws :
  seed:Secshare_prg.Seed.t -> pre:int -> count:int -> int array
(** [count] uniform field elements for the offline dealer (Shamir
    coefficients), again domain-separated per [pre]. *)

val shard_value : threshold:int -> gen:(unit -> int) -> xs:int list -> int -> int list
(** Shamir-share a field element: a degree-[threshold - 1] polynomial
    with constant term the value and [gen]-drawn coefficients,
    evaluated at each x in [xs] (nonzero, distinct, in order). *)

val lambdas_at_zero : int list -> int list
(** Lagrange weights recombining evaluations at [xs] into the value at
    zero: value = sum_i lambda_i * share_i.  Linear, so the same
    weights recombine per-shard partial {e sums}. *)

val combine : lambdas:int list -> int list -> int
(** [sum_i lambda_i * share_i] in F_M. *)

val to_bytes : int -> bytes
(** 8-byte little-endian cell for the numeric column. *)

val of_bytes : bytes -> int
(** @raise Invalid_argument unless exactly 8 bytes holding a
    normalized field element. *)
