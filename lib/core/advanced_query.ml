module Protocol = Secshare_rpc.Protocol
module Ast = Secshare_xpath.Ast
open Query_common

(* Keep only candidates whose subtree contains every point.  Points are
   applied one at a time over the whole candidate list (one batched
   round trip per point); a node drops out at its first failing point,
   so the evaluation count matches a per-node short-circuiting check —
   only the round-trip count differs. *)
let filter_contains_all filter metas points =
  List.fold_left
    (fun metas point ->
      match metas with
      | [] -> []
      | _ -> Client_filter.containment_batch filter metas ~point)
    metas points

(* The test the current step applies to candidates, given the
   look-ahead points of the remaining query.  The look-ahead is always
   containment; only the step's own match can be strict. *)
let step_filter filter ~strictness ~own_point ~look candidates =
  let points = match own_point with None -> look | Some p -> p :: look in
  (* the cheap containment sieve always runs first: equality implies
     containment, so nothing true is lost *)
  let survivors = filter_contains_all filter candidates points in
  match (own_point, strictness) with
  | None, _ | Some _, Non_strict -> survivors
  | Some point, Strict ->
      List.filter (fun m -> Client_filter.equality filter m ~point) survivors

(* For descendant steps: walk downward from (but excluding) the nodes
   of [sources], level by level.  A node whose subtree lacks one of the
   required names is a dead branch: neither collected nor entered.  The
   prune test stays containment-based even in strict mode — it is what
   lets the walk stop early. *)
let walk_descendants filter ~strictness ~own_point ~look sources =
  let prune_points = match own_point with None -> look | Some p -> p :: look in
  let collected = ref [] in
  let rec level frontier =
    match frontier with
    | [] -> ()
    | _ ->
        let children =
          sort_dedup
            (List.concat_map
               (fun (m : Protocol.node_meta) ->
                 Client_filter.children filter ~pre:m.Protocol.pre)
               frontier)
        in
        let survivors = filter_contains_all filter children prune_points in
        let keep =
          match (own_point, strictness) with
          | None, _ | Some _, Non_strict -> survivors
          | Some point, Strict ->
              List.filter (fun m -> Client_filter.equality filter m ~point) survivors
        in
        collected := List.rev_append keep !collected;
        level survivors
  in
  level sources;
  sort_dedup !collected

let run filter ~mapping ~strictness query =
  if query = [] then raise (Query_error "empty query");
  let all_names_mapped =
    List.for_all (fun n -> Mapping.value mapping n <> None) (Ast.name_tests query)
  in
  let look_names = Ast.names_after query in
  let own_point_of (step : Ast.step) =
    match step.Ast.test with
    | Ast.Name name -> Some (map_point mapping name)
    | Ast.Any | Ast.Parent -> None
  in
  let rec go frontier ~index ~first = function
    | [] -> frontier
    | (step : Ast.step) :: rest ->
        let look = look_points mapping look_names.(index) in
        let own_point = own_point_of step in
        let next =
          match (step.Ast.test, step.Ast.axis) with
          | Ast.Parent, _ -> filter_contains_all filter (parents_of filter frontier) look
          | _, Ast.Child ->
              let candidates =
                if first then Option.to_list (Client_filter.root filter)
                else
                  sort_dedup
                    (List.concat_map
                       (fun (m : Protocol.node_meta) ->
                         Client_filter.children filter ~pre:m.Protocol.pre)
                       frontier)
              in
              step_filter filter ~strictness ~own_point ~look candidates
          | _, Ast.Descendant ->
              let sources =
                if first then Option.to_list (Client_filter.root filter) else frontier
              in
              let below = walk_descendants filter ~strictness ~own_point ~look sources in
              if first then
                (* the root itself is a descendant of the document node *)
                let root_hits = step_filter filter ~strictness ~own_point ~look sources in
                sort_dedup (root_hits @ below)
              else below
        in
        go (sort_dedup next) ~index:(index + 1) ~first:false rest
  in
  if not all_names_mapped then [] else go [] ~index:0 ~first:true query
