module Ast = Secshare_xpath.Ast
open Query_common

(* AdvancedQuery as a plan lowering: every step carries the look-ahead
   points of the remaining query (the names still to be matched), and
   the cheap containment sieve — own point first, then the look-ahead
   points — always runs before a strict equality test, since equality
   implies containment.  Descendant steps lower to [Pruned_scan],
   whose level-by-level walk never enters a branch that fails the
   sieve.

   With the fused protocol the *first* sieve point rides inside the
   child scan; the remaining points still drop out one [Eval_batch]
   round at a time, so the evaluation counts (one pair per surviving
   node per point) match the unfused lowering — only the round-trip
   count shrinks. *)
let lower ?agg ~fused ~mapping ~strictness query =
  if query = [] then raise (Query_error "empty query");
  let look_names = Ast.names_after query in
  let step_ops ~first index (step : Ast.step) =
    let look = look_points mapping look_names.(index) in
    let own_point =
      match step.Ast.test with
      | Ast.Name name -> Some (map_point mapping name)
      | Ast.Any | Ast.Parent -> None
    in
    let sieve = match own_point with None -> look | Some p -> p :: look in
    let strict_eq =
      match (own_point, strictness) with
      | Some point, Strict -> [ Plan.Filter_equality { point } ]
      | _ -> []
    in
    let containment points =
      match points with
      | [] -> []
      | _ -> [ Plan.Filter_containment { points } ]
    in
    match (step.Ast.test, step.Ast.axis) with
    | Ast.Parent, _ -> (Plan.Parent_step :: Plan.Dedup :: containment look)
    | _, Ast.Child ->
        let axis = if first then Plan.Root_scan else Plan.Child_scan in
        let eval, rest =
          if fused then
            match sieve with [] -> (None, []) | p :: rest -> (Some p, rest)
          else (None, sieve)
        in
        (Plan.Scan { axis; eval } :: Plan.Dedup :: containment rest) @ strict_eq
    | _, Ast.Descendant ->
        (* the walk prunes with the full sieve even in strict mode —
           containment is what lets it stop early; the equality test
           runs after, on each level's survivors *)
        let prefix =
          if first then [ Plan.Scan { axis = Plan.Root_scan; eval = None } ] else []
        in
        prefix
        @ (Plan.Pruned_scan { prune = sieve; include_self = first } :: strict_eq)
        @ [ Plan.Dedup ]
  in
  let rec go ~first index = function
    | [] -> []
    | step :: rest -> step_ops ~first index step @ go ~first:false (index + 1) rest
  in
  let path_ops = go ~first:true 0 query in
  match agg with
  | None -> path_ops
  | Some func ->
      path_ops @ [ Plan.Aggregate { func; scale = agg_scale mapping ~func query } ]

let all_names_mapped ~mapping query =
  List.for_all (fun n -> Mapping.value mapping n <> None) (Ast.name_tests query)

let run_explained filter ~mapping ~strictness query =
  if query = [] then raise (Query_error "empty query");
  if not (all_names_mapped ~mapping query) then ([], [])
  else begin
    let plan =
      lower ~fused:(Client_filter.fused_scan filter) ~mapping ~strictness query
    in
    let ops = Operator.build filter plan in
    let metas = Operator.drain ops in
    (sort_dedup metas, Operator.stats_list ops)
  end

let run filter ~mapping ~strictness query =
  fst (run_explained filter ~mapping ~strictness query)

let run_value filter ~mapping ~strictness ~agg query =
  if query = [] then raise (Query_error "empty query");
  if not (all_names_mapped ~mapping query) then (empty_agg_value agg, [])
  else begin
    let plan =
      lower ~agg ~fused:(Client_filter.fused_scan filter) ~mapping ~strictness query
    in
    let ops = Operator.build filter plan in
    ignore (Operator.drain ops : _ list);
    match List.rev ops with
    | sink :: _ -> (
        match Operator.agg_value sink with
        | Some value -> (value, Operator.stats_list ops)
        | None -> raise (Query_error "aggregate sink produced no value"))
    | [] -> raise (Query_error "empty plan")
  end
