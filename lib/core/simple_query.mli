(** The [SimpleQuery] engine (paper §5.3).

    "The most simple search strategy parses the XPath query into steps
    where each step consists of a direction (child or descendant) and
    a tag name" — the query is consumed left to right, each step
    expanding the current result set along its axis and filtering the
    candidates with a *single* test at the step's own tag name.  No
    look-ahead: dead branches are only discovered when a later step
    fails, which makes [//] steps expensive ("this step even increases
    the number of possible nodes that have to be checked").

    With [Non_strict] filtering the result contains every candidate
    whose *subtree* contains the step name (the containment test);
    with [Strict] every candidate whose own tag *is* the step name
    (the equality test). *)

val lower :
  ?agg:Secshare_xpath.Ast.agg_func ->
  fused:bool ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  Secshare_xpath.Ast.t ->
  Plan.t
(** Lower a query to the streaming plan this engine executes.  With
    [fused:true] each non-strict name test rides inside its axis scan
    ([Scan_eval]); otherwise it lowers to a separate containment
    filter after the step's dedup.  With [agg] the plan ends in the
    terminal [Aggregate] sink.
    @raise Query_common.Query_error on an empty query, a name with
    no map entry, or a [sum]/[avg] over a non-aggregatable tag. *)

val run :
  Client_filter.t ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  Secshare_xpath.Ast.t ->
  Secshare_rpc.Protocol.node_meta list
(** Evaluate an absolute query from the document root; results in
    document order.  A query naming a tag with no map entry matches
    nothing (empty result), mirroring plaintext XPath over a document
    that cannot contain the name.
    @raise Client_filter.Filter_error on transport failures. *)

val run_explained :
  Client_filter.t ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  Secshare_xpath.Ast.t ->
  Secshare_rpc.Protocol.node_meta list * Metrics.op_stats list
(** Like {!run}, also returning each plan operator's execution
    counters in plan order (empty for an unmapped name). *)

val run_value :
  Client_filter.t ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  agg:Secshare_xpath.Ast.agg_func ->
  Secshare_xpath.Ast.t ->
  Query_common.value * Metrics.op_stats list
(** Evaluate an aggregate query: the path runs through this engine's
    usual pipeline, then the [Aggregate] sink folds the matched set —
    one constant-size [Agg_eval] round trip for [sum]/[avg], none for
    [count].  An unmapped name short-circuits to the aggregate's
    empty-set value with no server traffic.
    @raise Query_common.Query_error on a [sum]/[avg] over a
    non-aggregatable tag. *)
