module Tree = Secshare_xml.Tree
module Ast = Secshare_xpath.Ast
module Protocol = Secshare_rpc.Protocol

type semantics = Exact | Containment

(* Flattened document: one record per element, in document order. *)
type node = {
  pre : int;
  post : int;
  parent : int; (* 0 for the root *)
  name : string;
  children : int list; (* indices into the node array, i.e. pre - 1 *)
  text : string; (* direct text children, concatenated in order *)
  subtree_names : (string, unit) Hashtbl.t;
}

let flatten tree =
  let nodes = ref [] in
  let pre_counter = ref 0 and post_counter = ref 0 in
  let rec go parent t =
    match t with
    | Tree.Text _ -> None
    | Tree.Element { name; children; _ } ->
        incr pre_counter;
        let pre = !pre_counter in
        let child_indices = List.filter_map (go pre) children in
        incr post_counter;
        let subtree_names = Hashtbl.create 8 in
        Hashtbl.replace subtree_names name ();
        let text =
          String.concat ""
            (List.filter_map
               (function Tree.Text s -> Some s | Tree.Element _ -> None)
               children)
        in
        let node =
          {
            pre;
            post = !post_counter;
            parent;
            name;
            children = child_indices;
            text;
            subtree_names;
          }
        in
        nodes := node :: !nodes;
        Some (pre - 1)
  in
  ignore (go 0 tree);
  match !nodes with
  | [] -> [||]
  | first :: _ ->
      let arr = Array.make (List.length !nodes) first in
      List.iter (fun n -> arr.(n.pre - 1) <- n) !nodes;
      arr

(* Subtree name sets are filled bottom-up: children have larger [pre]
   than their parent, so a reverse pass sees them first. *)
let fill_subtree_names arr =
  for i = Array.length arr - 1 downto 0 do
    let n = arr.(i) in
    List.iter
      (fun ci ->
        Hashtbl.iter
          (fun name () -> Hashtbl.replace n.subtree_names name ())
          arr.(ci).subtree_names)
      n.children
  done

let descendants arr node =
  (* contiguous pre run: scan forward while post < node.post *)
  let acc = ref [] in
  let i = ref node.pre in
  (* index node.pre is the first node after [node] *)
  while !i < Array.length arr && arr.(!i).post < node.post do
    acc := arr.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

let run_nodes ?(semantics = Exact) tree query =
  if query = [] then invalid_arg "Reference.run: empty query";
  let arr = flatten tree in
  fill_subtree_names arr;
  if Array.length arr = 0 then []
  else begin
    let module Int_set = Set.Make (Int) in
    let root = arr.(0) in
    let name_matches node n =
      match semantics with
      | Exact -> String.equal node.name n
      | Containment -> Hashtbl.mem node.subtree_names n
    in
    let step_candidates frontier ~first (step : Ast.step) =
      match (step.Ast.test, step.Ast.axis) with
      | Ast.Parent, _ ->
          List.filter_map
            (fun node -> if node.parent = 0 then None else Some arr.(node.parent - 1))
            frontier
      | _, Ast.Child ->
          if first then [ root ]
          else List.concat_map (fun node -> List.map (fun i -> arr.(i)) node.children) frontier
      | _, Ast.Descendant ->
          let sources = if first then [ root ] else frontier in
          let below = List.concat_map (descendants arr) sources in
          if first then root :: below else below
    in
    let apply_test metas (step : Ast.step) =
      match step.Ast.test with
      | Ast.Any | Ast.Parent -> metas
      | Ast.Name n -> List.filter (fun node -> name_matches node n) metas
    in
    let dedup nodes =
      let set = List.fold_left (fun acc n -> Int_set.add n.pre acc) Int_set.empty nodes in
      List.map (fun pre -> arr.(pre - 1)) (Int_set.elements set)
    in
    let rec go frontier ~first = function
      | [] -> frontier
      | step :: rest ->
          let expanded = step_candidates frontier ~first step in
          let filtered = apply_test expanded step in
          go (dedup filtered) ~first:false rest
    in
    go [] ~first:true query
  end

let run ?semantics tree query = List.map (fun n -> n.pre) (run_nodes ?semantics tree query)

let run_meta ?semantics tree query =
  List.map
    (fun n -> { Protocol.pre = n.pre; post = n.post; parent = n.parent })
    (run_nodes ?semantics tree query)

(* Plaintext aggregation oracle: the same matched set [run_nodes]
   produces, folded in the clear.  A numeric leaf is an element with
   no element children whose direct text parses as a scaled decimal —
   exactly what the encoder requires before flagging a tag. *)
let run_agg ?semantics ?(scale = Numeric.default_scale) ~func tree query =
  let matched = run_nodes ?semantics tree query in
  match (func : Ast.agg_func) with
  | Ast.Count -> Query_common.Count (List.length matched)
  | Ast.Sum | Ast.Avg ->
      let value_of node =
        if node.children <> [] then
          invalid_arg
            (Printf.sprintf "Reference.run_agg: node pre=%d has element children"
               node.pre)
        else
          match Numeric.parse_decimal ~scale node.text with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Reference.run_agg: node pre=%d is not numeric"
                   node.pre)
      in
      let total = List.fold_left (fun acc n -> acc + value_of n) 0 matched in
      let sum = Qnum.make total (Qnum.pow10 scale) in
      if func = Ast.Sum then Query_common.Sum sum
      else
        Query_common.Avg
          (match matched with
          | [] -> Qnum.zero
          | _ -> Qnum.make sum.Qnum.num (sum.Qnum.den * List.length matched))

let pre_of_path tree path =
  let arr = flatten tree in
  if Array.length arr = 0 then None
  else begin
    let rec go node = function
      | [] -> Some node.pre
      | idx :: rest -> (
          match List.nth_opt node.children idx with
          | Some ci -> go arr.(ci) rest
          | None -> None)
    in
    go arr.(0) path
  end
