type t = {
  q : int;
  by_name : (string, int) Hashtbl.t;
  by_value : (int, string) Hashtbl.t;
  mutable order : string list; (* reversed assignment order *)
  agg : (string, int) Hashtbl.t; (* aggregatable tag -> fixed-point scale *)
}

let field_order t = t.q
let size t = Hashtbl.length t.by_name
let names t = List.rev t.order

let create q =
  {
    q;
    by_name = Hashtbl.create 97;
    by_value = Hashtbl.create 97;
    order = [];
    agg = Hashtbl.create 7;
  }

let assign t name v =
  Hashtbl.replace t.by_name name v;
  Hashtbl.replace t.by_value v name;
  t.order <- name :: t.order

let next_free t =
  let rec go v = if Hashtbl.mem t.by_value v then go (v + 1) else v in
  go 1

let add_name t name =
  if Hashtbl.mem t.by_name name then Ok ()
  else begin
    let v = next_free t in
    if v >= t.q then
      Error
        (Printf.sprintf
           "field F_%d has only %d nonzero values; cannot map %d distinct names" t.q
           (t.q - 1)
           (size t + 1))
    else begin
      assign t name v;
      Ok ()
    end
  end

let of_names ~q names =
  if q < 2 then Error "field order must be at least 2"
  else begin
    let t = create q in
    let rec go = function
      | [] -> Ok t
      | name :: rest -> ( match add_name t name with Ok () -> go rest | Error _ as e -> e)
    in
    go names
  end

let of_dtd ~q dtd = of_names ~q (Secshare_xml.Dtd.element_names dtd)
let of_tree ~q tree = of_names ~q (Secshare_xml.Tree.tag_names tree)

let trie_names =
  List.map (String.make 1) Secshare_trie.Tokenize.alphabet
  @ [ Secshare_trie.Tokenize.end_marker ]

let with_trie_alphabet t =
  let rec go = function
    | [] -> Ok t
    | name :: rest -> ( match add_name t name with Ok () -> go rest | Error _ as e -> e)
  in
  go trie_names

let value t name = Hashtbl.find_opt t.by_name name
let value_exn t name = match value t name with Some v -> v | None -> raise Not_found
let name_of t v = Hashtbl.find_opt t.by_value v

(* --- aggregatable tags (numeric column flags) --- *)

let max_agg_scale = 18

let set_aggregatable t name ~scale =
  if not (Hashtbl.mem t.by_name name) then
    invalid_arg (Printf.sprintf "Mapping.set_aggregatable: unmapped name %S" name);
  if scale < 0 || scale > max_agg_scale then
    invalid_arg
      (Printf.sprintf "Mapping.set_aggregatable: scale %d outside [0, %d]" scale
         max_agg_scale);
  Hashtbl.replace t.agg name scale

let clear_aggregatable t = Hashtbl.reset t.agg
let aggregatable_scale t name = Hashtbl.find_opt t.agg name

let aggregatable_names t =
  List.filter (fun name -> Hashtbl.mem t.agg name) (names t)

(* Flag lines use a '%' prefix, which can never start an XML tag name,
   so old map files and new flag lines share one namespace safely. *)
let agg_prefix = "%agg."

let to_file_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "q = %d\n" t.q);
  List.iter
    (fun name ->
      Buffer.add_string buf (Printf.sprintf "%s = %d\n" name (value_exn t name)))
    (names t);
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %d\n" agg_prefix name (Hashtbl.find t.agg name)))
    (aggregatable_names t);
  Buffer.contents buf

let of_file_string contents =
  let lines = String.split_on_char '\n' contents in
  let parse_line line =
    match String.index_opt line '=' with
    | None -> Error (Printf.sprintf "malformed map line %S (expected name = value)" line)
    | Some i ->
        let name = String.trim (String.sub line 0 i) in
        let value_str = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        (match int_of_string_opt value_str with
        | None -> Error (Printf.sprintf "malformed value in map line %S" line)
        | Some v -> Ok (name, v))
  in
  let rec go t = function
    | [] -> (
        match t with
        | Some t when size t > 0 -> Ok t
        | Some _ -> Error "map file declares no names"
        | None -> Error "map file is missing the 'q = ...' header")
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go t rest
        else
          match parse_line line with
          | Error _ as e -> e
          | Ok (name, v) -> (
              match t with
              | None ->
                  if String.equal name "q" then
                    if v < 2 then Error "q must be at least 2" else go (Some (create v)) rest
                  else Error "map file must start with a 'q = ...' header"
              | Some t when String.length name > String.length agg_prefix
                            && String.sub name 0 (String.length agg_prefix) = agg_prefix ->
                  let tag =
                    String.sub name (String.length agg_prefix)
                      (String.length name - String.length agg_prefix)
                  in
                  if not (Hashtbl.mem t.by_name tag) then
                    Error
                      (Printf.sprintf "aggregatable flag for undeclared name %S" tag)
                  else if v < 0 || v > max_agg_scale then
                    Error
                      (Printf.sprintf "aggregatable scale %d for %s outside [0, %d]" v
                         tag max_agg_scale)
                  else begin
                    Hashtbl.replace t.agg tag v;
                    go (Some t) rest
                  end
              | Some t ->
                  if v < 1 || v >= field_order t then
                    Error (Printf.sprintf "value %d for %s outside [1, %d]" v name (field_order t - 1))
                  else if Hashtbl.mem t.by_name name then
                    Error (Printf.sprintf "duplicate name %s" name)
                  else if Hashtbl.mem t.by_value v then
                    Error (Printf.sprintf "value %d assigned twice" v)
                  else begin
                    assign t name v;
                    go (Some t) rest
                  end))
  in
  go None lines

let save path t =
  Out_channel.with_open_text path (fun oc -> output_string oc (to_file_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_file_string contents
  | exception Sys_error msg -> Error msg

let equal a b =
  a.q = b.q
  && size a = size b
  && List.for_all (fun name -> value a name = value b name) (names a)
  && Hashtbl.length a.agg = Hashtbl.length b.agg
  && Hashtbl.fold
       (fun name scale acc -> acc && Hashtbl.find_opt b.agg name = Some scale)
       a.agg true

let pp fmt t = Format.fprintf fmt "mapping(q=%d, %d names)" t.q (size t)
