module Cyclic = Secshare_poly.Cyclic
module Sax = Secshare_xml.Sax
module Trie = Secshare_trie.Trie
module Tokenize = Secshare_trie.Tokenize

type error = Unmapped_name of string | Xml_error of string

exception Encode_error of error

let error_to_string = function
  | Unmapped_name name -> Printf.sprintf "no map entry for tag name %S" name
  | Xml_error msg -> "XML error: " ^ msg

type stats = {
  nodes : int;
  elements : int;
  trie_nodes : int;
  max_depth : int;
  duration_seconds : float;
}

type frame = {
  value : int;  (** map(name) *)
  pre : int;
  parent : int;
  mutable product : Cyclic.t;  (** prod f(child) over closed children *)
  mutable has_children : bool;
}

type encoder = {
  ring : Secshare_poly.Ring.t;
  mapping : Mapping.t;
  seed : Secshare_prg.Seed.t;
  table : Secshare_store.Node_table.t;
  trie : Secshare_trie.Expand.mode option;
  mutable stack : frame list;
  mutable pre_counter : int;
  mutable post_counter : int;
  mutable elements : int;
  mutable trie_nodes : int;
  mutable max_depth : int;
  started_at : float;
  mutable finished : bool;
}

let create ring ~mapping ~seed ~table ?trie () =
  {
    ring;
    mapping;
    seed;
    table;
    trie;
    stack = [];
    pre_counter = 0;
    post_counter = 0;
    elements = 0;
    trie_nodes = 0;
    max_depth = 0;
    started_at = Unix.gettimeofday ();
    finished = false;
  }

let map_value t name =
  match Mapping.value t.mapping name with
  | Some v -> v
  | None -> raise (Encode_error (Unmapped_name name))

let open_element t name =
  let value = map_value t name in
  let parent = match t.stack with [] -> 0 | frame :: _ -> frame.pre in
  t.pre_counter <- t.pre_counter + 1;
  let frame =
    { value; pre = t.pre_counter; parent; product = Cyclic.one t.ring; has_children = false }
  in
  t.stack <- frame :: t.stack;
  t.max_depth <- max t.max_depth (List.length t.stack)

let close_element t =
  match t.stack with
  | [] -> raise (Encode_error (Xml_error "unbalanced end element"))
  | frame :: rest ->
      t.stack <- rest;
      t.post_counter <- t.post_counter + 1;
      (* A leaf is (x - v); an inner node multiplies the accumulated
         child product by its own linear factor. *)
      let own =
        if frame.has_children then Cyclic.mul_linear t.ring ~root:frame.value frame.product
        else Cyclic.linear t.ring ~root:frame.value
      in
      let server = Share.server_share t.ring ~seed:t.seed ~pre:frame.pre own in
      let row =
        {
          Secshare_store.Page.pre = frame.pre;
          post = t.post_counter;
          parent = frame.parent;
          share = Secshare_poly.Codec.pack_cyclic t.ring server;
        }
      in
      Secshare_store.Node_table.insert t.table row;
      (match rest with
      | [] -> ()
      | parent_frame :: _ ->
          parent_frame.product <-
            (if parent_frame.has_children then Cyclic.mul t.ring parent_frame.product own
             else own);
          parent_frame.has_children <- true)

(* Trie expansion: text becomes synthetic single-character elements
   encoded exactly like real tags. *)
let emit_synthetic_open t name =
  open_element t name;
  t.trie_nodes <- t.trie_nodes + 1

let rec emit_trie_forest t trie =
  Trie.fold_edges trie ~init:() ~f:(fun () c child ->
      emit_synthetic_open t (String.make 1 c);
      emit_trie_forest t child;
      if Trie.mem child "" then begin
        emit_synthetic_open t Tokenize.end_marker;
        close_element t
      end;
      close_element t)

let emit_word_chain t word =
  String.iter (fun c -> emit_synthetic_open t (String.make 1 c)) word;
  emit_synthetic_open t Tokenize.end_marker;
  close_element t;
  String.iter (fun _ -> close_element t) word

let handle_text t s =
  match t.trie with
  | None -> ()
  | Some mode -> (
      if t.stack = [] then ()
      else
        match Tokenize.words s with
        | [] -> ()
        | words -> (
            match mode with
            | Secshare_trie.Expand.Compressed -> emit_trie_forest t (Trie.of_words words)
            | Secshare_trie.Expand.Uncompressed -> List.iter (emit_word_chain t) words))

let feed t event =
  if t.finished then raise (Encode_error (Xml_error "encoder already finished"));
  match event with
  | Sax.Start_element (name, _attrs) ->
      open_element t name;
      t.elements <- t.elements + 1
  | Sax.End_element _ -> close_element t
  | Sax.Text s -> handle_text t s
  | Sax.Comment _ | Sax.Pi _ -> ()

let finish t =
  if t.stack <> [] then raise (Encode_error (Xml_error "document has unclosed elements"));
  t.finished <- true;
  {
    nodes = t.pre_counter;
    elements = t.elements;
    trie_nodes = t.trie_nodes;
    max_depth = t.max_depth;
    duration_seconds = Unix.gettimeofday () -. t.started_at;
  }

let encode_input ring ~mapping ~seed ~table ?trie input =
  let encoder = create ring ~mapping ~seed ~table ?trie () in
  match
    Sax.iter input ~f:(feed encoder);
    finish encoder
  with
  | stats -> Ok stats
  | exception Encode_error e -> Error e
  | exception Sax.Parse_error (pos, msg) ->
      Error (Xml_error (Printf.sprintf "line %d, column %d: %s" pos.Sax.line pos.Sax.col msg))

let encode_string ring ~mapping ~seed ~table ?trie s =
  encode_input ring ~mapping ~seed ~table ?trie (Sax.input_of_string s)

let encode_channel ring ~mapping ~seed ~table ?trie ic =
  encode_input ring ~mapping ~seed ~table ?trie (Sax.input_of_channel ic)

let encode_tree ring ~mapping ~seed ~table ?trie tree =
  let encoder = create ring ~mapping ~seed ~table ?trie () in
  match
    List.iter (feed encoder) (Secshare_xml.Tree.to_events tree);
    finish encoder
  with
  | stats -> Ok stats
  | exception Encode_error e -> Error e
