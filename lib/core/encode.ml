module Cyclic = Secshare_poly.Cyclic
module Sax = Secshare_xml.Sax
module Trie = Secshare_trie.Trie
module Tokenize = Secshare_trie.Tokenize

type error = Unmapped_name of string | Xml_error of string

exception Encode_error of error

let error_to_string = function
  | Unmapped_name name -> Printf.sprintf "no map entry for tag name %S" name
  | Xml_error msg -> "XML error: " ^ msg

type stats = {
  nodes : int;
  elements : int;
  trie_nodes : int;
  numeric_nodes : int;
  max_depth : int;
  duration_seconds : float;
}

type frame = {
  name : string;
  value : int;  (** map(name) *)
  pre : int;
  parent : int;
  synthetic : bool;  (** a trie character/marker node, not a real tag *)
  mutable product : Cyclic.t;  (** prod f(child) over closed children *)
  mutable has_children : bool;
  mutable real_children : bool;  (** has a real element child (trie nodes don't count) *)
  mutable text : string list;  (** direct text chunks, reversed *)
}

type encoder = {
  ring : Secshare_poly.Ring.t;
  mapping : Mapping.t;
  seed : Secshare_prg.Seed.t;
  table : Secshare_store.Node_table.t;
  trie : Secshare_trie.Expand.mode option;
  numbers : Secshare_store.Node_table.t option;
      (** numeric share column sink; enables aggregatable flagging *)
  agg_scale : int;
  tag_counts : (string, int * int) Hashtbl.t;
      (** real tag -> (occurrences, numeric leaf occurrences) *)
  mutable stack : frame list;
  mutable pre_counter : int;
  mutable post_counter : int;
  mutable elements : int;
  mutable trie_nodes : int;
  mutable numeric_nodes : int;
  mutable max_depth : int;
  started_at : float;
  mutable finished : bool;
}

let create ring ~mapping ~seed ~table ?trie ?numbers
    ?(agg_scale = Numeric.default_scale) () =
  if agg_scale < 0 || agg_scale > Mapping.max_agg_scale then
    invalid_arg
      (Printf.sprintf "Encode.create: scale %d outside [0, %d]" agg_scale
         Mapping.max_agg_scale);
  {
    ring;
    mapping;
    seed;
    table;
    trie;
    numbers;
    agg_scale;
    tag_counts = Hashtbl.create 97;
    stack = [];
    pre_counter = 0;
    post_counter = 0;
    elements = 0;
    trie_nodes = 0;
    numeric_nodes = 0;
    max_depth = 0;
    started_at = Unix.gettimeofday ();
    finished = false;
  }

let map_value t name =
  match Mapping.value t.mapping name with
  | Some v -> v
  | None -> raise (Encode_error (Unmapped_name name))

let open_element ?(synthetic = false) t name =
  let value = map_value t name in
  let parent = match t.stack with [] -> 0 | frame :: _ -> frame.pre in
  t.pre_counter <- t.pre_counter + 1;
  let frame =
    {
      name;
      value;
      pre = t.pre_counter;
      parent;
      synthetic;
      product = Cyclic.one t.ring;
      has_children = false;
      real_children = false;
      text = [];
    }
  in
  t.stack <- frame :: t.stack;
  t.max_depth <- max t.max_depth (List.length t.stack)

(* Numeric capture at close: a real element with no real element
   children whose concatenated direct text parses as a decimal gets a
   row in the numeric column, additively blinded so the server's cell
   is a uniform field element.  Every parsing leaf is stored; whether
   a tag is *flagged* aggregatable is decided at [finish], when we
   know the tag was numeric at every occurrence. *)
let capture_numeric t frame ~post =
  match t.numbers with
  | None -> ()
  | Some numbers ->
      if frame.synthetic then ()
      else begin
        (* every non-synthetic occurrence counts: an element with real
           element children is a non-numeric occurrence and must
           disqualify its tag at [finish] *)
        let numeric =
          if frame.real_children then false
          else
            let text = String.concat "" (List.rev frame.text) in
            match Numeric.parse_decimal ~scale:t.agg_scale text with
            | None -> false
            | Some v ->
                let share =
                  Numeric.sub (Numeric.normalize v)
                    (Numeric.blind ~seed:t.seed ~pre:frame.pre)
                in
                Secshare_store.Node_table.insert numbers
                  {
                    Secshare_store.Page.pre = frame.pre;
                    post;
                    parent = frame.parent;
                    share = Numeric.to_bytes share;
                  };
                t.numeric_nodes <- t.numeric_nodes + 1;
                true
        in
        let occ, num =
          Option.value (Hashtbl.find_opt t.tag_counts frame.name) ~default:(0, 0)
        in
        Hashtbl.replace t.tag_counts frame.name
          (occ + 1, if numeric then num + 1 else num)
      end

let close_element t =
  match t.stack with
  | [] -> raise (Encode_error (Xml_error "unbalanced end element"))
  | frame :: rest ->
      t.stack <- rest;
      t.post_counter <- t.post_counter + 1;
      (* A leaf is (x - v); an inner node multiplies the accumulated
         child product by its own linear factor. *)
      let own =
        if frame.has_children then Cyclic.mul_linear t.ring ~root:frame.value frame.product
        else Cyclic.linear t.ring ~root:frame.value
      in
      let server = Share.server_share t.ring ~seed:t.seed ~pre:frame.pre own in
      let row =
        {
          Secshare_store.Page.pre = frame.pre;
          post = t.post_counter;
          parent = frame.parent;
          share = Secshare_poly.Codec.pack_cyclic t.ring server;
        }
      in
      Secshare_store.Node_table.insert t.table row;
      capture_numeric t frame ~post:t.post_counter;
      (match rest with
      | [] -> ()
      | parent_frame :: _ ->
          parent_frame.product <-
            (if parent_frame.has_children then Cyclic.mul t.ring parent_frame.product own
             else own);
          parent_frame.has_children <- true;
          if not frame.synthetic then parent_frame.real_children <- true)

(* Trie expansion: text becomes synthetic single-character elements
   encoded exactly like real tags. *)
let emit_synthetic_open t name =
  open_element ~synthetic:true t name;
  t.trie_nodes <- t.trie_nodes + 1

let rec emit_trie_forest t trie =
  Trie.fold_edges trie ~init:() ~f:(fun () c child ->
      emit_synthetic_open t (String.make 1 c);
      emit_trie_forest t child;
      if Trie.mem child "" then begin
        emit_synthetic_open t Tokenize.end_marker;
        close_element t
      end;
      close_element t)

let emit_word_chain t word =
  String.iter (fun c -> emit_synthetic_open t (String.make 1 c)) word;
  emit_synthetic_open t Tokenize.end_marker;
  close_element t;
  String.iter (fun _ -> close_element t) word

let handle_text t s =
  match t.trie with
  | None -> ()
  | Some mode -> (
      if t.stack = [] then ()
      else
        match Tokenize.words s with
        | [] -> ()
        | words -> (
            match mode with
            | Secshare_trie.Expand.Compressed -> emit_trie_forest t (Trie.of_words words)
            | Secshare_trie.Expand.Uncompressed -> List.iter (emit_word_chain t) words))

let feed t event =
  if t.finished then raise (Encode_error (Xml_error "encoder already finished"));
  match event with
  | Sax.Start_element (name, _attrs) ->
      open_element t name;
      t.elements <- t.elements + 1
  | Sax.End_element _ -> close_element t
  | Sax.Text s ->
      (* accumulate direct text on the enclosing real element before
         trie expansion consumes it (synthetic frames never hold text:
         expansion opens and closes them within [handle_text]) *)
      (match t.stack with
      | frame :: _ when not frame.synthetic -> frame.text <- s :: frame.text
      | _ -> ());
      handle_text t s
  | Sax.Comment _ | Sax.Pi _ -> ()

let finish t =
  if t.stack <> [] then raise (Encode_error (Xml_error "document has unclosed elements"));
  t.finished <- true;
  (* Strict flagging: a tag is aggregatable only when every one of its
     occurrences was a numeric leaf, so an aggregate's matched set can
     never miss a numeric row.  Re-derived from scratch each encode. *)
  if t.numbers <> None then begin
    Mapping.clear_aggregatable t.mapping;
    Hashtbl.iter
      (fun name (occ, num) ->
        if occ > 0 && occ = num then
          Mapping.set_aggregatable t.mapping name ~scale:t.agg_scale)
      t.tag_counts
  end;
  {
    nodes = t.pre_counter;
    elements = t.elements;
    trie_nodes = t.trie_nodes;
    numeric_nodes = t.numeric_nodes;
    max_depth = t.max_depth;
    duration_seconds = Unix.gettimeofday () -. t.started_at;
  }

let encode_input ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale input =
  let encoder = create ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale () in
  match
    Sax.iter input ~f:(feed encoder);
    finish encoder
  with
  | stats -> Ok stats
  | exception Encode_error e -> Error e
  | exception Sax.Parse_error (pos, msg) ->
      Error (Xml_error (Printf.sprintf "line %d, column %d: %s" pos.Sax.line pos.Sax.col msg))

let encode_string ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale s =
  encode_input ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale
    (Sax.input_of_string s)

let encode_channel ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale ic =
  encode_input ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale
    (Sax.input_of_channel ic)

let encode_tree ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale tree =
  let encoder = create ring ~mapping ~seed ~table ?trie ?numbers ?agg_scale () in
  match
    List.iter (feed encoder) (Secshare_xml.Tree.to_events tree);
    finish encoder
  with
  | stats -> Ok stats
  | exception Encode_error e -> Error e
