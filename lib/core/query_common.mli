(** Shared pieces of the two query engines (§5.3). *)

type strictness =
  | Strict  (** the equality test: exact, expensive (§6.3) *)
  | Non_strict  (** the containment test: cheap, approximate *)

exception Query_error of string

val map_point : Mapping.t -> string -> int
(** The mapped field value of a tag name.
    @raise Query_error on an unmapped name (the query can never match
    — surfacing this is a client-side decision; the server never sees
    the name). *)

val look_points : Mapping.t -> string list -> int list
(** Mapped values of a look-ahead name set. *)

val sort_dedup :
  Secshare_rpc.Protocol.node_meta list -> Secshare_rpc.Protocol.node_meta list
(** Document order ([pre]), duplicates removed. *)

val parents_of :
  Client_filter.t ->
  Secshare_rpc.Protocol.node_meta list ->
  Secshare_rpc.Protocol.node_meta list
(** Distinct parents of a node set (the [..] step). *)
