(** Shared pieces of the two query engines (§5.3). *)

type strictness =
  | Strict  (** the equality test: exact, expensive (§6.3) *)
  | Non_strict  (** the containment test: cheap, approximate *)

(** What a query evaluates to. *)
type value =
  | Nodes of Secshare_rpc.Protocol.node_meta list
      (** a location path's matched set, in document order *)
  | Count of int
  | Sum of Qnum.t
      (** exact rational: the fixed-point scale divides out without
          rounding *)
  | Avg of Qnum.t  (** [Sum / Count]; zero over the empty set *)

exception Query_error of string

val map_point : Mapping.t -> string -> int
(** The mapped field value of a tag name.
    @raise Query_error on an unmapped name (the query can never match
    — surfacing this is a client-side decision; the server never sees
    the name). *)

val look_points : Mapping.t -> string list -> int list
(** Mapped values of a look-ahead name set. *)

val sort_dedup :
  Secshare_rpc.Protocol.node_meta list -> Secshare_rpc.Protocol.node_meta list
(** Document order ([pre]), duplicates removed. *)

val empty_agg_value : Secshare_xpath.Ast.agg_func -> value
(** What an aggregate evaluates to over the empty set ([Count 0], zero
    sums) — the short-circuit answer when a query name is unmapped. *)

val agg_scale : Mapping.t -> func:Secshare_xpath.Ast.agg_func -> Secshare_xpath.Ast.t -> int
(** The fixed-point scale an [Aggregate] plan operator needs: 0 for
    [Count], the final tag's aggregatable scale for [Sum]/[Avg].
    @raise Query_error when that tag is not flagged aggregatable or
    the path does not end in a tag name. *)

val parents_of :
  Client_filter.t ->
  Secshare_rpc.Protocol.node_meta list ->
  Secshare_rpc.Protocol.node_meta list
(** Distinct parents of a node set (the [..] step). *)
