(** The client half of the filter (paper §5.2).

    "ClientFilter first regenerates the client polynomial by using the
    pseudorandom generator with the secret seed and the pre location of
    the polynomial.  After the evaluation of its generated polynomial
    it will add the result to the retrieved value from the server.
    Only when the sum equals zero, the location is returned to the
    invoking query engine."

    All structure navigation goes through the transport (so it works
    identically in-process and over a socket); all secret material
    (seed, map values) stays on this side. *)

type t

exception Filter_error of string
(** Transport or protocol failure. *)

val create :
  Secshare_poly.Ring.t ->
  seed:Secshare_prg.Seed.t ->
  ?batch_size:int ->
  ?scan_batch:int ->
  ?batch_eval:bool ->
  ?fused_scan:bool ->
  ?share_cache:int ->
  Secshare_rpc.Transport.t ->
  t
(** [batch_size] bounds cursor batches (default 64): the client holds
    at most one batch of node metadata at a time.  [scan_batch]
    (default 256) bounds fused [Scan_eval] batches.  [batch_eval]
    (default true) lets {!containment_batch} use one [Eval_batch]
    round trip; disabling it reproduces the per-node-call cost model
    of the paper's RMI filter (see the batching ablation).
    [fused_scan] (default true) lets the execution pipeline use the
    fused [Scan_eval] request — axis scan and share evaluation in one
    message — instead of per-parent [Children] / [Descendants] calls
    followed by a separate [Eval_batch].  [share_cache] (default 4096
    polynomials, 0 = off) bounds the LRU cache of regenerated client
    polynomials keyed by [pre]; regeneration is a pure function of the
    seed and [pre], so a cached entry is exact forever and eviction
    can only cost time, never correctness.  An evaluation memo keyed
    by [(pre, point)] rides along at 4x that capacity and is dropped
    by {!reset_metrics}. *)

val metrics : t -> Metrics.t

val reset_metrics : t -> unit
(** Zero the metrics and drop the per-workload evaluation memo (the
    polynomial cache itself survives: its entries stay exact). *)

val rpc_counters : t -> Secshare_rpc.Transport.counters
val batch_size : t -> int
val scan_batch : t -> int
val batch_eval : t -> bool
val fused_scan : t -> bool

val share_cache_stats : t -> Lru.stats option
(** Hit/miss/eviction counts of the polynomial cache; [None] when the
    cache is disabled. *)

val share_cache_capacity : t -> int
(** Configured capacity in polynomials (0 = disabled). *)

(** {2 Structure navigation} *)

val root : t -> Secshare_rpc.Protocol.node_meta option
val children : t -> pre:int -> Secshare_rpc.Protocol.node_meta list
val parent : t -> pre:int -> Secshare_rpc.Protocol.node_meta option

val iter_descendants :
  t -> Secshare_rpc.Protocol.node_meta -> f:(Secshare_rpc.Protocol.node_meta -> unit) -> unit
(** Stream the strict descendants of a node in document order through
    a server-side cursor. *)

val descendants :
  t -> Secshare_rpc.Protocol.node_meta -> Secshare_rpc.Protocol.node_meta list

(** {2 Cursor-level access}

    The streaming operators manage cursors themselves so they can stop
    early (e.g. a satisfied [limit]) and close the server side
    eagerly instead of waiting for TTL eviction. *)

val descendants_cursor : t -> pre:int -> post:int -> int
val cursor_next :
  t -> cursor:int -> max_items:int -> Secshare_rpc.Protocol.node_meta list * bool
(** Items plus whether the cursor is exhausted (exhausted cursors are
    freed server-side). *)

val cursor_close : t -> int -> unit

(** {2 Fused scans}

    One [Scan_eval] round trip both walks an axis range server-side
    and evaluates every scanned share at the supplied points — the
    scan and the containment test of a name step travel in the same
    message. *)

val scan_eval :
  t ->
  target:Secshare_rpc.Protocol.scan_target ->
  points:int list ->
  max_items:int ->
  (Secshare_rpc.Protocol.node_meta * int list) list * int option
(** First batch plus a continuation cursor when more rows remain. *)

val scan_next :
  t ->
  cursor:int ->
  max_items:int ->
  (Secshare_rpc.Protocol.node_meta * int list) list * int option

val filter_scan_rows :
  t ->
  (Secshare_rpc.Protocol.node_meta * int list) list ->
  points:int list ->
  Secshare_rpc.Protocol.node_meta list
(** Client half of a fused batch: combine each row's server
    evaluations with regenerated client shares and keep the rows
    passing the containment test at every point (counted in the
    metrics, one evaluation pair per point).  With no points, strips
    the (empty) value lists. *)

val table_stats : t -> Secshare_rpc.Protocol.stats

(** {2 Oblivious aggregation} *)

val agg_eval : t -> int list -> int * int
(** One [Agg_eval] round trip: [(count, sum)] where [sum] is the
    server's blinded partial sum over the listed [pre]s — constant
    reply bytes whatever the list length. *)

val blind_sum : t -> int list -> int
(** The client's half: the {!Numeric} sum of the PRG blinding values
    for the listed [pre]s.  [server sum + blind_sum] (mod the numeric
    field) is the scaled plaintext total. *)

(** {2 The two tests of §5.2 / §6.3} *)

val containment : t -> Secshare_rpc.Protocol.node_meta -> point:int -> bool
(** Non-strict: does the node's subtree (including itself) contain a
    node mapped to [point]?  One evaluation pair. *)

val containment_batch :
  t ->
  Secshare_rpc.Protocol.node_meta list ->
  point:int ->
  Secshare_rpc.Protocol.node_meta list
(** Filter a candidate list by containment at one point with a single
    round trip (still one evaluation per node in the metrics). *)

val tag_value : t -> Secshare_rpc.Protocol.node_meta -> int option
(** Strict machinery: reconstruct the node and all its children,
    divide out the child product and return the node's own mapped
    value.  [None] when the division is degenerate (counted in the
    metrics). *)

val equality : t -> Secshare_rpc.Protocol.node_meta -> point:int -> bool
(** Strict: is the node itself mapped to [point]? *)

val close : t -> unit
