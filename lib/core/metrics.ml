type t = {
  mutable evaluations : int;
  mutable equality_tests : int;
  mutable reconstructions : int;
  mutable nodes_examined : int;
  mutable degenerate_divisions : int;
}

let create () =
  {
    evaluations = 0;
    equality_tests = 0;
    reconstructions = 0;
    nodes_examined = 0;
    degenerate_divisions = 0;
  }

let reset t =
  t.evaluations <- 0;
  t.equality_tests <- 0;
  t.reconstructions <- 0;
  t.nodes_examined <- 0;
  t.degenerate_divisions <- 0

(* Destructuring patterns make these field-exhaustive: adding a
   counter to [t] without extending the aggregation here is a fatal
   missing-field warning under the dev profile, not a silently dropped
   count. *)
let add acc
    { evaluations; equality_tests; reconstructions; nodes_examined; degenerate_divisions }
    =
  acc.evaluations <- acc.evaluations + evaluations;
  acc.equality_tests <- acc.equality_tests + equality_tests;
  acc.reconstructions <- acc.reconstructions + reconstructions;
  acc.nodes_examined <- acc.nodes_examined + nodes_examined;
  acc.degenerate_divisions <- acc.degenerate_divisions + degenerate_divisions

let copy
    { evaluations; equality_tests; reconstructions; nodes_examined; degenerate_divisions }
    =
  { evaluations; equality_tests; reconstructions; nodes_examined; degenerate_divisions }

let pp fmt t =
  Format.fprintf fmt
    "{evals=%d; eq_tests=%d; reconstructions=%d; examined=%d; degenerate=%d}"
    t.evaluations t.equality_tests t.reconstructions t.nodes_examined
    t.degenerate_divisions

(* --- per-operator counters for the streaming pipeline --- *)

type op_stats = {
  op_name : string;
  mutable batches : int;  (** output batches emitted *)
  mutable rows_in : int;
  mutable rows_out : int;
  mutable eval_pairs : int;
  mutable rpc_calls : int;
  mutable rpc_bytes : int;
  mutable wall_seconds : float;
}

let op_stats op_name =
  {
    op_name;
    batches = 0;
    rows_in = 0;
    rows_out = 0;
    eval_pairs = 0;
    rpc_calls = 0;
    rpc_bytes = 0;
    wall_seconds = 0.0;
  }

let copy_op_stats s = { s with op_name = s.op_name }

let pp_op_stats fmt s =
  Format.fprintf fmt "%-28s %8d %8d %8d %8d %6d %10d %9.4f" s.op_name s.rows_in
    s.rows_out s.batches s.eval_pairs s.rpc_calls s.rpc_bytes s.wall_seconds

let pp_op_table fmt ops =
  Format.fprintf fmt "%-28s %8s %8s %8s %8s %6s %10s %9s" "operator" "rows_in"
    "rows_out" "batches" "evals" "rpcs" "bytes" "wall(s)";
  List.iter (fun s -> Format.fprintf fmt "@\n%a" pp_op_stats s) ops
