type t = {
  mutable evaluations : int;
  mutable equality_tests : int;
  mutable reconstructions : int;
  mutable nodes_examined : int;
  mutable degenerate_divisions : int;
}

let create () =
  {
    evaluations = 0;
    equality_tests = 0;
    reconstructions = 0;
    nodes_examined = 0;
    degenerate_divisions = 0;
  }

let reset t =
  t.evaluations <- 0;
  t.equality_tests <- 0;
  t.reconstructions <- 0;
  t.nodes_examined <- 0;
  t.degenerate_divisions <- 0

let add acc t =
  acc.evaluations <- acc.evaluations + t.evaluations;
  acc.equality_tests <- acc.equality_tests + t.equality_tests;
  acc.reconstructions <- acc.reconstructions + t.reconstructions;
  acc.nodes_examined <- acc.nodes_examined + t.nodes_examined;
  acc.degenerate_divisions <- acc.degenerate_divisions + t.degenerate_divisions

let copy t =
  {
    evaluations = t.evaluations;
    equality_tests = t.equality_tests;
    reconstructions = t.reconstructions;
    nodes_examined = t.nodes_examined;
    degenerate_divisions = t.degenerate_divisions;
  }

let pp fmt t =
  Format.fprintf fmt
    "{evals=%d; eq_tests=%d; reconstructions=%d; examined=%d; degenerate=%d}"
    t.evaluations t.equality_tests t.reconstructions t.nodes_examined
    t.degenerate_divisions
