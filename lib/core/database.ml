module Ring = Secshare_poly.Ring
module Node_table = Secshare_store.Node_table
module Transport = Secshare_rpc.Transport
module Ast = Secshare_xpath.Ast
module Obs = Secshare_obs

type client_config = {
  rpc_batching : bool;
  rpc_fused_scan : bool;
  share_cache : int;
  timeout : float option;
  max_retries : int;
  cursor_ttl : float option;
  max_cursors : int;
  slow_query_ms : float option;
  workers : int;
}

let default_client_config =
  {
    rpc_batching = true;
    rpc_fused_scan = true;
    share_cache = 4096;
    timeout = None;
    max_retries = 0;
    cursor_ttl = None;
    max_cursors = 1024;
    slow_query_ms = None;
    workers = 1;
  }

type config = {
  p : int;
  e : int;
  trie : Secshare_trie.Expand.mode option;
  seed : Secshare_prg.Seed.t option;
  mapping : [ `From_document | `From_dtd of Secshare_xml.Dtd.t | `Explicit of Mapping.t ];
  page_size : int;
  client : client_config;
}

let default_config =
  {
    p = 83;
    e = 1;
    trie = None;
    seed = None;
    mapping = `From_document;
    page_size = 8192;
    client = default_client_config;
  }

(* Process-wide client-side query families, mirroring the per-query
   [Metrics.t] deltas into the registry after each query. *)
let obs_client_queries =
  Obs.Registry.counter ~help:"Queries executed by this process's clients."
    "ssdb_client_queries_total"

let obs_query_seconds =
  Obs.Registry.histogram ~help:"End-to-end query latency in seconds."
    "ssdb_client_query_seconds"

let obs_evaluations =
  Obs.Registry.counter ~help:"Containment evaluation pairs (figure 5's quantity)."
    "ssdb_client_evaluations_total"

let obs_equality_tests =
  Obs.Registry.counter ~help:"Equality tests performed."
    "ssdb_client_equality_tests_total"

let obs_reconstructions =
  Obs.Registry.counter ~help:"Full polynomial reconstructions for equality tests."
    "ssdb_client_reconstructions_total"

let obs_nodes_examined =
  Obs.Registry.counter ~help:"Candidate nodes inspected."
    "ssdb_client_nodes_examined_total"

let obs_degenerate_divisions =
  Obs.Registry.counter ~help:"Equality tests aborted on a zero child product."
    "ssdb_client_degenerate_divisions_total"

(* Field-exhaustive on purpose, like [Metrics.add]: a new counter that
   is not mirrored here fails to compile. *)
let mirror_query_metrics
    {
      Metrics.evaluations;
      equality_tests;
      reconstructions;
      nodes_examined;
      degenerate_divisions;
    } =
  Obs.Registry.inc ~by:evaluations obs_evaluations;
  Obs.Registry.inc ~by:equality_tests obs_equality_tests;
  Obs.Registry.inc ~by:reconstructions obs_reconstructions;
  Obs.Registry.inc ~by:nodes_examined obs_nodes_examined;
  Obs.Registry.inc ~by:degenerate_divisions obs_degenerate_divisions

type engine = Simple | Advanced

(* The server half a handle owns when it is local (in-process
   transport or a bundle opened from disk).  A remote handle
   ([connect]) has none: its server lives across the socket. *)
type local = {
  table : Node_table.t;
  numbers : Node_table.t option;  (** numeric share column (aggregation) *)
  server : Server_filter.t;
  encode_stats : Encode.stats;
}

type t = {
  ring : Ring.t;
  map : Mapping.t;
  seed : Secshare_prg.Seed.t;
  filter : Client_filter.t;
  local : local option;
}

type query_result = {
  value : Query_common.value;
  metrics : Metrics.t;
  operators : Metrics.op_stats list;
  rpc_calls : int;
  rpc_bytes : int;
  seconds : float;
  trace_id : int64;
}

let result_nodes r =
  match r.value with Query_common.Nodes nodes -> nodes | _ -> []

let local_exn t what =
  match t.local with
  | Some l -> l
  | None ->
      invalid_arg
        (Printf.sprintf "Database.%s: remote handle (no local server half)" what)

(* Field orders past this are useless for the scheme (a share stores
   q - 1 packed coefficients) and risk int overflow downstream; reject
   them instead of letting [p^e] wrap around silently. *)
let max_field_order = 1 lsl 20

let checked_field_order ~p ~e =
  let rec go acc i =
    if i = 0 then Ok acc
    else if acc > max_field_order / p then
      Error
        (Printf.sprintf
           "p^e = %d^%d exceeds the safe field-order bound of %d (would overflow)" p e
           max_field_order)
    else go (acc * p) (i - 1)
  in
  go 1 e

let build_mapping config ~q tree =
  let base =
    match config.mapping with
    | `Explicit m -> Ok m
    | `From_dtd dtd -> Mapping.of_dtd ~q dtd
    | `From_document -> Mapping.of_tree ~q tree
  in
  match (base, config.trie) with
  | (Error _ as e), _ -> e
  | (Ok _ as ok), None -> ok
  | Ok m, Some _ -> Mapping.with_trie_alphabet m

(* Assemble the in-process client/server pair every local constructor
   ends in: one server filter (with its evaluation pool) over the
   table, a local transport, and a caching client filter on top. *)
let assemble_local ~(client : client_config) ~ring ~map ~seed ~table ?numbers
    ~encode_stats () =
  let server =
    Server_filter.create ?cursor_ttl:client.cursor_ttl ~max_cursors:client.max_cursors
      ?slow_query_ms:client.slow_query_ms ~workers:client.workers ?numbers ring table
  in
  let transport = Transport.local ~handler:(Server_filter.handler server) in
  let filter =
    Client_filter.create ring ~seed ~batch_eval:client.rpc_batching
      ~fused_scan:client.rpc_fused_scan ~share_cache:client.share_cache transport
  in
  { ring; map; seed; filter; local = Some { table; numbers; server; encode_stats } }

let create_tree ?(config = default_config) tree =
  match
    if not (Secshare_field.Prime.is_prime config.p) then
      Error (Printf.sprintf "p = %d is not prime" config.p)
    else if config.e < 1 then Error "e must be >= 1"
    else
      match checked_field_order ~p:config.p ~e:config.e with
      | Error _ as e -> e
      | Ok q -> Ok (Ring.of_prime_power ~p:config.p ~e:config.e, q)
  with
  | Error _ as e -> e
  | Ok (ring, q) -> (
      match build_mapping config ~q tree with
      | Error _ as e -> e
      | Ok map -> (
          let seed =
            match config.seed with
            | Some s -> s
            | None -> Secshare_prg.Seed.generate ()
          in
          let table = Node_table.create ~page_size:config.page_size () in
          let numbers = Node_table.create ~page_size:config.page_size () in
          match
            Encode.encode_tree ring ~mapping:map ~seed ~table ~numbers
              ?trie:config.trie tree
          with
          | Error e -> Error (Encode.error_to_string e)
          | Ok encode_stats ->
              Ok
                (assemble_local ~client:config.client ~ring ~map ~seed ~table ~numbers
                   ~encode_stats ())))

let zero_encode_stats =
  {
    Encode.nodes = 0;
    elements = 0;
    trie_nodes = 0;
    numeric_nodes = 0;
    max_depth = 0;
    duration_seconds = 0.0;
  }

let of_parts ?(client = default_client_config) ~p ~e ~mapping:map ~seed ~table ?numbers
    () =
  if not (Secshare_field.Prime.is_prime p) then
    Error (Printf.sprintf "p = %d is not prime" p)
  else if e < 1 then Error "e must be >= 1"
  else
    match checked_field_order ~p ~e with
    | Error _ as err -> err
    | Ok _ ->
        let ring = Ring.of_prime_power ~p ~e in
        Ok
          (assemble_local ~client ~ring ~map ~seed ~table ?numbers
             ~encode_stats:zero_encode_stats ())

let create ?config xml =
  match Secshare_xml.Tree.of_string xml with
  | Error msg -> Error ("XML parse error: " ^ msg)
  | Ok tree -> create_tree ?config tree

let create_file ?config path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> create ?config contents
  | exception Sys_error msg -> Error msg

let run_query_on filter ~map ?(engine = Advanced) ?(strictness = Query_common.Strict)
    ?agg ast =
  Client_filter.reset_metrics filter;
  let counters = Client_filter.rpc_counters filter in
  let calls0 = counters.Transport.calls in
  let bytes0 = counters.Transport.bytes_sent + counters.Transport.bytes_received in
  (* one trace per query: the ambient id flows into every operator
     span and rides the frame header of every RPC the query makes *)
  let trace_id = Obs.Trace.genid () in
  let t0 = Unix.gettimeofday () in
  match
    Obs.Trace.with_ambient trace_id (fun () ->
        Obs.Trace.with_span ~kind:Obs.Span.Client "query" (fun () ->
            match (agg, engine) with
            | None, Simple ->
                let nodes, operators =
                  Simple_query.run_explained filter ~mapping:map ~strictness ast
                in
                (Query_common.Nodes nodes, operators)
            | None, Advanced ->
                let nodes, operators =
                  Advanced_query.run_explained filter ~mapping:map ~strictness ast
                in
                (Query_common.Nodes nodes, operators)
            | Some func, Simple ->
                Simple_query.run_value filter ~mapping:map ~strictness ~agg:func ast
            | Some func, Advanced ->
                Advanced_query.run_value filter ~mapping:map ~strictness ~agg:func ast))
  with
  | value, operators ->
      let seconds = Unix.gettimeofday () -. t0 in
      let counters = Client_filter.rpc_counters filter in
      let metrics = Metrics.copy (Client_filter.metrics filter) in
      Obs.Registry.inc obs_client_queries;
      Obs.Histogram.observe obs_query_seconds seconds;
      mirror_query_metrics metrics;
      Ok
        {
          value;
          operators;
          metrics;
          rpc_calls = counters.Transport.calls - calls0;
          rpc_bytes =
            counters.Transport.bytes_sent + counters.Transport.bytes_received - bytes0;
          seconds;
          trace_id;
        }
  | exception Query_common.Query_error msg -> Error msg
  | exception Client_filter.Filter_error msg -> Error ("filter: " ^ msg)

(* Client-side aggregate admission: a [sum]/[avg] is refused before any
   RPC unless the path ends in a plain tag name whose every occurrence
   the encoder proved to be a numeric leaf.  An *unmapped* final name
   is fine — the engine short-circuits it to the empty-set value, the
   same semantics plaintext XPath gives a name the document cannot
   contain. *)
let validate_agg map func (q : Ast.query) =
  match func with
  | Ast.Count -> Ok ()
  | Ast.Sum | Ast.Avg -> (
      match List.rev q.Ast.path with
      | { Ast.test = Ast.Name _; contains = Some _; _ } :: _ ->
          Error
            (Printf.sprintf
               "%s() cannot aggregate over a contains() predicate step"
               (Ast.func_to_string func))
      | { Ast.test = Ast.Name name; _ } :: _ ->
          if Mapping.value map name = None then Ok ()
          else if Mapping.aggregatable_scale map name = None then
            Error
              (Printf.sprintf
                 "tag %S is not aggregatable (not every occurrence is a numeric leaf)"
                 name)
          else Ok ()
      | _ ->
          Error
            (Printf.sprintf "%s() needs a path ending in a tag name"
               (Ast.func_to_string func)))

let rewrite_parsed (q : Ast.query) =
  match Ast.rewrite_contains q.Ast.path with
  | rewritten -> Ok { q with Ast.path = rewritten }
  | exception Invalid_argument msg -> Error msg

let query_ast ?engine ?strictness ?agg t ast =
  run_query_on t.filter ~map:t.map ?engine ?strictness ?agg ast

let query ?engine ?strictness t q =
  match Secshare_xpath.Parser.parse_query q with
  | Error msg -> Error ("query parse error: " ^ msg)
  | Ok parsed -> (
      let admitted =
        match parsed.Ast.func with
        | None -> Ok ()
        | Some func -> validate_agg t.map func parsed
      in
      match admitted with
      | Error _ as e -> e
      | Ok () -> (
          match rewrite_parsed parsed with
          | Error _ as e -> e
          | Ok { Ast.func; path } -> query_ast ?engine ?strictness ?agg:func t path))

let accuracy ?engine t q =
  match query ?engine ~strictness:Query_common.Strict t q with
  | Error _ as e -> e
  | Ok strict -> (
      match query ?engine ~strictness:Query_common.Non_strict t q with
      | Error _ as e -> e
      | Ok loose ->
          let e_size = List.length (result_nodes strict)
          and c_size = List.length (result_nodes loose) in
          if c_size = 0 then Ok 1.0
          else Ok (float_of_int e_size /. float_of_int c_size))

type storage_stats = {
  rows : int;
  data_bytes : int;
  index_bytes : int;
  encode_stats : Encode.stats;
}

let storage_stats t =
  let local = local_exn t "storage_stats" in
  {
    rows = Node_table.row_count local.table;
    data_bytes = Node_table.data_bytes local.table;
    index_bytes = Node_table.index_bytes local.table;
    encode_stats = local.encode_stats;
  }

let mapping t = t.map
let ring t = t.ring
let seed t = t.seed
let client_filter t = t.filter
let table t = (local_exn t "table").table
let numbers_table t = (local_exn t "numbers_table").numbers
let is_remote t = t.local = None
let rpc_counters t = Client_filter.rpc_counters t.filter
let share_cache_stats t = Client_filter.share_cache_stats t.filter
let workers t = Server_filter.workers (local_exn t "workers").server

let serve ?send_timeout t ~path =
  let local = local_exn t "serve" in
  (* session-scoped handlers so a dropped connection takes its open
     cursors with it *)
  Secshare_rpc.Server.start_sessions ?send_timeout ~path
    ~session:(fun () ->
      let on_request, on_close = Server_filter.connection local.server in
      { Secshare_rpc.Server.on_request; on_close })
    ()

let open_cursors t = Server_filter.open_cursors (local_exn t "open_cursors").server
let cursor_stats t = Server_filter.cursor_stats (local_exn t "cursor_stats").server
let sweep_cursors t = Server_filter.sweep_cursors (local_exn t "sweep_cursors").server

let of_transport ?(client = default_client_config) ~p ~e ~mapping ~seed transport =
  if not (Secshare_field.Prime.is_prime p) then
    Error (Printf.sprintf "p = %d is not prime" p)
  else
    match checked_field_order ~p ~e with
    | Error _ as err -> err
    | Ok _ ->
        let ring = Ring.of_prime_power ~p ~e in
        let filter =
          Client_filter.create ring ~seed ~batch_eval:client.rpc_batching
            ~fused_scan:client.rpc_fused_scan ~share_cache:client.share_cache
            transport
        in
        Ok { ring; map = mapping; seed; filter; local = None }

let connect ?(client = default_client_config) ~p ~e ~mapping ~seed ~path () =
  let policy =
    {
      Transport.default_policy with
      Transport.call_timeout = client.timeout;
      max_retries = client.max_retries;
    }
  in
  match Transport.socket ~policy path with
  | Error msg -> Error ("connect: " ^ msg)
  | Ok transport -> of_transport ~client ~p ~e ~mapping ~seed transport

let close t =
  Client_filter.close t.filter;
  match t.local with
  | None -> ()
  | Some local ->
      Server_filter.close local.server;
      Node_table.close local.table;
      Option.iter Node_table.close local.numbers

(* --- bundles: a complete database persisted to a directory --- *)

let bundle_config_string t =
  Printf.sprintf "p = %d\ne = %d\n" t.ring.Ring.characteristic t.ring.Ring.degree

let parse_bundle_config contents =
  let table = Hashtbl.create 4 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line '=' with
        | Some i ->
            let key = String.trim (String.sub line 0 i) in
            let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            Hashtbl.replace table key value
        | None -> ())
    (String.split_on_char '\n' contents);
  match (Hashtbl.find_opt table "p", Hashtbl.find_opt table "e") with
  | Some p, Some e -> (
      match (int_of_string_opt p, int_of_string_opt e) with
      | Some p, Some e -> Ok (p, e)
      | _ -> Error "bundle config: p and e must be integers")
  | _ -> Error "bundle config: missing p or e"

let save_bundle ?durable ?checkpoint_every t ~dir =
  let local = local_exn t "save_bundle" in
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    (* copy the rows into a fresh page file *)
    let file_table =
      Node_table.create_file ?durable ?checkpoint_every (Filename.concat dir "shares.db")
    in
    Node_table.iter local.table ~f:(Node_table.insert file_table);
    Node_table.close file_table;
    Option.iter
      (fun numbers ->
        let file_nums =
          Node_table.create_file ?durable ?checkpoint_every
            (Filename.concat dir "nums.db")
        in
        Node_table.iter numbers ~f:(Node_table.insert file_nums);
        Node_table.close file_nums)
      local.numbers;
    Mapping.save (Filename.concat dir "client.map") t.map;
    Secshare_prg.Seed.save (Filename.concat dir "client.seed") t.seed;
    Out_channel.with_open_text (Filename.concat dir "config") (fun oc ->
        output_string oc (bundle_config_string t))
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let open_bundle ?client ?durable ?checkpoint_every ~dir () =
  match In_channel.with_open_text (Filename.concat dir "config") In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match parse_bundle_config contents with
      | Error _ as e -> e
      | Ok (p, e) -> (
          match Mapping.load (Filename.concat dir "client.map") with
          | Error msg -> Error ("map: " ^ msg)
          | Ok mapping -> (
              match Secshare_prg.Seed.load (Filename.concat dir "client.seed") with
              | Error msg -> Error ("seed: " ^ msg)
              | Ok seed -> (
                  match
                    Node_table.open_file ?durable ?checkpoint_every
                      (Filename.concat dir "shares.db")
                  with
                  | Error msg -> Error ("shares: " ^ msg)
                  | Ok table -> (
                      let nums_path = Filename.concat dir "nums.db" in
                      if not (Sys.file_exists nums_path) then
                        of_parts ?client ~p ~e ~mapping ~seed ~table ()
                      else
                        match
                          Node_table.open_file ?durable ?checkpoint_every nums_path
                        with
                        | Error msg -> Error ("nums: " ^ msg)
                        | Ok numbers ->
                            of_parts ?client ~p ~e ~mapping ~seed ~table ~numbers ())))))
