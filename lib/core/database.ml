module Ring = Secshare_poly.Ring
module Node_table = Secshare_store.Node_table
module Transport = Secshare_rpc.Transport
module Ast = Secshare_xpath.Ast
module Obs = Secshare_obs

type config = {
  p : int;
  e : int;
  trie : Secshare_trie.Expand.mode option;
  seed : Secshare_prg.Seed.t option;
  mapping : [ `From_document | `From_dtd of Secshare_xml.Dtd.t | `Explicit of Mapping.t ];
  page_size : int;
  rpc_batching : bool;
  rpc_fused_scan : bool;
  cursor_ttl : float option;
  max_cursors : int;
  slow_query_ms : float option;
}

let default_config =
  {
    p = 83;
    e = 1;
    trie = None;
    seed = None;
    mapping = `From_document;
    page_size = 8192;
    rpc_batching = true;
    rpc_fused_scan = true;
    cursor_ttl = None;
    max_cursors = 1024;
    slow_query_ms = None;
  }

(* Process-wide client-side query families, mirroring the per-query
   [Metrics.t] deltas into the registry after each query. *)
let obs_client_queries =
  Obs.Registry.counter ~help:"Queries executed by this process's clients."
    "ssdb_client_queries_total"

let obs_query_seconds =
  Obs.Registry.histogram ~help:"End-to-end query latency in seconds."
    "ssdb_client_query_seconds"

let obs_evaluations =
  Obs.Registry.counter ~help:"Containment evaluation pairs (figure 5's quantity)."
    "ssdb_client_evaluations_total"

let obs_equality_tests =
  Obs.Registry.counter ~help:"Equality tests performed."
    "ssdb_client_equality_tests_total"

let obs_reconstructions =
  Obs.Registry.counter ~help:"Full polynomial reconstructions for equality tests."
    "ssdb_client_reconstructions_total"

let obs_nodes_examined =
  Obs.Registry.counter ~help:"Candidate nodes inspected."
    "ssdb_client_nodes_examined_total"

let obs_degenerate_divisions =
  Obs.Registry.counter ~help:"Equality tests aborted on a zero child product."
    "ssdb_client_degenerate_divisions_total"

(* Field-exhaustive on purpose, like [Metrics.add]: a new counter that
   is not mirrored here fails to compile. *)
let mirror_query_metrics
    {
      Metrics.evaluations;
      equality_tests;
      reconstructions;
      nodes_examined;
      degenerate_divisions;
    } =
  Obs.Registry.inc ~by:evaluations obs_evaluations;
  Obs.Registry.inc ~by:equality_tests obs_equality_tests;
  Obs.Registry.inc ~by:reconstructions obs_reconstructions;
  Obs.Registry.inc ~by:nodes_examined obs_nodes_examined;
  Obs.Registry.inc ~by:degenerate_divisions obs_degenerate_divisions

type engine = Simple | Advanced

type t = {
  ring : Ring.t;
  map : Mapping.t;
  seed : Secshare_prg.Seed.t;
  table : Node_table.t;
  server : Server_filter.t;
  filter : Client_filter.t;
  encode_stats : Encode.stats;
}

type query_result = {
  nodes : Secshare_rpc.Protocol.node_meta list;
  metrics : Metrics.t;
  operators : Metrics.op_stats list;
  rpc_calls : int;
  rpc_bytes : int;
  seconds : float;
  trace_id : int64;
}

(* Field orders past this are useless for the scheme (a share stores
   q - 1 packed coefficients) and risk int overflow downstream; reject
   them instead of letting [p^e] wrap around silently. *)
let max_field_order = 1 lsl 20

let checked_field_order ~p ~e =
  let rec go acc i =
    if i = 0 then Ok acc
    else if acc > max_field_order / p then
      Error
        (Printf.sprintf
           "p^e = %d^%d exceeds the safe field-order bound of %d (would overflow)" p e
           max_field_order)
    else go (acc * p) (i - 1)
  in
  go 1 e

let build_mapping config ~q tree =
  let base =
    match config.mapping with
    | `Explicit m -> Ok m
    | `From_dtd dtd -> Mapping.of_dtd ~q dtd
    | `From_document -> Mapping.of_tree ~q tree
  in
  match (base, config.trie) with
  | (Error _ as e), _ -> e
  | (Ok _ as ok), None -> ok
  | Ok m, Some _ -> Mapping.with_trie_alphabet m

let create_tree ?(config = default_config) tree =
  match
    if not (Secshare_field.Prime.is_prime config.p) then
      Error (Printf.sprintf "p = %d is not prime" config.p)
    else if config.e < 1 then Error "e must be >= 1"
    else
      match checked_field_order ~p:config.p ~e:config.e with
      | Error _ as e -> e
      | Ok q -> Ok (Ring.of_prime_power ~p:config.p ~e:config.e, q)
  with
  | Error _ as e -> e
  | Ok (ring, q) -> (
      match build_mapping config ~q tree with
      | Error _ as e -> e
      | Ok map -> (
          let seed =
            match config.seed with
            | Some s -> s
            | None -> Secshare_prg.Seed.generate ()
          in
          let table = Node_table.create ~page_size:config.page_size () in
          match Encode.encode_tree ring ~mapping:map ~seed ~table ?trie:config.trie tree with
          | Error e -> Error (Encode.error_to_string e)
          | Ok encode_stats ->
              let server =
                Server_filter.create ?cursor_ttl:config.cursor_ttl
                  ~max_cursors:config.max_cursors ?slow_query_ms:config.slow_query_ms
                  ring table
              in
              let transport = Transport.local ~handler:(Server_filter.handler server) in
              let filter =
                Client_filter.create ring ~seed ~batch_eval:config.rpc_batching
                  ~fused_scan:config.rpc_fused_scan transport
              in
              Ok { ring; map; seed; table; server; filter; encode_stats }))

let zero_encode_stats =
  {
    Encode.nodes = 0;
    elements = 0;
    trie_nodes = 0;
    max_depth = 0;
    duration_seconds = 0.0;
  }

let of_parts ?(rpc_batching = true) ?(rpc_fused_scan = true) ?cursor_ttl ?max_cursors
    ?slow_query_ms ~p ~e ~mapping:map ~seed ~table () =
  if not (Secshare_field.Prime.is_prime p) then
    Error (Printf.sprintf "p = %d is not prime" p)
  else if e < 1 then Error "e must be >= 1"
  else
    match checked_field_order ~p ~e with
    | Error _ as err -> err
    | Ok _ ->
        let ring = Ring.of_prime_power ~p ~e in
        let server =
          Server_filter.create ?cursor_ttl ?max_cursors ?slow_query_ms ring table
        in
        let transport = Transport.local ~handler:(Server_filter.handler server) in
        let filter =
          Client_filter.create ring ~seed ~batch_eval:rpc_batching
            ~fused_scan:rpc_fused_scan transport
        in
        Ok { ring; map; seed; table; server; filter; encode_stats = zero_encode_stats }

let create ?config xml =
  match Secshare_xml.Tree.of_string xml with
  | Error msg -> Error ("XML parse error: " ^ msg)
  | Ok tree -> create_tree ?config tree

let create_file ?config path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> create ?config contents
  | exception Sys_error msg -> Error msg

let run_query_on filter ~map ?(engine = Advanced) ?(strictness = Query_common.Strict) ast =
  Client_filter.reset_metrics filter;
  let counters = Client_filter.rpc_counters filter in
  let calls0 = counters.Transport.calls in
  let bytes0 = counters.Transport.bytes_sent + counters.Transport.bytes_received in
  (* one trace per query: the ambient id flows into every operator
     span and rides the frame header of every RPC the query makes *)
  let trace_id = Obs.Trace.genid () in
  let t0 = Unix.gettimeofday () in
  match
    Obs.Trace.with_ambient trace_id (fun () ->
        Obs.Trace.with_span ~kind:Obs.Span.Client "query" (fun () ->
            match engine with
            | Simple -> Simple_query.run_explained filter ~mapping:map ~strictness ast
            | Advanced -> Advanced_query.run_explained filter ~mapping:map ~strictness ast))
  with
  | nodes, operators ->
      let seconds = Unix.gettimeofday () -. t0 in
      let counters = Client_filter.rpc_counters filter in
      let metrics = Metrics.copy (Client_filter.metrics filter) in
      Obs.Registry.inc obs_client_queries;
      Obs.Histogram.observe obs_query_seconds seconds;
      mirror_query_metrics metrics;
      Ok
        {
          nodes;
          operators;
          metrics;
          rpc_calls = counters.Transport.calls - calls0;
          rpc_bytes =
            counters.Transport.bytes_sent + counters.Transport.bytes_received - bytes0;
          seconds;
          trace_id;
        }
  | exception Query_common.Query_error msg -> Error msg
  | exception Client_filter.Filter_error msg -> Error ("filter: " ^ msg)

let parse_query q =
  match Secshare_xpath.Parser.parse q with
  | Error msg -> Error ("query parse error: " ^ msg)
  | Ok ast -> (
      match Ast.rewrite_contains ast with
      | rewritten -> Ok rewritten
      | exception Invalid_argument msg -> Error msg)

let query_ast ?engine ?strictness t ast = run_query_on t.filter ~map:t.map ?engine ?strictness ast

let query ?engine ?strictness t q =
  match parse_query q with
  | Error _ as e -> e
  | Ok ast -> query_ast ?engine ?strictness t ast

let accuracy ?engine t q =
  match query ?engine ~strictness:Query_common.Strict t q with
  | Error _ as e -> e
  | Ok strict -> (
      match query ?engine ~strictness:Query_common.Non_strict t q with
      | Error _ as e -> e
      | Ok loose ->
          let e_size = List.length strict.nodes and c_size = List.length loose.nodes in
          if c_size = 0 then Ok 1.0
          else Ok (float_of_int e_size /. float_of_int c_size))

type storage_stats = {
  rows : int;
  data_bytes : int;
  index_bytes : int;
  encode_stats : Encode.stats;
}

let storage_stats t =
  {
    rows = Node_table.row_count t.table;
    data_bytes = Node_table.data_bytes t.table;
    index_bytes = Node_table.index_bytes t.table;
    encode_stats = t.encode_stats;
  }

let mapping t = t.map
let ring t = t.ring
let seed t = t.seed
let client_filter t = t.filter
let table t = t.table

let serve ?send_timeout t ~path =
  (* session-scoped handlers so a dropped connection takes its open
     cursors with it *)
  Secshare_rpc.Server.start_sessions ?send_timeout ~path
    ~session:(fun () ->
      let on_request, on_close = Server_filter.connection t.server in
      { Secshare_rpc.Server.on_request; on_close })
    ()

let open_cursors t = Server_filter.open_cursors t.server
let cursor_stats t = Server_filter.cursor_stats t.server
let sweep_cursors t = Server_filter.sweep_cursors t.server

type session = { s_filter : Client_filter.t; s_map : Mapping.t }

let connect ?(rpc_batching = true) ?(rpc_fused_scan = true) ?timeout ?max_retries ~p ~e
    ~mapping ~seed ~path () =
  if not (Secshare_field.Prime.is_prime p) then
    Error (Printf.sprintf "p = %d is not prime" p)
  else
    match checked_field_order ~p ~e with
    | Error _ as err -> err
    | Ok _ -> (
        let policy =
          {
            Transport.default_policy with
            Transport.call_timeout = timeout;
            max_retries = Option.value max_retries ~default:0;
          }
        in
        match Transport.socket ~policy path with
        | Error msg -> Error ("connect: " ^ msg)
        | Ok transport ->
            let ring = Ring.of_prime_power ~p ~e in
            Ok
              {
                s_filter =
                  Client_filter.create ring ~seed ~batch_eval:rpc_batching
                    ~fused_scan:rpc_fused_scan transport;
                s_map = mapping;
              })

let session_query ?engine ?strictness session q =
  match parse_query q with
  | Error _ as e -> e
  | Ok ast -> run_query_on session.s_filter ~map:session.s_map ?engine ?strictness ast

let session_rpc_counters session = Client_filter.rpc_counters session.s_filter
let session_close session = Client_filter.close session.s_filter
let close t = Node_table.close t.table

(* --- bundles: a complete database persisted to a directory --- *)

let bundle_config_string t =
  Printf.sprintf "p = %d\ne = %d\n" t.ring.Ring.characteristic t.ring.Ring.degree

let parse_bundle_config contents =
  let table = Hashtbl.create 4 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line '=' with
        | Some i ->
            let key = String.trim (String.sub line 0 i) in
            let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            Hashtbl.replace table key value
        | None -> ())
    (String.split_on_char '\n' contents);
  match (Hashtbl.find_opt table "p", Hashtbl.find_opt table "e") with
  | Some p, Some e -> (
      match (int_of_string_opt p, int_of_string_opt e) with
      | Some p, Some e -> Ok (p, e)
      | _ -> Error "bundle config: p and e must be integers")
  | _ -> Error "bundle config: missing p or e"

let save_bundle t ~dir =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    (* copy the rows into a fresh page file *)
    let file_table = Node_table.create_file (Filename.concat dir "shares.db") in
    Node_table.iter t.table ~f:(Node_table.insert file_table);
    Node_table.close file_table;
    Mapping.save (Filename.concat dir "client.map") t.map;
    Secshare_prg.Seed.save (Filename.concat dir "client.seed") t.seed;
    Out_channel.with_open_text (Filename.concat dir "config") (fun oc ->
        output_string oc (bundle_config_string t))
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let open_bundle ?rpc_batching ?rpc_fused_scan ~dir () =
  match In_channel.with_open_text (Filename.concat dir "config") In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match parse_bundle_config contents with
      | Error _ as e -> e
      | Ok (p, e) -> (
          match Mapping.load (Filename.concat dir "client.map") with
          | Error msg -> Error ("map: " ^ msg)
          | Ok mapping -> (
              match Secshare_prg.Seed.load (Filename.concat dir "client.seed") with
              | Error msg -> Error ("seed: " ^ msg)
              | Ok seed -> (
                  match Node_table.open_file (Filename.concat dir "shares.db") with
                  | Error msg -> Error ("shares: " ^ msg)
                  | Ok table ->
                      of_parts ?rpc_batching ?rpc_fused_scan ~p ~e ~mapping ~seed ~table
                        ()))))
