module Protocol = Secshare_rpc.Protocol
module Node_table = Secshare_store.Node_table
module Page = Secshare_store.Page
module Obs = Secshare_obs

(* Cursor-lifecycle metric families.  The gauge is maintained
   incrementally (every insert and removal goes through one pair of
   functions below) so several filter instances in one process — the
   two server parts of a test database — aggregate naturally. *)
let () =
  Obs.Registry.declare ~kind:Obs.Registry.K_counter
    ~help:"Cursors evicted before being drained, by reason."
    "ssdb_server_cursor_evictions_total"

let obs_open_cursors =
  Obs.Registry.gauge ~help:"Server-side cursors currently open."
    "ssdb_server_open_cursors"

let obs_cursors_opened =
  Obs.Registry.counter ~help:"Server-side cursors opened."
    "ssdb_server_cursors_opened_total"

let obs_queries =
  Obs.Registry.counter
    ~help:"Query-opening requests handled (scan_eval and descendants)."
    "ssdb_server_queries_total"

let obs_slow_queries =
  Obs.Registry.counter
    ~help:"Query lifetimes that exceeded the slow-query threshold."
    "ssdb_server_slow_queries_total"

(* A fused scan in flight: what remains to be walked, plus the points
   every emitted row is evaluated at.  Unlike the legacy [Descendants]
   buffer, nothing is materialized up front — the scan resumes from
   the node table one batch at a time (the resumable range-scan API),
   so an abandoned scan pins no row memory. *)
type scan_state = {
  points : int list;
  point_tabs : point_tabs;
      (** per-query evaluation tables, precomputed once per scan *)
  mutable pending_parents : int list;  (** Children_of mode *)
  mutable buffered_rows : Page.row list;  (** children fetched but not yet sent *)
  mutable current_range : (int * int * int) option;
      (** (next_pre, until_pre, below_post); [until_pre = max_int]
          for an unbounded range *)
  mutable pending_ranges : (int * int * int) list;
}

(* The flat-kernel plumbing (DESIGN.md §13): when the ring carries
   byte op-tables (always true for the paper's F_83; any q <= 256), a
   scan precomputes one multiplication-table row per query point and
   every row evaluation becomes an allocation-free Horner pass
   straight over the packed share bytes.  [None] per point marks the
   zero point, which must keep raising exactly like the reference
   path ([Cyclic.eval]) — we defer to it on first use. *)
and point_tabs =
  | Reference  (** no tables: closure-based unpack + eval *)
  | Kernel of Secshare_field.Table.t * Bytes.t option list

type cursor_state =
  | Buffered of Protocol.node_meta list  (** legacy [Descendants] buffer *)
  | Scanning of scan_state

(* Besides its payload, a cursor carries the accounting the slow-query
   log reports when its lifetime ends: nothing here derives from query
   plaintext — opcode names, counts, sizes and times only. *)
type cursor = {
  mutable state : cursor_state;
  mutable last_used : float;
  created : float;
  trace_id : int64;  (** the opener's ambient trace; 0 = untraced *)
  opened_op : string;
  next_op : string;  (** the opcode that drains this cursor *)
  mutable next_calls : int;
  mutable batches : int;
  mutable rows : int;
  mutable resp_bytes : int;  (** approximate response payload bytes *)
}

type cursor_stats = {
  open_cursors : int;
  evicted_cursors : int;  (** removed by TTL, cap pressure, or connection close *)
  expired_cursors : int;  (** the TTL subset of [evicted_cursors] *)
}

type t = {
  ring : Secshare_poly.Ring.t;
  table : Node_table.t;
  cursors : (int, cursor) Hashtbl.t;
  mutable next_cursor : int;
  cursor_ttl : float option;
  max_cursors : int;
  slow_query_ms : float option;
  mutable evicted_total : int;
  mutable expired_total : int;
  now : unit -> float;
  lock : Mutex.t;  (** guards the cursor table and its accounting only *)
  pool : Pool.t;  (** share evaluation fans out here, outside [lock] *)
  manifest : Protocol.manifest_info option;
      (** this server's place in a sharded deployment; [None] answers
          the handshake with the trivial 1-of-1 manifest *)
  numbers : Node_table.t option;
      (** numeric share column (one row per aggregatable leaf); [None]
          rejects [Agg_eval] *)
}

let create ?cursor_ttl ?(max_cursors = 1024) ?slow_query_ms ?(now = Unix.gettimeofday)
    ?(workers = 1) ?manifest ?numbers ring table =
  {
    ring;
    table;
    cursors = Hashtbl.create 16;
    next_cursor = 1;
    cursor_ttl;
    max_cursors = max 1 max_cursors;
    slow_query_ms;
    evicted_total = 0;
    expired_total = 0;
    now;
    lock = Mutex.create ();
    pool = Pool.create ~workers ();
    manifest;
    numbers;
  }

let workers t = Pool.size t.pool
let close t = Pool.close t.pool

let meta_of_row (row : Page.row) =
  { Protocol.pre = row.Page.pre; post = row.Page.post; parent = row.Page.parent }

let kernel t = t.ring.Secshare_poly.Ring.table

(* Reference path: per-row unpack into an int array, then Horner over
   the ring's closure-cached field operations.  Kept as the fallback
   for rings without byte tables (q > 256) and for the zero point,
   whose [Invalid_argument] the kernels must reproduce exactly. *)
let eval_share_ref t (row : Page.row) point =
  let poly = Secshare_poly.Codec.unpack_cyclic t.ring row.Page.share in
  Secshare_poly.Cyclic.eval t.ring poly point

let point_tabs t points =
  match kernel t with
  | None -> Reference
  | Some tab ->
      Kernel
        ( tab,
          List.map
            (fun point ->
              let p = t.ring.Secshare_poly.Ring.normalize point in
              if p = 0 then None
              else Some (Secshare_poly.Flat.point_row tab ~point:p))
            points )

let eval_share t (row : Page.row) point =
  match kernel t with
  | None -> eval_share_ref t row point
  | Some tab ->
      let p = t.ring.Secshare_poly.Ring.normalize point in
      if p = 0 then eval_share_ref t row point
      else
        Secshare_poly.Flat.eval_share tab
          ~mul_row:(Secshare_poly.Flat.point_row tab ~point:p)
          ~n:t.ring.Secshare_poly.Ring.n row.Page.share

let with_lock t f =
  Mutex.lock t.lock;
  Obs.Race_check.acquired "cursor-table";
  Obs.Race_check.access ~write:true "server_filter.cursors";
  Fun.protect
    ~finally:(fun () ->
      Obs.Race_check.released "cursor-table";
      Mutex.unlock t.lock)
    f

type removal_reason = Drained | Client_close | Ttl | Cap | Connection_close

let reason_label = function
  | Drained -> "drained"
  | Client_close -> "client_close"
  | Ttl -> "ttl"
  | Cap -> "cap"
  | Connection_close -> "connection_close"

(* One structured line per query whose lifetime crossed the threshold.
   Everything in it is safe under the information-flow argument
   (DESIGN.md §9): trace id, opcode names, counts, sizes, duration —
   never evaluation points, pre/post numbers, or share values. *)
let maybe_log_slow t ~trace_id ~cursor ~opened_op ~next_op ~next_calls ~batches ~rows
    ~resp_bytes ~duration ~reason =
  match t.slow_query_ms with
  | None -> ()
  | Some threshold_ms ->
      let ms = duration *. 1000.0 in
      if ms >= threshold_ms then begin
        Obs.Registry.inc obs_slow_queries;
        let ops =
          if next_calls = 0 then Printf.sprintf "%s:1" opened_op
          else Printf.sprintf "%s:1,%s:%d" opened_op next_op next_calls
        in
        Obs.Events.info
          "slow-query trace=%016Lx cursor=%s ops=%s batches=%d rows=%d bytes=%d \
           duration_ms=%.1f reason=%s"
          trace_id
          (match cursor with Some id -> string_of_int id | None -> "-")
          ops batches rows resp_bytes ms reason
      end

(* The single removal path: every cursor leaves the table through
   here, so the open-cursor gauge, the per-reason eviction counters
   and the slow-query check can never drift apart. *)
let finish_cursor_locked t id c ~reason =
  Hashtbl.remove t.cursors id;
  Obs.Registry.gauge_add obs_open_cursors (-1);
  (match reason with
  | Ttl | Cap | Connection_close ->
      Obs.Registry.inc
        (Obs.Registry.counter
           ~labels:[ ("reason", reason_label reason) ]
           "ssdb_server_cursor_evictions_total")
  | Drained | Client_close -> ());
  maybe_log_slow t ~trace_id:c.trace_id ~cursor:(Some id) ~opened_op:c.opened_op
    ~next_op:c.next_op ~next_calls:c.next_calls ~batches:c.batches ~rows:c.rows
    ~resp_bytes:c.resp_bytes
    ~duration:(t.now () -. c.created)
    ~reason:(reason_label reason)

(* Drop cursors idle past the TTL.  Called with the lock held, on
   every cursor operation, so a server under any load at all converges
   to zero leaked cursors without a dedicated sweeper thread. *)
let sweep_locked t =
  match t.cursor_ttl with
  | None -> 0
  | Some ttl ->
      let now = t.now () in
      let stale =
        Hashtbl.fold
          (fun id c acc -> if now -. c.last_used > ttl then (id, c) :: acc else acc)
          t.cursors []
      in
      List.iter (fun (id, c) -> finish_cursor_locked t id c ~reason:Ttl) stale;
      let n = List.length stale in
      t.expired_total <- t.expired_total + n;
      t.evicted_total <- t.evicted_total + n;
      n

(* Called with the lock held: make room for one more cursor by
   evicting the least-recently-used one once the cap is reached, so an
   abandoned drain can never pin server memory. *)
let enforce_cap_locked t =
  while Hashtbl.length t.cursors >= t.max_cursors do
    let oldest =
      Hashtbl.fold
        (fun id c acc ->
          match acc with
          | Some (_, best) when best.last_used <= c.last_used -> acc
          | _ -> Some (id, c))
        t.cursors None
    in
    match oldest with
    | None -> ()
    | Some (id, c) ->
        finish_cursor_locked t id c ~reason:Cap;
        t.evicted_total <- t.evicted_total + 1
  done

(* Register a cursor under a fresh id, seeded with the accounting of
   whatever the opening request already returned.  Called with the
   lock held, on the thread that carries the opener's ambient trace. *)
let register_cursor_locked t state ~opened_op ~next_op ~created ~batches ~rows
    ~resp_bytes =
  ignore (sweep_locked t);
  enforce_cap_locked t;
  let id = t.next_cursor in
  t.next_cursor <- t.next_cursor + 1;
  Hashtbl.replace t.cursors id
    {
      state;
      last_used = t.now ();
      created;
      trace_id = Obs.Trace.current_id ();
      opened_op;
      next_op;
      next_calls = 0;
      batches;
      rows;
      resp_bytes;
    };
  Obs.Registry.gauge_add obs_open_cursors 1;
  Obs.Registry.inc obs_cursors_opened;
  id

(* Approximate response payload: 12 bytes of metadata per row plus 4
   per evaluated value — what the slow-query log reports as [bytes].
   Wire-exact sizes live in the server frame-byte counters. *)
let batch_bytes rows =
  List.fold_left (fun acc (_, values) -> acc + 12 + (4 * List.length values)) 0 rows

(* Nested pre-ranges cover the same rows twice.  Subtree ranges either
   nest or are disjoint, so after sorting by [from_pre] a range is
   redundant exactly when it ends before the previously kept one. *)
let dedup_ranges ranges =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ranges in
  let rec keep last_post = function
    | [] -> []
    | (from_pre, below_post) :: rest ->
        if below_post <= last_post then keep last_post rest
        else (from_pre, below_post) :: keep below_post rest
  in
  keep min_int sorted

(* Evaluate one row's share at every point of the scan.  With kernel
   tables the share is never unpacked: each point's precomputed table
   row drives a Horner pass directly over the packed bytes.  Pure:
   reads only the immutable row payload, so it is safe on any pool
   worker. *)
let row_values t (scan : scan_state) (row : Page.row) =
  match (scan.points, scan.point_tabs) with
  | [], _ -> (meta_of_row row, [])
  | points, Kernel (tab, rows_tabs) ->
      let n = t.ring.Secshare_poly.Ring.n in
      ( meta_of_row row,
        List.map2
          (fun point mul_row ->
            match mul_row with
            | Some mul_row ->
                Secshare_poly.Flat.eval_share tab ~mul_row ~n row.Page.share
            | None -> eval_share_ref t row point)
          points rows_tabs )
  | points, Reference ->
      let poly = Secshare_poly.Codec.unpack_cyclic t.ring row.Page.share in
      (meta_of_row row, List.map (Secshare_poly.Cyclic.eval t.ring poly) points)

(* Fan a batch's share evaluations out across the worker pool.  Called
   OUTSIDE the cursor lock: evaluation is the dominant cost of a scan
   and must not serialise concurrent sessions. *)
let eval_rows t scan rows = Pool.map_list t.pool rows ~f:(row_values t scan)

(* Pull up to [max_items] rows out of a scan, advancing its resumable
   position.  Returns the raw rows (unevaluated — see [eval_rows]) and
   whether the scan is done. *)
let scan_collect t (scan : scan_state) ~max_items =
  let taken = ref [] in
  let count = ref 0 in
  let emit row =
    taken := row :: !taken;
    incr count
  in
  let exhausted = ref false in
  while (not !exhausted) && !count < max_items do
    match scan.buffered_rows with
    | row :: rest ->
        scan.buffered_rows <- rest;
        emit row
    | [] -> (
        match scan.current_range with
        | Some (from_pre, until_pre, below_post) ->
            let rows, resume =
              Node_table.scan_range t.table ~from_pre ~below_post
                ~max_rows:(max_items - !count)
            in
            (* Enforce the pre upper bound: subtree ranges are
               pre-contiguous, so the first row at or past [until_pre]
               ends this piece (the rest belongs to another bounded
               piece, served elsewhere). *)
            let truncated = ref false in
            List.iter
              (fun (row : Page.row) ->
                if row.Page.pre >= until_pre then truncated := true
                else if not !truncated then emit row)
              rows;
            scan.current_range <-
              (match resume with
              | Some pre when (not !truncated) && pre < until_pre ->
                  Some (pre, until_pre, below_post)
              | Some _ | None -> None)
        | None -> (
            match (scan.pending_ranges, scan.pending_parents) with
            | range :: rest, _ ->
                scan.current_range <- Some range;
                scan.pending_ranges <- rest
            | [], parent :: rest ->
                scan.pending_parents <- rest;
                scan.buffered_rows <- Node_table.children t.table ~parent
            | [], [] -> exhausted := true))
  done;
  let done_ =
    !exhausted
    || (scan.buffered_rows = [] && scan.current_range = None
       && scan.pending_ranges = [] && scan.pending_parents = [])
  in
  (List.rev !taken, done_)

let handle t (request : Protocol.request) : Protocol.response =
  match request with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Root -> Protocol.Node_opt (Option.map meta_of_row (Node_table.root t.table))
  | Protocol.Children parent ->
      Protocol.Nodes (List.map meta_of_row (Node_table.children t.table ~parent))
  | Protocol.Parent pre ->
      Protocol.Node_opt (Option.map meta_of_row (Node_table.parent_of t.table ~pre))
  | Protocol.Descendants { pre; post } ->
      Obs.Registry.inc obs_queries;
      let started = t.now () in
      (* The server buffers the intermediate result; the client drains
         it one batch at a time (nextNode). *)
      let items =
        List.rev
          (Node_table.fold_descendants t.table ~pre ~post ~init:[] ~f:(fun acc row ->
               meta_of_row row :: acc))
      in
      with_lock t (fun () ->
          Protocol.Cursor
            (register_cursor_locked t (Buffered items) ~opened_op:"descendants"
               ~next_op:"cursor_next" ~created:started ~batches:0 ~rows:0 ~resp_bytes:0))
  | Protocol.Cursor_next { cursor; max_items } ->
      with_lock t (fun () ->
          ignore (sweep_locked t);
          match Hashtbl.find_opt t.cursors cursor with
          | None -> Protocol.Error_msg (Printf.sprintf "unknown cursor %d" cursor)
          | Some ({ state = Scanning _; _ } as c) ->
              c.last_used <- t.now ();
              Protocol.Error_msg
                (Printf.sprintf "cursor %d is a scan cursor (use Scan_next)" cursor)
          | Some ({ state = Buffered items; _ } as c) ->
              let max_items = max 1 max_items in
              let rec take n items =
                if n = 0 then ([], items)
                else
                  match items with
                  | [] -> ([], [])
                  | x :: rest ->
                      let taken, remaining = take (n - 1) rest in
                      (x :: taken, remaining)
              in
              let batch, remaining = take max_items items in
              c.state <- Buffered remaining;
              c.last_used <- t.now ();
              c.next_calls <- c.next_calls + 1;
              c.batches <- c.batches + 1;
              c.rows <- c.rows + List.length batch;
              c.resp_bytes <- c.resp_bytes + (12 * List.length batch);
              let exhausted = remaining = [] in
              if exhausted then finish_cursor_locked t cursor c ~reason:Drained;
              Protocol.Batch (batch, exhausted))
  | Protocol.Scan_eval { target; points; max_items } ->
      Obs.Registry.inc obs_queries;
      let started = t.now () in
      let scan =
        match target with
        | Protocol.Children_of parents ->
            {
              points;
              point_tabs = point_tabs t points;
              pending_parents = List.sort_uniq compare parents;
              buffered_rows = [];
              current_range = None;
              pending_ranges = [];
            }
        | Protocol.Pre_ranges ranges ->
            {
              points;
              point_tabs = point_tabs t points;
              pending_parents = [];
              buffered_rows = [];
              current_range = None;
              pending_ranges =
                List.map (fun (a, b) -> (a, max_int, b)) (dedup_ranges ranges);
            }
        | Protocol.Bounded_pre_ranges ranges ->
            (* Router-issued pieces: already disjoint, just ordered;
               empty windows are dropped rather than scanned. *)
            {
              points;
              point_tabs = point_tabs t points;
              pending_parents = [];
              buffered_rows = [];
              current_range = None;
              pending_ranges =
                List.filter
                  (fun (a, u, _) -> a < u)
                  (List.sort compare
                     (List.map (fun (a, u, b) -> (a, u, b)) ranges));
            }
      in
      (* The scan is still private (no cursor registered), and table
         reads are latch-striped, so both the row collection and the
         pool-parallel evaluation run without the cursor lock; only
         cursor registration takes it. *)
      let rows_raw, done_ = scan_collect t scan ~max_items:(max 1 max_items) in
      let rows = eval_rows t scan rows_raw in
      let bytes = batch_bytes rows in
      if done_ then begin
        (* a one-shot scan never registers a cursor, so its
           slow-query check happens inline *)
        maybe_log_slow t
          ~trace_id:(Obs.Trace.current_id ())
          ~cursor:None ~opened_op:"scan_eval" ~next_op:"scan_next" ~next_calls:0
          ~batches:1 ~rows:(List.length rows) ~resp_bytes:bytes
          ~duration:(t.now () -. started)
          ~reason:"drained";
        Protocol.Scan_batch { rows; cursor = None }
      end
      else
        with_lock t (fun () ->
            let id =
              register_cursor_locked t (Scanning scan) ~opened_op:"scan_eval"
                ~next_op:"scan_next" ~created:started ~batches:1
                ~rows:(List.length rows) ~resp_bytes:bytes
            in
            Protocol.Scan_batch { rows; cursor = Some id })
  | Protocol.Scan_next { cursor; max_items } -> (
      (* Phase 1 (locked): advance the scan position and collect raw
         rows.  Cursor affinity — a cursor is only ever drained by the
         connection that opened it — means no two drains race on one
         scan state; the lock protects the cursor table itself. *)
      let step =
        with_lock t (fun () ->
            ignore (sweep_locked t);
            match Hashtbl.find_opt t.cursors cursor with
            | None -> Error (Printf.sprintf "unknown cursor %d" cursor)
            | Some { state = Buffered _; _ } ->
                Error (Printf.sprintf "cursor %d is a batch cursor (use Cursor_next)" cursor)
            | Some ({ state = Scanning scan; _ } as c) ->
                c.last_used <- t.now ();
                Ok (scan, scan_collect t scan ~max_items:(max 1 max_items)))
      in
      match step with
      | Error msg -> Protocol.Error_msg msg
      | Ok (scan, (rows_raw, done_)) ->
          (* Phase 2 (unlocked): pool-parallel share evaluation. *)
          let rows = eval_rows t scan rows_raw in
          (* Phase 3 (locked): accounting, and the single removal path
             when the scan drained.  The cursor may have been evicted
             (TTL/cap/connection close) while we evaluated; eviction
             already closed its accounting lifetime, so skip it here. *)
          with_lock t (fun () ->
              match Hashtbl.find_opt t.cursors cursor with
              | Some ({ state = Scanning _; _ } as c) ->
                  c.next_calls <- c.next_calls + 1;
                  c.batches <- c.batches + 1;
                  c.rows <- c.rows + List.length rows;
                  c.resp_bytes <- c.resp_bytes + batch_bytes rows;
                  if done_ then finish_cursor_locked t cursor c ~reason:Drained
              | Some _ | None -> ());
          Protocol.Scan_batch
            { rows; cursor = (if done_ then None else Some cursor) })
  | Protocol.Cursor_close cursor ->
      with_lock t (fun () ->
          (match Hashtbl.find_opt t.cursors cursor with
          | Some c -> finish_cursor_locked t cursor c ~reason:Client_close
          | None -> ());
          Protocol.Pong)
  | Protocol.Eval { pre; point } -> (
      match Node_table.find_by_pre t.table pre with
      | None -> Protocol.Error_msg (Printf.sprintf "unknown node pre=%d" pre)
      | Some row -> Protocol.Value (eval_share t row point))
  | Protocol.Eval_batch { pres; point } -> (
      (* row lookups stay on the handler thread (cheap, latch-striped);
         the evaluations fan out across the pool *)
      match
        List.map
          (fun pre ->
            match Node_table.find_by_pre t.table pre with
            | None -> failwith (Printf.sprintf "unknown node pre=%d" pre)
            | Some row -> row)
          pres
      with
      | rows ->
          (* one evaluation table for the whole batch; each pool task
             is then a single allocation-free Horner pass *)
          let eval_one =
            match kernel t with
            | Some tab
              when t.ring.Secshare_poly.Ring.normalize point <> 0 ->
                let p = t.ring.Secshare_poly.Ring.normalize point in
                let mul_row = Secshare_poly.Flat.point_row tab ~point:p in
                let n = t.ring.Secshare_poly.Ring.n in
                fun (row : Page.row) ->
                  Secshare_poly.Flat.eval_share tab ~mul_row ~n row.Page.share
            | Some _ | None -> fun row -> eval_share_ref t row point
          in
          Protocol.Values (Pool.map_list t.pool rows ~f:eval_one)
      | exception Failure msg -> Protocol.Error_msg msg)
  | Protocol.Share pre -> (
      match Node_table.find_by_pre t.table pre with
      | None -> Protocol.Error_msg (Printf.sprintf "unknown node pre=%d" pre)
      | Some row -> Protocol.Share_data row.Page.share)
  | Protocol.Shares pres -> (
      match
        List.map
          (fun pre ->
            match Node_table.find_by_pre t.table pre with
            | None -> failwith (Printf.sprintf "unknown node pre=%d" pre)
            | Some row -> row.Page.share)
          pres
      with
      | shares -> Protocol.Shares_data shares
      | exception Failure msg -> Protocol.Error_msg msg)
  | Protocol.Table_stats ->
      Protocol.Stats
        {
          Protocol.rows = Node_table.row_count t.table;
          data_bytes = Node_table.data_bytes t.table;
          index_bytes = Node_table.index_bytes t.table;
        }
  | Protocol.Manifest ->
      Protocol.Manifest_data
        (match t.manifest with
        | Some m -> m
        | None ->
            (* unsharded: one shard holding everything, one partition *)
            {
              Protocol.shard_id = 1;
              shards = 1;
              threshold = 1;
              total_rows = Node_table.row_count t.table;
              bounds = [ 1 ];
            })
  | Protocol.Agg_eval { pres } -> (
      (* Fold numeric shares into one field element.  The sum is an
         additive share, uniformly random on its own — but it must
         still never reach logs or error text, only the wire. *)
      match t.numbers with
      | None -> Protocol.Error_msg "this server has no numeric share column"
      | Some numbers ->
          let rec fold acc count = function
            | [] -> Protocol.Agg_partial { count; sum = acc }
            | pre :: rest -> (
                match Node_table.find_by_pre numbers pre with
                | None ->
                    Protocol.Error_msg
                      (Printf.sprintf "no numeric share for node pre=%d" pre)
                | Some row -> (
                    match Numeric.of_bytes row.Page.share with
                    | v -> fold (Numeric.add acc v) (count + 1) rest
                    | exception Invalid_argument _ ->
                        Protocol.Error_msg
                          (Printf.sprintf "corrupt numeric share at pre=%d" pre)))
          in
          fold 0 0 pres)

let handler t request =
  match handle t request with
  | response -> response
  | exception exn -> Protocol.Error_msg (Printexc.to_string exn)

(* A per-connection view: remembers which cursors this connection
   opened so they can be evicted the moment it goes away, instead of
   lingering until the TTL sweep. *)
let connection t =
  let owned = ref [] in
  let on_request request =
    let response = handler t request in
    (match (request, response) with
    | Protocol.Descendants _, Protocol.Cursor id -> owned := id :: !owned
    | Protocol.Scan_eval _, Protocol.Scan_batch { cursor = Some id; _ } ->
        if not (List.mem id !owned) then owned := id :: !owned
    | _ -> ());
    response
  in
  let on_close () =
    with_lock t (fun () ->
        List.iter
          (fun id ->
            match Hashtbl.find_opt t.cursors id with
            | Some c ->
                finish_cursor_locked t id c ~reason:Connection_close;
                t.evicted_total <- t.evicted_total + 1
            | None -> ())
          !owned;
        owned := [])
  in
  (on_request, on_close)

let sweep_cursors t = with_lock t (fun () -> sweep_locked t)
let open_cursors t = with_lock t (fun () -> Hashtbl.length t.cursors)

let cursor_stats t =
  with_lock t (fun () ->
      {
        open_cursors = Hashtbl.length t.cursors;
        evicted_cursors = t.evicted_total;
        expired_cursors = t.expired_total;
      })
