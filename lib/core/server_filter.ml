module Protocol = Secshare_rpc.Protocol
module Node_table = Secshare_store.Node_table
module Page = Secshare_store.Page

(* A fused scan in flight: what remains to be walked, plus the points
   every emitted row is evaluated at.  Unlike the legacy [Descendants]
   buffer, nothing is materialized up front — the scan resumes from
   the node table one batch at a time (the resumable range-scan API),
   so an abandoned scan pins no row memory. *)
type scan_state = {
  points : int list;
  mutable pending_parents : int list;  (** Children_of mode *)
  mutable buffered_rows : Page.row list;  (** children fetched but not yet sent *)
  mutable current_range : (int * int) option;  (** (next_pre, below_post) *)
  mutable pending_ranges : (int * int) list;
}

type cursor_state =
  | Buffered of Protocol.node_meta list  (** legacy [Descendants] buffer *)
  | Scanning of scan_state

type cursor = {
  mutable state : cursor_state;
  mutable last_used : float;
}

type cursor_stats = {
  open_cursors : int;
  evicted_cursors : int;  (** removed by TTL, cap pressure, or connection close *)
  expired_cursors : int;  (** the TTL subset of [evicted_cursors] *)
}

type t = {
  ring : Secshare_poly.Ring.t;
  table : Node_table.t;
  cursors : (int, cursor) Hashtbl.t;
  mutable next_cursor : int;
  cursor_ttl : float option;
  max_cursors : int;
  mutable evicted_total : int;
  mutable expired_total : int;
  now : unit -> float;
  lock : Mutex.t;
}

let create ?cursor_ttl ?(max_cursors = 1024) ?(now = Unix.gettimeofday) ring table =
  {
    ring;
    table;
    cursors = Hashtbl.create 16;
    next_cursor = 1;
    cursor_ttl;
    max_cursors = max 1 max_cursors;
    evicted_total = 0;
    expired_total = 0;
    now;
    lock = Mutex.create ();
  }

let meta_of_row (row : Page.row) =
  { Protocol.pre = row.Page.pre; post = row.Page.post; parent = row.Page.parent }

let eval_share t (row : Page.row) point =
  let poly = Secshare_poly.Codec.unpack_cyclic t.ring row.Page.share in
  Secshare_poly.Cyclic.eval t.ring poly point

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Drop cursors idle past the TTL.  Called with the lock held, on
   every cursor operation, so a server under any load at all converges
   to zero leaked cursors without a dedicated sweeper thread. *)
let sweep_locked t =
  match t.cursor_ttl with
  | None -> 0
  | Some ttl ->
      let now = t.now () in
      let stale =
        Hashtbl.fold
          (fun id c acc -> if now -. c.last_used > ttl then id :: acc else acc)
          t.cursors []
      in
      List.iter (Hashtbl.remove t.cursors) stale;
      let n = List.length stale in
      t.expired_total <- t.expired_total + n;
      t.evicted_total <- t.evicted_total + n;
      n

(* Called with the lock held: make room for one more cursor by
   evicting the least-recently-used one once the cap is reached, so an
   abandoned drain can never pin server memory. *)
let enforce_cap_locked t =
  while Hashtbl.length t.cursors >= t.max_cursors do
    let oldest =
      Hashtbl.fold
        (fun id c acc ->
          match acc with
          | Some (_, best) when best.last_used <= c.last_used -> acc
          | _ -> Some (id, c))
        t.cursors None
    in
    match oldest with
    | None -> ()
    | Some (id, _) ->
        Hashtbl.remove t.cursors id;
        t.evicted_total <- t.evicted_total + 1
  done

(* Register a cursor under a fresh id.  Called with the lock held. *)
let register_cursor_locked t state =
  ignore (sweep_locked t);
  enforce_cap_locked t;
  let id = t.next_cursor in
  t.next_cursor <- t.next_cursor + 1;
  Hashtbl.replace t.cursors id { state; last_used = t.now () };
  id

(* Nested pre-ranges cover the same rows twice.  Subtree ranges either
   nest or are disjoint, so after sorting by [from_pre] a range is
   redundant exactly when it ends before the previously kept one. *)
let dedup_ranges ranges =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ranges in
  let rec keep last_post = function
    | [] -> []
    | (from_pre, below_post) :: rest ->
        if below_post <= last_post then keep last_post rest
        else (from_pre, below_post) :: keep below_post rest
  in
  keep min_int sorted

let eval_row t (row : Page.row) points = List.map (eval_share t row) points

(* Pull up to [max_items] rows out of a scan, advancing its resumable
   position.  Returns the evaluated rows and whether the scan is done. *)
let scan_step t (scan : scan_state) ~max_items =
  let taken = ref [] in
  let count = ref 0 in
  let emit row =
    taken := (meta_of_row row, eval_row t row scan.points) :: !taken;
    incr count
  in
  let exhausted = ref false in
  while (not !exhausted) && !count < max_items do
    match scan.buffered_rows with
    | row :: rest ->
        scan.buffered_rows <- rest;
        emit row
    | [] -> (
        match scan.current_range with
        | Some (from_pre, below_post) ->
            let rows, resume =
              Node_table.scan_range t.table ~from_pre ~below_post
                ~max_rows:(max_items - !count)
            in
            List.iter emit rows;
            scan.current_range <-
              (match resume with
              | Some pre -> Some (pre, below_post)
              | None -> None)
        | None -> (
            match (scan.pending_ranges, scan.pending_parents) with
            | range :: rest, _ ->
                scan.current_range <- Some range;
                scan.pending_ranges <- rest
            | [], parent :: rest ->
                scan.pending_parents <- rest;
                scan.buffered_rows <- Node_table.children t.table ~parent
            | [], [] -> exhausted := true))
  done;
  let done_ =
    !exhausted
    || (scan.buffered_rows = [] && scan.current_range = None
       && scan.pending_ranges = [] && scan.pending_parents = [])
  in
  (List.rev !taken, done_)

let scan_batch t scan ~max_items ~cursor_of_remainder =
  let max_items = max 1 max_items in
  let rows, done_ = scan_step t scan ~max_items in
  let cursor = if done_ then None else Some (cursor_of_remainder ()) in
  Protocol.Scan_batch { rows; cursor }

let handle t (request : Protocol.request) : Protocol.response =
  match request with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Root -> Protocol.Node_opt (Option.map meta_of_row (Node_table.root t.table))
  | Protocol.Children parent ->
      Protocol.Nodes (List.map meta_of_row (Node_table.children t.table ~parent))
  | Protocol.Parent pre ->
      Protocol.Node_opt (Option.map meta_of_row (Node_table.parent_of t.table ~pre))
  | Protocol.Descendants { pre; post } ->
      (* The server buffers the intermediate result; the client drains
         it one batch at a time (nextNode). *)
      let items =
        List.rev
          (Node_table.fold_descendants t.table ~pre ~post ~init:[] ~f:(fun acc row ->
               meta_of_row row :: acc))
      in
      with_lock t (fun () -> Protocol.Cursor (register_cursor_locked t (Buffered items)))
  | Protocol.Cursor_next { cursor; max_items } ->
      with_lock t (fun () ->
          ignore (sweep_locked t);
          match Hashtbl.find_opt t.cursors cursor with
          | None -> Protocol.Error_msg (Printf.sprintf "unknown cursor %d" cursor)
          | Some ({ state = Scanning _; _ } as c) ->
              c.last_used <- t.now ();
              Protocol.Error_msg
                (Printf.sprintf "cursor %d is a scan cursor (use Scan_next)" cursor)
          | Some ({ state = Buffered items; _ } as c) ->
              let max_items = max 1 max_items in
              let rec take n items =
                if n = 0 then ([], items)
                else
                  match items with
                  | [] -> ([], [])
                  | x :: rest ->
                      let taken, remaining = take (n - 1) rest in
                      (x :: taken, remaining)
              in
              let batch, remaining = take max_items items in
              c.state <- Buffered remaining;
              c.last_used <- t.now ();
              let exhausted = remaining = [] in
              if exhausted then Hashtbl.remove t.cursors cursor;
              Protocol.Batch (batch, exhausted))
  | Protocol.Scan_eval { target; points; max_items } ->
      let scan =
        match target with
        | Protocol.Children_of parents ->
            {
              points;
              pending_parents = List.sort_uniq compare parents;
              buffered_rows = [];
              current_range = None;
              pending_ranges = [];
            }
        | Protocol.Pre_ranges ranges ->
            {
              points;
              pending_parents = [];
              buffered_rows = [];
              current_range = None;
              pending_ranges = dedup_ranges ranges;
            }
      in
      (* evaluation happens outside the lock would be nicer, but scans
         hold only index positions and the table is append-only while
         serving, so the critical section stays short in practice *)
      with_lock t (fun () ->
          scan_batch t scan ~max_items ~cursor_of_remainder:(fun () ->
              register_cursor_locked t (Scanning scan)))
  | Protocol.Scan_next { cursor; max_items } ->
      with_lock t (fun () ->
          ignore (sweep_locked t);
          match Hashtbl.find_opt t.cursors cursor with
          | None -> Protocol.Error_msg (Printf.sprintf "unknown cursor %d" cursor)
          | Some { state = Buffered _; _ } ->
              Protocol.Error_msg
                (Printf.sprintf "cursor %d is a batch cursor (use Cursor_next)" cursor)
          | Some ({ state = Scanning scan; _ } as c) ->
              c.last_used <- t.now ();
              let response =
                scan_batch t scan ~max_items ~cursor_of_remainder:(fun () -> cursor)
              in
              (match response with
              | Protocol.Scan_batch { cursor = None; _ } -> Hashtbl.remove t.cursors cursor
              | _ -> ());
              response)
  | Protocol.Cursor_close cursor ->
      with_lock t (fun () ->
          Hashtbl.remove t.cursors cursor;
          Protocol.Pong)
  | Protocol.Eval { pre; point } -> (
      match Node_table.find_by_pre t.table pre with
      | None -> Protocol.Error_msg (Printf.sprintf "unknown node pre=%d" pre)
      | Some row -> Protocol.Value (eval_share t row point))
  | Protocol.Eval_batch { pres; point } -> (
      match
        List.map
          (fun pre ->
            match Node_table.find_by_pre t.table pre with
            | None -> failwith (Printf.sprintf "unknown node pre=%d" pre)
            | Some row -> eval_share t row point)
          pres
      with
      | values -> Protocol.Values values
      | exception Failure msg -> Protocol.Error_msg msg)
  | Protocol.Share pre -> (
      match Node_table.find_by_pre t.table pre with
      | None -> Protocol.Error_msg (Printf.sprintf "unknown node pre=%d" pre)
      | Some row -> Protocol.Share_data row.Page.share)
  | Protocol.Shares pres -> (
      match
        List.map
          (fun pre ->
            match Node_table.find_by_pre t.table pre with
            | None -> failwith (Printf.sprintf "unknown node pre=%d" pre)
            | Some row -> row.Page.share)
          pres
      with
      | shares -> Protocol.Shares_data shares
      | exception Failure msg -> Protocol.Error_msg msg)
  | Protocol.Table_stats ->
      Protocol.Stats
        {
          Protocol.rows = Node_table.row_count t.table;
          data_bytes = Node_table.data_bytes t.table;
          index_bytes = Node_table.index_bytes t.table;
        }

let handler t request =
  match handle t request with
  | response -> response
  | exception exn -> Protocol.Error_msg (Printexc.to_string exn)

(* A per-connection view: remembers which cursors this connection
   opened so they can be evicted the moment it goes away, instead of
   lingering until the TTL sweep. *)
let connection t =
  let owned = ref [] in
  let on_request request =
    let response = handler t request in
    (match (request, response) with
    | Protocol.Descendants _, Protocol.Cursor id -> owned := id :: !owned
    | Protocol.Scan_eval _, Protocol.Scan_batch { cursor = Some id; _ } ->
        if not (List.mem id !owned) then owned := id :: !owned
    | _ -> ());
    response
  in
  let on_close () =
    with_lock t (fun () ->
        List.iter
          (fun id ->
            if Hashtbl.mem t.cursors id then begin
              Hashtbl.remove t.cursors id;
              t.evicted_total <- t.evicted_total + 1
            end)
          !owned;
        owned := [])
  in
  (on_request, on_close)

let sweep_cursors t = with_lock t (fun () -> sweep_locked t)
let open_cursors t = with_lock t (fun () -> Hashtbl.length t.cursors)

let cursor_stats t =
  with_lock t (fun () ->
      {
        open_cursors = Hashtbl.length t.cursors;
        evicted_cursors = t.evicted_total;
        expired_cursors = t.expired_total;
      })
