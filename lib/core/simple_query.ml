module Ast = Secshare_xpath.Ast
open Query_common

(* SimpleQuery as a plan lowering: each step becomes an axis scan, a
   dedup, and (for a name step) the step's single test.  No look-ahead
   — the lowered plan never inspects later steps.

   With the fused protocol the non-strict containment point rides
   inside the scan ([Scan { eval = Some _ }]); otherwise it lowers to
   a separate [Filter_containment] round trip after the dedup, which
   reproduces the engine's historical dedup-then-test evaluation
   counts.  The strict test is always a separate [Filter_equality]:
   the old engine ran no containment sieve before it, and fusing one
   in would change the cost model. *)
let lower ?agg ~fused ~mapping ~strictness query =
  if query = [] then raise (Query_error "empty query");
  let step_ops ~first (step : Ast.step) =
    let name_point =
      match step.Ast.test with
      | Ast.Name name -> Some (map_point mapping name)
      | Ast.Any | Ast.Parent -> None
    in
    let fused_eval =
      match (strictness, name_point) with
      | Non_strict, Some point when fused -> Some point
      | _ -> None
    in
    let test_ops =
      match (name_point, strictness) with
      | None, _ -> []
      | Some _, Non_strict when fused_eval <> None -> []
      | Some point, Non_strict -> [ Plan.Filter_containment { points = [ point ] } ]
      | Some point, Strict -> [ Plan.Filter_equality { point } ]
    in
    match (step.Ast.test, step.Ast.axis) with
    | Ast.Parent, _ -> [ Plan.Parent_step; Plan.Dedup ]
    | _, Ast.Child ->
        let axis = if first then Plan.Root_scan else Plan.Child_scan in
        (Plan.Scan { axis; eval = fused_eval } :: Plan.Dedup :: test_ops)
    | _, Ast.Descendant ->
        (* a first [//] descends from the virtual document node, so the
           root itself is a candidate: seed the scan with the root and
           include it *)
        let prefix =
          if first then [ Plan.Scan { axis = Plan.Root_scan; eval = None } ] else []
        in
        prefix
        @ (Plan.Scan
             { axis = Plan.Descendant_scan { include_self = first }; eval = fused_eval }
          :: Plan.Dedup :: test_ops)
  in
  let rec go ~first = function
    | [] -> []
    | step :: rest -> step_ops ~first step @ go ~first:false rest
  in
  let path_ops = go ~first:true query in
  match agg with
  | None -> path_ops
  | Some func ->
      path_ops @ [ Plan.Aggregate { func; scale = agg_scale mapping ~func query } ]

let all_names_mapped ~mapping query =
  List.for_all (fun n -> Mapping.value mapping n <> None) (Ast.name_tests query)

let run_explained filter ~mapping ~strictness query =
  if query = [] then raise (Query_error "empty query");
  if not (all_names_mapped ~mapping query) then ([], [])
  else begin
    let plan =
      lower ~fused:(Client_filter.fused_scan filter) ~mapping ~strictness query
    in
    let ops = Operator.build filter plan in
    let metas = Operator.drain ops in
    (sort_dedup metas, Operator.stats_list ops)
  end

let run filter ~mapping ~strictness query =
  fst (run_explained filter ~mapping ~strictness query)

let run_value filter ~mapping ~strictness ~agg query =
  if query = [] then raise (Query_error "empty query");
  if not (all_names_mapped ~mapping query) then (empty_agg_value agg, [])
  else begin
    let plan =
      lower ~agg ~fused:(Client_filter.fused_scan filter) ~mapping ~strictness query
    in
    let ops = Operator.build filter plan in
    ignore (Operator.drain ops : _ list);
    match List.rev ops with
    | sink :: _ -> (
        match Operator.agg_value sink with
        | Some value -> (value, Operator.stats_list ops)
        | None -> raise (Query_error "aggregate sink produced no value"))
    | [] -> raise (Query_error "empty plan")
  end
