module Protocol = Secshare_rpc.Protocol
module Ast = Secshare_xpath.Ast
open Query_common

(* Candidates reached from [frontier] along the step's axis.  [first]
   marks the first step, whose implicit context is the virtual
   document node (parent of the root). *)
let candidates filter ~first frontier (step : Ast.step) =
  match (step.Ast.test, step.Ast.axis) with
  | Ast.Parent, _ -> parents_of filter frontier
  | _, Ast.Child ->
      if first then Option.to_list (Client_filter.root filter)
      else
        sort_dedup
          (List.concat_map
             (fun (m : Protocol.node_meta) ->
               Client_filter.children filter ~pre:m.Protocol.pre)
             frontier)
  | _, Ast.Descendant ->
      let sources =
        if first then Option.to_list (Client_filter.root filter) else frontier
      in
      (* strict descendants of every frontier node; the first step's
         sources (the root) are themselves candidates since they are
         descendants of the document node *)
      let acc = ref (if first then sources else []) in
      List.iter
        (fun source ->
          Client_filter.iter_descendants filter source ~f:(fun m -> acc := m :: !acc))
        sources;
      sort_dedup !acc

let apply_test filter ~mapping ~strictness metas (step : Ast.step) =
  match step.Ast.test with
  | Ast.Any | Ast.Parent -> metas
  | Ast.Name name -> (
      let point = map_point mapping name in
      match strictness with
      | Non_strict -> Client_filter.containment_batch filter metas ~point
      | Strict -> List.filter (fun m -> Client_filter.equality filter m ~point) metas)

let run filter ~mapping ~strictness query =
  if query = [] then raise (Query_error "empty query");
  let all_names_mapped =
    List.for_all (fun n -> Mapping.value mapping n <> None) (Ast.name_tests query)
  in
  let rec go frontier ~first = function
    | [] -> frontier
    | step :: rest ->
        let expanded = candidates filter ~first frontier step in
        let filtered = apply_test filter ~mapping ~strictness expanded step in
        go (sort_dedup filtered) ~first:false rest
  in
  if not all_names_mapped then []
  else go [] ~first:true query
