(** The streaming-execution plan IR.

    A plan is a linear chain of batch-pull operators lowered from an
    XPath AST by {!Simple_query.lower} / {!Advanced_query.lower} and
    executed by {!Operator.build}.  It is a physical plan: whether a
    name test is fused into its axis scan (one [Scan_eval] round trip)
    or runs as a separate filter was already decided during lowering,
    so printing the plan shows exactly what will execute. *)

type axis_scan =
  | Root_scan  (** the document root (children of the virtual node 0) *)
  | Child_scan  (** children of every input node *)
  | Descendant_scan of { include_self : bool }
      (** descendants of every input node; with [include_self] the
          input nodes themselves are also candidates (first [//] step) *)

type op =
  | Scan of { axis : axis_scan; eval : int option }
      (** [eval]: a containment point fused into the scan ([Scan_eval]) *)
  | Pruned_scan of { prune : int list; include_self : bool }
      (** look-ahead descendant walk: only branches whose subtree
          contains every prune point are entered *)
  | Parent_step
  | Filter_containment of { points : int list }
      (** one batched round trip per point, nodes drop out at the
          first failing point *)
  | Filter_equality of { point : int }
  | Dedup
  | Limit of int
  | Aggregate of { func : Secshare_xpath.Ast.agg_func; scale : int }
      (** terminal sink: fold the matched set into one number —
          [Count] locally, [Sum]/[Avg] via a single constant-size
          [Agg_eval] over the numeric share column *)

type t = op list

val op_to_string : op -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
