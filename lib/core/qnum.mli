(** Exact rationals for aggregate results.

    A [sum] over fixed-point values with [scale] fractional digits is
    the integer sum over 10^scale; an [avg] divides by the match count
    as well.  Keeping the result an exact normalized fraction makes
    aggregate answers comparable bit-for-bit against the plaintext
    {!Reference} fold — no float rounding anywhere. *)

type t = private { num : int; den : int }
(** Normalized: [den > 0], [gcd (abs num) den = 1]. *)

val make : int -> int -> t
(** [make num den]. @raise Division_by_zero when [den = 0]. *)

val zero : t
val of_int : int -> t

val pow10 : int -> int
(** 10^k for k in [0, 18]. *)

val of_scaled : int -> scale:int -> t
(** The fixed-point integer [v] with [scale] fractional digits, i.e.
    [v / 10^scale]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val add : t -> t -> t
val to_float : t -> float

val to_string : t -> string
(** Exact decimal ("12", "-3.50") whenever the denominator divides a
    power of ten, otherwise "num/den". *)

val pp : Format.formatter -> t -> unit
