(** The server half of the filter (paper §5.2): answers protocol
    requests from the node table.

    The server sees only [pre]/[post]/[parent] numbers and share
    polynomials; it never learns tag names, mapped values or which tag
    a query is about (it evaluates shares at client-supplied field
    points, which are themselves meaningless without the map).

    Cursors implement the [nextNode()] pipeline: a [Descendants]
    request opens a server-side scan buffer; the client drains it in
    small batches so it holds only one batch at a time. *)

type t

val create : Secshare_poly.Ring.t -> Secshare_store.Node_table.t -> t

val handler : t -> Secshare_rpc.Protocol.request -> Secshare_rpc.Protocol.response
(** Total: errors come back as [Error_msg]. *)

val open_cursors : t -> int
(** Number of cursors currently open (for leak tests). *)
