(** The server half of the filter (paper §5.2): answers protocol
    requests from the node table.

    The server sees only [pre]/[post]/[parent] numbers and share
    polynomials; it never learns tag names, mapped values or which tag
    a query is about (it evaluates shares at client-supplied field
    points, which are themselves meaningless without the map).

    Cursors implement the [nextNode()] pipeline: a [Descendants]
    request opens a server-side scan buffer; the client drains it in
    small batches so it holds only one batch at a time.  Abandoned
    cursors cannot accumulate: each cursor carries a last-used
    timestamp and is evicted once idle past [cursor_ttl] (swept on
    every cursor operation or via {!sweep_cursors}); the total is
    capped at [max_cursors] with least-recently-used eviction; and a
    {!connection}-scoped handler evicts a connection's cursors the
    moment it closes. *)

type t

val create :
  ?cursor_ttl:float ->
  ?max_cursors:int ->
  ?slow_query_ms:float ->
  ?now:(unit -> float) ->
  ?workers:int ->
  ?manifest:Secshare_rpc.Protocol.manifest_info ->
  ?numbers:Secshare_store.Node_table.t ->
  Secshare_poly.Ring.t ->
  Secshare_store.Node_table.t ->
  t
(** [numbers] (default: none) is the numeric share column backing
    [Agg_eval]: one row per aggregatable leaf, its share bytes an
    8-byte little-endian {!Numeric} field element.  Without it,
    [Agg_eval] answers [Error_msg].
    [cursor_ttl] (seconds, default: none) evicts cursors idle longer
    than that; [max_cursors] (default 1024) bounds concurrently open
    cursors, evicting the least recently used past the cap.
    [slow_query_ms] (default: off) logs one structured info-level line
    per query lifetime — cursor open to removal, or a one-shot scan —
    that took at least this many milliseconds: trace id, opcode mix,
    batch/row/byte counts and duration only, never evaluation points,
    node numbers or share values.  [now] is the clock, injectable for
    tests.  [workers] (default 1 = inline) sizes the {!Pool} of
    evaluator domains that batch share evaluation fans out over; the
    cursor table stays behind its own lock, and evaluation happens
    outside it.  [manifest] (default: the trivial 1-of-1 topology over
    the table's rows) is what the [Manifest] handshake reports — set it
    when this server is one shard of a threshold deployment. *)

val workers : t -> int
(** The configured evaluation-pool size (1 = inline). *)

val dedup_ranges : (int * int) list -> (int * int) list
(** The server's [Pre_ranges] normalisation — sort by [from_pre] and
    drop ranges nested inside an earlier one.  Exposed for the
    sharding router, which must replicate it exactly before splitting
    a scan at partition boundaries so the merged shard streams emit
    rows in the single server's order. *)

val close : t -> unit
(** Stop and join the evaluation pool.  Idempotent; a closed filter
    still answers requests (evaluating inline). *)

val handler : t -> Secshare_rpc.Protocol.request -> Secshare_rpc.Protocol.response
(** Total: errors come back as [Error_msg]. *)

val connection :
  t ->
  (Secshare_rpc.Protocol.request -> Secshare_rpc.Protocol.response) * (unit -> unit)
(** A per-connection handler plus its close hook: the hook evicts
    every cursor the connection opened and still holds.  Feed the pair
    to {!Secshare_rpc.Server.start_sessions}. *)

val sweep_cursors : t -> int
(** Evict cursors idle past the TTL now; returns how many. *)

val open_cursors : t -> int
(** Number of cursors currently open (for leak tests). *)

type cursor_stats = {
  open_cursors : int;
  evicted_cursors : int;  (** removed by TTL, cap pressure, or connection close *)
  expired_cursors : int;  (** the TTL subset of [evicted_cursors] *)
}

val cursor_stats : t -> cursor_stats
