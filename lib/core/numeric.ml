module Chacha20 = Secshare_prg.Chacha20
module Seed = Secshare_prg.Seed

let modulus = (1 lsl 61) - 1
let default_scale = 2
let max_magnitude = (modulus - 1) / 2

let normalize v =
  let r = v mod modulus in
  if r < 0 then r + modulus else r

(* Elements live in [0, M) with M < 2^61, so a + b < 2^62 never
   overflows a 63-bit int. *)
let add a b =
  let s = a + b in
  if s >= modulus then s - modulus else s

let sub a b = if a >= b then a - b else a - b + modulus
let neg a = if a = 0 then 0 else modulus - a

(* Double-and-add ladder: 61 conditional additions, each staying below
   2^62.  Multiplication only runs for Shamir dealing and Lagrange
   weights — a handful of times per query or per encoded row — so the
   obviously-overflow-free form wins over a split-limb fast path. *)
let mul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := add !acc !a;
    a := add !a !a;
    b := !b lsr 1
  done;
  !acc

let rec pow a e =
  if e = 0 then 1
  else
    let h = pow (mul a a) (e lsr 1) in
    if e land 1 = 1 then mul a h else h

let inv a = if a = 0 then raise Division_by_zero else pow a (modulus - 2)
let lift v = if v > max_magnitude then v - modulus else v

let parse_decimal ~scale s =
  if scale < 0 || scale > 18 then invalid_arg "Numeric.parse_decimal: scale outside [0, 18]";
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else begin
    let negative = s.[0] = '-' in
    let start = if negative || s.[0] = '+' then 1 else 0 in
    (* one pass: integer digits, then an optional '.' and up to [scale]
       fractional digits; anything else rejects *)
    let acc = ref 0 and digits = ref 0 and frac = ref (-1) and ok = ref (start < n) in
    (try
       for i = start to n - 1 do
         match s.[i] with
         | '0' .. '9' as c ->
             incr digits;
             if !digits > 18 then raise Exit;
             acc := (!acc * 10) + (Char.code c - Char.code '0');
             if !frac >= 0 then begin
               incr frac;
               if !frac > scale then raise Exit
             end
         | '.' when !frac < 0 && i > start && i < n - 1 -> frac := 0
         | _ -> raise Exit
       done
     with Exit -> ok := false);
    if (not !ok) || !digits = 0 then None
    else begin
      let pad = scale - max 0 !frac in
      (* rescale with a per-step bound so the multiply can't overflow
         before the magnitude check *)
      let rec scaled acc i =
        if i = 0 then if acc > max_magnitude then None else Some acc
        else if acc > max_magnitude / 10 then None
        else scaled (acc * 10) (i - 1)
      in
      match scaled !acc pad with
      | None -> None
      | Some v -> Some (if negative then -v else v)
    end
  end

(* --- PRG draws ------------------------------------------------------- *)

(* Same nonce shape as [Node_prg] (8 bytes of pre, 4-byte tag) but a
   different tag, so numeric blinds and polynomial coefficients come
   from disjoint ChaCha20 streams under one seed. *)
let nonce ~pre ~tag =
  let nonce = Bytes.make Chacha20.nonce_length '\000' in
  Bytes.set_int64_le nonce 0 (Int64.of_int pre);
  Bytes.blit_string tag 0 nonce 8 4;
  nonce

let mask61 = (1 lsl 61) - 1

let draws ~seed ~pre ~tag ~count =
  if pre < 0 then invalid_arg "Numeric: negative pre";
  if count < 0 then invalid_arg "Numeric: negative count";
  let key = Seed.to_bytes seed in
  let nonce = nonce ~pre ~tag in
  let out = Array.make count 0 in
  let buf = ref (Chacha20.keystream ~key ~nonce ~counter:0 (max 64 (count * 8))) in
  let pos = ref 0 in
  let next_counter = ref (Bytes.length !buf / 64) in
  let refill () =
    let extra = Chacha20.keystream ~key ~nonce ~counter:!next_counter 64 in
    next_counter := !next_counter + 1;
    buf := Bytes.cat !buf extra
  in
  (* 61 masked bits are uniform over [0, 2^61); only the single value
     2^61 - 1 = M falls outside the field and is redrawn *)
  let rec draw () =
    if !pos + 8 > Bytes.length !buf then refill ();
    let v = Int64.to_int (Bytes.get_int64_le !buf !pos) land mask61 in
    pos := !pos + 8;
    if v < modulus then v else draw ()
  in
  for i = 0 to count - 1 do
    out.(i) <- draw ()
  done;
  out

let blind ~seed ~pre = (draws ~seed ~pre ~tag:"nval" ~count:1).(0)
let dealer_draws ~seed ~pre ~count = draws ~seed ~pre ~tag:"ndea" ~count

(* --- Shamir over F_M ------------------------------------------------- *)

let shard_value ~threshold ~gen ~xs v =
  if threshold < 1 then invalid_arg "Numeric.shard_value: threshold < 1";
  let coeffs = Array.init (threshold - 1) (fun _ -> gen ()) in
  List.map
    (fun x ->
      if x <= 0 then invalid_arg "Numeric.shard_value: x must be positive";
      let x = normalize x in
      let acc = ref 0 in
      for i = Array.length coeffs - 1 downto 0 do
        acc := mul (add !acc coeffs.(i)) x
      done;
      add !acc v)
    xs

let lambdas_at_zero xs =
  let xs = List.map normalize xs in
  List.map
    (fun xi ->
      List.fold_left
        (fun acc xj -> if xj = xi then acc else mul acc (mul xj (inv (sub xj xi))))
        1 xs)
    xs

let combine ~lambdas shares =
  List.fold_left2 (fun acc l s -> add acc (mul l s)) 0 lambdas shares

let to_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let of_bytes b =
  if Bytes.length b <> 8 then
    invalid_arg
      (Printf.sprintf "Numeric.of_bytes: %d-byte cell (expected 8)" (Bytes.length b));
  let v = Int64.to_int (Bytes.get_int64_le b 0) in
  if v < 0 || v >= modulus then
    invalid_arg "Numeric.of_bytes: cell is not a normalized field element";
  v
