(** A bounded polymorphic map with least-recently-used eviction.

    Hash table over an intrusive recency list: [find], [add] and the
    eviction they trigger are all O(1).  Not thread-safe — owned by one
    thread, like the {!Client_filter} that embeds it. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create capacity] — room for [capacity] entries.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val size : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most recently used and counts a hit/miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency or hit/miss counters. *)

val add : ('k, 'v) t -> key:'k -> value:'v -> unit
(** Insert (or replace) an entry, evicting the least recently used one
    when the cache is full. *)

val find_or_add : ('k, 'v) t -> 'k -> compute:('k -> 'v) -> 'v
(** [find] then [add compute key] on a miss. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (capacity and counters are kept). *)

val fold : ('k, 'v) t -> init:'a -> f:('a -> key:'k -> value:'v -> 'a) -> 'a

type stats = { hits : int; misses : int; evictions : int }

val stats : ('k, 'v) t -> stats
