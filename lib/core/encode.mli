(** The encoder — our [MySQLEncode] (paper §5.1).

    Streams SAX events, maintaining only the open-element stack (O(depth)
    memory): each element receives its [pre] number when it opens; when
    it closes, its polynomial
    [f(node) = (x - map(node)) . prod f(children)] is completed from
    the accumulated child product, split against the regenerated
    client share, and the server share is appended to the node table
    as a [(pre, post, parent, share)] row.

    With a trie mode set, text content is expanded on the fly into
    single-character elements (§4), so data becomes searchable; without
    it, text is skipped and only tags are encoded (the configuration of
    the paper's experiments). *)

type error =
  | Unmapped_name of string
      (** a tag (or trie character) with no map entry *)
  | Xml_error of string

exception Encode_error of error

val error_to_string : error -> string

type stats = {
  nodes : int;  (** rows written (elements + trie nodes) *)
  elements : int;  (** original element nodes *)
  trie_nodes : int;  (** synthesised character/marker nodes *)
  max_depth : int;
  duration_seconds : float;
}

type encoder

val create :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  unit ->
  encoder

val feed : encoder -> Secshare_xml.Sax.event -> unit
(** @raise Encode_error on an unmapped name. *)

val finish : encoder -> stats
(** @raise Encode_error if elements are still open. *)

val encode_string :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  string ->
  (stats, error) result

val encode_channel :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  in_channel ->
  (stats, error) result

val encode_tree :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  Secshare_xml.Tree.t ->
  (stats, error) result
