(** The encoder — our [MySQLEncode] (paper §5.1).

    Streams SAX events, maintaining only the open-element stack (O(depth)
    memory): each element receives its [pre] number when it opens; when
    it closes, its polynomial
    [f(node) = (x - map(node)) . prod f(children)] is completed from
    the accumulated child product, split against the regenerated
    client share, and the server share is appended to the node table
    as a [(pre, post, parent, share)] row.

    With a trie mode set, text content is expanded on the fly into
    single-character elements (§4), so data becomes searchable; without
    it, text is skipped and only tags are encoded (the configuration of
    the paper's experiments). *)

type error =
  | Unmapped_name of string
      (** a tag (or trie character) with no map entry *)
  | Xml_error of string

exception Encode_error of error

val error_to_string : error -> string

type stats = {
  nodes : int;  (** rows written (elements + trie nodes) *)
  elements : int;  (** original element nodes *)
  trie_nodes : int;  (** synthesised character/marker nodes *)
  numeric_nodes : int;  (** numeric-column rows written *)
  max_depth : int;
  duration_seconds : float;
}

type encoder

val create :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  ?numbers:Secshare_store.Node_table.t ->
  ?agg_scale:int ->
  unit ->
  encoder
(** With [numbers], every real leaf whose direct text parses as a
    decimal (at fixed-point [agg_scale], default
    {!Numeric.default_scale}) also writes an additively blinded row to
    the numeric column, and [finish] re-derives the mapping's
    aggregatable flags: a tag is flagged iff all of its occurrences
    were numeric leaves.  Trie-synthesised children never disqualify a
    leaf.  @raise Invalid_argument when [agg_scale] is outside
    [\[0, Mapping.max_agg_scale\]]. *)

val feed : encoder -> Secshare_xml.Sax.event -> unit
(** @raise Encode_error on an unmapped name. *)

val finish : encoder -> stats
(** @raise Encode_error if elements are still open. *)

val encode_string :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  ?numbers:Secshare_store.Node_table.t ->
  ?agg_scale:int ->
  string ->
  (stats, error) result

val encode_channel :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  ?numbers:Secshare_store.Node_table.t ->
  ?agg_scale:int ->
  in_channel ->
  (stats, error) result

val encode_tree :
  Secshare_poly.Ring.t ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?trie:Secshare_trie.Expand.mode ->
  ?numbers:Secshare_store.Node_table.t ->
  ?agg_scale:int ->
  Secshare_xml.Tree.t ->
  (stats, error) result
