(** A bounded worker pool of OCaml domains for CPU-parallel share
    evaluation (the server side of [ssdb_server --workers N]).

    [create ~workers:n] with [n <= 1] spawns nothing: every map runs
    inline on the caller, byte-for-byte the single-threaded behaviour.
    With [n > 1], [n] evaluator domains pull chunked tasks from one
    shared run queue; a caller blocked on its own map steals queued
    chunks instead of sleeping, so a busy pool never makes a map
    slower than running it inline.

    Observability (content-free labels only): a queue-depth gauge
    [ssdb_pool_queue_depth], a task counter [ssdb_pool_tasks_total]
    and per-executor run-time histograms [ssdb_pool_task_seconds]
    (["w0"], ["w1"], …, ["caller"]). *)

type t

val create : workers:int -> unit -> t
(** [workers] is clamped to at least 1. *)

val size : t -> int
(** The configured worker count (1 = inline). *)

val map_array : t -> 'a array -> f:('a -> 'b) -> 'b array
(** Parallel [Array.map], preserving order.  [f] must be safe to run
    on any domain (pure, or touching only thread-safe state).  The
    first exception [f] raised is re-raised on the caller after every
    chunk of the call has finished. *)

val map_list : t -> 'a list -> f:('a -> 'b) -> 'b list

val close : t -> unit
(** Drain queued tasks, stop the evaluator domains and join them.
    Idempotent; a closed inline pool still maps (inline). *)
