(** A plaintext reference evaluator — ground truth for the encrypted
    engines.

    Evaluates the same XPath subset directly over the unencrypted
    document, numbering elements in document order with the same
    [pre]/[post] convention the encoder uses, so result sets are
    comparable node-for-node.

    Two semantics:
    - [Exact]: a name step keeps candidates whose tag *is* the name —
      what the equality test computes, and the yardstick of the
      paper's figure 7;
    - [Containment]: a name step keeps candidates whose subtree
      *contains* the name — the idealised containment-test semantics
      (what the non-strict engines compute, without the encoding in
      the way). *)

type semantics = Exact | Containment

val run :
  ?semantics:semantics -> Secshare_xml.Tree.t -> Secshare_xpath.Ast.t -> int list
(** [pre] numbers of the matching elements, ascending.  Defaults to
    [Exact]. *)

val run_meta :
  ?semantics:semantics ->
  Secshare_xml.Tree.t ->
  Secshare_xpath.Ast.t ->
  Secshare_rpc.Protocol.node_meta list
(** Same, with full pre/post/parent metadata. *)

val run_agg :
  ?semantics:semantics ->
  ?scale:int ->
  func:Secshare_xpath.Ast.agg_func ->
  Secshare_xml.Tree.t ->
  Secshare_xpath.Ast.t ->
  Query_common.value
(** Plaintext aggregation over the same matched set {!run} produces:
    [Count] of the set, or the [Sum]/[Avg] of the matched elements'
    direct text parsed as decimals scaled by 10^[scale] (default
    {!Numeric.default_scale}) — the encrypted engines' ground truth.
    @raise Invalid_argument if a matched element has element children
    or non-numeric text (for [sum]/[avg]). *)

val pre_of_path : Secshare_xml.Tree.t -> int list -> int option
(** Document-order [pre] of the element reached by a child-index path
    (0-based, [[]] is the root); useful in tests. *)
