(** The secret mapping function [map : name -> F_q \ {0}] (paper §3
    step 1, §5.1 "map file").

    Every tag name (and, with the trie enhancement, every alphabet
    character and the end-of-word marker) is assigned a distinct
    *nonzero* field value.  Zero is excluded because the scheme
    evaluates polynomials only at mapped points and reduction modulo
    [x^(q-1) - 1] does not preserve evaluation at zero.

    The map is part of the client's secret state: the server sees only
    polynomial shares, never names or mapped values. *)

type t

val field_order : t -> int

val of_names : q:int -> string list -> (t, string) result
(** Assign values 1, 2, ... in list order (duplicates collapsed).
    Fails if there are more than [q - 1] distinct names or [q < 2]. *)

val of_dtd : q:int -> Secshare_xml.Dtd.t -> (t, string) result
(** Map every element the DTD declares, in declaration order — the
    paper's configuration (77 XMark elements, q = 83). *)

val of_tree : q:int -> Secshare_xml.Tree.t -> (t, string) result
(** Map the distinct tag names that actually occur in a document. *)

val with_trie_alphabet : t -> (t, string) result
(** Extend with the 26 characters and the end-of-word marker used by
    trie expansion (fails if the field has no room). *)

val value : t -> string -> int option
val value_exn : t -> string -> int
(** @raise Not_found for unmapped names. *)

val name_of : t -> int -> string option
val names : t -> string list
(** Mapped names in assignment order. *)

val size : t -> int

(** {2 Aggregatable tags}

    A tag is flagged aggregatable when every one of its occurrences is
    a numeric leaf, so [sum()] / [avg()] queries over it can be pushed
    to the server's numeric share column.  The flag carries the
    fixed-point scale (digits after the decimal point) the encoder
    used for that tag's values. *)

val max_agg_scale : int
(** Largest supported fixed-point scale (18 — the widest decimal that
    still fits the numeric field). *)

val set_aggregatable : t -> string -> scale:int -> unit
(** @raise Invalid_argument on unmapped names or scales outside
    [\[0, max_agg_scale\]]. *)

val clear_aggregatable : t -> unit
(** Drop every flag (the encoder re-derives them at [finish]). *)

val aggregatable_scale : t -> string -> int option
(** [Some scale] when the tag is flagged, [None] otherwise. *)

val aggregatable_names : t -> string list
(** Flagged tags, in assignment order. *)

val to_file_string : t -> string
(** The paper's map-file syntax: one [name = value] property per
    line, preceded by a [q = ...] header line.  Aggregatable tags add
    trailing [%agg.name = scale] lines ('%' can never start an XML tag
    name, so old files parse unchanged). *)

val of_file_string : string -> (t, string) result
(** Parse a map file; validates the header, value ranges, duplicate
    names/values, and aggregatable-flag lines. *)

val save : string -> t -> unit
val load : string -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
