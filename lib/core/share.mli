(** Additive secret sharing of node polynomials (paper §3 steps 3–4).

    The client polynomial is pseudorandom, regenerated from the seed
    and the node's [pre] number; the server share is chosen so that
    client + server equals the node's true polynomial.  Either share
    alone is uniformly distributed and reveals nothing. *)

val client :
  Secshare_poly.Ring.t -> seed:Secshare_prg.Seed.t -> pre:int -> Secshare_poly.Cyclic.t
(** The regenerated client share of node [pre]. *)

val server_share :
  Secshare_poly.Ring.t ->
  seed:Secshare_prg.Seed.t ->
  pre:int ->
  Secshare_poly.Cyclic.t ->
  Secshare_poly.Cyclic.t
(** [server_share r ~seed ~pre f] is [f - client], the share stored in
    the public table. *)

val reconstruct :
  Secshare_poly.Ring.t ->
  seed:Secshare_prg.Seed.t ->
  pre:int ->
  server:Secshare_poly.Cyclic.t ->
  Secshare_poly.Cyclic.t
(** [client + server]: the node's true polynomial. *)

val combine_evaluations : Secshare_poly.Ring.t -> client:int -> server:int -> int
(** Sum of the two shares' evaluations at the same point — zero iff
    the true polynomial evaluates to zero there (the containment
    test). *)
