(** Additive secret sharing of node polynomials (paper §3 steps 3–4).

    The client polynomial is pseudorandom, regenerated from the seed
    and the node's [pre] number; the server share is chosen so that
    client + server equals the node's true polynomial.  Either share
    alone is uniformly distributed and reveals nothing. *)

val client :
  Secshare_poly.Ring.t -> seed:Secshare_prg.Seed.t -> pre:int -> Secshare_poly.Cyclic.t
(** The regenerated client share of node [pre]. *)

val server_share :
  Secshare_poly.Ring.t ->
  seed:Secshare_prg.Seed.t ->
  pre:int ->
  Secshare_poly.Cyclic.t ->
  Secshare_poly.Cyclic.t
(** [server_share r ~seed ~pre f] is [f - client], the share stored in
    the public table. *)

val reconstruct :
  Secshare_poly.Ring.t ->
  seed:Secshare_prg.Seed.t ->
  pre:int ->
  server:Secshare_poly.Cyclic.t ->
  Secshare_poly.Cyclic.t
(** [client + server]: the node's true polynomial. *)

val combine_evaluations : Secshare_poly.Ring.t -> client:int -> server:int -> int
(** Sum of the two shares' evaluations at the same point — zero iff
    the true polynomial evaluates to zero there (the containment
    test). *)

(** {2 Shamir t-of-n re-sharing of the server share}

    Sharded serving (lib/shard) splits the {e server} share again:
    coefficient-wise Shamir with x-coordinates [1 .. shards], so shard
    [i]'s table stores a polynomial share that any [threshold] shards
    recombine by the fixed Lagrange multipliers
    {!shard_lambdas} — and, by linearity, the same multipliers
    recombine per-shard {e evaluations}
    ({!combine_threshold_evaluations}), which is all the containment
    test needs.  Every shard share packs byte-identically to a
    single-server share, so storage, kernels and the wire format are
    unchanged. *)

val shard_xs : shards:int -> int list
(** The shard x-coordinates [\[1; ...; shards\]]; shard ids are
    1-based and double as interpolation points. *)

val shard_server_share :
  Secshare_poly.Ring.t ->
  threshold:int ->
  shards:int ->
  gen:(unit -> int) ->
  bytes ->
  bytes list
(** Split one packed server share into [shards] packed shard shares
    (order of {!shard_xs}); [gen] supplies the dealer's uniform field
    draws, [threshold - 1] per coefficient.  @raise Invalid_argument
    unless [1 <= threshold <= shards < field order]. *)

val shard_lambdas : Secshare_poly.Ring.t -> xs:int list -> int list
(** Lagrange-at-zero multipliers for a live subset of shard ids. *)

val reconstruct_packed :
  Secshare_poly.Ring.t -> lambdas:int list -> bytes list -> bytes
(** Recombine [t] packed shard shares into the original packed server
    share — exact, bit-identical bytes (field arithmetic, then the
    same codec). *)

val combine_threshold_evaluations :
  Secshare_poly.Ring.t -> lambdas:int list -> int list -> int
(** Fold [t] per-shard evaluations at one point into the server
    share's evaluation there: [sum_i lambda_i v_i]. *)
