(** Counters for the paper's experimental quantities.

    Figure 5 plots containment evaluations; §6.3 discusses the cost of
    equality tests, i.e. whole-polynomial reconstructions; figure 6
    measures wall-clock time.  One containment check is exactly one
    evaluation pair (server share + regenerated client share). *)

type t = {
  mutable evaluations : int;
      (** containment tests: one polynomial evaluation pair each *)
  mutable equality_tests : int;
  mutable reconstructions : int;
      (** full polynomials reconstructed (node + its children) for
          equality tests *)
  mutable nodes_examined : int;  (** candidate nodes inspected *)
  mutable degenerate_divisions : int;
      (** equality tests aborted because the child product was the
          zero ring element (see DESIGN.md §7) *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** Accumulate the second argument into the first. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
