(** Counters for the paper's experimental quantities.

    Figure 5 plots containment evaluations; §6.3 discusses the cost of
    equality tests, i.e. whole-polynomial reconstructions; figure 6
    measures wall-clock time.  One containment check is exactly one
    evaluation pair (server share + regenerated client share).

    {b Ownership}: a [t] (and an {!op_stats}) is plain mutable state
    with no internal locking.  The discipline under concurrency is
    single-owner: each instance is read and written by exactly one
    thread; parallel work accumulates into per-worker or per-batch
    instances which the owner merges at batch boundaries with {!add}.
    [add] destructures every field, so adding a counter without
    extending the merge is a compile error, not a silent drop. *)

type t = {
  mutable evaluations : int;
      (** containment tests: one polynomial evaluation pair each *)
  mutable equality_tests : int;
  mutable reconstructions : int;
      (** full polynomials reconstructed (node + its children) for
          equality tests *)
  mutable nodes_examined : int;  (** candidate nodes inspected *)
  mutable degenerate_divisions : int;
      (** equality tests aborted because the child product was the
          zero ring element (see DESIGN.md §7) *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** Accumulate the second argument into the first. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit

(** {2 Per-operator counters}

    Every operator of the streaming execution pipeline (see
    {!Operator}) carries one of these; [ssdb_query --explain] prints
    them as the query's execution profile. *)

type op_stats = {
  op_name : string;
  mutable batches : int;  (** output batches emitted *)
  mutable rows_in : int;  (** rows pulled from the upstream operator *)
  mutable rows_out : int;
  mutable eval_pairs : int;
      (** (client, server) share-evaluation pairs this operator combined *)
  mutable rpc_calls : int;
  mutable rpc_bytes : int;  (** request + response bytes of those calls *)
  mutable wall_seconds : float;
}

val op_stats : string -> op_stats
(** Fresh zeroed counters with the given operator label. *)

val copy_op_stats : op_stats -> op_stats
val pp_op_stats : Format.formatter -> op_stats -> unit

val pp_op_table : Format.formatter -> op_stats list -> unit
(** Aligned table, one row per operator, header included. *)
