type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = abs den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let zero = { num = 0; den = 1 }
let of_int n = { num = n; den = 1 }

let pow10 k =
  if k < 0 || k > 18 then invalid_arg "Qnum.pow10: exponent outside [0, 18]";
  let rec go acc i = if i = 0 then acc else go (acc * 10) (i - 1) in
  go 1 k

let of_scaled v ~scale = make v (pow10 scale)
let equal a b = a.num = b.num && a.den = b.den

(* denominators are positive, so cross-multiplication preserves order *)
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let to_float t = float_of_int t.num /. float_of_int t.den

let to_string t =
  if t.den = 1 then string_of_int t.num
  else begin
    (* decimal expansion exists iff den = 2^a * 5^b; pad to 10^k *)
    let rec find_k k =
      if k > 18 then None else if pow10 k mod t.den = 0 then Some k else find_k (k + 1)
    in
    match find_k 1 with
    | None -> Printf.sprintf "%d/%d" t.num t.den
    | Some k ->
        let v = abs t.num * (pow10 k / t.den) in
        let whole = v / pow10 k and frac = v mod pow10 k in
        Printf.sprintf "%s%d.%0*d" (if t.num < 0 then "-" else "") whole k frac
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
