(** The public facade: build an encrypted database from an XML
    document, query it, measure it.

    A [t] is one client handle over either deployment: it always holds
    the client's secret state (field, mapping, seed) and a caching
    {!Client_filter}; a {e local} handle additionally owns the server
    half (node table + filter, in-process transport), while a {e
    remote} handle ({!connect}) talks to a {!serve}d database over a
    Unix-domain socket — reproducing the paper's client/server
    deployment (figure 3).  {!query} works identically on both;
    server-side operations ({!serve}, {!storage_stats}, cursor
    inspection, {!save_bundle}) raise [Invalid_argument] on a remote
    handle.

    Every client-side knob enters through one {!client_config} record
    — transport batching, the share-regeneration cache, socket
    deadlines and retries, server cursor policy and the evaluation
    worker pool — so a configuration can be built once and reused
    across {!create}, {!of_parts}, {!connect} and {!open_bundle}. *)

type t
(** A client handle, local or remote. *)

type client_config = {
  rpc_batching : bool;
      (** batch containment evaluations into one round trip (default
          true); disable to reproduce the per-node-call cost model of
          the paper's RMI filter *)
  rpc_fused_scan : bool;
      (** let the execution pipeline use the fused [Scan_eval] request
          — axis scan and share evaluation in one message — instead
          of per-parent [Children] / cursor calls followed by a
          separate evaluation round trip (default true) *)
  share_cache : int;
      (** capacity, in polynomials, of the client's LRU cache over
          regenerated share polynomials (default 4096; 0 disables).
          Regeneration is a pure function of seed and [pre], so cached
          entries are exact forever — see {!Client_filter.create} *)
  timeout : float option;
      (** bound each RPC round trip to this many seconds (default
          [None]; socket transports only) *)
  max_retries : int;
      (** retry failed idempotent calls with exponential backoff,
          transparently reconnecting a dead socket (default 0; socket
          transports only — see {!Secshare_rpc.Transport.policy}) *)
  cursor_ttl : float option;
      (** evict server-side scan cursors idle longer than this many
          seconds (default [None]: no TTL) *)
  max_cursors : int;
      (** cap on concurrently open server-side cursors, evicting the
          least recently used past it (default 1024) *)
  slow_query_ms : float option;
      (** log one structured info-level line per server-side query
          lifetime at least this slow (default [None]: off); the line
          carries trace id, opcode mix, batch/row/byte counts and
          duration only — see {!Server_filter.create} *)
  workers : int;
      (** size of the server's evaluation worker pool — the number of
          domains batch share evaluation fans out over (default 1 =
          inline, the single-threaded behaviour; [ssdb_server
          --workers]) *)
}

val default_client_config : client_config
(** The defaults spelled out above; build variations with record
    update syntax: [{ default_client_config with workers = 4 }]. *)

type config = {
  p : int;  (** field characteristic (a prime); default 83 *)
  e : int;  (** extension degree; default 1 *)
  trie : Secshare_trie.Expand.mode option;
      (** expand text into tries (§4); default [None] — tags only,
          the paper's experimental configuration *)
  seed : Secshare_prg.Seed.t option;  (** default: fresh random seed *)
  mapping : [ `From_document | `From_dtd of Secshare_xml.Dtd.t | `Explicit of Mapping.t ];
  page_size : int;  (** storage page size; default 8192 *)
  client : client_config;  (** every client-side and serving knob *)
}

val default_config : config

type engine = Simple | Advanced

type query_result = {
  value : Query_common.value;
      (** what the query produced: the node set of a location path
          ([Nodes], document order) or the scalar of an aggregate
          ([Count]/[Sum]/[Avg]) *)
  metrics : Metrics.t;
  operators : Metrics.op_stats list;
      (** per-operator execution counters, in plan order (the data
          behind [ssdb_query --explain]) *)
  rpc_calls : int;
  rpc_bytes : int;
  seconds : float;
  trace_id : int64;
      (** the query's trace id: every client span and — over a socket
          transport — every server-side span of this query carries it
          (see {!Secshare_obs.Trace}) *)
}

val result_nodes : query_result -> Secshare_rpc.Protocol.node_meta list
(** The node set of a [Nodes] result; [[]] for an aggregate result. *)

val create : ?config:config -> string -> (t, string) result
(** Encode an XML document given as a string. *)

val of_parts :
  ?client:client_config ->
  p:int ->
  e:int ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  ?numbers:Secshare_store.Node_table.t ->
  unit ->
  (t, string) result
(** Assemble a database from an already-encoded node table (e.g. one
    re-opened from a page file) plus the client's secret state.
    [numbers] is the numeric share column; without it [sum]/[avg]
    queries fail server-side. *)

val create_tree : ?config:config -> Secshare_xml.Tree.t -> (t, string) result
val create_file : ?config:config -> string -> (t, string) result

val query :
  ?engine:engine ->
  ?strictness:Query_common.strictness ->
  t ->
  string ->
  (query_result, string) result
(** Parse and evaluate a query ([contains] predicates are rewritten
    into trie steps first).  Defaults: [Advanced], [Strict].  Works
    identically on local and remote handles.

    Aggregates — [count(path)], [sum(path)], [avg(path)] — return the
    matching scalar {!Query_common.value}.  A [sum]/[avg] whose final
    tag is mapped but not flagged aggregatable (not every occurrence a
    numeric leaf) fails here, client-side, with no server round trip;
    an unmapped final tag returns the empty-set value (0), mirroring
    plaintext XPath over a document that cannot contain the name. *)

val query_ast :
  ?engine:engine ->
  ?strictness:Query_common.strictness ->
  ?agg:Secshare_xpath.Ast.agg_func ->
  t ->
  Secshare_xpath.Ast.t ->
  (query_result, string) result

val accuracy : ?engine:engine -> t -> string -> (float, string) result
(** The paper's figure-7 quotient E/C: equality-test result size over
    containment-test result size (1.0 when both are empty). *)

type storage_stats = {
  rows : int;
  data_bytes : int;
  index_bytes : int;
  encode_stats : Encode.stats;
}

val storage_stats : t -> storage_stats
(** Local handles only. *)

val mapping : t -> Mapping.t
val ring : t -> Secshare_poly.Ring.t
val seed : t -> Secshare_prg.Seed.t
val client_filter : t -> Client_filter.t

val table : t -> Secshare_store.Node_table.t
(** Local handles only. *)

val numbers_table : t -> Secshare_store.Node_table.t option
(** The numeric share column, when this database has one (local
    handles only). *)

val is_remote : t -> bool
(** [true] for a handle from {!connect} (no local server half). *)

val rpc_counters : t -> Secshare_rpc.Transport.counters
(** Live transport counters (calls, bytes, retries, reconnects,
    timeouts).  On a local handle the transport is in-process: calls
    count, byte counters stay 0. *)

val share_cache_stats : t -> Lru.stats option
(** Hit/miss/eviction counts of the client share-regeneration cache;
    [None] when [share_cache] is 0. *)

val workers : t -> int
(** The server evaluation-pool size (local handles only). *)

(** {2 Remote deployment} *)

val serve : ?send_timeout:float -> t -> path:string -> Secshare_rpc.Server.t
(** Expose this database's server half on a Unix-domain socket (local
    handles only).  Each connection gets a session-scoped handler:
    cursors it opened are evicted when it disconnects.  [send_timeout]
    bounds each response write (see
    {!Secshare_rpc.Server.start_sessions}). *)

val open_cursors : t -> int
(** Server-side cursors currently open (for leak tests/monitoring). *)

val cursor_stats : t -> Server_filter.cursor_stats
val sweep_cursors : t -> int
(** Evict cursors idle past the configured TTL now; returns how many. *)

val of_transport :
  ?client:client_config ->
  p:int ->
  e:int ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  Secshare_rpc.Transport.t ->
  (t, string) result
(** A remote handle over an already-built transport — any endpoint
    speaking the filter protocol: a socket to one server, an
    in-process handler, or a shard router.  The handle owns the
    transport and closes it with {!close}. *)

val connect :
  ?client:client_config ->
  p:int ->
  e:int ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  path:string ->
  unit ->
  (t, string) result
(** {!of_transport} over a socket: the client's secret state across a
    Unix-domain-socket transport.  [client.timeout],
    [client.max_retries] configure the transport; the cursor and
    worker fields are server-side and ignored here. *)

val close : t -> unit
(** Close the transport; on a local handle also stop the server's
    evaluation pool and close the node table(s). *)

(** {2 Bundles}

    A bundle is a directory holding everything needed to reopen a
    database: the server's page files ([shares.db] and, when the
    database has a numeric column, [nums.db] — both safe to publish)
    and the client's secrets ([client.map], [client.seed], [config]).
    In a real deployment the two halves live on different machines;
    the bundle is the single-machine convenience form. *)

val save_bundle :
  ?durable:bool -> ?checkpoint_every:int -> t -> dir:string -> (unit, string) result
(** Write the bundle (creating [dir] if needed; existing files are
    overwritten).  Local handles only.  With [durable:true] the copy
    into [shares.db] is written through a write-ahead log (each row
    fsynced before the next is copied) — slower, but a crash
    mid-bundle leaves a recoverable file instead of a torn one;
    [checkpoint_every] bounds the log's growth during the copy. *)

val open_bundle :
  ?client:client_config ->
  ?durable:bool ->
  ?checkpoint_every:int ->
  dir:string ->
  unit ->
  (t, string) result
(** Reopen a saved bundle.  If [shares.db.wal] holds records from a
    crashed writer, recovery replays them before the handle is
    returned ({!Secshare_store.Node_table.recovery_stats} on {!table}
    reports what was redone).  [durable]/[checkpoint_every] keep the
    reopened table writing through its write-ahead log. *)
