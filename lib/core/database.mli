(** The public facade: build an encrypted database from an XML
    document, query it, measure it.

    A [t] bundles the client's secret state (field, mapping, seed)
    with a server (node table + filter).  The default transport is
    in-process; {!serve} / {!connect} split the same parts across a
    Unix-domain socket, reproducing the paper's client/server
    deployment (figure 3). *)

type t

type config = {
  p : int;  (** field characteristic (a prime); default 83 *)
  e : int;  (** extension degree; default 1 *)
  trie : Secshare_trie.Expand.mode option;
      (** expand text into tries (§4); default [None] — tags only,
          the paper's experimental configuration *)
  seed : Secshare_prg.Seed.t option;  (** default: fresh random seed *)
  mapping : [ `From_document | `From_dtd of Secshare_xml.Dtd.t | `Explicit of Mapping.t ];
  page_size : int;  (** storage page size; default 8192 *)
  rpc_batching : bool;
      (** batch containment evaluations into one round trip (default
          true); disable to reproduce the per-node-call cost model of
          the paper's RMI filter *)
  rpc_fused_scan : bool;
      (** let the execution pipeline use the fused [Scan_eval] request
          — axis scan and share evaluation in one message — instead
          of per-parent [Children] / cursor calls followed by a
          separate evaluation round trip (default true) *)
  cursor_ttl : float option;
      (** evict server-side scan cursors idle longer than this many
          seconds (default [None]: no TTL) *)
  max_cursors : int;
      (** cap on concurrently open server-side cursors, evicting the
          least recently used past it (default 1024) *)
  slow_query_ms : float option;
      (** log one structured info-level line per server-side query
          lifetime at least this slow (default [None]: off); the line
          carries trace id, opcode mix, batch/row/byte counts and
          duration only — see {!Server_filter.create} *)
}

val default_config : config

type engine = Simple | Advanced

type query_result = {
  nodes : Secshare_rpc.Protocol.node_meta list;  (** document order *)
  metrics : Metrics.t;
  operators : Metrics.op_stats list;
      (** per-operator execution counters, in plan order (the data
          behind [ssdb_query --explain]) *)
  rpc_calls : int;
  rpc_bytes : int;
  seconds : float;
  trace_id : int64;
      (** the query's trace id: every client span and — over a socket
          transport — every server-side span of this query carries it
          (see {!Secshare_obs.Trace}) *)
}

val create : ?config:config -> string -> (t, string) result
(** Encode an XML document given as a string. *)

val of_parts :
  ?rpc_batching:bool ->
  ?rpc_fused_scan:bool ->
  ?cursor_ttl:float ->
  ?max_cursors:int ->
  ?slow_query_ms:float ->
  p:int ->
  e:int ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  table:Secshare_store.Node_table.t ->
  unit ->
  (t, string) result
(** Assemble a database from an already-encoded node table (e.g. one
    re-opened from a page file) plus the client's secret state. *)

val create_tree : ?config:config -> Secshare_xml.Tree.t -> (t, string) result
val create_file : ?config:config -> string -> (t, string) result

val query :
  ?engine:engine ->
  ?strictness:Query_common.strictness ->
  t ->
  string ->
  (query_result, string) result
(** Parse and evaluate a query ([contains] predicates are rewritten
    into trie steps first).  Defaults: [Advanced], [Strict]. *)

val query_ast :
  ?engine:engine ->
  ?strictness:Query_common.strictness ->
  t ->
  Secshare_xpath.Ast.t ->
  (query_result, string) result

val accuracy : ?engine:engine -> t -> string -> (float, string) result
(** The paper's figure-7 quotient E/C: equality-test result size over
    containment-test result size (1.0 when both are empty). *)

type storage_stats = {
  rows : int;
  data_bytes : int;
  index_bytes : int;
  encode_stats : Encode.stats;
}

val storage_stats : t -> storage_stats

val mapping : t -> Mapping.t
val ring : t -> Secshare_poly.Ring.t
val seed : t -> Secshare_prg.Seed.t
val client_filter : t -> Client_filter.t
val table : t -> Secshare_store.Node_table.t

(** {2 Remote deployment} *)

val serve : ?send_timeout:float -> t -> path:string -> Secshare_rpc.Server.t
(** Expose this database's server half on a Unix-domain socket.  Each
    connection gets a session-scoped handler: cursors it opened are
    evicted when it disconnects.  [send_timeout] bounds each response
    write (see {!Secshare_rpc.Server.start_sessions}). *)

val open_cursors : t -> int
(** Server-side cursors currently open (for leak tests/monitoring). *)

val cursor_stats : t -> Server_filter.cursor_stats
val sweep_cursors : t -> int
(** Evict cursors idle past the configured TTL now; returns how many. *)

type session
(** A remote client: secret state plus a socket transport. *)

val connect :
  ?rpc_batching:bool ->
  ?rpc_fused_scan:bool ->
  ?timeout:float ->
  ?max_retries:int ->
  p:int ->
  e:int ->
  mapping:Mapping.t ->
  seed:Secshare_prg.Seed.t ->
  path:string ->
  unit ->
  (session, string) result
(** [timeout] bounds each RPC round trip (seconds); [max_retries]
    (default 0) retries failed idempotent calls with exponential
    backoff, transparently reconnecting a dead socket (see
    {!Secshare_rpc.Transport.policy}). *)

val session_query :
  ?engine:engine ->
  ?strictness:Query_common.strictness ->
  session ->
  string ->
  (query_result, string) result

val session_rpc_counters : session -> Secshare_rpc.Transport.counters
(** Live transport counters for the session (calls, bytes, retries,
    reconnects, timeouts). *)

val session_close : session -> unit
val close : t -> unit

(** {2 Bundles}

    A bundle is a directory holding everything needed to reopen a
    database: the server's page file ([shares.db] — safe to publish)
    and the client's secrets ([client.map], [client.seed], [config]).
    In a real deployment the two halves live on different machines;
    the bundle is the single-machine convenience form. *)

val save_bundle : t -> dir:string -> (unit, string) result
(** Write the bundle (creating [dir] if needed; existing files are
    overwritten). *)

val open_bundle :
  ?rpc_batching:bool -> ?rpc_fused_scan:bool -> dir:string -> unit -> (t, string) result
