(* A bounded map with least-recently-used eviction: a hash table over
   an intrusive doubly-linked recency list, so find/add/evict are all
   O(1).  Used for the client's share-regeneration cache, where every
   entry is recomputable — eviction can never lose information, only
   time. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most recent *)
  mutable next : ('k, 'v) node option;  (* towards least recent *)
}

type stats = { hits : int; misses : int; evictions : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.table
let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      if t.head != Some node then begin
        unlink t node;
        push_front t node
      end;
      Some node.value

let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1

let add t ~key ~value =
  (match Hashtbl.find_opt t.table key with
  | Some existing -> unlink t existing; Hashtbl.remove t.table existing.key
  | None -> ());
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let node = { key; value; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node

let find_or_add t key ~compute =
  match find t key with
  | Some v -> v
  | None ->
      let v = compute key in
      add t ~key ~value:v;
      v

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let fold t ~init ~f =
  Hashtbl.fold (fun key node acc -> f acc ~key ~value:node.value) t.table init
