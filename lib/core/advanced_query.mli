(** The [AdvancedQuery] engine (paper §5.3).

    "The AdvancedQuery takes the tree as the starting point and parses
    it from root to leaf nodes.  At each step the whole remaining
    query is taken into account.  We take advantage of the fact that
    nodes have knowledge of all descendants.  This way it is possible
    to identify dead branches early in the search process at the cost
    of more evaluations for each node."

    At every candidate the engine checks — by containment, which is
    the only look-ahead a polynomial offers — that *all* tag names
    still to be matched by the remaining query occur somewhere in the
    candidate's subtree; only then does the walk descend.  The current
    step's own match uses the configured test (containment or
    equality); descendant steps walk the tree downward level by
    level, pruning subtrees whose polynomials rule the remaining
    names out. *)

val lower :
  ?agg:Secshare_xpath.Ast.agg_func ->
  fused:bool ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  Secshare_xpath.Ast.t ->
  Plan.t
(** Lower a query to the streaming plan this engine executes: every
    step carries the look-ahead points of the remaining query, child
    steps apply them as a containment sieve (first point fused into
    the scan when [fused]), descendant steps become the pruned
    look-ahead walk.  With [agg] the plan ends in the terminal
    [Aggregate] sink.
    @raise Query_common.Query_error on an empty query, a name with
    no map entry, or a [sum]/[avg] over a non-aggregatable tag. *)

val run :
  Client_filter.t ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  Secshare_xpath.Ast.t ->
  Secshare_rpc.Protocol.node_meta list
(** Same contract as {!Simple_query.run}. *)

val run_explained :
  Client_filter.t ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  Secshare_xpath.Ast.t ->
  Secshare_rpc.Protocol.node_meta list * Metrics.op_stats list
(** Same contract as {!Simple_query.run_explained}. *)

val run_value :
  Client_filter.t ->
  mapping:Mapping.t ->
  strictness:Query_common.strictness ->
  agg:Secshare_xpath.Ast.agg_func ->
  Secshare_xpath.Ast.t ->
  Query_common.value * Metrics.op_stats list
(** Same contract as {!Simple_query.run_value}. *)
