module Cyclic = Secshare_poly.Cyclic

let client ring ~seed ~pre = Secshare_prg.Node_prg.client_poly ~ring ~seed ~pre
let server_share ring ~seed ~pre f = Cyclic.sub ring f (client ring ~seed ~pre)
let reconstruct ring ~seed ~pre ~server = Cyclic.add ring (client ring ~seed ~pre) server
let combine_evaluations (ring : Secshare_poly.Ring.t) ~client ~server =
  ring.Secshare_poly.Ring.add client server

(* --- Shamir t-of-n re-sharing of the server share (lib/shard) ---

   The 2-party split above is unchanged: client + server = f.  Sharded
   serving re-shares the SERVER half coefficient-wise across n shard
   servers so any t reconstruct it and t-1 learn nothing beyond what
   one server already held (a uniform masking of f).  Packing is
   byte-compatible with the single-server share format: every shard
   table row is a valid [Codec]-packed coefficient vector, so the flat
   kernels evaluate shard shares unchanged. *)

module Shamir = Secshare_poly.Shamir
module Codec = Secshare_poly.Codec
module Ring = Secshare_poly.Ring

let shard_xs ~shards = List.init shards (fun i -> i + 1)

let check_shards (ring : Ring.t) ~threshold ~shards =
  if shards < 1 then invalid_arg "Share.shard: shards < 1";
  if threshold < 1 || threshold > shards then
    invalid_arg
      (Printf.sprintf "Share.shard: threshold %d outside [1, %d]" threshold shards);
  if shards >= ring.Ring.order then
    invalid_arg
      (Printf.sprintf
         "Share.shard: %d shards need %d distinct nonzero x-coordinates but the \
          field has only %d"
         shards shards
         (ring.Ring.order - 1))

let shard_server_share (ring : Ring.t) ~threshold ~shards ~gen packed =
  check_shards ring ~threshold ~shards;
  let q = ring.Ring.order and n = ring.Ring.n in
  let coeffs = Codec.unpack ~q ~n packed in
  Shamir.share_vector ring ~threshold ~xs:(shard_xs ~shards) ~gen coeffs
  |> List.map (Codec.pack ~q)

let shard_lambdas (ring : Ring.t) ~xs = Shamir.lambdas_at_zero ring ~xs

let reconstruct_packed (ring : Ring.t) ~lambdas packed_shares =
  let q = ring.Ring.order and n = ring.Ring.n in
  Shamir.combine_vectors ring ~lambdas (List.map (Codec.unpack ~q ~n) packed_shares)
  |> Codec.pack ~q

let combine_threshold_evaluations (ring : Ring.t) ~lambdas values =
  Shamir.combine ring ~lambdas values
