module Cyclic = Secshare_poly.Cyclic

let client ring ~seed ~pre = Secshare_prg.Node_prg.client_poly ~ring ~seed ~pre
let server_share ring ~seed ~pre f = Cyclic.sub ring f (client ring ~seed ~pre)
let reconstruct ring ~seed ~pre ~server = Cyclic.add ring (client ring ~seed ~pre) server
let combine_evaluations (ring : Secshare_poly.Ring.t) ~client ~server =
  ring.Secshare_poly.Ring.add client server
