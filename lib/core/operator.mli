(** Batch-pull execution of a {!Plan}.

    Volcano-style streaming, batch-at-a-time: {!build} turns a plan
    into a chain of operators, {!next} pulls one bounded batch of node
    metadata from an operator (pulling upstream on demand), and
    {!drain} runs the chain to exhaustion with guaranteed teardown —
    server cursors opened by scans are closed eagerly when an operator
    stops early (a satisfied [Limit], an exception mid-query) instead
    of lingering until TTL eviction.

    Every operator carries a {!Metrics.op_stats} record: batches and
    rows in/out, evaluation pairs, and the RPC calls/bytes and
    (cumulative) wall time attributable to it — the data behind
    [--explain]. *)

type t

type batch = Secshare_rpc.Protocol.node_meta array

val build : Client_filter.t -> Plan.t -> t list
(** Operators in plan order; the last element is the sink to drain.
    Whether scans use the fused [Scan_eval] protocol or per-parent
    [Children] / cursor calls follows
    {!Client_filter.fused_scan}. @raise Invalid_argument on a plan
    whose first operator is not a source. *)

val next : t -> batch option
(** One batch, or [None] when the stream is dry.  Batches are
    unordered and may be empty only at the source level; operators
    skip empty intermediate results. *)

val close : t -> unit
(** Release the operator's server-side resources (idempotent). *)

val stats : t -> Metrics.op_stats

val agg_value : t -> Query_common.value option
(** The result deposited by an [Aggregate] sink once it has been
    drained; [None] on every other operator (and before draining). *)

val drain : t list -> Secshare_rpc.Protocol.node_meta list
(** Pull every batch from the sink, then close every operator (also on
    exception).  Row order is arrival order — callers sort. *)

val stats_list : t list -> Metrics.op_stats list
(** A snapshot of every operator's counters, in plan order. *)

val run : Client_filter.t -> Plan.t -> Secshare_rpc.Protocol.node_meta list
(** [build] + [drain]. *)
