module Ast = Secshare_xpath.Ast

(* The query plan IR: a linear chain of batch-streaming operators
   lowered from an XPath AST.  XPath location paths are themselves
   linear, so the plan is a list — each operator pulls batches from
   the one before it (Volcano style, but batch-at-a-time rather than
   tuple-at-a-time).

   The IR is *physical*: lowering already decided whether a name
   step's containment test rides inside the scan (the fused
   [Scan_eval] protocol path) or runs as a separate [Filter_containment]
   round trip, so [to_string]/[--explain] show exactly what executes. *)

type axis_scan =
  | Root_scan  (** the document root (children of the virtual node 0) *)
  | Child_scan  (** children of every input node *)
  | Descendant_scan of { include_self : bool }
      (** descendants of every input node; [include_self] also emits
          the input nodes themselves (the first [//] step, where the
          context is the virtual document node) *)

type op =
  | Scan of { axis : axis_scan; eval : int option }
      (** [eval] is a containment point fused into the scan: scanned
          rows come back with server evaluations and only the rows
          containing the point survive *)
  | Pruned_scan of { prune : int list; include_self : bool }
      (** the advanced engine's look-ahead descendant walk: descend
          level by level, keeping (and descending into) only nodes
          whose subtree contains every prune point — dead branches are
          never entered *)
  | Parent_step  (** parent of every input node *)
  | Filter_containment of { points : int list }
      (** keep nodes whose subtree contains every point; applied one
          point at a time over each batch, so a node drops out at its
          first failing point *)
  | Filter_equality of { point : int }
      (** keep nodes themselves mapped to the point (strict test:
          reconstruction + child-product division) *)
  | Dedup  (** drop nodes already emitted (pre-keyed hash buffer) *)
  | Limit of int  (** stop the pipeline after this many rows *)
  | Aggregate of { func : Ast.agg_func; scale : int }
      (** terminal sink: drain the pipeline, then fold the matched set
          into one number — [Count] client-side, [Sum]/[Avg] with a
          single constant-size [Agg_eval] round trip over the numeric
          share column ([scale] is the column's fixed-point scale) *)

type t = op list

let axis_to_string = function
  | Root_scan -> "scan-root"
  | Child_scan -> "scan-children"
  | Descendant_scan { include_self = false } -> "scan-descendants"
  | Descendant_scan { include_self = true } -> "scan-descendants(+self)"

let points_to_string points = String.concat "," (List.map string_of_int points)

let op_to_string = function
  | Scan { axis; eval = None } -> axis_to_string axis
  | Scan { axis; eval = Some p } -> Printf.sprintf "%s+eval@%d" (axis_to_string axis) p
  | Pruned_scan { prune; include_self } ->
      Printf.sprintf "pruned-scan%s[%s]"
        (if include_self then "(+self)" else "")
        (points_to_string prune)
  | Parent_step -> "parent"
  | Filter_containment { points } ->
      (Printf.sprintf "filter-containment[%s]" (points_to_string points)
      [@lint.suppress
        "secret-sink" ~reason:"client-side --explain; labels use op_base_name"])
  | Filter_equality { point } ->
      (Printf.sprintf "filter-equality@%d" point
      [@lint.suppress "secret-sink" ~reason:"same: --explain runs on the trusted client"])
  | Dedup -> "dedup"
  | Limit n -> Printf.sprintf "limit(%d)" n
  | Aggregate { func; scale } ->
      if scale = 0 then Printf.sprintf "aggregate(%s)" (Ast.func_to_string func)
      else Printf.sprintf "aggregate(%s,scale=%d)" (Ast.func_to_string func) scale

let to_string plan = String.concat " -> " (List.map op_to_string plan)
let pp fmt plan = Format.pp_print_string fmt (to_string plan)
