(** The deployment descriptor of a sharded database.

    [ssdb_encode --shards n --threshold t] writes one table file per
    shard plus one manifest next to each; servers load theirs and
    answer the [Manifest] handshake with it; the router collects the
    manifests from every shard, checks that they describe one
    deployment, and derives its routing table from the [bounds].

    Two facts the manifest records:

    - the {e threshold geometry} ([shards], [threshold], [shard_id]):
      every shard stores {e all} rows, each row carrying that shard's
      Shamir share of the server polynomial (x-coordinate =
      [shard_id]), so any [threshold] shards serve any row and up to
      [shards - threshold] may be down;
    - the {e pre-range partition overlay} ([bounds]): ascending
      partition start [pre]s used purely for routing — partition [k]
      spans [bounds.(k)] up to [bounds.(k+1)] (the last unbounded) and
      is served by a rotating group of [threshold] shards, spreading
      scan load across the deployment. *)

type t = {
  shard_id : int;  (** 1-based Shamir x-coordinate; 0 names a router *)
  shards : int;  (** n: shard servers in the deployment *)
  threshold : int;  (** t: shards needed to reconstruct *)
  p : int;  (** field characteristic of the encoded shares *)
  e : int;  (** field extension degree *)
  rows : int;  (** rows of the full table (each shard holds all of them) *)
  bounds : int array;  (** ascending partition start [pre]s, non-empty *)
}

val validate : t -> (unit, string) result
(** Structural sanity: [1 <= threshold <= shards], [shard_id] in
    [0, shards], non-negative [rows], and strictly ascending non-empty
    [bounds]. *)

val group_consistent : t list -> (t, string) result
(** Check that a list of shard manifests describes one deployment —
    identical geometry, field, rows and bounds; distinct in-range
    shard ids — and return the group summary (the first manifest with
    [shard_id = 0]). *)

val partitions : t -> int
val partition_of : t -> pre:int -> int
(** The partition index whose [pre] window contains [pre] (pres below
    [bounds.(0)] fall into partition 0). *)

val to_info : t -> Secshare_rpc.Protocol.manifest_info
val of_info : p:int -> e:int -> Secshare_rpc.Protocol.manifest_info -> t
(** Convert to/from the wire handshake, which does not carry the field
    parameters (those are deployment config the client already has). *)

val shard_db_path : string -> int -> string
(** [shard_db_path base i] is the table file of shard [i]:
    ["base.shard<i>"]. *)

val manifest_path : string -> string
(** The manifest written next to a table file: ["<db>.manifest"]. *)

val save : string -> t -> unit
val load : string -> (t, string) result
(** Key-value text format, one [key = value] per line ([bounds]
    comma-separated); [load] reports missing or malformed fields. *)
