(** Offline dealer: split an encoded table into [n] shard tables.

    Every row of the source table is re-shared coefficient-wise with
    {!Secshare_core.Share.shard_server_share}: shard [i]'s table holds
    the same [pre]/[post]/[parent] numbers and a packed Shamir share
    of the server polynomial evaluated at x-coordinate [i].  The
    dealer's randomness is drawn from the seeded PRG keyed by the
    row's [pre], so a split is reproducible from the dealer seed — and
    the seed must be {e discarded} after the split (anyone holding it
    can strip the threshold masking down to the ordinary single-server
    share, which is still uniform but defeats the t-of-n property). *)

val bounds_of_table : shards:int -> Secshare_store.Node_table.t -> int array
(** Balanced partition start [pre]s: [shards] windows holding roughly
    equal row counts, derived from the sorted [pre]s of the table.
    Strictly ascending even on tiny tables (later windows may then be
    empty, which only costs routing balance, never correctness). *)

val split_table :
  Secshare_poly.Ring.t ->
  threshold:int ->
  shards:int ->
  dealer_seed:Secshare_prg.Seed.t ->
  source:Secshare_store.Node_table.t ->
  sinks:Secshare_store.Node_table.t array ->
  Manifest.t array
(** Re-share every row of [source] into the [shards] tables of [sinks]
    (index [i] receives x-coordinate [i + 1]'s shares) and return the
    per-shard manifests, bounds included.  Rows are inserted in the
    source's insertion order, so shard tables scan in the same order
    the single-server table does.
    @raise Invalid_argument if [sinks] has the wrong length or the
    threshold geometry is invalid for the ring. *)

val split_numbers :
  threshold:int ->
  shards:int ->
  dealer_seed:Secshare_prg.Seed.t ->
  source:Secshare_store.Node_table.t ->
  sinks:Secshare_store.Node_table.t array ->
  unit
(** Shamir-share the numeric column: every 8-byte F_M cell of [source]
    becomes [shards] evaluations of a degree-[threshold - 1]
    polynomial over {!Secshare_core.Numeric}'s field (shard [i]
    receives x = [i + 1]), so any [threshold] shards recombine per-row
    values — and, by linearity, per-shard partial {e sums} — with
    {!Secshare_core.Numeric.lambdas_at_zero}.  Use the same
    (discarded) dealer seed as {!split_table}: the numeric dealer
    draws are domain-separated from the polynomial ones.
    @raise Invalid_argument if [sinks] has the wrong length or a cell
    is not a normalized field element. *)
