(* Deployment descriptor for sharded serving (see manifest.mli). *)

module Protocol = Secshare_rpc.Protocol

type t = {
  shard_id : int;
  shards : int;
  threshold : int;
  p : int;
  e : int;
  rows : int;
  bounds : int array;
}

let validate m =
  if m.shards < 1 then Error (Printf.sprintf "manifest: shards = %d < 1" m.shards)
  else if m.threshold < 1 || m.threshold > m.shards then
    Error
      (Printf.sprintf "manifest: threshold %d outside [1, %d]" m.threshold m.shards)
  else if m.shard_id < 0 || m.shard_id > m.shards then
    Error
      (Printf.sprintf "manifest: shard_id %d outside [0, %d]" m.shard_id m.shards)
  else if m.rows < 0 then Error (Printf.sprintf "manifest: rows = %d < 0" m.rows)
  else if Array.length m.bounds = 0 then Error "manifest: empty bounds"
  else begin
    let ascending = ref true in
    Array.iteri
      (fun i b -> if i > 0 && b <= m.bounds.(i - 1) then ascending := false)
      m.bounds;
    if not !ascending then Error "manifest: bounds not strictly ascending"
    else Ok ()
  end

let same_deployment a b =
  a.shards = b.shards && a.threshold = b.threshold && a.p = b.p && a.e = b.e
  && a.rows = b.rows && a.bounds = b.bounds

let group_consistent = function
  | [] -> Error "manifest group: no shards"
  | first :: _ as all -> (
      let rec check seen = function
        | [] -> Ok { first with shard_id = 0 }
        | m :: rest -> (
            match validate m with
            | Error _ as e -> e
            | Ok () ->
                if not (same_deployment first m) then
                  Error
                    (Printf.sprintf
                       "manifest group: shard %d disagrees with shard %d on the \
                        deployment"
                       m.shard_id first.shard_id)
                else if m.shard_id < 1 then
                  Error "manifest group: member with router shard_id 0"
                else if List.mem m.shard_id seen then
                  Error
                    (Printf.sprintf "manifest group: duplicate shard_id %d" m.shard_id)
                else check (m.shard_id :: seen) rest)
      in
      check [] all)

let partitions m = Array.length m.bounds

let partition_of m ~pre =
  (* bounds is tiny (one entry per partition); a linear walk reads
     better than a binary search here *)
  let k = ref 0 in
  Array.iteri (fun i b -> if b <= pre then k := i) m.bounds;
  !k

let to_info m =
  {
    Protocol.shard_id = m.shard_id;
    shards = m.shards;
    threshold = m.threshold;
    total_rows = m.rows;
    bounds = Array.to_list m.bounds;
  }

let of_info ~p ~e (i : Protocol.manifest_info) =
  {
    shard_id = i.Protocol.shard_id;
    shards = i.Protocol.shards;
    threshold = i.Protocol.threshold;
    p;
    e;
    rows = i.Protocol.total_rows;
    bounds = Array.of_list i.Protocol.bounds;
  }

let shard_db_path base i = Printf.sprintf "%s.shard%d" base i
let manifest_path db = db ^ ".manifest"

let save path m =
  let bounds =
    String.concat "," (List.map string_of_int (Array.to_list m.bounds))
  in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc
        "# secshare shard manifest\n\
         shard_id = %d\n\
         shards = %d\n\
         threshold = %d\n\
         p = %d\n\
         e = %d\n\
         rows = %d\n\
         bounds = %s\n"
        m.shard_id m.shards m.threshold m.p m.e m.rows bounds)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      let table = Hashtbl.create 8 in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line <> "" && line.[0] <> '#' then
            match String.index_opt line '=' with
            | Some i ->
                let key = String.trim (String.sub line 0 i) in
                let value =
                  String.trim (String.sub line (i + 1) (String.length line - i - 1))
                in
                Hashtbl.replace table key value
            | None -> ())
        (String.split_on_char '\n' contents);
      let int_field key =
        match Hashtbl.find_opt table key with
        | None -> Error (Printf.sprintf "manifest %s: missing %s" path key)
        | Some v -> (
            match int_of_string_opt v with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "manifest %s: %s is not an integer" path key))
      in
      let ( let* ) r f = Result.bind r f in
      let* shard_id = int_field "shard_id" in
      let* shards = int_field "shards" in
      let* threshold = int_field "threshold" in
      let* p = int_field "p" in
      let* e = int_field "e" in
      let* rows = int_field "rows" in
      let* bounds =
        match Hashtbl.find_opt table "bounds" with
        | None -> Error (Printf.sprintf "manifest %s: missing bounds" path)
        | Some v -> (
            let parts = String.split_on_char ',' v in
            match
              List.map (fun s -> int_of_string_opt (String.trim s)) parts
            with
            | ints when List.for_all Option.is_some ints ->
                Ok (Array.of_list (List.map Option.get ints))
            | _ -> Error (Printf.sprintf "manifest %s: malformed bounds" path))
      in
      let m = { shard_id; shards; threshold; p; e; rows; bounds } in
      match validate m with Error msg -> Error msg | Ok () -> Ok m)
