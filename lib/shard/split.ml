(* Offline dealer for sharded serving (see split.mli). *)

module Ring = Secshare_poly.Ring
module Node_table = Secshare_store.Node_table
module Page = Secshare_store.Page
module Share = Secshare_core.Share
module Node_prg = Secshare_prg.Node_prg

let bounds_of_table ~shards table =
  if shards < 1 then invalid_arg "Split.bounds_of_table: shards < 1";
  let pres = ref [] in
  Node_table.iter table ~f:(fun row -> pres := row.Page.pre :: !pres);
  let pres = Array.of_list !pres in
  Array.sort compare pres;
  let rows = Array.length pres in
  let bounds = Array.make shards 0 in
  for k = 0 to shards - 1 do
    let target = if rows = 0 then k + 1 else pres.(k * rows / shards) in
    (* keep the windows strictly ascending even when the balanced
       candidates collide (tiny tables) *)
    bounds.(k) <- (if k = 0 then target else max target (bounds.(k - 1) + 1))
  done;
  bounds

let split_table (ring : Ring.t) ~threshold ~shards ~dealer_seed ~source ~sinks =
  if Array.length sinks <> shards then
    invalid_arg
      (Printf.sprintf "Split.split_table: %d sinks for %d shards"
         (Array.length sinks) shards);
  let q = ring.Ring.order and n = ring.Ring.n in
  let draws_per_row = (threshold - 1) * n in
  Node_table.iter source ~f:(fun row ->
      (* one PRG stream per row, keyed by pre: threshold - 1 dealer
         draws per coefficient, consumed left to right *)
      let draws =
        Node_prg.coefficients ~seed:dealer_seed ~pre:row.Page.pre ~q
          ~count:draws_per_row
      in
      let next = ref 0 in
      let gen () =
        let v = draws.(!next) in
        incr next;
        v
      in
      let shares =
        Share.shard_server_share ring ~threshold ~shards ~gen row.Page.share
      in
      List.iteri
        (fun i share -> Node_table.insert sinks.(i) { row with Page.share })
        shares);
  let bounds = bounds_of_table ~shards source in
  let rows = Node_table.row_count source in
  Array.init shards (fun i ->
      {
        Manifest.shard_id = i + 1;
        shards;
        threshold;
        p = ring.Ring.characteristic;
        e = ring.Ring.degree;
        rows;
        bounds;
      })

let split_numbers ~threshold ~shards ~dealer_seed ~source ~sinks =
  if Array.length sinks <> shards then
    invalid_arg
      (Printf.sprintf "Split.split_numbers: %d sinks for %d shards"
         (Array.length sinks) shards);
  let module Numeric = Secshare_core.Numeric in
  let xs = List.init shards (fun i -> i + 1) in
  Node_table.iter source ~f:(fun row ->
      (* one dealer stream per row, domain-separated from the
         polynomial dealer's draws *)
      let draws =
        Numeric.dealer_draws ~seed:dealer_seed ~pre:row.Page.pre
          ~count:(threshold - 1)
      in
      let next = ref 0 in
      let gen () =
        let v = draws.(!next) in
        incr next;
        v
      in
      let value = Numeric.of_bytes row.Page.share in
      let shares = Numeric.shard_value ~threshold ~gen ~xs value in
      List.iteri
        (fun i v ->
          Node_table.insert sinks.(i) { row with Page.share = Numeric.to_bytes v })
        shares)
