(* The shard router (see router.mli).

   One invariant carries the whole file: shard scans are
   DETERMINISTIC.  Every shard stores the same rows in the same order
   (only the share bytes differ), so issuing identical sub-targets
   with identical batch sizes to the [threshold] members of a group
   yields identical metadata streams — the router zip-merges them row
   by row, folds the evaluations with the group's Lagrange
   multipliers, and any metadata mismatch is a hard "streams diverged"
   error rather than a silent wrong answer.

   Failure discipline: a transport-level failure (probed by [Ping])
   marks the shard dead and the work fails over; an application error
   from a live shard propagates to the client untouched.  Mid-scan
   failover reopens the active sub-target on a fresh group and
   skip-drains the rows already merged. *)

module Protocol = Secshare_rpc.Protocol
module Transport = Secshare_rpc.Transport
module Ring = Secshare_poly.Ring
module Share = Secshare_core.Share
module Numeric = Secshare_core.Numeric
module Obs = Secshare_obs

exception Unavailable of string
exception App_error of string
exception Diverged of string
exception Member_down

type shard = {
  id : int;  (* 1-based Shamir x-coordinate *)
  transport : Transport.t;
  mutable alive : bool;
  calls : Obs.Registry.counter;
}

(* One member of the group serving the active scan sub-target. *)
type member = { shard : shard; mutable remote : int option }

type active = {
  target : Protocol.scan_target;
  partition : int;
  mutable members : member list;
  mutable lambdas : int list;
  mutable opened : bool;
  mutable exhausted : bool;
  mutable merged : int;  (* rows already combined and handed out *)
  mutable skip : int;  (* rows to discard after a failover reopen *)
}

type scan_state = {
  points : int list;
  mutable pending : (int * Protocol.scan_target) list;
      (* (partition, sub-target) pieces not yet opened, in emission order *)
  mutable active : active option;
}

type legacy_state = {
  l_pre : int;
  l_post : int;
  mutable l_shard : shard;
  mutable l_remote : int;
  mutable l_emitted : int;
  mutable l_done : bool;
}

type cursor_kind = Scan of scan_state | Legacy of legacy_state
type cursor = { kind : cursor_kind; mutable last_used : int }

type t = {
  ring : Ring.t;
  manifest : Manifest.t;  (* group summary, shard_id = 0 *)
  members_by_id : shard array;  (* shard id i at index i - 1 *)
  cursors : (int, cursor) Hashtbl.t;
  mutable next_cursor : int;
  mutable ticks : int;
  max_cursors : int;
  lock : Mutex.t;  (* guards the cursor table and its accounting only *)
  failovers : Obs.Registry.counter;
  live_gauge : Obs.Registry.gauge;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let manifest t = t.manifest
let shards t = t.manifest.Manifest.shards
let threshold t = t.manifest.Manifest.threshold

let live_shards t =
  Array.fold_left (fun acc s -> if s.alive then acc + 1 else acc) 0 t.members_by_id

let mark_dead t shard =
  if shard.alive then begin
    shard.alive <- false;
    Obs.Registry.inc t.failovers;
    Obs.Registry.gauge_set t.live_gauge (live_shards t);
    (* topology only: never query content *)
    Obs.Events.info "router: shard %d marked dead (%d of %d live, threshold %d)"
      shard.id (live_shards t) (shards t) (threshold t)
  end

let kill_shard t id =
  if id >= 1 && id <= Array.length t.members_by_id then
    mark_dead t t.members_by_id.(id - 1)

(* One call to one shard.  An [Error_msg] reply is ambiguous — the
   transport wraps its own failures in it too — so probe with a [Ping]:
   a live shard answering the probe means the error was the
   application's and must propagate; a dead probe means the shard is
   gone and the caller should fail over. *)
let call_shard t shard request =
  Obs.Registry.inc shard.calls;
  match Transport.call shard.transport request with
  | Protocol.Error_msg msg -> (
      match Transport.call shard.transport Protocol.Ping with
      | Protocol.Pong -> raise (App_error msg)
      | _ ->
          mark_dead t shard;
          raise Member_down)
  | response -> response

(* The group of [threshold] live shards serving a partition: walk the
   ring of shards from [partition mod n] so different partitions land
   on different (rotated) groups — the load-spreading overlay. *)
let group_for t ~partition =
  let n = Array.length t.members_by_id in
  let needed = threshold t in
  let start = ((partition mod n) + n) mod n in
  let rec collect acc count i =
    if count = needed then List.rev acc
    else if i = n then
      raise
        (Unavailable
           (Printf.sprintf "%d of %d shards live but the threshold is %d"
              (live_shards t) n needed))
    else
      let s = t.members_by_id.((start + i) mod n) in
      if s.alive then collect (s :: acc) (count + 1) (i + 1)
      else collect acc count (i + 1)
  in
  collect [] 0 0

let lambdas_of t group = Share.shard_lambdas t.ring ~xs:(List.map (fun s -> s.id) group)

(* Run [f] against a fresh group, retrying with the survivors whenever
   a member dies mid-flight.  Only for stateless (idempotent) work —
   scans carry their own failover. *)
let rec on_group : 'a. t -> partition:int -> (shard list -> int list -> 'a) -> 'a =
 fun t ~partition f ->
  let group = group_for t ~partition in
  match f group (lambdas_of t group) with
  | v -> v
  | exception Member_down -> on_group t ~partition f

let rec on_one : 'a. t -> partition:int -> (shard -> 'a) -> 'a =
 fun t ~partition f ->
  match group_for t ~partition with
  | [] -> assert false (* threshold >= 1 *)
  | s :: _ -> ( match f s with v -> v | exception Member_down -> on_one t ~partition f)

(* --- combining --- *)

let rec transpose = function
  | [] -> []
  | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)

let combine_points t ~lambdas member_vals =
  List.map
    (fun column -> Share.combine_threshold_evaluations t.ring ~lambdas column)
    (transpose member_vals)

(* --- scan sub-targets --- *)

let partition_of t pre = Manifest.partition_of t.manifest ~pre

(* Group consecutive items sharing a key, preserving order. *)
let runs ~key items =
  List.fold_left
    (fun acc item ->
      let k = key item in
      match acc with
      | (k', run) :: rest when k' = k -> (k', item :: run) :: rest
      | _ -> (k, [ item ]) :: acc)
    [] items
  |> List.rev_map (fun (k, run) -> (k, List.rev run))

(* Cut one bounded range at the partition boundaries.  Exact because
   subtree ranges are pre-contiguous and the below-post stop is
   monotone in pre: pieces past the true stop simply emit nothing. *)
let split_bounded t (from_pre, until_pre, below_post) =
  let bounds = t.manifest.Manifest.bounds in
  let m = Array.length bounds in
  let k0 = Manifest.partition_of t.manifest ~pre:from_pre in
  let rec go k acc =
    if k >= m || bounds.(k) >= until_pre then List.rev acc
    else begin
      let lo = max from_pre bounds.(k) in
      let hi = if k + 1 < m then min until_pre bounds.(k + 1) else until_pre in
      let acc = if lo < hi then (k, (lo, hi, below_post)) :: acc else acc in
      go (k + 1) acc
    end
  in
  (* the first partition's window starts below bounds.(k0) only for
     pres before bounds.(0); from_pre itself is always inside k0 *)
  let first_lo = from_pre in
  let first_hi =
    if k0 + 1 < m then min until_pre bounds.(k0 + 1) else until_pre
  in
  let first = if first_lo < first_hi then [ (k0, (first_lo, first_hi, below_post)) ] else [] in
  first @ go (k0 + 1) []

let sub_targets t target =
  match target with
  | Protocol.Children_of parents ->
      runs parents ~key:(fun parent -> partition_of t parent)
      |> List.map (fun (partition, run) -> (partition, Protocol.Children_of run))
  | Protocol.Pre_ranges ranges ->
      (* normalise exactly like the single server, then split *)
      Secshare_core.Server_filter.dedup_ranges ranges
      |> List.concat_map (fun (from_pre, below_post) ->
             split_bounded t (from_pre, max_int, below_post))
      |> runs ~key:fst
      |> List.map (fun (partition, run) ->
             (partition, Protocol.Bounded_pre_ranges (List.map snd run)))
  | Protocol.Bounded_pre_ranges ranges ->
      List.sort compare ranges
      |> List.filter (fun (a, u, _) -> a < u)
      |> List.concat_map (fun piece -> split_bounded t piece)
      |> runs ~key:fst
      |> List.map (fun (partition, run) ->
             (partition, Protocol.Bounded_pre_ranges (List.map snd run)))

(* Unbounded pieces carry [max_int] internally; the wire caps a u32.
   Pres are below 2^31, so the cap is still past every row. *)
let max_wire_pre = 0xFFFFFFFF

let wire_target = function
  | Protocol.Bounded_pre_ranges pieces ->
      Protocol.Bounded_pre_ranges
        (List.map
           (fun (a, u, b) -> (a, min u max_wire_pre, min b max_wire_pre))
           pieces)
  | target -> target

(* --- the lockstep scan merge --- *)

let fresh_active t (partition, target) =
  let group = group_for t ~partition in
  {
    target;
    partition;
    members = List.map (fun s -> { shard = s; remote = None }) group;
    lambdas = lambdas_of t group;
    opened = false;
    exhausted = false;
    merged = 0;
    skip = 0;
  }

let close_active_members _t active =
  List.iter
    (fun m ->
      (match m.remote with
      | Some c -> (
          (* best effort: the shard may be the one that just died *)
          try ignore (Transport.call m.shard.transport (Protocol.Cursor_close c))
          with _ -> ())
      | None -> ());
      m.remote <- None)
    active.members

let failover_active t active =
  close_active_members t active;
  let group = group_for t ~partition:active.partition in
  active.members <- List.map (fun s -> { shard = s; remote = None }) group;
  active.lambdas <- lambdas_of t group;
  active.opened <- false;
  active.exhausted <- false;
  active.skip <- active.merged

(* One lockstep round: the same request size to every member, metas
   zip-checked, values folded with the lambdas. *)
let pull_round t scan active ~req =
  let per_member =
    List.map
      (fun m ->
        let request =
          if not active.opened then
            Protocol.Scan_eval
              { target = wire_target active.target; points = scan.points; max_items = req }
          else
            match m.remote with
            | Some c -> Protocol.Scan_next { cursor = c; max_items = req }
            | None -> raise (Diverged "shard scan cursor missing mid-stream")
        in
        match call_shard t m.shard request with
        | Protocol.Scan_batch { rows; cursor } ->
            m.remote <- cursor;
            (m, Array.of_list rows)
        | response ->
            raise
              (Diverged
                 (Format.asprintf "unexpected scan reply from shard %d: %a" m.shard.id
                    Protocol.pp_response response)))
      active.members
  in
  active.opened <- true;
  let arrays = List.map snd per_member in
  let first =
    match arrays with [] -> raise (Unavailable "scan group is empty") | a :: _ -> a
  in
  List.iter
    (fun a ->
      if Array.length a <> Array.length first then
        raise (Diverged "shard scan streams diverged (row counts differ)"))
    arrays;
  let exhausted_members = List.filter (fun (m, _) -> m.remote = None) per_member in
  let exhausted = List.length exhausted_members = List.length per_member in
  if (not exhausted) && exhausted_members <> [] then
    raise (Diverged "shard scan streams diverged (cursor state differs)");
  if exhausted then active.exhausted <- true;
  Array.to_list
    (Array.mapi
       (fun i (meta, _) ->
         let member_vals =
           List.map
             (fun a ->
               let m, values = a.(i) in
               if m <> meta then
                 raise (Diverged "shard scan streams diverged (row metadata differs)");
               values)
             arrays
         in
         (meta, combine_points t ~lambdas:active.lambdas member_vals))
       first)

let scan_more scan =
  (match scan.active with Some a -> not a.exhausted | None -> false)
  || scan.pending <> []

(* Collect up to [want] combined rows, advancing through sub-targets
   and failing over dead members as needed. *)
let rec fill t scan ~want acc =
  if want <= 0 then List.concat (List.rev acc)
  else
    match scan.active with
    | None -> (
        match scan.pending with
        | [] -> List.concat (List.rev acc)
        | sub :: rest ->
            scan.pending <- rest;
            scan.active <- Some (fresh_active t sub);
            fill t scan ~want acc)
    | Some active ->
        if active.exhausted then begin
          scan.active <- None;
          fill t scan ~want acc
        end
        else begin
          let req = if active.skip > 0 then min active.skip 512 else want in
          match pull_round t scan active ~req with
          | rows when active.skip > 0 ->
              active.skip <- active.skip - List.length rows;
              fill t scan ~want acc
          | rows ->
              active.merged <- active.merged + List.length rows;
              fill t scan ~want:(want - List.length rows) (rows :: acc)
          | exception Member_down ->
              failover_active t active;
              fill t scan ~want acc
        end

(* --- cursor table (mutex-guarded; network calls stay outside) --- *)

let close_cursor_remotes t cursor =
  match cursor.kind with
  | Scan scan -> (
      scan.pending <- [];
      match scan.active with
      | Some active ->
          close_active_members t active;
          scan.active <- None
      | None -> ())
  | Legacy st ->
      if not st.l_done then (
        try ignore (Transport.call st.l_shard.transport (Protocol.Cursor_close st.l_remote))
        with _ -> ())

let register_cursor t kind =
  let victim =
    with_lock t (fun () ->
        if Hashtbl.length t.cursors >= t.max_cursors then begin
          let victim_id = ref (-1) and victim_ts = ref max_int in
          Hashtbl.iter
            (fun id c ->
              if c.last_used < !victim_ts then begin
                victim_id := id;
                victim_ts := c.last_used
              end)
            t.cursors;
          match Hashtbl.find_opt t.cursors !victim_id with
          | Some c ->
              Hashtbl.remove t.cursors !victim_id;
              Some c
          | None -> None
        end
        else None)
  in
  Option.iter (close_cursor_remotes t) victim;
  with_lock t (fun () ->
      let id = t.next_cursor in
      t.next_cursor <- id + 1;
      t.ticks <- t.ticks + 1;
      Hashtbl.replace t.cursors id { kind; last_used = t.ticks };
      id)

let find_cursor t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.cursors id with
      | Some c ->
          t.ticks <- t.ticks + 1;
          c.last_used <- t.ticks;
          Some c.kind
      | None -> None)

let take_cursor t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.cursors id with
      | Some c ->
          Hashtbl.remove t.cursors id;
          Some c
      | None -> None)

let open_cursors t = with_lock t (fun () -> Hashtbl.length t.cursors)

(* --- legacy descendants cursors --- *)

let open_legacy t ~pre ~post =
  on_one t ~partition:(partition_of t pre) (fun shard ->
      match call_shard t shard (Protocol.Descendants { pre; post }) with
      | Protocol.Cursor c ->
          { l_pre = pre; l_post = post; l_shard = shard; l_remote = c;
            l_emitted = 0; l_done = false }
      | response ->
          raise
            (Diverged
               (Format.asprintf "unexpected descendants reply: %a"
                  Protocol.pp_response response)))

(* Reopen the subtree cursor on a survivor and discard what the client
   already received. *)
let legacy_failover t st =
  on_one t ~partition:(partition_of t st.l_pre) (fun shard ->
      match call_shard t shard (Protocol.Descendants { pre = st.l_pre; post = st.l_post }) with
      | Protocol.Cursor c ->
          st.l_shard <- shard;
          st.l_remote <- c;
          let rec skip remaining =
            if remaining > 0 then
              match
                call_shard t shard
                  (Protocol.Cursor_next { cursor = c; max_items = min remaining 512 })
              with
              | Protocol.Batch (items, done_) ->
                  let got = List.length items in
                  if got > remaining || (got < remaining && (done_ || got = 0)) then
                    raise (Diverged "descendants stream shorter after failover")
                  else if done_ then st.l_done <- true
                  else skip (remaining - got)
              | response ->
                  raise
                    (Diverged
                       (Format.asprintf "unexpected batch reply: %a"
                          Protocol.pp_response response))
          in
          skip st.l_emitted
      | response ->
          raise
            (Diverged
               (Format.asprintf "unexpected descendants reply: %a"
                  Protocol.pp_response response)))

let rec legacy_next t st ~max_items =
  if st.l_done then ([], true)
  else
    match call_shard t st.l_shard (Protocol.Cursor_next { cursor = st.l_remote; max_items }) with
    | Protocol.Batch (items, done_) ->
        st.l_emitted <- st.l_emitted + List.length items;
        if done_ then st.l_done <- true;
        (items, done_)
    | Protocol.Error_msg msg -> raise (App_error msg)
    | response ->
        raise
          (Diverged
             (Format.asprintf "unexpected batch reply: %a" Protocol.pp_response
                response))
    | exception Member_down ->
        legacy_failover t st;
        legacy_next t st ~max_items

(* --- grouped point operations --- *)

let eval_one t ~pre ~point =
  on_group t ~partition:(partition_of t pre) (fun group lambdas ->
      let values =
        List.map
          (fun s ->
            match call_shard t s (Protocol.Eval { pre; point }) with
            | Protocol.Value v -> v
            | response ->
                raise
                  (Diverged
                     (Format.asprintf "unexpected eval reply: %a" Protocol.pp_response
                        response)))
          group
      in
      Protocol.Value (Share.combine_threshold_evaluations t.ring ~lambdas values))

(* Split a batch at partition boundaries, keeping every result at its
   caller-visible index. *)
let eval_batch t ~pres ~point =
  let results = Array.make (List.length pres) 0 in
  let chunks = runs (List.mapi (fun i pre -> (i, pre)) pres) ~key:(fun (_, pre) -> partition_of t pre) in
  List.iter
    (fun (partition, chunk) ->
      let sub_pres = List.map snd chunk in
      let combined =
        on_group t ~partition (fun group lambdas ->
            let per_member =
              List.map
                (fun s ->
                  match call_shard t s (Protocol.Eval_batch { pres = sub_pres; point }) with
                  | Protocol.Values vs when List.length vs = List.length sub_pres -> vs
                  | Protocol.Values _ ->
                      raise (Diverged "eval batch reply has the wrong arity")
                  | response ->
                      raise
                        (Diverged
                           (Format.asprintf "unexpected eval batch reply: %a"
                              Protocol.pp_response response)))
                group
            in
            combine_points t ~lambdas per_member)
      in
      List.iter2 (fun (i, _) v -> results.(i) <- v) chunk combined)
    chunks;
  Protocol.Values (Array.to_list results)

let share_one t pre =
  on_group t ~partition:(partition_of t pre) (fun group lambdas ->
      let packed =
        List.map
          (fun s ->
            match call_shard t s (Protocol.Share pre) with
            | Protocol.Share_data b -> b
            | response ->
                raise
                  (Diverged
                     (Format.asprintf "unexpected share reply: %a"
                        Protocol.pp_response response)))
          group
      in
      Protocol.Share_data (Share.reconstruct_packed t.ring ~lambdas packed))

let shares_batch t pres =
  let results = Array.make (List.length pres) Bytes.empty in
  let chunks = runs (List.mapi (fun i pre -> (i, pre)) pres) ~key:(fun (_, pre) -> partition_of t pre) in
  List.iter
    (fun (partition, chunk) ->
      let sub_pres = List.map snd chunk in
      let combined =
        on_group t ~partition (fun group lambdas ->
            let per_member =
              List.map
                (fun s ->
                  match call_shard t s (Protocol.Shares sub_pres) with
                  | Protocol.Shares_data bs when List.length bs = List.length sub_pres ->
                      bs
                  | Protocol.Shares_data _ ->
                      raise (Diverged "shares reply has the wrong arity")
                  | response ->
                      raise
                        (Diverged
                           (Format.asprintf "unexpected shares reply: %a"
                              Protocol.pp_response response)))
                group
            in
            List.map
              (fun column -> Share.reconstruct_packed t.ring ~lambdas column)
              (transpose per_member))
      in
      List.iter2 (fun (i, _) b -> results.(i) <- b) chunk combined)
    chunks;
  Protocol.Shares_data (Array.to_list results)

(* --- aggregation --- *)

(* Numeric shares are Shamir-dealt in F_M, not the polynomial ring, so
   per-shard partial sums recombine with F_M Lagrange-at-zero weights.
   The fold is linear: any [threshold] live shards can answer a
   partition — including a group formed by mid-flight failover — and
   partitions then add up in F_M. *)
let agg_eval t pres =
  let chunks = runs pres ~key:(fun pre -> partition_of t pre) in
  let total_count = ref 0 and total_sum = ref 0 in
  List.iter
    (fun (partition, sub_pres) ->
      let count, sum =
        on_group t ~partition (fun group _poly_lambdas ->
            let lambdas = Numeric.lambdas_at_zero (List.map (fun s -> s.id) group) in
            let per_member =
              List.map
                (fun s ->
                  match call_shard t s (Protocol.Agg_eval { pres = sub_pres }) with
                  | Protocol.Agg_partial { count; sum } -> (count, sum)
                  | response ->
                      raise
                        (Diverged
                           (Format.asprintf "unexpected aggregate reply from shard %d: %a"
                              s.id Protocol.pp_response response)))
                group
            in
            let expected = List.length sub_pres in
            List.iter
              (fun (count, _) ->
                if count <> expected then
                  raise (Diverged "aggregate partials diverged (row counts differ)"))
              per_member;
            (expected, Numeric.combine ~lambdas (List.map snd per_member)))
      in
      total_count := !total_count + count;
      total_sum := Numeric.add !total_sum sum)
    chunks;
  Protocol.Agg_partial { count = !total_count; sum = !total_sum }

(* --- dispatch --- *)

let forward_one t ~partition request = on_one t ~partition (fun s -> call_shard t s request)

let dispatch t request =
  match request with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Manifest -> Protocol.Manifest_data (Manifest.to_info t.manifest)
  | Protocol.Root | Protocol.Table_stats -> forward_one t ~partition:0 request
  | Protocol.Children parent -> forward_one t ~partition:(partition_of t parent) request
  | Protocol.Parent pre -> forward_one t ~partition:(partition_of t pre) request
  | Protocol.Eval { pre; point } -> eval_one t ~pre ~point
  | Protocol.Eval_batch { pres; point } -> eval_batch t ~pres ~point
  | Protocol.Share pre -> share_one t pre
  | Protocol.Shares pres -> shares_batch t pres
  | Protocol.Agg_eval { pres } -> agg_eval t pres
  | Protocol.Descendants { pre; post } ->
      let st = open_legacy t ~pre ~post in
      Protocol.Cursor (register_cursor t (Legacy st))
  | Protocol.Cursor_next { cursor; max_items } -> (
      match find_cursor t cursor with
      | Some (Legacy st) ->
          let items, done_ = legacy_next t st ~max_items in
          if done_ then
            Option.iter (close_cursor_remotes t) (take_cursor t cursor);
          Protocol.Batch (items, done_)
      | Some (Scan _) ->
          Protocol.Error_msg (Printf.sprintf "cursor %d is a scan cursor" cursor)
      | None -> Protocol.Error_msg (Printf.sprintf "unknown cursor %d" cursor))
  | Protocol.Cursor_close cursor ->
      Option.iter (close_cursor_remotes t) (take_cursor t cursor);
      Protocol.Pong
  | Protocol.Scan_eval { target; points; max_items } ->
      let scan = { points; pending = sub_targets t target; active = None } in
      let rows = fill t scan ~want:(max 1 max_items) [] in
      if scan_more scan then
        Protocol.Scan_batch { rows; cursor = Some (register_cursor t (Scan scan)) }
      else Protocol.Scan_batch { rows; cursor = None }
  | Protocol.Scan_next { cursor; max_items } -> (
      match find_cursor t cursor with
      | Some (Scan scan) ->
          let rows = fill t scan ~want:(max 1 max_items) [] in
          if scan_more scan then Protocol.Scan_batch { rows; cursor = Some cursor }
          else begin
            Option.iter (close_cursor_remotes t) (take_cursor t cursor);
            Protocol.Scan_batch { rows; cursor = None }
          end
      | Some (Legacy _) ->
          Protocol.Error_msg (Printf.sprintf "cursor %d is not a scan cursor" cursor)
      | None -> Protocol.Error_msg (Printf.sprintf "unknown cursor %d" cursor))

let handler t request =
  match dispatch t request with
  | response -> response
  | exception App_error msg -> Protocol.Error_msg msg
  | exception Unavailable msg -> Protocol.Error_msg ("unavailable: " ^ msg)
  | exception Diverged msg -> Protocol.Error_msg ("router: " ^ msg)

let connection t =
  (* session scope: cursors this connection opened, closed with it.
     Sessions are single-threaded (the event loop serialises handler
     calls), so a plain ref suffices. *)
  let open_ids = ref [] in
  let add id = if not (List.mem id !open_ids) then open_ids := id :: !open_ids in
  let remove id = open_ids := List.filter (fun i -> i <> id) !open_ids in
  let on_request request =
    let response = handler t request in
    (match response with
    | Protocol.Cursor id -> add id
    | Protocol.Scan_batch { cursor = Some id; _ } -> add id
    | Protocol.Scan_batch { cursor = None; _ } -> (
        match request with
        | Protocol.Scan_next { cursor; _ } -> remove cursor
        | _ -> ())
    | Protocol.Batch (_, true) -> (
        match request with
        | Protocol.Cursor_next { cursor; _ } -> remove cursor
        | _ -> ())
    | _ -> ());
    (match request with Protocol.Cursor_close id -> remove id | _ -> ());
    response
  in
  let on_close () =
    List.iter
      (fun id -> Option.iter (close_cursor_remotes t) (take_cursor t id))
      !open_ids;
    open_ids := []
  in
  (on_request, on_close)

(* --- construction --- *)

let obs_failovers =
  Obs.Registry.counter ~help:"Shards the router marked dead after a transport failure."
    "ssdb_router_failovers_total"

let obs_live_gauge =
  Obs.Registry.gauge ~help:"Shards the router currently considers live."
    "ssdb_router_live_shards"

let shard_calls_counter id =
  Obs.Registry.counter ~help:"Requests the router sent to each shard."
    ~labels:[ ("shard", string_of_int id) ]
    "ssdb_router_shard_calls_total"

let of_transports (ring : Ring.t) ?(max_cursors = 1024) transports =
  let p = ring.Ring.characteristic and e = ring.Ring.degree in
  let rec handshake acc = function
    | [] -> Ok (List.rev acc)
    | transport :: rest -> (
        match Transport.call transport Protocol.Manifest with
        | Protocol.Manifest_data info ->
            handshake ((transport, Manifest.of_info ~p ~e info) :: acc) rest
        | Protocol.Error_msg msg -> Error ("manifest handshake: " ^ msg)
        | _ -> Error "manifest handshake: unexpected response")
  in
  match transports with
  | [] -> Error "router: no shard transports"
  | _ -> (
      match handshake [] transports with
      | Error _ as e -> e
      | Ok pairs -> (
          match Manifest.group_consistent (List.map snd pairs) with
          | Error _ as e -> e
          | Ok summary ->
              let n = summary.Manifest.shards in
              if List.length pairs <> n then
                Error
                  (Printf.sprintf
                     "router: %d transports for a %d-shard deployment (need all %d)"
                     (List.length pairs) n n)
              else if n >= ring.Ring.order then
                Error
                  (Printf.sprintf
                     "router: %d shards need %d nonzero field points but the field \
                      has only %d"
                     n n (ring.Ring.order - 1))
              else begin
                let members = Array.make n None in
                List.iter
                  (fun (transport, (m : Manifest.t)) ->
                    members.(m.Manifest.shard_id - 1) <-
                      Some
                        {
                          id = m.Manifest.shard_id;
                          transport;
                          alive = true;
                          calls = shard_calls_counter m.Manifest.shard_id;
                        })
                  pairs;
                let members_by_id = Array.map Option.get members in
                Obs.Registry.gauge_set obs_live_gauge n;
                Ok
                  {
                    ring;
                    manifest = summary;
                    members_by_id;
                    cursors = Hashtbl.create 16;
                    next_cursor = 1;
                    ticks = 0;
                    max_cursors = max 1 max_cursors;
                    lock = Mutex.create ();
                    failovers = obs_failovers;
                    live_gauge = obs_live_gauge;
                  }
              end))

let connect ?policy ~p ~e ?max_cursors paths =
  let rec open_all acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match Transport.socket ?policy path with
        | Ok transport -> open_all (transport :: acc) rest
        | Error msg ->
            List.iter Transport.close acc;
            Error (Printf.sprintf "shard %s: %s" path msg))
  in
  match open_all [] paths with
  | Error _ as e -> e
  | Ok transports -> (
      let ring = Ring.of_prime_power ~p ~e in
      match of_transports ring ?max_cursors transports with
      | Ok _ as ok -> ok
      | Error _ as e ->
          List.iter Transport.close transports;
          e)

let close t =
  let all = with_lock t (fun () ->
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.cursors [] in
      Hashtbl.reset t.cursors;
      cs)
  in
  List.iter (close_cursor_remotes t) all;
  Array.iter (fun s -> Transport.close s.transport) t.members_by_id
