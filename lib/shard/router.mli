(** The shard router: one [Filter]-protocol endpoint fanning out over
    [n] threshold shard servers.

    The router speaks exactly the single-server protocol on both
    sides, so clients (and the whole query layer above them) are
    unchanged: point lookups and share fetches go to a group of
    [threshold] shards and the replies are folded with the fixed
    Lagrange multipliers ({!Secshare_core.Share}); fused scans are
    split at the manifest's partition boundaries, each piece drained
    in lockstep from its partition's shard group, and the combined
    rows streamed back in the exact order the single server would
    have produced — bit-identical results by construction.

    {b Degradation.}  A shard whose transport dies is marked dead and
    its work fails over to the surviving shards — including mid-scan:
    the router reopens the scan on a fresh group and skips the rows
    already delivered.  Queries keep succeeding until fewer than
    [threshold] shards are live, at which point requests fail with a
    clear error rather than wrong answers.  An application-level error
    from a {e live} shard (distinguished by a [Ping] probe) is
    propagated, never failed over.

    {b Information flow.}  Like every serving component, the router
    logs and exports topology only — shard ids, liveness, call counts
    — never query content, evaluation points or node numbers. *)

type t

val of_transports :
  Secshare_poly.Ring.t ->
  ?max_cursors:int ->
  Secshare_rpc.Transport.t list ->
  (t, string) result
(** Build a router over already-connected transports, one per shard.
    Each shard is asked for its {!Manifest.t} via the [Manifest]
    handshake; the group must be consistent and complete (exactly
    [shards] members with distinct ids 1..n).  [max_cursors] (default
    1024) bounds concurrently open router cursors, evicting the least
    recently used past the cap. *)

val connect :
  ?policy:Secshare_rpc.Transport.policy ->
  p:int ->
  e:int ->
  ?max_cursors:int ->
  string list ->
  (t, string) result
(** [of_transports] over socket transports to the given Unix-socket
    paths, each carrying the retry/deadline [policy]. *)

val handler :
  t -> Secshare_rpc.Protocol.request -> Secshare_rpc.Protocol.response
(** The routing request handler — plug into
    {!Secshare_rpc.Transport.local} for in-process use. *)

val connection :
  t -> (Secshare_rpc.Protocol.request -> Secshare_rpc.Protocol.response) * (unit -> unit)
(** A session-scoped handler for {!Secshare_rpc.Server.start_sessions}:
    the second component closes every cursor the connection still has
    open (router-side and on the shards). *)

val manifest : t -> Manifest.t
(** The deployment summary ([shard_id = 0]). *)

val shards : t -> int
val threshold : t -> int
val live_shards : t -> int

val kill_shard : t -> int -> unit
(** Mark shard [id] dead without probing it (test hook for the
    degraded-serving paths; the real path marks shards dead when their
    transport fails a call and a [Ping] probe). *)

val open_cursors : t -> int

val close : t -> unit
(** Close all cursors and every shard transport. *)
