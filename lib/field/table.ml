type t = {
  q : int;
  bits : int;
  add_tab : Bytes.t;  (* q * 256 entries: [(a lsl 8) lor b] -> a + b *)
  mul_tab : Bytes.t;  (* likewise for a * b *)
}

(* Rows are 256 wide (not q) so the flat index is a shift-or rather
   than a multiply; the q <= b < 256 tail of each row is unused and
   left zero.  64 KiB per table at q = 256. *)

let bits_for q =
  let rec go bits cap = if cap >= q then bits else go (bits + 1) (cap * 2) in
  go 1 2

let create field =
  let module F = (val field : Field_intf.FIELD) in
  if F.order > 256 then None
  else begin
    let q = F.order in
    let add_tab = Bytes.make (q * 256) '\000' in
    let mul_tab = Bytes.make (q * 256) '\000' in
    for a = 0 to q - 1 do
      let fa = F.of_int a in
      let base = a lsl 8 in
      for b = 0 to q - 1 do
        let fb = F.of_int b in
        Bytes.set_uint8 add_tab (base lor b) (F.to_int (F.add fa fb));
        Bytes.set_uint8 mul_tab (base lor b) (F.to_int (F.mul fa fb))
      done
    done;
    Some { q; bits = bits_for q; add_tab; mul_tab }
  end

let order t = t.q
let bits t = t.bits

let check t name v =
  if v < 0 || v >= t.q then
    invalid_arg (Printf.sprintf "Table.%s: %d is not canonical in [0,%d)" name v t.q)

let add t a b =
  check t "add" a;
  check t "add" b;
  Bytes.get_uint8 t.add_tab ((a lsl 8) lor b)

let mul t a b =
  check t "mul" a;
  check t "mul" b;
  Bytes.get_uint8 t.mul_tab ((a lsl 8) lor b)

let unsafe_add t a b = Char.code (Bytes.unsafe_get t.add_tab ((a lsl 8) lor b))
let unsafe_mul t a b = Char.code (Bytes.unsafe_get t.mul_tab ((a lsl 8) lor b))

let mul_row t ~point =
  check t "mul_row" point;
  let row = Bytes.create t.q in
  Bytes.blit t.mul_tab (point lsl 8) row 0 t.q;
  row

let powers t ~point ~n =
  check t "powers" point;
  if n < 0 then invalid_arg "Table.powers: negative length";
  let out = Bytes.create n in
  let acc = ref 1 in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i (Char.unsafe_chr !acc);
    acc := unsafe_mul t !acc point
  done;
  out
