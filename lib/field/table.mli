(** Flat operation tables for small fields: the arithmetic kernel
    behind the packed polynomial evaluators in [lib/poly].

    For fields with [order <= 256] every element fits in one byte, so
    the whole addition and multiplication tables fit in 64 KiB each and
    a Horner step becomes two byte loads — no closure calls, no
    module projections, no allocation.  The tables are built once per
    ring from the field's own [add]/[mul], so kernel results are
    bit-identical to the reference path for prime fields *and*
    extension fields alike (whose canonical integer encodings are not
    integer arithmetic mod q).

    Fields with [order > 256] get no table ([create] returns [None])
    and callers fall back to the closure-based reference path. *)

type t

val create : Field_intf.packed -> t option
(** Build the tables, or [None] when the field order exceeds 256. *)

val order : t -> int
(** The field order [q]. *)

val bits : t -> int
(** Bits per coefficient in the {!Secshare_poly.Codec} packed layout:
    [ceil (log2 q)]. *)

val add : t -> int -> int -> int
(** Table lookup [a + b].  Validates both operands and raises
    [Invalid_argument] unless they are canonical encodings in
    [0, q). *)

val mul : t -> int -> int -> int
(** Table lookup [a * b]; operands validated as for {!add}. *)

val unsafe_add : t -> int -> int -> int
(** As {!add} with no bounds checks at all — the caller guarantees
    canonical operands.  For kernel inner loops. *)

val unsafe_mul : t -> int -> int -> int

val mul_row : t -> point:int -> Bytes.t
(** The length-[q] row [x -> x * point] of the multiplication table,
    as a fresh byte string: the per-query table a Horner kernel walks
    so the hot loop never recomputes the 2-d index.  [point] must be a
    canonical encoding. *)

val powers : t -> point:int -> n:int -> Bytes.t
(** [powers t ~point ~n] is the length-[n] byte string whose [i]-th
    entry is [point^i] — the per-query point-power table used to jump
    into the middle of a packed coefficient vector. *)
