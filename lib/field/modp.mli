(** Prime fields [F_p] with a runtime-chosen modulus.

    The paper's experiments use [p = 83] (tag names) and [p = 29]
    (trie alphabet); the worked example of figure 1 uses [p = 5]. *)

val create : p:int -> Field_intf.packed
(** The field [F_p].  @raise Invalid_argument if [p] is not prime. *)

val create_exn : int -> Field_intf.packed
(** [create_exn p = create ~p]. *)
