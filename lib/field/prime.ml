let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61 ]

(* Overflow-safe modular multiplication for operands below 2^62.  The
   moduli used by the library are tiny, but [is_prime] is exposed for
   arbitrary int inputs, so we split one operand into 31-bit halves. *)
let mul_mod a b m =
  if m < (1 lsl 31) then a * b mod m
  else begin
    let lo = b land 0x7FFFFFFF and hi = b lsr 31 in
    let high_part = a * hi mod m in
    let shifted = ref high_part in
    for _ = 1 to 31 do
      shifted := !shifted * 2 mod m
    done;
    (!shifted + (a * lo mod m)) mod m
  end

let pow_mod base exp m =
  let rec go acc base exp =
    if exp = 0 then acc
    else begin
      let acc = if exp land 1 = 1 then mul_mod acc base m else acc in
      go acc (mul_mod base base m) (exp lsr 1)
    end
  in
  go 1 (((base mod m) + m) mod m) exp

(* Deterministic Miller-Rabin: the witness set {2,3,5,7,11,13,17,19,23,
   29,31,37} is exact for all n < 3.3 * 10^24, far beyond OCaml ints. *)
let miller_rabin_witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_prime n =
  if n < 2 then false
  else if List.mem n small_primes then true
  else if List.exists (fun p -> n mod p = 0) small_primes then false
  else begin
    let d = ref (n - 1) and r = ref 0 in
    while !d land 1 = 0 do
      d := !d lsr 1;
      incr r
    done;
    let witness_passes a =
      let a = a mod n in
      if a = 0 then true
      else begin
        let x = ref (pow_mod a !d n) in
        if !x = 1 || !x = n - 1 then true
        else begin
          let ok = ref false in
          (try
             for _ = 1 to !r - 1 do
               x := mul_mod !x !x n;
               if !x = n - 1 then begin
                 ok := true;
                 raise Exit
               end
             done
           with Exit -> ());
          !ok
        end
      end
    in
    List.for_all witness_passes miller_rabin_witnesses
  end

let next_prime n =
  let rec go k = if is_prime k then k else go (k + 1) in
  go (max 2 n)

let prev_prime n =
  if n < 2 then None
  else begin
    let rec go k = if is_prime k then Some k else go (k - 1) in
    go n
  end

let primes_up_to n =
  if n < 2 then []
  else begin
    let sieve = Array.make (n + 1) true in
    sieve.(0) <- false;
    sieve.(1) <- false;
    let i = ref 2 in
    while !i * !i <= n do
      if sieve.(!i) then begin
        let j = ref (!i * !i) in
        while !j <= n do
          sieve.(!j) <- false;
          j := !j + !i
        done
      end;
      incr i
    done;
    let acc = ref [] in
    for k = n downto 2 do
      if sieve.(k) then acc := k :: !acc
    done;
    !acc
  end

let factorize n =
  if n < 1 then invalid_arg "Prime.factorize: argument must be >= 1";
  let rec strip n p count = if n mod p = 0 then strip (n / p) p (count + 1) else (n, count) in
  let rec go n p acc =
    if n = 1 then List.rev acc
    else if p * p > n then List.rev ((n, 1) :: acc)
    else begin
      let n', count = strip n p 0 in
      let acc = if count > 0 then (p, count) :: acc else acc in
      go n' (p + 1) acc
    end
  in
  go n 2 []

let is_prime_power q =
  if q < 2 then None
  else
    match factorize q with
    | [ (p, e) ] -> Some (p, e)
    | _ -> None

let primitive_root p =
  if not (is_prime p) then invalid_arg "Prime.primitive_root: not a prime";
  if p = 2 then 1
  else begin
    let phi = p - 1 in
    let prime_divisors = List.map fst (factorize phi) in
    let is_generator g =
      List.for_all (fun q -> pow_mod g (phi / q) p <> 1) prime_divisors
    in
    let rec search g =
      if g >= p then invalid_arg "Prime.primitive_root: exhausted candidates"
      else if is_generator g then g
      else search (g + 1)
    in
    search 2
  end
