(* Minimal polynomial arithmetic over F_p on plain int arrays, used
   only to find the irreducible modulus and to implement field
   multiplication / inversion.  Index = degree; arrays are kept
   normalised (no trailing zero coefficient) except where noted. *)

let normalize a =
  let d = ref (Array.length a - 1) in
  while !d >= 0 && a.(!d) = 0 do
    decr d
  done;
  Array.sub a 0 (!d + 1)

let deg a = Array.length a - 1
let is_zero_poly a = Array.length a = 0

let psub p a b =
  let n = max (Array.length a) (Array.length b) in
  let c = Array.make n 0 in
  Array.iteri (fun i x -> c.(i) <- x) a;
  Array.iteri (fun i x -> c.(i) <- ((c.(i) - x) mod p + p) mod p) b;
  normalize c

let pmul p a b =
  if is_zero_poly a || is_zero_poly b then [||]
  else begin
    let c = Array.make (deg a + deg b + 1) 0 in
    Array.iteri
      (fun i x ->
        if x <> 0 then
          Array.iteri (fun j y -> c.(i + j) <- (c.(i + j) + (x * y)) mod p) b)
      a;
    normalize c
  end

let inv_mod p a =
  let a = ((a mod p) + p) mod p in
  if a = 0 then raise Division_by_zero;
  let rec go r0 r1 s0 s1 = if r1 = 0 then s0 else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1)) in
  let s = go a p 1 0 in
  ((s mod p) + p) mod p

(* Remainder of [a] modulo monic-after-scaling [b]. *)
let pmod p a b =
  if is_zero_poly b then raise Division_by_zero;
  let lead_inv = inv_mod p b.(deg b) in
  let r = Array.copy a in
  let rdeg = ref (deg a) in
  while !rdeg >= deg b do
    let coeff = r.(!rdeg) * lead_inv mod p in
    if coeff <> 0 then begin
      let shift = !rdeg - deg b in
      Array.iteri
        (fun j y -> r.(shift + j) <- ((r.(shift + j) - (coeff * y)) mod p + p) mod p)
        b
    end;
    decr rdeg
  done;
  normalize (Array.sub r 0 (min (Array.length r) (max 0 (deg b))))

let pgcd p a b =
  let rec go a b = if is_zero_poly b then a else go b (pmod p a b) in
  let g = go a b in
  if is_zero_poly g then g
  else begin
    (* make monic for canonical output *)
    let c = inv_mod p g.(deg g) in
    normalize (Array.map (fun x -> x * c mod p) g)
  end

let pmulmod p a b m = pmod p (pmul p a b) m

(* x^(p^k) mod m, via binary exponentiation with exponent p^k (all our
   exponents fit in a native int because p^e <= 2^30). *)
let x_pow_mod p exponent m =
  let x = [| 0; 1 |] in
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then pmulmod p acc base m else acc in
      go acc (pmulmod p base base m) (k lsr 1)
    end
  in
  go [| 1 |] (pmod p x m) exponent

let int_pow b e =
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then acc * b else acc) (b * b) (e lsr 1)
  in
  go 1 b e

let is_irreducible ~p m =
  let e = deg m in
  if e < 1 then invalid_arg "Gf.is_irreducible: degree must be >= 1";
  if m.(e) <> 1 then invalid_arg "Gf.is_irreducible: polynomial must be monic";
  if e = 1 then true
  else begin
    let x = [| 0; 1 |] in
    (* Rabin: x^(p^e) = x (mod m), and for each prime divisor q of e,
       gcd(x^(p^(e/q)) - x, m) = 1. *)
    let frob_total = x_pow_mod p (int_pow p e) m in
    if not (frob_total = pmod p x m || psub p frob_total (pmod p x m) = [||]) then false
    else
      List.for_all
        (fun (q, _) ->
          let frob = x_pow_mod p (int_pow p (e / q)) m in
          let diff = psub p frob (pmod p x m) in
          let g = pgcd p diff m in
          deg g = 0)
        (Prime.factorize e)
  end

let irreducible ~p ~e =
  if e < 1 then invalid_arg "Gf.irreducible: e must be >= 1";
  if e = 1 then [| 0; 1 |]
  else begin
    (* Enumerate monic degree-e polynomials by their e low coefficients
       encoded in base p, smallest encoding first. *)
    let limit = int_pow p e in
    let rec candidate code =
      if code >= limit then
        invalid_arg "Gf.irreducible: no irreducible found (impossible)"
      else begin
        let m = Array.make (e + 1) 0 in
        m.(e) <- 1;
        let c = ref code in
        for i = 0 to e - 1 do
          m.(i) <- !c mod p;
          c := !c / p
        done;
        if is_irreducible ~p m then m else candidate (code + 1)
      end
    in
    candidate 1
  end

let digits_of_int ~p ~e k =
  let d = Array.make e 0 in
  let c = ref k in
  for i = 0 to e - 1 do
    d.(i) <- !c mod p;
    c := !c / p
  done;
  d

let int_of_digits ~p d =
  Array.fold_right (fun coeff acc -> (acc * p) + coeff) d 0

let create ~p ~e : Field_intf.packed =
  if not (Prime.is_prime p) then
    invalid_arg (Printf.sprintf "Gf.create: %d is not prime" p);
  if e < 1 then invalid_arg "Gf.create: e must be >= 1";
  let q = int_pow p e in
  if q > 1 lsl 30 then invalid_arg "Gf.create: p^e must be <= 2^30";
  if e = 1 then Modp.create ~p
  else begin
    let m = irreducible ~p ~e in
    (module struct
      type t = int

      let order = q
      let characteristic = p
      let degree = e
      let zero = 0
      let one = 1
      let of_int k = ((k mod q) + q) mod q
      let to_int t = t

      (* Addition is digit-wise mod p; iterate over base-p digits. *)
      let add a b =
        let da = digits_of_int ~p ~e a and db = digits_of_int ~p ~e b in
        let dc = Array.init e (fun i -> (da.(i) + db.(i)) mod p) in
        int_of_digits ~p dc

      let sub a b =
        let da = digits_of_int ~p ~e a and db = digits_of_int ~p ~e b in
        let dc = Array.init e (fun i -> ((da.(i) - db.(i)) mod p + p) mod p) in
        int_of_digits ~p dc

      let neg a =
        let da = digits_of_int ~p ~e a in
        int_of_digits ~p (Array.map (fun x -> (p - x) mod p) da)

      let to_poly a = normalize (digits_of_int ~p ~e a)

      let of_poly poly =
        let d = Array.make e 0 in
        Array.iteri (fun i x -> d.(i) <- x) poly;
        int_of_digits ~p d

      let mul a b = of_poly (pmulmod p (to_poly a) (to_poly b) m)

      let inv a =
        if a = 0 then raise Division_by_zero;
        (* Extended Euclid in F_p[y] on (to_poly a, m). *)
        let rec go r0 r1 s0 s1 =
          if is_zero_poly r1 then (r0, s0)
          else begin
            (* quotient of r0 by r1 *)
            let lead_inv = inv_mod p r1.(deg r1) in
            let r = Array.copy r0 in
            let qacc = Array.make (max 1 (deg r0 - deg r1 + 1)) 0 in
            let rd = ref (deg r0) in
            while !rd >= deg r1 && !rd >= 0 do
              let coeff = r.(!rd) * lead_inv mod p in
              if coeff <> 0 then begin
                let shift = !rd - deg r1 in
                qacc.(shift) <- coeff;
                Array.iteri
                  (fun j y ->
                    r.(shift + j) <- ((r.(shift + j) - (coeff * y)) mod p + p) mod p)
                  r1
              end;
              decr rd
            done;
            let quotient = normalize qacc and remainder = normalize r in
            go r1 remainder s1 (psub p s0 (pmul p quotient s1))
          end
        in
        let g, s = go (to_poly a) m [| 1 |] [||] in
        (* g is a nonzero constant since m is irreducible and a <> 0 *)
        let c = inv_mod p g.(0) in
        of_poly (normalize (Array.map (fun x -> x * c mod p) s))

      let div a b = mul a (inv b)

      let pow a k =
        if k < 0 then invalid_arg "Gf.pow: negative exponent";
        let rec go acc base k =
          if k = 0 then acc
          else begin
            let acc = if k land 1 = 1 then mul acc base else acc in
            go acc (mul base base) (k lsr 1)
          end
        in
        go one a k

      let equal = Int.equal
      let compare = Int.compare
      let is_zero a = a = 0

      let pp fmt a =
        let d = digits_of_int ~p ~e a in
        Format.fprintf fmt "gf(%d^%d:%d=[%s])" p e a
          (String.concat ","
             (Array.to_list (Array.map string_of_int d)))

      let elements () = List.init q Fun.id
      let nonzero_elements () = List.init (q - 1) (fun i -> i + 1)
    end)
  end
