(** Extension fields [F_{p^e}] represented as [F_p[y]/(m(y))] for a
    monic irreducible [m] of degree [e] found by search (Rabin's
    irreducibility test).

    Elements are encoded canonically as integers in [0, p^e): the
    base-[p] digits of the encoding are the coefficients of the residue
    polynomial, least significant digit first.  For [e = 1] this
    coincides with {!Modp}. *)

val create : p:int -> e:int -> Field_intf.packed
(** The field [F_{p^e}].

    @raise Invalid_argument if [p] is not prime, [e < 1], or [p^e]
    would not fit comfortably in a native [int] (we require
    [p^e <= 2^30]). *)

val irreducible : p:int -> e:int -> int array
(** The monic irreducible modulus polynomial used by [create ~p ~e],
    as its coefficient array of length [e + 1] (index = degree,
    [m.(e) = 1]).  Deterministic: the lexicographically first monic
    irreducible in the search order.  Exposed for tests. *)

val is_irreducible : p:int -> int array -> bool
(** Rabin's irreducibility test for a monic polynomial over [F_p],
    given as a coefficient array (index = degree).  Exposed for
    tests.  @raise Invalid_argument on non-monic or degree-0 input. *)
