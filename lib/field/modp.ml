let create ~p : Field_intf.packed =
  if not (Prime.is_prime p) then
    invalid_arg (Printf.sprintf "Modp.create: %d is not prime" p);
  (module struct
    type t = int

    let order = p
    let characteristic = p
    let degree = 1
    let zero = 0
    let one = 1 mod p
    let of_int k = ((k mod p) + p) mod p
    let to_int t = t
    let add a b = (a + b) mod p
    let sub a b = ((a - b) mod p + p) mod p
    let neg a = (p - a) mod p
    let mul a b = a * b mod p

    (* Extended Euclid on (a, p); p prime so gcd = 1 for a <> 0. *)
    let inv a =
      if a = 0 then raise Division_by_zero;
      let rec go r0 r1 s0 s1 = if r1 = 0 then s0 else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1)) in
      let s = go a p 1 0 in
      ((s mod p) + p) mod p

    let div a b = mul a (inv b)

    let pow a k =
      if k < 0 then invalid_arg "Modp.pow: negative exponent";
      let rec go acc base k =
        if k = 0 then acc
        else begin
          let acc = if k land 1 = 1 then mul acc base else acc in
          go acc (mul base base) (k lsr 1)
        end
      in
      go one a k

    let equal = Int.equal
    let compare = Int.compare
    let is_zero a = a = 0
    let pp fmt a = Format.fprintf fmt "%d" a
    let elements () = List.init p Fun.id
    let nonzero_elements () = List.init (p - 1) (fun i -> i + 1)
  end)

let create_exn p = create ~p
