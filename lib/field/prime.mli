(** Primality testing and prime search for the small moduli used by the
    encoding scheme (all well below [2^30]). *)

val is_prime : int -> bool
(** Deterministic primality test, valid for all [int] values that fit in
    62 bits (trial division up to a small bound followed by
    deterministic Miller–Rabin witnesses). *)

val next_prime : int -> int
(** Smallest prime [>= max 2 n]. *)

val prev_prime : int -> int option
(** Largest prime [<= n], or [None] if [n < 2]. *)

val primes_up_to : int -> int list
(** All primes [<= n], ascending (simple sieve; intended for small
    [n]). *)

val factorize : int -> (int * int) list
(** Prime factorisation as [(prime, multiplicity)] pairs in ascending
    prime order.  @raise Invalid_argument on inputs [< 1].  [factorize 1
    = []]. *)

val is_prime_power : int -> (int * int) option
(** [is_prime_power q] is [Some (p, e)] when [q = p^e] with [p] prime
    and [e >= 1], else [None]. *)

val primitive_root : int -> int
(** A generator of the multiplicative group of [F_p] for prime [p].
    @raise Invalid_argument if [p] is not prime or [p < 2]. *)
