(** Common signature for the finite fields used by the encoding scheme.

    The paper works in [F_{p^e}] where [p^e] is a prime power slightly
    larger than the number of distinct tag names (p = 83, e = 1 in the
    experiments; F_5 in the worked example of figure 1; p = 29 for the
    trie alphabet).  Field elements are represented canonically as
    integers in [0, order).  All operations are total except [inv] and
    [div], which raise [Division_by_zero] on a zero divisor. *)

module type FIELD = sig
  type t

  val order : int
  (** Number of elements, [p^e]. *)

  val characteristic : int
  (** The prime [p]. *)

  val degree : int
  (** The extension degree [e]; [order = characteristic ^ degree]. *)

  val zero : t
  val one : t

  val of_int : int -> t
  (** [of_int k] is the element canonically encoded by
      [k mod order] (negative [k] is normalised).  For [e = 1] this is
      the residue class of [k]; for [e > 1] the base-[p] digits of [k]
      are the coefficients of the residue polynomial. *)

  val to_int : t -> int
  (** Canonical integer encoding in [0, order). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  val inv : t -> t
  (** Multiplicative inverse.  @raise Division_by_zero on [zero]. *)

  val div : t -> t -> t
  (** [div a b = mul a (inv b)].  @raise Division_by_zero if [b] is
      [zero]. *)

  val pow : t -> int -> t
  (** [pow a k] for [k >= 0]; [pow zero 0 = one] by convention. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val is_zero : t -> bool
  val pp : Format.formatter -> t -> unit

  val elements : unit -> t list
  (** All [order] elements, in canonical integer order. *)

  val nonzero_elements : unit -> t list
  (** All [order - 1] nonzero elements, in canonical integer order. *)
end

(** A field packaged together with its runtime parameters; the modulus
    is chosen at runtime (it depends on the number of tag names in the
    document's DTD), so fields are passed around as first-class
    modules. *)
type packed = (module FIELD)
