module Char_map = Map.Make (Char)

type t = { terminal : bool; children : t Char_map.t }

let empty = { terminal = false; children = Char_map.empty }
let is_empty t = (not t.terminal) && Char_map.is_empty t.children

let add t word =
  if not (Tokenize.is_word word) then
    invalid_arg (Printf.sprintf "Trie.add: %S is not a lowercase word" word);
  let rec go t i =
    if i = String.length word then { t with terminal = true }
    else begin
      let c = word.[i] in
      let child = Option.value (Char_map.find_opt c t.children) ~default:empty in
      { t with children = Char_map.add c (go child (i + 1)) t.children }
    end
  in
  go t 0

let of_words words = List.fold_left add empty words

let mem t word =
  let rec go t i =
    if i = String.length word then t.terminal
    else
      match Char_map.find_opt word.[i] t.children with
      | Some child -> go child (i + 1)
      | None -> false
  in
  go t 0

let mem_prefix t prefix =
  let rec go t i =
    if i = String.length prefix then true
    else
      match Char_map.find_opt prefix.[i] t.children with
      | Some child -> go child (i + 1)
      | None -> false
  in
  go t 0

let words t =
  let acc = ref [] in
  let buf = Buffer.create 16 in
  let rec go t =
    if t.terminal then acc := Buffer.contents buf :: !acc;
    Char_map.iter
      (fun c child ->
        Buffer.add_char buf c;
        go child;
        Buffer.truncate buf (Buffer.length buf - 1))
      t.children
  in
  go t;
  List.sort String.compare !acc

let rec word_count t =
  (if t.terminal then 1 else 0)
  + Char_map.fold (fun _ child acc -> acc + word_count child) t.children 0

let rec node_count t =
  Char_map.fold (fun _ child acc -> acc + 1 + node_count child) t.children 0

let terminal_count = word_count

let fold_edges t ~init ~f = Char_map.fold (fun c child acc -> f acc c child) t.children init

let rec equal a b =
  Bool.equal a.terminal b.terminal && Char_map.equal equal a.children b.children

let rec pp fmt t =
  Format.fprintf fmt "{%s%a}"
    (if t.terminal then "." else "")
    (fun fmt children ->
      Char_map.iter (fun c child -> Format.fprintf fmt "%c%a" c pp child) children)
    t.children
