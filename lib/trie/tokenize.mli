(** Splitting text data into words over the trie alphabet.

    The paper's example splits a string into words, then each word into
    characters over a small set (a..z); p = 29 covers the 26 letters,
    the end-of-word marker and slack.  We lowercase ASCII letters and
    treat every other byte as a separator. *)

val words : string -> string list
(** Lowercased alphabetic words, in occurrence order, duplicates
    kept. *)

val alphabet : char list
(** The trie alphabet: ['a'..'z']. *)

val end_marker : string
(** The tag name used for the end-of-word node (the paper's bottom
    symbol): ["$"]. *)

val is_word : string -> bool
(** True iff the string is non-empty and entirely within the
    alphabet. *)
