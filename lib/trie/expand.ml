module Tree = Secshare_xml.Tree

type mode = Compressed | Uncompressed

type stats = {
  text_nodes : int;
  total_words : int;
  distinct_words : int;
  total_chars : int;
  trie_nodes : int;
  marker_nodes : int;
}

let zero_stats =
  {
    text_nodes = 0;
    total_words = 0;
    distinct_words = 0;
    total_chars = 0;
    trie_nodes = 0;
    marker_nodes = 0;
  }

let word_path word =
  if not (Tokenize.is_word word) then
    invalid_arg (Printf.sprintf "Expand.word_path: %S is not a lowercase word" word);
  List.init (String.length word) (fun i -> String.make 1 word.[i])

let marker_element = Tree.element Tokenize.end_marker []

(* A compressed trie as a forest of single-character elements; each
   terminal gets an end-marker child (the paper's bottom node). *)
let rec trie_forest_with_markers trie =
  Trie.fold_edges trie ~init:[] ~f:(fun acc c child ->
      let sub = trie_forest_with_markers child in
      let sub = if is_terminal child then sub @ [ marker_element ] else sub in
      Tree.element (String.make 1 c) sub :: acc)
  |> List.rev

and is_terminal trie = Trie.mem trie ""

(* One path of character elements per word occurrence. *)
let word_chain word =
  let rec go i =
    if i = String.length word then [ marker_element ]
    else [ Tree.element (String.make 1 word.[i]) (go (i + 1)) ]
  in
  match go 0 with
  | [ node ] -> node
  | _ -> assert false

let expand ~mode tree =
  let stats = ref zero_stats in
  let expand_text s =
    let words = Tokenize.words s in
    if words = [] then []
    else begin
      let distinct = List.sort_uniq String.compare words in
      let chars = List.fold_left (fun acc w -> acc + String.length w) 0 words in
      let replacement =
        match mode with
        | Compressed -> trie_forest_with_markers (Trie.of_words words)
        | Uncompressed -> List.map word_chain words
      in
      let rec count_nodes acc = function
        | Tree.Text _ -> acc
        | Tree.Element { name; children; _ } ->
            let acc = List.fold_left count_nodes acc children in
            if String.equal name Tokenize.end_marker then (fst acc, snd acc + 1)
            else (fst acc + 1, snd acc)
      in
      let chars_emitted, markers = List.fold_left count_nodes (0, 0) replacement in
      stats :=
        {
          text_nodes = !stats.text_nodes + 1;
          total_words = !stats.total_words + List.length words;
          distinct_words = !stats.distinct_words + List.length distinct;
          total_chars = !stats.total_chars + chars;
          trie_nodes = !stats.trie_nodes + chars_emitted;
          marker_nodes = !stats.marker_nodes + markers;
        };
      replacement
    end
  in
  let rec go node =
    match node with
    | Tree.Text s -> expand_text s
    | Tree.Element { name; attrs; children } ->
        [ Tree.element ~attrs name (List.concat_map go children) ]
  in
  match go tree with
  | [ root ] -> (root, !stats)
  | _ -> invalid_arg "Expand.expand: root must be an element"

let reduction_ratio stats =
  if stats.total_chars = 0 then 0.0
  else 1.0 -. (float_of_int stats.trie_nodes /. float_of_int stats.total_chars)
