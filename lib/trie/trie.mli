(** Compressed tries over lowercase words (Fredkin 1960), the data
    structure of the paper's §4.

    A *compressed* trie shares common prefixes and loses word order and
    cardinality (figure 2(b)); an *uncompressed* trie — a forest of
    non-shared paths — retains exactly the original information
    (figure 2(c)).  This module implements the compressed form; the
    uncompressed form is just the word list itself and is handled in
    {!Expand}. *)

type t

val empty : t
val is_empty : t -> bool

val add : t -> string -> t
(** Insert a word.  @raise Invalid_argument if the word is not within
    the alphabet (see {!Tokenize.is_word}). *)

val of_words : string list -> t
val mem : t -> string -> bool

val mem_prefix : t -> string -> bool
(** True iff some stored word has this (possibly complete) prefix. *)

val words : t -> string list
(** Stored words, sorted (order is inherently lost — that is the
    compression trade-off the paper describes). *)

val word_count : t -> int
(** Number of distinct stored words. *)

val node_count : t -> int
(** Number of character nodes (excluding the root and excluding
    end-of-word markers). *)

val terminal_count : t -> int
(** Number of end-of-word markers (equal to [word_count]). *)

val fold_edges : t -> init:'a -> f:('a -> char -> t -> 'a) -> 'a
(** Fold over the root's outgoing edges in character order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
