let alphabet = List.init 26 (fun i -> Char.chr (Char.code 'a' + i))
let end_marker = "$"

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c
let is_letter c = c >= 'a' && c <= 'z'

let words s =
  let acc = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      acc := Buffer.contents buf :: !acc;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      let c = lower c in
      if is_letter c then Buffer.add_char buf c else flush ())
    s;
  flush ();
  List.rev !acc

let is_word s = s <> "" && String.for_all is_letter s
