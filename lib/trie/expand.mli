(** Rewriting an XML tree so its text content becomes searchable: every
    text node is replaced by trie paths of single-character elements
    (paper §4, figure 2).

    After expansion the same polynomial encoding covers data as well as
    tags, and [contains(text(), "joan")] queries become the path query
    [//j/o/a/n]. *)

type mode =
  | Compressed  (** prefix-sharing trie; loses word order/cardinality *)
  | Uncompressed  (** one path per word occurrence; lossless *)

type stats = {
  text_nodes : int;  (** text nodes replaced *)
  total_words : int;  (** word occurrences across all text *)
  distinct_words : int;  (** per text node, summed *)
  total_chars : int;  (** characters across all word occurrences *)
  trie_nodes : int;  (** character elements emitted *)
  marker_nodes : int;  (** end-of-word elements emitted *)
}

val expand : mode:mode -> Secshare_xml.Tree.t -> Secshare_xml.Tree.t * stats
(** Replace each text node with its trie representation.  Character
    elements are named by their character; end-of-word markers are
    named {!Tokenize.end_marker}.  Attributes are preserved
    untouched. *)

val word_path : string -> string list
(** The element-name path of one word: ["joan"] becomes
    [["j"; "o"; "a"; "n"]].  @raise Invalid_argument on a non-word
    (see {!Tokenize.is_word}). *)

val reduction_ratio : stats -> float
(** [1 - trie_nodes / total_chars]: the size reduction the trie
    achieves over storing every character occurrence (the paper quotes
    75–80% for compressed tries on typical text). *)
