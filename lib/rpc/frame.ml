exception Timeout

(* A peer that vanishes between frames turns the next write into
   SIGPIPE, which kills the whole process by default; the RPC layer
   needs the EPIPE exception instead so the retry policy can classify
   it.  Ignored lazily, once, on first frame I/O. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> () (* no SIGPIPE on this platform *))

(* Wait until [fd] is ready for the given direction or [deadline]
   (absolute, [Unix.gettimeofday] clock) passes.  [select] can return
   early on EINTR, so loop on the remaining time. *)
let wait_ready fd ~for_read deadline =
  match deadline with
  | None -> ()
  | Some deadline ->
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then raise Timeout;
        let ready =
          match
            if for_read then Unix.select [ fd ] [] [] remaining
            else Unix.select [] [ fd ] [] remaining
          with
          | r, w, _ -> r <> [] || w <> []
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        in
        if not ready then wait ()
      in
      wait ()

let write_all ?deadline fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      wait_ready fd ~for_read:false deadline;
      let n = Unix.write fd buf off (len - off) in
      if n = 0 then failwith "socket closed during write";
      go (off + n)
    end
  in
  go 0

let read_exactly ?deadline fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off < len then begin
      wait_ready fd ~for_read:true deadline;
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then failwith "socket closed during read";
      go (off + n)
    end
  in
  go 0;
  buf

let send ?deadline fd payload =
  Lazy.force ignore_sigpipe;
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (String.length payload));
  write_all ?deadline fd header;
  write_all ?deadline fd (Bytes.of_string payload)

let recv ?deadline fd =
  let header = read_exactly ?deadline fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > 1 lsl 28 then failwith "unreasonable frame length";
  Bytes.to_string (read_exactly ?deadline fd len)
