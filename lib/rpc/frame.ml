exception Timeout

(* A peer that vanishes between frames turns the next write into
   SIGPIPE, which kills the whole process by default; the RPC layer
   needs the EPIPE exception instead so the retry policy can classify
   it.  Exposed as a plain function because every process that writes
   to sockets outside [send] (the event-loop server uses raw
   [Unix.write]) must install the ignore itself at startup — it cannot
   rely on some client having forced the lazy below. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> () (* no SIGPIPE on this platform *)

(* Frame I/O itself installs the ignore lazily, once, on first send. *)
let sigpipe_ignored = lazy (ignore_sigpipe ())

(* Wait until [fd] is ready for the given direction or [deadline]
   (absolute, [Unix.gettimeofday] clock) passes.  [select] can return
   early on EINTR, so loop on the remaining time. *)
let wait_ready fd ~for_read deadline =
  match deadline with
  | None -> ()
  | Some deadline ->
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then raise Timeout;
        let ready =
          match
            if for_read then Unix.select [ fd ] [] [] remaining
            else Unix.select [] [ fd ] [] remaining
          with
          | r, w, _ -> r <> [] || w <> []
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        in
        if not ready then wait ()
      in
      wait ()

let write_all ?deadline fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      wait_ready fd ~for_read:false deadline;
      let n = Unix.write fd buf off (len - off) in
      if n = 0 then failwith "socket closed during write";
      go (off + n)
    end
  in
  go 0

let read_exactly ?deadline fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off < len then begin
      wait_ready fd ~for_read:true deadline;
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then failwith "socket closed during read";
      go (off + n)
    end
  in
  go 0;
  buf

(* Header layout (12 bytes): u32 big-endian payload length, then u64
   big-endian trace id.  A trace id of 0 means the message is not part
   of any trace; the id is observability metadata only — it never
   influences request handling, so the information flow to the server
   does not widen (DESIGN.md §9). *)
let header_bytes = 12

let send ?deadline ?(trace_id = 0L) fd payload =
  Lazy.force sigpipe_ignored;
  let header = Bytes.create header_bytes in
  Bytes.set_int32_be header 0 (Int32.of_int (String.length payload));
  Bytes.set_int64_be header 4 trace_id;
  write_all ?deadline fd header;
  write_all ?deadline fd (Bytes.of_string payload)

let recv_traced ?deadline fd =
  let header = read_exactly ?deadline fd header_bytes in
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  let trace_id = Bytes.get_int64_be header 4 in
  if len < 0 || len > 1 lsl 28 then failwith "unreasonable frame length";
  (trace_id, Bytes.to_string (read_exactly ?deadline fd len))

let recv ?deadline fd = snd (recv_traced ?deadline fd)
