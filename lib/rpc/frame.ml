let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd buf off (len - off) in
      if n = 0 then failwith "socket closed during write";
      go (off + n)
    end
  in
  go 0

let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off < len then begin
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then failwith "socket closed during read";
      go (off + n)
    end
  in
  go 0;
  buf

let send fd payload =
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (String.length payload));
  write_all fd header;
  write_all fd (Bytes.of_string payload)

let recv fd =
  let header = read_exactly fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > 1 lsl 28 then failwith "unreasonable frame length";
  Bytes.to_string (read_exactly fd len)
