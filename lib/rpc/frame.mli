(** Length-prefixed message framing over a file descriptor (4-byte
    big-endian length, then the payload). *)

val send : Unix.file_descr -> string -> unit
(** @raise Failure on a closed peer. *)

val recv : Unix.file_descr -> string
(** @raise Failure on a closed peer or an implausible length. *)
