(** Length-prefixed message framing over a file descriptor (4-byte
    big-endian length, then the payload).

    Both operations take an optional absolute [deadline] (on the
    [Unix.gettimeofday] clock).  I/O is then guarded by [Unix.select]:
    if the peer does not become ready before the deadline — including
    mid-frame, after a partial read or write — {!Timeout} is raised and
    the stream must be considered desynchronised (the caller should
    drop the connection). *)

exception Timeout

val send : ?deadline:float -> Unix.file_descr -> string -> unit
(** @raise Failure on a closed peer.
    @raise Timeout when [deadline] passes before the frame is written. *)

val recv : ?deadline:float -> Unix.file_descr -> string
(** @raise Failure on a closed peer or an implausible length.
    @raise Timeout when [deadline] passes before a full frame arrives. *)
