(** Length-prefixed message framing over a file descriptor.

    The 12-byte header carries a 4-byte big-endian payload length and
    an 8-byte big-endian trace id (0 = untraced).  The trace id is
    observability metadata only: the receiver uses it to join its
    spans to the sender's trace and must not let it influence request
    handling.

    Both operations take an optional absolute [deadline] (on the
    [Unix.gettimeofday] clock).  I/O is then guarded by [Unix.select]:
    if the peer does not become ready before the deadline — including
    mid-frame, after a partial read or write — {!Timeout} is raised and
    the stream must be considered desynchronised (the caller should
    drop the connection). *)

exception Timeout

val ignore_sigpipe : unit -> unit
(** Set the process-wide SIGPIPE disposition to ignore (a no-op on
    platforms without it), so writes to a vanished peer raise
    [Unix.Unix_error (EPIPE, _, _)] instead of killing the process.
    {!send} installs this on first use, but any component that writes
    to sockets directly — the event-loop server in particular — must
    call it at startup rather than rely on a client having sent a
    frame first. *)

val header_bytes : int
(** Header size on the wire (12). *)

val send : ?deadline:float -> ?trace_id:int64 -> Unix.file_descr -> string -> unit
(** @raise Failure on a closed peer.
    @raise Timeout when [deadline] passes before the frame is written. *)

val recv_traced : ?deadline:float -> Unix.file_descr -> int64 * string
(** The frame's trace id together with its payload.
    @raise Failure on a closed peer or an implausible length.
    @raise Timeout when [deadline] passes before a full frame arrives. *)

val recv : ?deadline:float -> Unix.file_descr -> string
(** {!recv_traced} with the trace id dropped. *)
