(** Binary wire primitives for the filter protocol.

    Little-endian fixed-width integers and length-prefixed blobs over
    a growable buffer (writing) or a string cursor (reading).  All
    reads validate bounds and fail with [Decode_error] rather than
    raising out-of-bounds exceptions. *)

exception Decode_error of string

type writer
type reader

val writer : unit -> writer
val contents : writer -> string

val write_u8 : writer -> int -> unit
val write_u32 : writer -> int -> unit
(** @raise Invalid_argument outside [0, 2^32). *)

val write_i64 : writer -> int -> unit
val write_bytes : writer -> bytes -> unit
val write_string : writer -> string -> unit
val write_list : writer -> ('a -> unit) -> 'a list -> unit
(** Length-prefixed; the callback writes each element. *)

val reader : string -> reader
val read_u8 : reader -> int
val read_u32 : reader -> int
val read_i64 : reader -> int
val read_bytes : reader -> bytes
val read_string : reader -> string
val read_list : reader -> (unit -> 'a) -> 'a list
val expect_end : reader -> unit
(** @raise Decode_error if trailing bytes remain. *)
