/* poll(2) binding for the event-loop server.

   Unix.select caps at FD_SETSIZE (1024) descriptors, far below the
   connection counts the server targets, and the stdlib ships no poll
   or epoll wrapper; this stub polls over parallel int arrays so the
   OCaml side can keep a flat, reusable interest set with no per-wait
   allocation on its side of the boundary.

   Event encoding shared with evloop.ml:
     interest: bit 0 = read, bit 1 = write
     revents:  bit 0 = readable (POLLIN or POLLHUP: a closing peer
               must wake the read path so it can observe EOF),
               bit 1 = writable (POLLOUT),
               bit 2 = error (POLLERR or POLLNVAL) */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

/* On Unix, Unix.file_descr is represented as an immediate int; this
   identity function is the sanctioned way to read it without Obj.magic. */
CAMLprim value ssdb_fd_int(value fd)
{
  return fd;
}

CAMLprim value ssdb_poll(value vfds, value vevents, value vrevents,
                         value vnfds, value vtimeout)
{
  CAMLparam5(vfds, vevents, vrevents, vnfds, vtimeout);
  int nfds = Int_val(vnfds);
  int timeout = Int_val(vtimeout);
  int i, ret, saved;
  struct pollfd *pfds;

  if (nfds < 0 || nfds > Wosize_val(vfds) || nfds > Wosize_val(vevents) ||
      nfds > Wosize_val(vrevents))
    caml_invalid_argument("ssdb_poll: nfds exceeds array lengths");

  pfds = malloc(sizeof(struct pollfd) * (nfds > 0 ? (size_t)nfds : 1));
  if (pfds == NULL) caml_raise_out_of_memory();

  for (i = 0; i < nfds; i++) {
    int want = Int_val(Field(vevents, i));
    pfds[i].fd = Int_val(Field(vfds, i));
    pfds[i].events = 0;
    if (want & 1) pfds[i].events |= POLLIN;
    if (want & 2) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  ret = poll(pfds, (nfds_t)nfds, timeout);
  saved = errno;
  caml_acquire_runtime_system();

  if (ret < 0) {
    free(pfds);
    if (saved == EINTR) CAMLreturn(Val_int(0));
    {
      char msg[128];
      snprintf(msg, sizeof(msg), "poll: %s", strerror(saved));
      caml_failwith(msg);
    }
  }

  for (i = 0; i < nfds; i++) {
    int re = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP)) re |= 1;
    if (pfds[i].revents & POLLOUT) re |= 2;
    if (pfds[i].revents & (POLLERR | POLLNVAL)) re |= 4;
    /* immediates only: no caml_modify needed */
    Field(vrevents, i) = Val_int(re);
  }
  free(pfds);
  CAMLreturn(Val_int(ret));
}
