(** Client-side transports for the filter protocol.

    Both transports push every message through the binary codec, so
    byte counts are comparable and the codec is exercised constantly:

    - {!local}: in-process, the benchmark configuration (function call
      in place of the paper's RMI);
    - {!socket}: a Unix-domain-socket connection to a {!Server},
      reproducing the remote client/server split of figure 3. *)

type counters = {
  mutable calls : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

type t

val local : handler:(Protocol.request -> Protocol.response) -> t

val socket : string -> (t, string) result
(** Connect to a Unix-domain socket path. *)

val call : t -> Protocol.request -> Protocol.response
(** Perform one round trip.  Transport failures and undecodable
    responses surface as [Error_msg] responses. *)

val counters : t -> counters
val reset_counters : t -> unit
val close : t -> unit
