(** Client-side transports for the filter protocol.

    Both transports push every message through the binary codec, so
    byte counts are comparable and the codec is exercised constantly:

    - {!local}: in-process, the benchmark configuration (function call
      in place of the paper's RMI);
    - {!socket}: a Unix-domain-socket connection to a {!Server},
      reproducing the remote client/server split of figure 3.

    The socket transport carries a resilience {!policy}: every call is
    bounded by a deadline, and failed {e idempotent} calls are retried
    with exponential backoff and jitter, transparently reconnecting a
    dead socket.  [Cursor_next] is the one non-idempotent request
    (resending it could skip a batch) and is never retried.  Protocol
    errors — an undecodable reply from a live peer — are never
    retried either; only transport failures (timeout, reset, EOF)
    are. *)

type counters = {
  mutable calls : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable retries : int;  (** failed attempts that were retried *)
  mutable reconnects : int;  (** sockets re-established after a drop *)
  mutable timeouts : int;  (** calls that hit the per-call deadline *)
}

type policy = {
  call_timeout : float option;
      (** per-call deadline in seconds; [None] waits forever *)
  max_retries : int;  (** extra attempts after the first failure *)
  backoff_base : float;  (** first backoff delay, seconds *)
  backoff_max : float;  (** backoff ceiling, seconds *)
  backoff_jitter : float;
      (** relative jitter in [0, 1]: each delay is scaled by a random
          factor in [1 - j, 1 + j] to avoid thundering herds *)
}

val default_policy : policy
(** No deadline, no retries — the pre-resilience behaviour. *)

type t

val local : handler:(Protocol.request -> Protocol.response) -> t

val socket : ?policy:policy -> string -> (t, string) result
(** Connect to a Unix-domain socket path. *)

val call : t -> Protocol.request -> Protocol.response
(** Perform one round trip.  Transport failures (after the policy's
    retry budget is spent) and undecodable responses surface as
    [Error_msg] responses; a call never hangs past
    [call_timeout * (max_retries + 1)] plus backoff. *)

val counters : t -> counters
val reset_counters : t -> unit
val close : t -> unit
