(** A threaded Unix-domain-socket server for the filter protocol — the
    "big server" side of the paper's architecture (figure 3).

    Each accepted connection runs on its own handler thread.  The
    server keeps per-connection accounting, backs off instead of
    spinning when [accept] fails persistently (e.g. EMFILE), and
    {!stop} performs a graceful drain: stop accepting, let in-flight
    requests finish, join every handler thread, then unlink the
    socket. *)

type t

type session = {
  on_request : Protocol.request -> Protocol.response;
      (** Must be safe for concurrent calls across connections (each
          connection issues one request at a time). *)
  on_close : unit -> unit;
      (** Runs exactly once when the connection ends — client
          disconnect, handler I/O failure, or server drain — before
          the descriptor is closed.  Use it to release per-connection
          server state (e.g. evict the connection's cursors). *)
}

val start : path:string -> handler:(Protocol.request -> Protocol.response) -> t
(** Bind [path] (unlinking any stale socket), then accept connections
    on a background thread; each connection gets its own handler
    thread.  @raise Unix.Unix_error if binding fails. *)

val start_sessions :
  ?send_timeout:float -> path:string -> session:(unit -> session) -> unit -> t
(** Like {!start}, but a fresh [session] is created per connection,
    giving the handler connection identity and a close hook.
    [send_timeout] bounds each response write so a client that stops
    reading cannot wedge a handler thread forever. *)

val path : t -> string

type stats = {
  connections_accepted : int;
  connections_active : int;
  requests_handled : int;
  accept_errors : int;  (** failed [accept] calls (backoff applied) *)
}

val stats : t -> stats

val stop : t -> unit
(** Graceful drain: stop accepting, close the listening socket, shut
    down the read side of live connections (in-flight responses still
    go out), join all handler threads — running their [on_close]
    hooks — and unlink the path.  Returns once every handler has
    exited. *)
