(** A threaded Unix-domain-socket server for the filter protocol — the
    "big server" side of the paper's architecture (figure 3). *)

type t

val start : path:string -> handler:(Protocol.request -> Protocol.response) -> t
(** Bind [path] (unlinking any stale socket), then accept connections
    on a background thread; each connection gets its own handler
    thread.  The handler must be safe for concurrent calls (the query
    engines issue one request at a time per connection, but several
    clients may connect).  @raise Unix.Unix_error if binding fails. *)

val path : t -> string

val stop : t -> unit
(** Stop accepting, close the listening socket and unlink the path.
    In-flight connections are closed. *)
