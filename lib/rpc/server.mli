(** An event-driven Unix-domain-socket server for the filter protocol —
    the "big server" side of the paper's architecture (figure 3).

    One loop domain multiplexes every connection over [poll(2)]
    ({!Evloop}); request handlers run inline on the loop and fan
    evaluation work out through the server filter's pool, so
    connection count is bounded by descriptors, not threads.  The
    server keeps per-connection accounting, backs off instead of
    spinning when [accept] fails persistently (e.g. EMFILE), and
    {!stop} performs a graceful drain: stop accepting, flush in-flight
    responses, run close hooks, then unlink the socket. *)

type t

type session = {
  on_request : Protocol.request -> Protocol.response;
      (** Called from the loop domain, one outstanding request per
          connection at a time; distinct connections' handlers never
          overlap (they share the loop), so per-session state needs no
          locking of its own. *)
  on_close : unit -> unit;
      (** Runs exactly once when the connection ends — client
          disconnect, write deadline, or server drain — before the
          descriptor is closed.  Use it to release per-connection
          server state (e.g. evict the connection's cursors). *)
}

val start : path:string -> handler:(Protocol.request -> Protocol.response) -> t
(** Bind [path] (unlinking any stale socket), then serve connections
    from the event loop.  @raise Unix.Unix_error if binding fails. *)

val start_sessions :
  ?send_timeout:float -> path:string -> session:(unit -> session) -> unit -> t
(** Like {!start}, but a fresh [session] is created per connection,
    giving the handler connection identity and a close hook.
    [send_timeout] bounds how long a response may sit part-written in
    the connection's output buffer, so a client that stops reading is
    disconnected instead of holding memory forever. *)

val path : t -> string

type stats = {
  connections_accepted : int;
  connections_active : int;
  requests_handled : int;
  accept_errors : int;  (** failed [accept] calls (backoff applied) *)
}

val stats : t -> stats

val backoff_delay : consecutive_failures:int -> float
(** The accept-failure backoff schedule (seconds before re-arming the
    listener), pure in the failure count (counted from 1).  Doubles
    from 10 ms and saturates at 1 s — exposed so the resilience
    tests can pin the schedule rather than timing real EMFILE
    storms. *)

val stop : t -> unit
(** Graceful drain: stop accepting, close the listening socket, shut
    down the read side of live connections, flush responses still in
    output buffers (bounded by the send timeout), run every
    [on_close] hook, join the loop domain, and unlink the path. *)
