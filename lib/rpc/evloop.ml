external fd_int : Unix.file_descr -> int = "ssdb_fd_int" [@@noalloc]

external poll_arrays : int array -> int array -> int array -> int -> int -> int
  = "ssdb_poll"

type t = {
  mutable fds : int array;  (* parallel arrays; slots [0, count) live *)
  mutable events : int array;
  mutable revents : int array;
  mutable count : int;
  index : (int, int) Hashtbl.t;  (* fd number -> live slot *)
  (* scratch for [wait]: ready (fd, revents) pairs are snapshotted
     before any callback runs, because callbacks mutate the slots *)
  mutable ready_fds : int array;
  mutable ready_evs : int array;
}

let create () =
  {
    fds = Array.make 64 (-1);
    events = Array.make 64 0;
    revents = Array.make 64 0;
    count = 0;
    index = Hashtbl.create 64;
    ready_fds = Array.make 64 (-1);
    ready_evs = Array.make 64 0;
  }

let interest ~read ~write = (if read then 1 else 0) lor (if write then 2 else 0)

let grow t =
  let cap = Array.length t.fds in
  if t.count = cap then begin
    let fds = Array.make (2 * cap) (-1) in
    let events = Array.make (2 * cap) 0 in
    let revents = Array.make (2 * cap) 0 in
    Array.blit t.fds 0 fds 0 cap;
    Array.blit t.events 0 events 0 cap;
    t.fds <- fds;
    t.events <- events;
    t.revents <- revents
  end

let add t fd ~read ~write =
  let n = fd_int fd in
  if Hashtbl.mem t.index n then
    invalid_arg (Printf.sprintf "Evloop.add: fd %d already registered" n);
  grow t;
  t.fds.(t.count) <- n;
  t.events.(t.count) <- interest ~read ~write;
  t.revents.(t.count) <- 0;
  Hashtbl.replace t.index n t.count;
  t.count <- t.count + 1

let modify t fd ~read ~write =
  let n = fd_int fd in
  match Hashtbl.find_opt t.index n with
  | None -> invalid_arg (Printf.sprintf "Evloop.modify: fd %d not registered" n)
  | Some slot -> t.events.(slot) <- interest ~read ~write

let remove t fd =
  let n = fd_int fd in
  match Hashtbl.find_opt t.index n with
  | None -> ()
  | Some slot ->
      let last = t.count - 1 in
      if slot <> last then begin
        (* swap the last live slot in to keep the arrays dense *)
        t.fds.(slot) <- t.fds.(last);
        t.events.(slot) <- t.events.(last);
        t.revents.(slot) <- t.revents.(last);
        Hashtbl.replace t.index t.fds.(slot) slot
      end;
      t.fds.(last) <- -1;
      t.count <- last;
      Hashtbl.remove t.index n

let mem t fd = Hashtbl.mem t.index (fd_int fd)
let size t = t.count

(* Unix.file_descr is abstract; C gives us int -> fd for free via the
   same identity trick in reverse.  Kept private to this module. *)
external fd_of_int : int -> Unix.file_descr = "ssdb_fd_int" [@@noalloc]

let wait t ~timeout_ms ~f =
  let n_ready = poll_arrays t.fds t.events t.revents t.count timeout_ms in
  if n_ready > 0 then begin
    if Array.length t.ready_fds < n_ready then begin
      t.ready_fds <- Array.make (2 * n_ready) (-1);
      t.ready_evs <- Array.make (2 * n_ready) 0
    end;
    let found = ref 0 in
    let i = ref 0 in
    while !found < n_ready && !i < t.count do
      let re = t.revents.(!i) in
      if re <> 0 then begin
        t.ready_fds.(!found) <- t.fds.(!i);
        t.ready_evs.(!found) <- re;
        incr found
      end;
      incr i
    done;
    for j = 0 to !found - 1 do
      let fd = t.ready_fds.(j) in
      (* a callback earlier in this round may have removed (even
         closed) this descriptor; its stale events must not fire *)
      if Hashtbl.mem t.index fd then begin
        let re = t.ready_evs.(j) in
        f (fd_of_int fd) ~readable:(re land 1 <> 0) ~writable:(re land 2 <> 0)
          ~error:(re land 4 <> 0)
      end
    done
  end;
  n_ready
