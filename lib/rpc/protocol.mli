(** The client/server filter protocol.

    This is the message vocabulary of the paper's [Filter] interface
    (§5.2): tree-structure queries ([Root], [Children], [Parent],
    [Descendants]), share evaluation on the server ([Eval],
    [Eval_batch]), raw share fetch for the equality test ([Share],
    [Shares]), and a cursor discipline mirroring the [nextNode()]
    pipeline — "the thin client only needs to have one node in memory
    at a time.  The big server will do the buffering of the
    intermediate results."

    Everything is structural metadata and share data; tag names and the
    map never cross the wire. *)

type node_meta = { pre : int; post : int; parent : int }

type request =
  | Ping
  | Root
  | Children of int  (** parent's [pre] *)
  | Parent of int  (** child's [pre] *)
  | Descendants of { pre : int; post : int }
      (** opens a server-side cursor over the subtree *)
  | Cursor_next of { cursor : int; max_items : int }
  | Cursor_close of int
  | Eval of { pre : int; point : int }
      (** evaluate the stored share of node [pre] at [point] *)
  | Eval_batch of { pres : int list; point : int }
  | Share of int  (** raw share of node [pre] *)
  | Shares of int list
  | Table_stats

type stats = { rows : int; data_bytes : int; index_bytes : int }

type response =
  | Pong
  | Node_opt of node_meta option
  | Nodes of node_meta list
  | Cursor of int
  | Batch of node_meta list * bool  (** items, exhausted? *)
  | Value of int
  | Values of int list
  | Share_data of bytes
  | Shares_data of bytes list
  | Stats of stats
  | Error_msg of string

val encode_request : request -> string
val decode_request : string -> request
(** @raise Wire.Decode_error on malformed input. *)

val encode_response : response -> string
val decode_response : string -> response
(** @raise Wire.Decode_error on malformed input. *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
