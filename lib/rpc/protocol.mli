(** The client/server filter protocol.

    This is the message vocabulary of the paper's [Filter] interface
    (§5.2): tree-structure queries ([Root], [Children], [Parent],
    [Descendants]), share evaluation on the server ([Eval],
    [Eval_batch]), raw share fetch for the equality test ([Share],
    [Shares]), and a cursor discipline mirroring the [nextNode()]
    pipeline — "the thin client only needs to have one node in memory
    at a time.  The big server will do the buffering of the
    intermediate results."

    Everything is structural metadata and share data; tag names and the
    map never cross the wire. *)

type node_meta = { pre : int; post : int; parent : int }

type scan_target =
  | Children_of of int list  (** children of every listed parent [pre] *)
  | Pre_ranges of (int * int) list
      (** [(from_pre, below_post)] runs: ascending [pre] from
          [from_pre], stopping at the first row with
          [post >= below_post].  A node's strict descendants are
          [(pre + 1, post)]; its whole subtree is [(pre, post + 1)].
          Nested ranges are deduplicated server-side. *)
  | Bounded_pre_ranges of (int * int * int) list
      (** [(from_pre, until_pre, below_post)]: like [Pre_ranges] but
          also stopping before any row with [pre >= until_pre].  The
          sharding router splits a range at partition boundaries with
          these; because subtree ranges are pre-contiguous, the
          concatenation of the bounded pieces equals the original
          range exactly.  Pieces are taken as given (sorted by
          [from_pre]), not deduplicated. *)

type manifest_info = {
  shard_id : int;
      (** this server's 1-based shard id — its Shamir x-coordinate;
          0 identifies a router answering for the whole group *)
  shards : int;  (** n: shard servers in the deployment *)
  threshold : int;  (** t: shards needed to reconstruct (1 = plain) *)
  total_rows : int;  (** rows of the full table (every shard holds all rows) *)
  bounds : int list;
      (** ascending partition start [pre]s — the pre-range routing
          overlay; partition [k] spans [bounds(k)] up to [bounds(k+1)]
          (the last one is unbounded) *)
}

type request =
  | Ping
  | Root
  | Children of int  (** parent's [pre] *)
  | Parent of int  (** child's [pre] *)
  | Descendants of { pre : int; post : int }
      (** opens a server-side cursor over the subtree *)
  | Cursor_next of { cursor : int; max_items : int }
  | Cursor_close of int
  | Eval of { pre : int; point : int }
      (** evaluate the stored share of node [pre] at [point] *)
  | Eval_batch of { pres : int list; point : int }
  | Share of int  (** raw share of node [pre] *)
  | Shares of int list
  | Table_stats
  | Scan_eval of { target : scan_target; points : int list; max_items : int }
      (** Fused axis scan + share evaluation: one round trip returns a
          batch of scanned rows, each with its server-share evaluated
          at every point.  Replaces a per-parent [Children] (or
          [Descendants] cursor drain) followed by an [Eval_batch].
          The reply is a [Scan_batch]; when it carries a cursor,
          continue with [Scan_next] or abandon with [Cursor_close]. *)
  | Scan_next of { cursor : int; max_items : int }
      (** Next batch of a [Scan_eval] (not idempotent, like
          [Cursor_next]). *)
  | Manifest
      (** Topology handshake: answered with [Manifest_data].  A
          non-sharded server reports the trivial 1-of-1 manifest, so
          clients can probe any deployment uniformly. *)
  | Agg_eval of { pres : int list }
      (** Fold the numeric-column shares of the listed rows into one
          blinded partial sum (answered with [Agg_partial]).  The
          client sends the matched [pre]s — the same access pattern a
          node-set fetch reveals — and receives a constant-size reply
          whatever the selectivity. *)

type stats = { rows : int; data_bytes : int; index_bytes : int }

type response =
  | Pong
  | Node_opt of node_meta option
  | Nodes of node_meta list
  | Cursor of int
  | Batch of node_meta list * bool  (** items, exhausted? *)
  | Value of int
  | Values of int list
  | Share_data of bytes
  | Shares_data of bytes list
  | Stats of stats
  | Scan_batch of { rows : (node_meta * int list) list; cursor : int option }
      (** One batch of a fused scan; [cursor] is present when more
          rows remain. *)
  | Manifest_data of manifest_info
  | Agg_partial of { count : int; sum : int }
      (** Reply to [Agg_eval]: [count] rows folded, [sum] their
          server-share total in the numeric field.  [sum] is one
          additive share — uniformly random without the client's
          blinding shares — and the reply is the same size on the wire
          for every selectivity. *)
  | Error_msg of string

val request_name : request -> string
(** Stable lowercase opcode name ("scan_eval", "cursor_next", …) —
    safe as a metric label value: carries the opcode only, never the
    request payload. *)

val encode_request : request -> string
val decode_request : string -> request
(** @raise Wire.Decode_error on malformed input. *)

val encode_response : response -> string
val decode_response : string -> response
(** @raise Wire.Decode_error on malformed input. *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
