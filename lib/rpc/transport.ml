module Obs = Secshare_obs

(* Registry mirrors of the mutable [counters] record.  The record
   stays (per-transport, cheap, the existing API); the registry gets
   the process-wide aggregate that /metrics and tests scrape.  The
   per-opcode families are declared here so they render before the
   first call. *)
let () =
  Obs.Registry.declare ~kind:Obs.Registry.K_counter
    ~help:"Client RPC round trips, by opcode." "ssdb_client_rpc_calls_total";
  Obs.Registry.declare ~kind:Obs.Registry.K_histogram
    ~help:"Client RPC round-trip latency in seconds, by opcode."
    "ssdb_client_rpc_seconds"

let obs_bytes_sent =
  Obs.Registry.counter ~help:"Request payload bytes written by clients."
    "ssdb_client_rpc_bytes_sent_total"

let obs_bytes_received =
  Obs.Registry.counter ~help:"Response payload bytes read by clients."
    "ssdb_client_rpc_bytes_received_total"

let obs_retries =
  Obs.Registry.counter ~help:"Failed client RPC attempts that were retried."
    "ssdb_client_rpc_retries_total"

let obs_reconnects =
  Obs.Registry.counter ~help:"Client sockets re-established after a drop."
    "ssdb_client_rpc_reconnects_total"

let obs_timeouts =
  Obs.Registry.counter ~help:"Client RPC attempts that hit the per-call deadline."
    "ssdb_client_rpc_timeouts_total"

type counters = {
  mutable calls : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable retries : int;
  mutable reconnects : int;
  mutable timeouts : int;
}

type policy = {
  call_timeout : float option;
  max_retries : int;
  backoff_base : float;
  backoff_max : float;
  backoff_jitter : float;
}

let default_policy =
  {
    call_timeout = None;
    max_retries = 0;
    backoff_base = 0.05;
    backoff_max = 1.0;
    backoff_jitter = 0.5;
  }

type socket_conn = {
  path : string;
  policy : policy;
  mutable fd : Unix.file_descr option;
  mutable closed : bool;
}

type kind =
  | Local of (Protocol.request -> Protocol.response)
  | Socket of socket_conn

type t = { kind : kind; counters : counters }

let fresh_counters () =
  {
    calls = 0;
    bytes_sent = 0;
    bytes_received = 0;
    retries = 0;
    reconnects = 0;
    timeouts = 0;
  }

let local ~handler = { kind = Local handler; counters = fresh_counters () }

let connect_fd path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception exn ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise exn

let socket ?(policy = default_policy) path =
  match connect_fd path with
  | fd ->
      Ok
        {
          kind = Socket { path; policy; fd = Some fd; closed = false };
          counters = fresh_counters ();
        }
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

(* Every request is a pure read of server state except [Cursor_next]
   and [Scan_next], which advance a server-side cursor: resending one
   after an ambiguous failure could silently skip a batch.
   ([Scan_eval], like [Descendants], only creates a cursor — a retried
   duplicate leaks until evicted, which is safe.) *)
let idempotent = function
  | Protocol.Cursor_next _ | Protocol.Scan_next _ -> false
  | _ -> true

(* Jitter noise comes from the project's seeded SplitMix64, not
   Stdlib.Random: every random draw in the tree stays auditable
   (ssdb_lint banned/random).  The state is process-global and
   intentionally unsynchronised — a torn update can only repeat a
   jitter value, which is harmless. *)
let jitter_prg =
  Secshare_prg.Splitmix64.create
    (Int64.of_float (Unix.gettimeofday () *. 1e9) |> Int64.logxor 0x5DB5DB5DB5DB5DBL)

let backoff_delay policy attempt =
  let d = policy.backoff_base *. (2.0 ** float_of_int attempt) in
  let d = Float.min d policy.backoff_max in
  let jitter =
    if policy.backoff_jitter <= 0.0 then 0.0
    else
      policy.backoff_jitter
      *. ((Secshare_prg.Splitmix64.next_float jitter_prg *. 2.0) -. 1.0)
  in
  Float.max 0.0 (d *. (1.0 +. jitter))

let drop_connection conn =
  (match conn.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  conn.fd <- None

let call t request =
  let op = Protocol.request_name request in
  let encoded = Protocol.encode_request request in
  t.counters.calls <- t.counters.calls + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + String.length encoded;
  Obs.Registry.inc
    (Obs.Registry.counter ~labels:[ ("op", op) ] "ssdb_client_rpc_calls_total");
  Obs.Registry.inc ~by:(String.length encoded) obs_bytes_sent;
  let latency =
    Obs.Registry.histogram ~labels:[ ("op", op) ] "ssdb_client_rpc_seconds"
  in
  let perform () =
    match t.kind with
    | Local handler -> (
        (* Round-trip through the codec even locally so both transports
           measure and exercise the same byte stream. *)
        match
          let decoded = Protocol.decode_request encoded in
          Protocol.encode_response (handler decoded)
        with
        | reply ->
            t.counters.bytes_received <- t.counters.bytes_received + String.length reply;
            Obs.Registry.inc ~by:(String.length reply) obs_bytes_received;
            Protocol.decode_response reply
        | exception Wire.Decode_error msg -> Protocol.Error_msg ("codec: " ^ msg))
    | Socket conn ->
        if conn.closed then Protocol.Error_msg "transport closed"
        else begin
          let retryable = idempotent request in
          let rec attempt n =
            let fail msg =
              if retryable && n < conn.policy.max_retries then begin
                t.counters.retries <- t.counters.retries + 1;
                Obs.Registry.inc obs_retries;
                Obs.Events.debug "transport retry op=%s attempt=%d reason=%s" op (n + 1)
                  msg;
                Thread.delay (backoff_delay conn.policy n);
                attempt (n + 1)
              end
              else Protocol.Error_msg ("transport: " ^ msg)
            in
            match
              match conn.fd with
              | Some fd -> Ok fd
              | None -> (
                  match connect_fd conn.path with
                  | fd ->
                      conn.fd <- Some fd;
                      t.counters.reconnects <- t.counters.reconnects + 1;
                      Obs.Registry.inc obs_reconnects;
                      Obs.Events.debug "transport reconnect path=%s" conn.path;
                      Ok fd
                  | exception Unix.Unix_error (err, _, _) ->
                      Error ("reconnect: " ^ Unix.error_message err))
            with
            | Error msg -> fail msg
            | Ok fd -> (
                let deadline =
                  Option.map
                    (fun seconds -> Unix.gettimeofday () +. seconds)
                    conn.policy.call_timeout
                in
                match
                  (* the frame header carries the ambient trace id so
                     server-side spans join the client's trace *)
                  Frame.send ?deadline ~trace_id:(Obs.Trace.current_id ()) fd encoded;
                  Frame.recv ?deadline fd
                with
                | reply -> (
                    t.counters.bytes_received <-
                      t.counters.bytes_received + String.length reply;
                    Obs.Registry.inc ~by:(String.length reply) obs_bytes_received;
                    (* an undecodable reply is a protocol error, not a
                       transport error: the peer answered, retrying the
                       same request will not help *)
                    match Protocol.decode_response reply with
                    | response -> response
                    | exception Wire.Decode_error msg ->
                        Protocol.Error_msg ("codec: " ^ msg))
                | exception Frame.Timeout ->
                    t.counters.timeouts <- t.counters.timeouts + 1;
                    Obs.Registry.inc obs_timeouts;
                    (* the stream may hold a late reply for the timed-out
                       request: unusable, drop the connection *)
                    drop_connection conn;
                    fail "timeout"
                | exception Failure msg ->
                    drop_connection conn;
                    fail msg
                | exception Unix.Unix_error (err, _, _) ->
                    drop_connection conn;
                    fail (Unix.error_message err))
          in
          attempt 0
        end
  in
  Obs.Trace.with_span ~kind:Obs.Span.Client ("rpc:" ^ op) (fun () ->
      let start = Unix.gettimeofday () in
      let response = perform () in
      Obs.Histogram.observe latency (Unix.gettimeofday () -. start);
      response)

let counters t = t.counters

let reset_counters t =
  t.counters.calls <- 0;
  t.counters.bytes_sent <- 0;
  t.counters.bytes_received <- 0;
  t.counters.retries <- 0;
  t.counters.reconnects <- 0;
  t.counters.timeouts <- 0

let close t =
  match t.kind with
  | Local _ -> ()
  | Socket conn ->
      if not conn.closed then begin
        conn.closed <- true;
        drop_connection conn
      end
