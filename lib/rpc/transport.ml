type counters = {
  mutable calls : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

type kind =
  | Local of (Protocol.request -> Protocol.response)
  | Socket of { fd : Unix.file_descr; mutable alive : bool }

type t = { kind : kind; counters : counters }

let fresh_counters () = { calls = 0; bytes_sent = 0; bytes_received = 0 }
let local ~handler = { kind = Local handler; counters = fresh_counters () }

let socket path =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  with
  | fd -> Ok { kind = Socket { fd; alive = true }; counters = fresh_counters () }
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let call t request =
  let encoded = Protocol.encode_request request in
  t.counters.calls <- t.counters.calls + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + String.length encoded;
  match t.kind with
  | Local handler -> (
      (* Round-trip through the codec even locally so both transports
         measure and exercise the same byte stream. *)
      match
        let decoded = Protocol.decode_request encoded in
        Protocol.encode_response (handler decoded)
      with
      | reply ->
          t.counters.bytes_received <- t.counters.bytes_received + String.length reply;
          Protocol.decode_response reply
      | exception Wire.Decode_error msg -> Protocol.Error_msg ("codec: " ^ msg))
  | Socket conn -> (
      if not conn.alive then Protocol.Error_msg "transport closed"
      else
        match
          Frame.send conn.fd encoded;
          Frame.recv conn.fd
        with
        | reply ->
            t.counters.bytes_received <- t.counters.bytes_received + String.length reply;
            Protocol.decode_response reply
        | exception Failure msg ->
            conn.alive <- false;
            Protocol.Error_msg ("transport: " ^ msg)
        | exception Unix.Unix_error (err, _, _) ->
            conn.alive <- false;
            Protocol.Error_msg ("transport: " ^ Unix.error_message err)
        | exception Wire.Decode_error msg -> Protocol.Error_msg ("codec: " ^ msg))

let counters t = t.counters

let reset_counters t =
  t.counters.calls <- 0;
  t.counters.bytes_sent <- 0;
  t.counters.bytes_received <- 0

let close t =
  match t.kind with
  | Local _ -> ()
  | Socket conn ->
      if conn.alive then begin
        conn.alive <- false;
        (try Unix.close conn.fd with Unix.Unix_error _ -> ())
      end
