exception Decode_error of string

type writer = Buffer.t
type reader = { src : string; mutable pos : int }

let writer () = Buffer.create 256
let contents w = Buffer.contents w
let write_u8 w v = Buffer.add_uint8 w (v land 0xFF)

let write_u32 w v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Wire.write_u32: %d out of range" v);
  Buffer.add_int32_le w (Int32.of_int (if v > 0x7FFFFFFF then v - 0x100000000 else v))

let write_i64 w v = Buffer.add_int64_le w (Int64.of_int v)

let write_bytes w b =
  write_u32 w (Bytes.length b);
  Buffer.add_bytes w b

let write_string w s =
  write_u32 w (String.length s);
  Buffer.add_string w s

let write_list w f items =
  write_u32 w (List.length items);
  List.iter f items

let reader src = { src; pos = 0 }

let need r n =
  if r.pos + n > String.length r.src then
    raise (Decode_error (Printf.sprintf "need %d bytes at offset %d, have %d" n r.pos
                           (String.length r.src)))

let read_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then v + 0x100000000 else v

let read_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let read_string r =
  let len = read_u32 r in
  need r len;
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let read_bytes r = Bytes.of_string (read_string r)

let read_list r f =
  let len = read_u32 r in
  if len > 1 lsl 28 then raise (Decode_error "unreasonable list length");
  List.init len (fun _ -> f ())

let expect_end r =
  if r.pos <> String.length r.src then
    raise
      (Decode_error
         (Printf.sprintf "%d trailing bytes after message" (String.length r.src - r.pos)))
