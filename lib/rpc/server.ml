type session = {
  on_request : Protocol.request -> Protocol.response;
  on_close : unit -> unit;
}

type stats = {
  connections_accepted : int;
  connections_active : int;
  requests_handled : int;
  accept_errors : int;
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  send_timeout : float option;
  mutable running : bool;
  mutable client_fds : Unix.file_descr list;
  mutable handler_threads : Thread.t list;
  mutable connections_accepted : int;
  mutable requests_handled : int;
  mutable accept_errors : int;
  lock : Mutex.t;
  accept_thread : Thread.t option ref;
}

let handle_connection t session fd =
  let finished = ref false in
  while (not !finished) && t.running do
    match Frame.recv fd with
    | request_payload ->
        let reply =
          match Protocol.decode_request request_payload with
          | request -> (
              match session.on_request request with
              | response -> response
              | exception exn ->
                  Protocol.Error_msg ("handler: " ^ Printexc.to_string exn))
          | exception Wire.Decode_error msg -> Protocol.Error_msg ("codec: " ^ msg)
        in
        Mutex.lock t.lock;
        t.requests_handled <- t.requests_handled + 1;
        Mutex.unlock t.lock;
        let deadline =
          Option.map (fun s -> Unix.gettimeofday () +. s) t.send_timeout
        in
        (match Frame.send ?deadline fd (Protocol.encode_response reply) with
        | () -> ()
        | exception (Failure _ | Unix.Unix_error _ | Frame.Timeout) -> finished := true)
    | exception (Failure _ | Unix.Unix_error _) -> finished := true
  done;
  (match session.on_close () with
  | () -> ()
  | exception _ -> ());
  (* unregister before closing, so [stop] never shuts down a reused
     descriptor number *)
  Mutex.lock t.lock;
  t.client_fds <- List.filter (fun other -> other != fd) t.client_fds;
  let self = Thread.id (Thread.self ()) in
  t.handler_threads <-
    List.filter (fun thread -> Thread.id thread <> self) t.handler_threads;
  Mutex.unlock t.lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t make_session =
  let consecutive_failures = ref 0 in
  while t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        consecutive_failures := 0;
        let session = make_session () in
        Mutex.lock t.lock;
        t.client_fds <- fd :: t.client_fds;
        t.connections_accepted <- t.connections_accepted + 1;
        let thread = Thread.create (handle_connection t session) fd in
        t.handler_threads <- thread :: t.handler_threads;
        Mutex.unlock t.lock
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ when not t.running ->
        () (* listening socket closed by stop *)
    | exception Unix.Unix_error _ ->
        (* e.g. EMFILE: back off instead of spinning at 100% CPU, and
           keep serving the connections we already have *)
        Mutex.lock t.lock;
        t.accept_errors <- t.accept_errors + 1;
        Mutex.unlock t.lock;
        incr consecutive_failures;
        let delay =
          Float.min 1.0 (0.005 *. (2.0 ** float_of_int (min !consecutive_failures 8)))
        in
        Thread.delay delay
  done

let start_sessions ?send_timeout ~path ~session () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let t =
    {
      socket_path = path;
      listen_fd;
      send_timeout;
      running = true;
      client_fds = [];
      handler_threads = [];
      connections_accepted = 0;
      requests_handled = 0;
      accept_errors = 0;
      lock = Mutex.create ();
      accept_thread = ref None;
    }
  in
  t.accept_thread := Some (Thread.create (fun () -> accept_loop t session) ());
  t

let start ~path ~handler =
  start_sessions ~path
    ~session:(fun () -> { on_request = handler; on_close = ignore })
    ()

let path t = t.socket_path

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      connections_accepted = t.connections_accepted;
      connections_active = List.length t.client_fds;
      requests_handled = t.requests_handled;
      accept_errors = t.accept_errors;
    }
  in
  Mutex.unlock t.lock;
  s

let stop t =
  if t.running then begin
    t.running <- false;
    (* a thread blocked in [accept] is not woken by closing the
       listening socket on Linux; poke it with a throwaway connection *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match !(t.accept_thread) with None -> () | Some thread -> Thread.join thread);
    (* drain: shut down the read side of every live connection, so
       handlers blocked in [recv] see EOF while in-flight responses
       still go out, then wait for every handler to finish *)
    Mutex.lock t.lock;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.client_fds;
    let handlers = t.handler_threads in
    Mutex.unlock t.lock;
    List.iter Thread.join handlers;
    (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())
  end
