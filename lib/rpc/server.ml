module Obs = Secshare_obs

(* Server-side registry families.  Declared (or created) at module
   init so a fresh server's /metrics already shows the full surface.
   Byte counters include the 12-byte frame headers: they measure what
   crossed the wire, not what the codec produced. *)
let () =
  Obs.Registry.declare ~kind:Obs.Registry.K_counter
    ~help:"Requests handled, by opcode." "ssdb_server_requests_total";
  Obs.Registry.declare ~kind:Obs.Registry.K_histogram
    ~help:"Request handling latency in seconds, by opcode."
    "ssdb_server_request_seconds"

let obs_frame_bytes_in =
  Obs.Registry.counter ~help:"Bytes read from clients, frame headers included."
    "ssdb_server_frame_bytes_in_total"

let obs_frame_bytes_out =
  Obs.Registry.counter ~help:"Bytes written to clients, frame headers included."
    "ssdb_server_frame_bytes_out_total"

let obs_connections_accepted =
  Obs.Registry.counter ~help:"Client connections accepted."
    "ssdb_server_connections_accepted_total"

let obs_connections_active =
  Obs.Registry.gauge ~help:"Client connections currently open."
    "ssdb_server_connections_active"

let obs_request_errors =
  Obs.Registry.counter
    ~help:"Requests answered with an error response (codec, handler or unknown cursor)."
    "ssdb_server_request_errors_total"

type session = {
  on_request : Protocol.request -> Protocol.response;
  on_close : unit -> unit;
}

type stats = {
  connections_accepted : int;
  connections_active : int;
  requests_handled : int;
  accept_errors : int;
}

(* Exponential accept backoff, e.g. against EMFILE: same schedule the
   threaded server used, exposed as a pure function so the regression
   tests can pin it.  [consecutive_failures] counts from 1. *)
let backoff_delay ~consecutive_failures =
  Float.min 1.0 (0.005 *. (2.0 ** float_of_int (min consecutive_failures 8)))

(* One multiplexed connection.  All fields are owned by the loop
   domain; nothing here is shared. *)
type conn = {
  fd : Unix.file_descr;
  session : session;
  mutable rbuf : Bytes.t; [@domain_confined "evloop"]
  mutable rlen : int; [@domain_confined "evloop"]  (* bytes of [rbuf] filled *)
  mutable wbuf : Bytes.t; [@domain_confined "evloop"]
  mutable wpos : int; [@domain_confined "evloop"]  (* next unsent byte *)
  mutable wlen : int; [@domain_confined "evloop"]  (* end of pending output *)
  mutable wdeadline : float; [@domain_confined "evloop"]  (* absolute; 0. = none *)
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  send_timeout : float option;
  make_session : unit -> session;
  (* loop-domain-only state: the poll interest set and the connection
     table keyed by descriptor number.  Single-owner, so unlocked. *)
  evloop : Evloop.t;
  conns : (int, conn) Hashtbl.t; [@domain_confined "evloop"]
  wake_r : Unix.file_descr;  (* self-pipe: [stop] pokes the loop *)
  wake_w : Unix.file_descr;
  (* cross-thread state: everything below is read by [stats]/[stop]
     from other threads and guarded by [lock]. *)
  lock : Mutex.t;
  mutable running : bool; [@guarded_by "rpc-server-stats"]
  mutable connections_accepted : int; [@guarded_by "rpc-server-stats"]
  mutable connections_active : int; [@guarded_by "rpc-server-stats"]
  mutable requests_handled : int; [@guarded_by "rpc-server-stats"]
  mutable accept_errors : int; [@guarded_by "rpc-server-stats"]
  loop_domain : unit Domain.t option ref;
      [@atomic_ok
        "written by start before the loop is visible and by stop after join; never \
         concurrent"]
}

let with_lock t f =
  Mutex.lock t.lock;
  Obs.Race_check.acquired "rpc-server-stats";
  Obs.Race_check.access ~write:true "server.stats";
  Fun.protect
    ~finally:(fun () ->
      Obs.Race_check.released "rpc-server-stats";
      Mutex.unlock t.lock)
    f

let is_running t = with_lock t (fun () -> t.running)

(* --- output path ------------------------------------------------- *)

(* Flush as much pending output as the socket accepts right now.
   Returns [`Done] when the buffer drained, [`Blocked] when the socket
   would block, [`Closed] on a write error (peer gone). *)
let flush_out conn =
  let rec go () =
    if conn.wpos >= conn.wlen then begin
      conn.wpos <- 0;
      conn.wlen <- 0;
      conn.wdeadline <- 0.0;
      `Done
    end
    else
      match Unix.write conn.fd conn.wbuf conn.wpos (conn.wlen - conn.wpos) with
      | 0 -> `Closed
      | n ->
          conn.wpos <- conn.wpos + n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Blocked
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> `Closed
  in
  go ()

let ensure_out_capacity conn extra =
  let need = conn.wlen + extra in
  if Bytes.length conn.wbuf < need then begin
    let cap = max need (2 * Bytes.length conn.wbuf) in
    let fresh = Bytes.create cap in
    Bytes.blit conn.wbuf 0 fresh 0 conn.wlen;
    conn.wbuf <- fresh
  end

(* Queue one framed response (header layout as in {!Frame}). *)
let queue_reply conn ~trace_id payload =
  let len = String.length payload in
  ensure_out_capacity conn (Frame.header_bytes + len);
  Bytes.set_int32_be conn.wbuf conn.wlen (Int32.of_int len);
  Bytes.set_int64_be conn.wbuf (conn.wlen + 4) trace_id;
  Bytes.blit_string payload 0 conn.wbuf (conn.wlen + Frame.header_bytes) len;
  conn.wlen <- conn.wlen + Frame.header_bytes + len;
  Obs.Registry.inc ~by:(Frame.header_bytes + len) obs_frame_bytes_out

(* --- connection lifecycle ---------------------------------------- *)

let close_conn t conn =
  Evloop.remove t.evloop conn.fd;
  Hashtbl.remove t.conns (Evloop.fd_int conn.fd);
  with_lock t (fun () -> t.connections_active <- t.connections_active - 1);
  Obs.Registry.gauge_add obs_connections_active (-1);
  (match conn.session.on_close () with () -> () | exception _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* --- request path ------------------------------------------------ *)

let handle_request t conn ~trace_id payload =
  Obs.Registry.inc ~by:(Frame.header_bytes + String.length payload) obs_frame_bytes_in;
  let started = Unix.gettimeofday () in
  let op, reply =
    match Protocol.decode_request payload with
    | request ->
        let op = Protocol.request_name request in
        let reply =
          (* the frame's trace id becomes the loop's ambient trace, so
             handler-side spans and the slow-query log join the
             client's trace *)
          Obs.Trace.with_ambient trace_id (fun () ->
              Obs.Trace.with_span ~kind:Obs.Span.Server ("serve:" ^ op) (fun () ->
                  match conn.session.on_request request with
                  | response -> response
                  | exception exn ->
                      Protocol.Error_msg ("handler: " ^ Printexc.to_string exn)))
        in
        (op, reply)
    | exception Wire.Decode_error msg ->
        ("undecodable", Protocol.Error_msg ("codec: " ^ msg))
  in
  Obs.Registry.inc
    (Obs.Registry.counter ~labels:[ ("op", op) ] "ssdb_server_requests_total");
  Obs.Histogram.observe
    (Obs.Registry.histogram ~labels:[ ("op", op) ] "ssdb_server_request_seconds")
    (Unix.gettimeofday () -. started);
  (match reply with
  | Protocol.Error_msg _ -> Obs.Registry.inc obs_request_errors
  | _ -> ());
  with_lock t (fun () -> t.requests_handled <- t.requests_handled + 1);
  queue_reply conn ~trace_id (Protocol.encode_response reply)

let max_frame_len = 1 lsl 28

(* Consume every complete frame currently buffered, stopping early the
   moment a reply is queued but unflushed: one outstanding response per
   connection, exactly like the threaded server's read-handle-write
   cycle, so a pipelining client cannot balloon the output buffer. *)
let rec process_frames t conn =
  if conn.wlen = 0 && conn.rlen >= Frame.header_bytes then begin
    let len = Int32.to_int (Bytes.get_int32_be conn.rbuf 0) in
    if len < 0 || len > max_frame_len then `Protocol_error
    else if conn.rlen < Frame.header_bytes + len then `Need_more
    else begin
      let trace_id = Bytes.get_int64_be conn.rbuf 4 in
      let payload = Bytes.sub_string conn.rbuf Frame.header_bytes len in
      let consumed = Frame.header_bytes + len in
      Bytes.blit conn.rbuf consumed conn.rbuf 0 (conn.rlen - consumed);
      conn.rlen <- conn.rlen - consumed;
      handle_request t conn ~trace_id payload;
      (* flush opportunistically: almost always completes, keeping the
         fast path free of poll round trips *)
      match flush_out conn with
      | `Done -> process_frames t conn
      | `Blocked ->
          conn.wdeadline <-
            (match t.send_timeout with
            | Some s -> Unix.gettimeofday () +. s
            | None -> 0.0);
          `Need_more
      | `Closed -> `Protocol_error
    end
  end
  else `Need_more

let update_interest t conn =
  (* read only while no response is pending (per-connection
     backpressure); write only while output is queued *)
  if Evloop.mem t.evloop conn.fd then
    Evloop.modify t.evloop conn.fd ~read:(conn.wlen = 0) ~write:(conn.wlen > 0)

let ensure_in_capacity conn =
  let cap = Bytes.length conn.rbuf in
  if conn.rlen = cap then begin
    let fresh = Bytes.create (2 * cap) in
    Bytes.blit conn.rbuf 0 fresh 0 conn.rlen;
    conn.rbuf <- fresh
  end

let on_readable t conn =
  let closed = ref false in
  let progress = ref true in
  (* the [conn.wlen = 0] guard mirrors the one-outstanding-request
     discipline on the input side: once a reply is blocked we stop
     pulling socket data, so a fast pipelining client backs up in the
     kernel buffer instead of ballooning [rbuf] *)
  while !progress && not !closed && conn.wlen = 0 do
    progress := false;
    ensure_in_capacity conn;
    (match
       Unix.read conn.fd conn.rbuf conn.rlen (Bytes.length conn.rbuf - conn.rlen)
     with
    | 0 -> closed := true
    | n ->
        conn.rlen <- conn.rlen + n;
        progress := true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> progress := true
    | exception Unix.Unix_error _ -> closed := true);
    if not !closed then
      match process_frames t conn with
      | `Need_more -> ()
      | `Protocol_error -> closed := true
  done;
  if !closed then close_conn t conn else update_interest t conn

let on_writable t conn =
  match flush_out conn with
  | `Done ->
      (* the response went out; resume reading and drain any frames
         that piled up behind the backpressure gate *)
      (match process_frames t conn with
      | `Need_more -> update_interest t conn
      | `Protocol_error -> close_conn t conn)
  | `Blocked -> ()
  | `Closed -> close_conn t conn

(* --- accept path ------------------------------------------------- *)

type accept_state = {
  mutable consecutive_failures : int; [@domain_confined "evloop"]
  mutable paused_until : float; [@domain_confined "evloop"]  (* 0. = accepting *)
}

let register_conn t fd session =
  Unix.set_nonblock fd;
  let conn =
    {
      fd;
      session;
      rbuf = Bytes.create 4096;
      rlen = 0;
      wbuf = Bytes.create 4096;
      wpos = 0;
      wlen = 0;
      wdeadline = 0.0;
    }
  in
  Hashtbl.replace t.conns (Evloop.fd_int fd) conn;
  Evloop.add t.evloop fd ~read:true ~write:false;
  with_lock t (fun () ->
      t.connections_accepted <- t.connections_accepted + 1;
      t.connections_active <- t.connections_active + 1);
  Obs.Registry.inc obs_connections_accepted;
  Obs.Registry.gauge_add obs_connections_active 1;
  Obs.Events.debug "server accept path=%s" t.socket_path

let on_accept t astate =
  let burst = ref true in
  while !burst do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        astate.consecutive_failures <- 0;
        register_conn t fd (t.make_session ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        burst := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ when not (is_running t) -> burst := false
    | exception Unix.Unix_error _ ->
        (* e.g. EMFILE: pause the accept path instead of spinning at
           100% CPU, and keep serving the connections we already have *)
        with_lock t (fun () -> t.accept_errors <- t.accept_errors + 1);
        astate.consecutive_failures <- astate.consecutive_failures + 1;
        astate.paused_until <-
          Unix.gettimeofday ()
          +. backoff_delay ~consecutive_failures:astate.consecutive_failures;
        Evloop.remove t.evloop t.listen_fd;
        burst := false
  done

(* --- the loop ---------------------------------------------------- *)

(* Earliest of the pending write deadlines and the accept-backoff
   resume time, as a poll timeout in ms; 500 ms idle tick otherwise. *)
let loop_timeout_ms t astate =
  let now = Unix.gettimeofday () in
  let horizon = now +. 0.5 in
  let horizon = if astate.paused_until > now then Float.min horizon astate.paused_until else horizon in
  let horizon =
    Hashtbl.fold
      (fun _ conn acc ->
        if conn.wdeadline > 0.0 then Float.min acc conn.wdeadline else acc)
      t.conns horizon
  in
  max 0 (int_of_float (Float.ceil ((horizon -. now) *. 1000.0)))

let sweep_write_deadlines t =
  let now = Unix.gettimeofday () in
  let expired =
    Hashtbl.fold
      (fun _ conn acc ->
        if conn.wdeadline > 0.0 && now > conn.wdeadline then conn :: acc else acc)
      t.conns []
  in
  (* a client that stopped reading past the send timeout is dropped,
     like the threaded server's Frame.Timeout path *)
  List.iter (fun conn -> close_conn t conn) expired

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  go ()

(* Graceful drain: stop accepting, shut down the read side of every
   live connection (clients see EOF after in-flight responses), keep
   polling only to flush pending output, then close everything --
   running each session's on_close exactly once. *)
let drain t =
  Evloop.remove t.evloop t.listen_fd;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* the wake byte [stop] wrote has done its job; deregister the pipe
     so the flush loop below actually blocks in poll instead of
     busy-spinning on a permanently-readable descriptor *)
  drain_wake t;
  Evloop.remove t.evloop t.wake_r;
  let pending = ref [] in
  Hashtbl.iter
    (fun _ conn ->
      (try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
      if conn.wlen > conn.wpos then pending := conn :: !pending
      else Evloop.remove t.evloop conn.fd)
    t.conns;
  List.iter (fun conn -> Evloop.modify t.evloop conn.fd ~read:false ~write:true) !pending;
  let deadline =
    Unix.gettimeofday () +. Option.value t.send_timeout ~default:5.0
  in
  let flush_pending () =
    pending :=
      List.filter
        (fun conn ->
          match flush_out conn with
          | `Done ->
              Evloop.remove t.evloop conn.fd;
              false
          | `Blocked -> true
          | `Closed ->
              Evloop.remove t.evloop conn.fd;
              false)
        !pending
  in
  flush_pending ();
  while !pending <> [] && Unix.gettimeofday () < deadline do
    let timeout_ms =
      max 1 (int_of_float ((deadline -. Unix.gettimeofday ()) *. 1000.0))
    in
    ignore
      (Evloop.wait t.evloop ~timeout_ms
         ~f:(fun _fd ~readable:_ ~writable:_ ~error:_ -> ()));
    flush_pending ()
  done;
  let all = Hashtbl.fold (fun _ conn acc -> conn :: acc) t.conns [] in
  List.iter (fun conn -> close_conn t conn) all

(* The loop body: everything reachable from here runs on the loop
   domain.  The [@@runs_on] seed is what lets the race pass prove the
   conn table and buffers are evloop-confined. *)
let run_loop t =
  let astate = { consecutive_failures = 0; paused_until = 0.0 } in
  while is_running t do
    (* resume a paused accept path once its backoff elapsed *)
    if astate.paused_until > 0.0 && Unix.gettimeofday () >= astate.paused_until
    then begin
      astate.paused_until <- 0.0;
      if not (Evloop.mem t.evloop t.listen_fd) then
        Evloop.add t.evloop t.listen_fd ~read:true ~write:false
    end;
    let timeout_ms = loop_timeout_ms t astate in
    ignore
      (Evloop.wait t.evloop ~timeout_ms ~f:(fun fd ~readable ~writable ~error ->
           if fd = t.wake_r then drain_wake t
           else if fd = t.listen_fd then on_accept t astate
           else
             match Hashtbl.find_opt t.conns (Evloop.fd_int fd) with
             | None -> ()
             | Some conn ->
                 if error then close_conn t conn
                 else begin
                   if writable then on_writable t conn;
                   (* the write path may have closed it *)
                   if readable && Evloop.mem t.evloop conn.fd then
                     on_readable t conn
                 end));
    sweep_write_deadlines t
  done;
  drain t
[@@runs_on "evloop"]

(* --- public surface ---------------------------------------------- *)

let start_sessions ?send_timeout ~path ~session () =
  (* the loop writes with raw Unix.write; without this a standalone
     server dies of SIGPIPE on the first write to a vanished client
     (in-process tests mask it because the client's Frame.send installs
     the same process-wide ignore) *)
  Frame.ignore_sigpipe ();
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 1024;
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  let t =
    {
      socket_path = path;
      listen_fd;
      send_timeout;
      make_session = session;
      evloop = Evloop.create ();
      conns = Hashtbl.create 64;
      wake_r;
      wake_w;
      lock = Mutex.create ();
      running = true;
      connections_accepted = 0;
      connections_active = 0;
      requests_handled = 0;
      accept_errors = 0;
      loop_domain = ref None;
    }
  in
  Evloop.add t.evloop t.listen_fd ~read:true ~write:false;
  Evloop.add t.evloop t.wake_r ~read:true ~write:false;
  (* the loop gets its own domain (not a thread: ssdb_lint bans
     Thread.create in lib/rpc) -- handlers run inline on it, and
     evaluation parallelism comes from the core Pool, whose map calls
     from the loop domain steal work like any caller *)
  t.loop_domain := Some (Domain.spawn (fun () -> run_loop t));
  t

let start ~path ~handler =
  start_sessions ~path
    ~session:(fun () -> { on_request = handler; on_close = ignore })
    ()

let path t = t.socket_path

let stats t =
  with_lock t (fun () ->
      {
        connections_accepted = t.connections_accepted;
        connections_active = t.connections_active;
        requests_handled = t.requests_handled;
        accept_errors = t.accept_errors;
      })

let stop t =
  let was_running =
    with_lock t (fun () ->
        let was = t.running in
        t.running <- false;
        was)
  in
  if was_running then begin
    Obs.Events.info "server drain path=%s active=%d" t.socket_path
      (stats t).connections_active;
    (try ignore (Unix.write t.wake_w (Bytes.make 1 '\000') 0 1)
     with Unix.Unix_error _ -> ());
    (match !(t.loop_domain) with
    | None -> ()
    | Some d ->
        Domain.join d;
        t.loop_domain := None);
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())
  end
