module Obs = Secshare_obs

(* Server-side registry families.  Declared (or created) at module
   init so a fresh server's /metrics already shows the full surface.
   Byte counters include the 12-byte frame headers: they measure what
   crossed the wire, not what the codec produced. *)
let () =
  Obs.Registry.declare ~kind:Obs.Registry.K_counter
    ~help:"Requests handled, by opcode." "ssdb_server_requests_total";
  Obs.Registry.declare ~kind:Obs.Registry.K_histogram
    ~help:"Request handling latency in seconds, by opcode."
    "ssdb_server_request_seconds"

let obs_frame_bytes_in =
  Obs.Registry.counter ~help:"Bytes read from clients, frame headers included."
    "ssdb_server_frame_bytes_in_total"

let obs_frame_bytes_out =
  Obs.Registry.counter ~help:"Bytes written to clients, frame headers included."
    "ssdb_server_frame_bytes_out_total"

let obs_connections_accepted =
  Obs.Registry.counter ~help:"Client connections accepted."
    "ssdb_server_connections_accepted_total"

let obs_connections_active =
  Obs.Registry.gauge ~help:"Client connections currently open."
    "ssdb_server_connections_active"

let obs_request_errors =
  Obs.Registry.counter
    ~help:"Requests answered with an error response (codec, handler or unknown cursor)."
    "ssdb_server_request_errors_total"

type session = {
  on_request : Protocol.request -> Protocol.response;
  on_close : unit -> unit;
}

type stats = {
  connections_accepted : int;
  connections_active : int;
  requests_handled : int;
  accept_errors : int;
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  send_timeout : float option;
  mutable running : bool;
  mutable client_fds : Unix.file_descr list;
  mutable handler_threads : Thread.t list;
  mutable connections_accepted : int;
  mutable requests_handled : int;
  mutable accept_errors : int;
  lock : Mutex.t;
  accept_thread : Thread.t option ref;
}

let handle_connection t session fd =
  let finished = ref false in
  while (not !finished) && t.running do
    match Frame.recv_traced fd with
    | trace_id, request_payload ->
        Obs.Registry.inc
          ~by:(Frame.header_bytes + String.length request_payload)
          obs_frame_bytes_in;
        let started = Unix.gettimeofday () in
        let op, reply =
          match Protocol.decode_request request_payload with
          | request ->
              let op = Protocol.request_name request in
              let reply =
                (* the frame's trace id becomes the thread's ambient
                   trace, so handler-side spans and the slow-query log
                   join the client's trace *)
                Obs.Trace.with_ambient trace_id (fun () ->
                    Obs.Trace.with_span ~kind:Obs.Span.Server ("serve:" ^ op)
                      (fun () ->
                        match session.on_request request with
                        | response -> response
                        | exception exn ->
                            Protocol.Error_msg ("handler: " ^ Printexc.to_string exn)))
              in
              (op, reply)
          | exception Wire.Decode_error msg ->
              ("undecodable", Protocol.Error_msg ("codec: " ^ msg))
        in
        Obs.Registry.inc
          (Obs.Registry.counter ~labels:[ ("op", op) ] "ssdb_server_requests_total");
        Obs.Histogram.observe
          (Obs.Registry.histogram ~labels:[ ("op", op) ] "ssdb_server_request_seconds")
          (Unix.gettimeofday () -. started);
        (match reply with
        | Protocol.Error_msg _ -> Obs.Registry.inc obs_request_errors
        | _ -> ());
        Mutex.lock t.lock;
        t.requests_handled <- t.requests_handled + 1;
        Mutex.unlock t.lock;
        let deadline =
          Option.map (fun s -> Unix.gettimeofday () +. s) t.send_timeout
        in
        let encoded_reply = Protocol.encode_response reply in
        (match Frame.send ?deadline ~trace_id fd encoded_reply with
        | () ->
            Obs.Registry.inc
              ~by:(Frame.header_bytes + String.length encoded_reply)
              obs_frame_bytes_out
        | exception (Failure _ | Unix.Unix_error _ | Frame.Timeout) -> finished := true)
    | exception (Failure _ | Unix.Unix_error _) -> finished := true
  done;
  (match session.on_close () with
  | () -> ()
  | exception _ -> ());
  (* unregister before closing, so [stop] never shuts down a reused
     descriptor number *)
  Mutex.lock t.lock;
  t.client_fds <- List.filter (fun other -> other != fd) t.client_fds;
  let self = Thread.id (Thread.self ()) in
  t.handler_threads <-
    List.filter (fun thread -> Thread.id thread <> self) t.handler_threads;
  Mutex.unlock t.lock;
  Obs.Registry.gauge_add obs_connections_active (-1);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t make_session =
  let consecutive_failures = ref 0 in
  while t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        consecutive_failures := 0;
        let session = make_session () in
        Mutex.lock t.lock;
        t.client_fds <- fd :: t.client_fds;
        t.connections_accepted <- t.connections_accepted + 1;
        let thread = Thread.create (handle_connection t session) fd in
        t.handler_threads <- thread :: t.handler_threads;
        Mutex.unlock t.lock;
        Obs.Registry.inc obs_connections_accepted;
        Obs.Registry.gauge_add obs_connections_active 1;
        Obs.Events.debug "server accept path=%s" t.socket_path
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ when not t.running ->
        () (* listening socket closed by stop *)
    | exception Unix.Unix_error _ ->
        (* e.g. EMFILE: back off instead of spinning at 100% CPU, and
           keep serving the connections we already have *)
        Mutex.lock t.lock;
        t.accept_errors <- t.accept_errors + 1;
        Mutex.unlock t.lock;
        incr consecutive_failures;
        let delay =
          Float.min 1.0 (0.005 *. (2.0 ** float_of_int (min !consecutive_failures 8)))
        in
        Thread.delay delay
  done

let start_sessions ?send_timeout ~path ~session () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let t =
    {
      socket_path = path;
      listen_fd;
      send_timeout;
      running = true;
      client_fds = [];
      handler_threads = [];
      connections_accepted = 0;
      requests_handled = 0;
      accept_errors = 0;
      lock = Mutex.create ();
      accept_thread = ref None;
    }
  in
  t.accept_thread := Some (Thread.create (fun () -> accept_loop t session) ());
  t

let start ~path ~handler =
  start_sessions ~path
    ~session:(fun () -> { on_request = handler; on_close = ignore })
    ()

let path t = t.socket_path

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      connections_accepted = t.connections_accepted;
      connections_active = List.length t.client_fds;
      requests_handled = t.requests_handled;
      accept_errors = t.accept_errors;
    }
  in
  Mutex.unlock t.lock;
  s

let stop t =
  if t.running then begin
    t.running <- false;
    Obs.Events.info "server drain path=%s active=%d" t.socket_path
      (List.length t.client_fds);
    (* a thread blocked in [accept] is not woken by closing the
       listening socket on Linux; poke it with a throwaway connection *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match !(t.accept_thread) with None -> () | Some thread -> Thread.join thread);
    (* drain: shut down the read side of every live connection, so
       handlers blocked in [recv] see EOF while in-flight responses
       still go out, then wait for every handler to finish *)
    Mutex.lock t.lock;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      t.client_fds;
    let handlers = t.handler_threads in
    Mutex.unlock t.lock;
    List.iter Thread.join handlers;
    (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())
  end
