type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  mutable running : bool;
  mutable client_fds : Unix.file_descr list;
  lock : Mutex.t;
  accept_thread : Thread.t option ref;
}

let handle_connection t handler fd =
  let finished = ref false in
  while (not !finished) && t.running do
    match Frame.recv fd with
    | request_payload ->
        let reply =
          match Protocol.decode_request request_payload with
          | request -> (
              match handler request with
              | response -> response
              | exception exn ->
                  Protocol.Error_msg ("handler: " ^ Printexc.to_string exn))
          | exception Wire.Decode_error msg -> Protocol.Error_msg ("codec: " ^ msg)
        in
        (match Frame.send fd (Protocol.encode_response reply) with
        | () -> ()
        | exception (Failure _ | Unix.Unix_error _) -> finished := true)
    | exception (Failure _ | Unix.Unix_error _) -> finished := true
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.lock;
  t.client_fds <- List.filter (fun other -> other != fd) t.client_fds;
  Mutex.unlock t.lock

let accept_loop t handler =
  while t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Mutex.lock t.lock;
        t.client_fds <- fd :: t.client_fds;
        Mutex.unlock t.lock;
        ignore (Thread.create (handle_connection t handler) fd)
    | exception Unix.Unix_error _ -> () (* listening socket closed by stop *)
  done

let start ~path ~handler =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let t =
    {
      socket_path = path;
      listen_fd;
      running = true;
      client_fds = [];
      lock = Mutex.create ();
      accept_thread = ref None;
    }
  in
  t.accept_thread := Some (Thread.create (fun () -> accept_loop t handler) ());
  t

let path t = t.socket_path

let stop t =
  if t.running then begin
    t.running <- false;
    (* a thread blocked in [accept] is not woken by closing the
       listening socket on Linux; poke it with a throwaway connection *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.lock;
    let clients = t.client_fds in
    t.client_fds <- [];
    Mutex.unlock t.lock;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
    (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
    match !(t.accept_thread) with None -> () | Some thread -> Thread.join thread
  end
