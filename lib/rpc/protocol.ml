type node_meta = { pre : int; post : int; parent : int }

(** What a fused scan walks over.  [Pre_ranges] pairs are
    [(from_pre, below_post)]: ascending-[pre] runs that stop at the
    first row whose [post] reaches [below_post] (see
    [Node_table.scan_range]). *)
type scan_target =
  | Children_of of int list
  | Pre_ranges of (int * int) list
  | Bounded_pre_ranges of (int * int * int) list

(* A shard server's place in a sharded deployment (or the whole
   deployment, summarised by a router).  Carries topology only —
   shard/partition geometry, never key material or share bytes. *)
type manifest_info = {
  shard_id : int;  (** 1-based Shamir x-coordinate; 0 identifies a router *)
  shards : int;  (** n: how many shard servers exist *)
  threshold : int;  (** t: how many must answer to reconstruct *)
  total_rows : int;
  bounds : int list;  (** ascending partition start [pre]s, one per partition *)
}

type request =
  | Ping
  | Root
  | Children of int
  | Parent of int
  | Descendants of { pre : int; post : int }
  | Cursor_next of { cursor : int; max_items : int }
  | Cursor_close of int
  | Eval of { pre : int; point : int }
  | Eval_batch of { pres : int list; point : int }
  | Share of int
  | Shares of int list
  | Table_stats
  | Scan_eval of { target : scan_target; points : int list; max_items : int }
      (** Fused scan + evaluation: walk the target ranges and return
          each row's metadata together with its share evaluated at
          every point, one batch per round trip. *)
  | Scan_next of { cursor : int; max_items : int }
      (** Continue a [Scan_eval] whose reply carried a cursor. *)
  | Manifest
      (** Handshake: which shard is this, out of what topology?  A
          single-server deployment answers with the trivial 1-of-1
          manifest. *)
  | Agg_eval of { pres : int list }
      (** Fold the numeric shares of the listed rows into one blinded
          partial sum — the constant-size aggregation reply
          ([Agg_partial]), however many rows matched. *)

type stats = { rows : int; data_bytes : int; index_bytes : int }

type response =
  | Pong
  | Node_opt of node_meta option
  | Nodes of node_meta list
  | Cursor of int
  | Batch of node_meta list * bool
  | Value of int
  | Values of int list
  | Share_data of bytes
  | Shares_data of bytes list
  | Stats of stats
  | Scan_batch of { rows : (node_meta * int list) list; cursor : int option }
      (** One batch of a fused scan: each row carries the server-share
          evaluations at the request's points, in order.  [cursor] is
          present when more batches remain (drain with [Scan_next] or
          abandon with [Cursor_close]). *)
  | Manifest_data of manifest_info
  | Agg_partial of { count : int; sum : int }
      (** Blinded partial aggregate: [sum] is the server-share sum in
          the numeric field — meaningless without the client's
          blinding shares.  Always the same size on the wire. *)
  | Error_msg of string

let write_meta w (m : node_meta) =
  Wire.write_u32 w m.pre;
  Wire.write_u32 w m.post;
  Wire.write_u32 w m.parent

let read_meta r =
  let pre = Wire.read_u32 r in
  let post = Wire.read_u32 r in
  let parent = Wire.read_u32 r in
  { pre; post; parent }

let encode_request req =
  let w = Wire.writer () in
  (match req with
  | Ping -> Wire.write_u8 w 0
  | Root -> Wire.write_u8 w 1
  | Children pre ->
      Wire.write_u8 w 2;
      Wire.write_u32 w pre
  | Parent pre ->
      Wire.write_u8 w 3;
      Wire.write_u32 w pre
  | Descendants { pre; post } ->
      Wire.write_u8 w 4;
      Wire.write_u32 w pre;
      Wire.write_u32 w post
  | Cursor_next { cursor; max_items } ->
      Wire.write_u8 w 5;
      Wire.write_u32 w cursor;
      Wire.write_u32 w max_items
  | Cursor_close cursor ->
      Wire.write_u8 w 6;
      Wire.write_u32 w cursor
  | Eval { pre; point } ->
      Wire.write_u8 w 7;
      Wire.write_u32 w pre;
      Wire.write_u32 w point
  | Eval_batch { pres; point } ->
      Wire.write_u8 w 8;
      Wire.write_list w (Wire.write_u32 w) pres;
      Wire.write_u32 w point
  | Share pre ->
      Wire.write_u8 w 9;
      Wire.write_u32 w pre
  | Shares pres ->
      Wire.write_u8 w 10;
      Wire.write_list w (Wire.write_u32 w) pres
  | Table_stats -> Wire.write_u8 w 11
  | Scan_eval { target; points; max_items } ->
      Wire.write_u8 w 12;
      (match target with
      | Children_of parents ->
          Wire.write_u8 w 0;
          Wire.write_list w (Wire.write_u32 w) parents
      | Pre_ranges ranges ->
          Wire.write_u8 w 1;
          Wire.write_list w
            (fun (from_pre, below_post) ->
              Wire.write_u32 w from_pre;
              Wire.write_u32 w below_post)
            ranges
      | Bounded_pre_ranges ranges ->
          Wire.write_u8 w 2;
          Wire.write_list w
            (fun (from_pre, until_pre, below_post) ->
              Wire.write_u32 w from_pre;
              Wire.write_u32 w until_pre;
              Wire.write_u32 w below_post)
            ranges);
      Wire.write_list w (Wire.write_u32 w) points;
      Wire.write_u32 w max_items
  | Scan_next { cursor; max_items } ->
      Wire.write_u8 w 13;
      Wire.write_u32 w cursor;
      Wire.write_u32 w max_items
  | Manifest -> Wire.write_u8 w 14
  | Agg_eval { pres } ->
      Wire.write_u8 w 15;
      Wire.write_list w (Wire.write_u32 w) pres);
  Wire.contents w

let decode_request s =
  let r = Wire.reader s in
  let req =
    match Wire.read_u8 r with
    | 0 -> Ping
    | 1 -> Root
    | 2 -> Children (Wire.read_u32 r)
    | 3 -> Parent (Wire.read_u32 r)
    | 4 ->
        let pre = Wire.read_u32 r in
        let post = Wire.read_u32 r in
        Descendants { pre; post }
    | 5 ->
        let cursor = Wire.read_u32 r in
        let max_items = Wire.read_u32 r in
        Cursor_next { cursor; max_items }
    | 6 -> Cursor_close (Wire.read_u32 r)
    | 7 ->
        let pre = Wire.read_u32 r in
        let point = Wire.read_u32 r in
        Eval { pre; point }
    | 8 ->
        let pres = Wire.read_list r (fun () -> Wire.read_u32 r) in
        let point = Wire.read_u32 r in
        Eval_batch { pres; point }
    | 9 -> Share (Wire.read_u32 r)
    | 10 -> Shares (Wire.read_list r (fun () -> Wire.read_u32 r))
    | 11 -> Table_stats
    | 12 ->
        let target =
          match Wire.read_u8 r with
          | 0 -> Children_of (Wire.read_list r (fun () -> Wire.read_u32 r))
          | 1 ->
              Pre_ranges
                (Wire.read_list r (fun () ->
                     let from_pre = Wire.read_u32 r in
                     let below_post = Wire.read_u32 r in
                     (from_pre, below_post)))
          | 2 ->
              Bounded_pre_ranges
                (Wire.read_list r (fun () ->
                     let from_pre = Wire.read_u32 r in
                     let until_pre = Wire.read_u32 r in
                     let below_post = Wire.read_u32 r in
                     (from_pre, until_pre, below_post)))
          | tag ->
              raise (Wire.Decode_error (Printf.sprintf "unknown scan target tag %d" tag))
        in
        let points = Wire.read_list r (fun () -> Wire.read_u32 r) in
        let max_items = Wire.read_u32 r in
        Scan_eval { target; points; max_items }
    | 13 ->
        let cursor = Wire.read_u32 r in
        let max_items = Wire.read_u32 r in
        Scan_next { cursor; max_items }
    | 14 -> Manifest
    | 15 -> Agg_eval { pres = Wire.read_list r (fun () -> Wire.read_u32 r) }
    | tag -> raise (Wire.Decode_error (Printf.sprintf "unknown request tag %d" tag))
  in
  Wire.expect_end r;
  req

let encode_response resp =
  let w = Wire.writer () in
  (match resp with
  | Pong -> Wire.write_u8 w 0
  | Node_opt None -> Wire.write_u8 w 1
  | Node_opt (Some m) ->
      Wire.write_u8 w 2;
      write_meta w m
  | Nodes metas ->
      Wire.write_u8 w 3;
      Wire.write_list w (write_meta w) metas
  | Cursor c ->
      Wire.write_u8 w 4;
      Wire.write_u32 w c
  | Batch (metas, exhausted) ->
      Wire.write_u8 w 5;
      Wire.write_list w (write_meta w) metas;
      Wire.write_u8 w (if exhausted then 1 else 0)
  | Value v ->
      Wire.write_u8 w 6;
      Wire.write_u32 w v
  | Values vs ->
      Wire.write_u8 w 7;
      Wire.write_list w (Wire.write_u32 w) vs
  | Share_data b ->
      Wire.write_u8 w 8;
      Wire.write_bytes w b
  | Shares_data bs ->
      Wire.write_u8 w 9;
      Wire.write_list w (Wire.write_bytes w) bs
  | Stats { rows; data_bytes; index_bytes } ->
      Wire.write_u8 w 10;
      Wire.write_u32 w rows;
      Wire.write_i64 w data_bytes;
      Wire.write_i64 w index_bytes
  | Error_msg msg ->
      Wire.write_u8 w 11;
      Wire.write_string w msg
  | Scan_batch { rows; cursor } ->
      Wire.write_u8 w 12;
      Wire.write_list w
        (fun (m, values) ->
          write_meta w m;
          Wire.write_list w (Wire.write_u32 w) values)
        rows;
      (match cursor with
      | None -> Wire.write_u8 w 0
      | Some c ->
          Wire.write_u8 w 1;
          Wire.write_u32 w c)
  | Manifest_data { shard_id; shards; threshold; total_rows; bounds } ->
      Wire.write_u8 w 13;
      Wire.write_u32 w shard_id;
      Wire.write_u32 w shards;
      Wire.write_u32 w threshold;
      Wire.write_u32 w total_rows;
      Wire.write_list w (Wire.write_u32 w) bounds
  | Agg_partial { count; sum } ->
      Wire.write_u8 w 14;
      Wire.write_u32 w count;
      Wire.write_i64 w sum);
  Wire.contents w

let decode_response s =
  let r = Wire.reader s in
  let resp =
    match Wire.read_u8 r with
    | 0 -> Pong
    | 1 -> Node_opt None
    | 2 -> Node_opt (Some (read_meta r))
    | 3 -> Nodes (Wire.read_list r (fun () -> read_meta r))
    | 4 -> Cursor (Wire.read_u32 r)
    | 5 ->
        let metas = Wire.read_list r (fun () -> read_meta r) in
        let exhausted = Wire.read_u8 r = 1 in
        Batch (metas, exhausted)
    | 6 -> Value (Wire.read_u32 r)
    | 7 -> Values (Wire.read_list r (fun () -> Wire.read_u32 r))
    | 8 -> Share_data (Wire.read_bytes r)
    | 9 -> Shares_data (Wire.read_list r (fun () -> Wire.read_bytes r))
    | 10 ->
        let rows = Wire.read_u32 r in
        let data_bytes = Wire.read_i64 r in
        let index_bytes = Wire.read_i64 r in
        Stats { rows; data_bytes; index_bytes }
    | 11 -> Error_msg (Wire.read_string r)
    | 12 ->
        let rows =
          Wire.read_list r (fun () ->
              let m = read_meta r in
              let values = Wire.read_list r (fun () -> Wire.read_u32 r) in
              (m, values))
        in
        let cursor =
          match Wire.read_u8 r with
          | 0 -> None
          | 1 -> Some (Wire.read_u32 r)
          | tag ->
              raise (Wire.Decode_error (Printf.sprintf "unknown cursor flag %d" tag))
        in
        Scan_batch { rows; cursor }
    | 13 ->
        let shard_id = Wire.read_u32 r in
        let shards = Wire.read_u32 r in
        let threshold = Wire.read_u32 r in
        let total_rows = Wire.read_u32 r in
        let bounds = Wire.read_list r (fun () -> Wire.read_u32 r) in
        Manifest_data { shard_id; shards; threshold; total_rows; bounds }
    | 14 ->
        let count = Wire.read_u32 r in
        let sum = Wire.read_i64 r in
        (* the offending value stays out of the error text: partial
           sums never reach logs, even malformed ones *)
        if sum < 0 then raise (Wire.Decode_error "negative aggregate sum");
        Agg_partial { count; sum }
    | tag -> raise (Wire.Decode_error (Printf.sprintf "unknown response tag %d" tag))
  in
  Wire.expect_end r;
  resp

(* Stable lowercase opcode names: these are metric label values and
   slow-query-log tokens, so they must stay free of request payload. *)
let request_name = function
  | Ping -> "ping"
  | Root -> "root"
  | Children _ -> "children"
  | Parent _ -> "parent"
  | Descendants _ -> "descendants"
  | Cursor_next _ -> "cursor_next"
  | Cursor_close _ -> "cursor_close"
  | Eval _ -> "eval"
  | Eval_batch _ -> "eval_batch"
  | Share _ -> "share"
  | Shares _ -> "shares"
  | Table_stats -> "table_stats"
  | Scan_eval _ -> "scan_eval"
  | Scan_next _ -> "scan_next"
  | Manifest -> "manifest"
  | Agg_eval _ -> "agg_eval"

let pp_meta fmt m = Format.fprintf fmt "(pre=%d,post=%d,parent=%d)" m.pre m.post m.parent

let pp_request fmt = function
  | Ping -> Format.pp_print_string fmt "Ping"
  | Root -> Format.pp_print_string fmt "Root"
  | Children pre -> Format.fprintf fmt "Children(%d)" pre
  | Parent pre -> Format.fprintf fmt "Parent(%d)" pre
  | Descendants { pre; post } -> Format.fprintf fmt "Descendants(pre=%d,post=%d)" pre post
  | Cursor_next { cursor; max_items } ->
      Format.fprintf fmt "Cursor_next(%d,max=%d)" cursor max_items
  | Cursor_close c -> Format.fprintf fmt "Cursor_close(%d)" c
  (* pp_request runs on the trusted client only (protocol_error
     diagnostics, tests); the server formats requests solely through
     request_name, which carries no payload. *)
  | Eval { pre; point } ->
      (Format.fprintf fmt "Eval(pre=%d,point=%d)" pre point
      [@lint.suppress
        "secret-sink" ~reason:"client-side diagnostic printer; server uses request_name"])
  | Eval_batch { pres; point } ->
      (Format.fprintf fmt "Eval_batch(%d nodes,point=%d)" (List.length pres) point
      [@lint.suppress "secret-sink" ~reason:"same: client-side diagnostic printer"])
  | Share pre -> Format.fprintf fmt "Share(%d)" pre
  | Shares pres -> Format.fprintf fmt "Shares(%d nodes)" (List.length pres)
  | Table_stats -> Format.pp_print_string fmt "Table_stats"
  | Scan_eval { target; points; max_items } ->
      let target_s =
        match target with
        | Children_of parents -> Printf.sprintf "children-of %d" (List.length parents)
        | Pre_ranges ranges -> Printf.sprintf "%d ranges" (List.length ranges)
        | Bounded_pre_ranges ranges ->
            Printf.sprintf "%d bounded ranges" (List.length ranges)
      in
      Format.fprintf fmt "Scan_eval(%s,%d points,max=%d)" target_s (List.length points)
        max_items
  | Scan_next { cursor; max_items } ->
      Format.fprintf fmt "Scan_next(%d,max=%d)" cursor max_items
  | Manifest -> Format.pp_print_string fmt "Manifest"
  | Agg_eval { pres } -> Format.fprintf fmt "Agg_eval(%d nodes)" (List.length pres)

let pp_response fmt = function
  | Pong -> Format.pp_print_string fmt "Pong"
  | Node_opt None -> Format.pp_print_string fmt "Node_opt(none)"
  | Node_opt (Some m) -> Format.fprintf fmt "Node_opt%a" pp_meta m
  | Nodes metas -> Format.fprintf fmt "Nodes(%d)" (List.length metas)
  | Cursor c -> Format.fprintf fmt "Cursor(%d)" c
  | Batch (metas, exhausted) ->
      Format.fprintf fmt "Batch(%d,%s)" (List.length metas)
        (if exhausted then "exhausted" else "more")
  | Value v -> Format.fprintf fmt "Value(%d)" v
  | Values vs -> Format.fprintf fmt "Values(%d)" (List.length vs)
  | Share_data b -> Format.fprintf fmt "Share_data(%d bytes)" (Bytes.length b)
  | Shares_data bs -> Format.fprintf fmt "Shares_data(%d)" (List.length bs)
  | Stats s ->
      Format.fprintf fmt "Stats(rows=%d,data=%d,index=%d)" s.rows s.data_bytes
        s.index_bytes
  | Scan_batch { rows; cursor } ->
      Format.fprintf fmt "Scan_batch(%d,%s)" (List.length rows)
        (match cursor with None -> "exhausted" | Some c -> Printf.sprintf "cursor=%d" c)
  | Manifest_data { shard_id; shards; threshold; total_rows; bounds } ->
      Format.fprintf fmt "Manifest_data(shard=%d/%d,t=%d,rows=%d,%d partitions)"
        shard_id shards threshold total_rows (List.length bounds)
  (* Only the count: the share sum is key-dependent material and must
     never reach logs (lint rule secret-flow/agg-sink). *)
  | Agg_partial { count; sum = _ } -> Format.fprintf fmt "Agg_partial(count=%d)" count
  | Error_msg msg -> Format.fprintf fmt "Error(%s)" msg
