(** A poll(2)-backed readiness multiplexer: the flat interest set under
    the event-loop server.

    [Unix.select] tops out at 1024 descriptors; this keeps parallel
    fd/interest arrays (compacted with swap-removal) and hands them to
    a C stub around [poll], so one loop domain can watch tens of
    thousands of sockets.  Not thread-safe: a [t] belongs to the one
    domain that runs its loop. *)

type t

val create : unit -> t

val fd_int : Unix.file_descr -> int
(** The descriptor's integer value (an identity function in C — the
    portable alternative to [Obj.magic]); used as the key for
    per-connection tables. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register interest.  @raise Invalid_argument if already present. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change interest.  @raise Invalid_argument if absent. *)

val remove : t -> Unix.file_descr -> unit
(** Forget the descriptor; a no-op if absent. *)

val mem : t -> Unix.file_descr -> bool
val size : t -> int

val wait :
  t ->
  timeout_ms:int ->
  f:(Unix.file_descr -> readable:bool -> writable:bool -> error:bool -> unit) ->
  int
(** One poll round: block up to [timeout_ms] (-1 = forever), then call
    [f] once per ready descriptor.  [f] may add or remove descriptors
    (including its own); events for a descriptor removed by an earlier
    callback in the same round are dropped.  Returns the number of
    ready descriptors (0 on timeout or EINTR). *)
