(** Concrete syntax for the XPath subset.

    Grammar:
    {v
    query     ::= step+
    step      ::= ("/" | "//") test predicate?
    test      ::= name | "*" | ".."
    predicate ::= "[" "contains" "(" "text" "(" ")" "," string ")" "]"
    string    ::= '"' chars '"' | "'" chars "'"
    v} *)

val parse : string -> (Ast.t, string) result
(** Errors carry a character position and description. *)

val parse_exn : string -> Ast.t
(** @raise Invalid_argument on a malformed query. *)
