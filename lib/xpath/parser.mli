(** Concrete syntax for the XPath subset.

    Grammar:
    {v
    query     ::= path | func "(" path ")"
    func      ::= "count" | "sum" | "avg"
    path      ::= step+
    step      ::= ("/" | "//") test predicate?
    test      ::= name | "*" | ".."
    predicate ::= "[" "contains" "(" "text" "(" ")" "," string ")" "]"
    string    ::= '"' chars '"' | "'" chars "'"
    v} *)

val parse_query : string -> (Ast.query, string) result
(** The full surface: a location path, optionally wrapped in one
    aggregate function.  Errors carry a character position and
    description. *)

val parse : string -> (Ast.t, string) result
(** Location paths only; an aggregate query is an error here. *)

val parse_exn : string -> Ast.t
(** @raise Invalid_argument on a malformed query. *)
