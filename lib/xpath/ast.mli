(** The XPath subset of the paper's query engines (§5.3).

    A query is a sequence of steps, each with a direction — child
    ([/]) or descendant ([//]) — and a node test: a tag name, [*]
    (every child) or [..] (the parent).  A name step may carry a
    [contains(text(), "word")] predicate, which the trie rewriting of
    §4 turns into further character steps. *)

type axis = Child | Descendant

type test =
  | Name of string
  | Any  (** [*] *)
  | Parent  (** [..] *)

type step = { axis : axis; test : test; contains : string option }

type t = step list
(** Non-empty; queries are absolute (they start at the document
    root). *)

type agg_func =
  | Count  (** size of the result set *)
  | Sum  (** sum of the matched nodes' numeric values *)
  | Avg  (** [Sum] divided by [Count] *)

type query = { func : agg_func option; path : t }
(** The full query surface: a location path, optionally wrapped in an
    aggregate function ([sum(//price)]). *)

val step : ?contains:string -> axis -> test -> step

val func_to_string : agg_func -> string

val to_string : t -> string
(** Canonical concrete syntax ([/a//b[contains(text(), "w")]]). *)

val query_to_string : query -> string

val name_tests : t -> string list
(** Distinct tag names tested anywhere in the query, in first-use
    order (the advanced engine's look-ahead set). *)

val names_after : t -> string list array
(** [names_after q] has one entry per step: the distinct tag names
    tested in *later* steps (what the advanced engine checks for
    containment before descending past that step). *)

val rewrite_contains : ?exact:bool -> t -> t
(** Expand every [contains] predicate into trie steps: the pattern's
    first item as a descendant step, subsequent items as child steps
    (so [/name[contains(text(), "joan")]] becomes [/name//j/o/a/n]).

    Patterns support the simple regular expressions of the paper's §4:
    [.] matches any single character (a [*] step) and [.*] matches any
    character run (the following item becomes a [//] step) — so
    ["j.an"] becomes [//j/*/a/n] and ["j.*n"] becomes [//j//n].

    With [exact:true] a final end-of-word step is appended, matching
    whole words only.
    @raise Invalid_argument if a pattern contains anything other than
    lowercase letters, [.] and [.*], or is empty. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
