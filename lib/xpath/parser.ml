exception Error of int * string

type cursor = { src : string; mutable pos : int }

let fail cur fmt = Printf.ksprintf (fun m -> raise (Error (cur.pos, m))) fmt
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && (cur.src.[cur.pos] = ' ' || cur.src.[cur.pos] = '\t')
  do
    cur.pos <- cur.pos + 1
  done

let eat cur c =
  match peek cur with
  | Some x when x = c -> cur.pos <- cur.pos + 1
  | Some x -> fail cur "expected '%c', got '%c'" c x
  | None -> fail cur "expected '%c' at end of query" c

let eat_keyword cur kw =
  skip_ws cur;
  let n = String.length kw in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = kw then
    cur.pos <- cur.pos + n
  else fail cur "expected '%s'" kw

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = '$'

let read_axis cur =
  eat cur '/';
  match peek cur with
  | Some '/' ->
      cur.pos <- cur.pos + 1;
      Ast.Descendant
  | Some _ | None -> Ast.Child

let read_test cur =
  match peek cur with
  | Some '*' ->
      cur.pos <- cur.pos + 1;
      Ast.Any
  | Some '.' ->
      cur.pos <- cur.pos + 1;
      eat cur '.';
      Ast.Parent
  | Some c when is_name_char c ->
      let start = cur.pos in
      while
        cur.pos < String.length cur.src && is_name_char cur.src.[cur.pos]
      do
        cur.pos <- cur.pos + 1
      done;
      (* '..' handled above; a lone '.' never starts a name here *)
      Ast.Name (String.sub cur.src start (cur.pos - start))
  | Some c -> fail cur "expected a tag name, '*' or '..', got '%c'" c
  | None -> fail cur "expected a node test at end of query"

let read_string_literal cur =
  skip_ws cur;
  match peek cur with
  | Some (('"' | '\'') as quote) ->
      cur.pos <- cur.pos + 1;
      let start = cur.pos in
      let rec go () =
        match peek cur with
        | Some c when c = quote ->
            let s = String.sub cur.src start (cur.pos - start) in
            cur.pos <- cur.pos + 1;
            s
        | Some _ ->
            cur.pos <- cur.pos + 1;
            go ()
        | None -> fail cur "unterminated string literal"
      in
      go ()
  | Some c -> fail cur "expected a quoted string, got '%c'" c
  | None -> fail cur "expected a quoted string at end of query"

let read_predicate cur =
  match peek cur with
  | Some '[' ->
      cur.pos <- cur.pos + 1;
      eat_keyword cur "contains";
      skip_ws cur;
      eat cur '(';
      eat_keyword cur "text";
      skip_ws cur;
      eat cur '(';
      skip_ws cur;
      eat cur ')';
      skip_ws cur;
      eat cur ',';
      let word = read_string_literal cur in
      skip_ws cur;
      eat cur ')';
      skip_ws cur;
      eat cur ']';
      Some (String.lowercase_ascii word)
  | Some _ | None -> None

(* One location path: steps until something that is not a '/'. *)
let read_steps cur =
  let rec steps acc =
    match peek cur with
    | Some '/' ->
        let axis = read_axis cur in
        let test = read_test cur in
        let contains = read_predicate cur in
        (match (test, contains) with
        | (Ast.Any | Ast.Parent), Some _ ->
            fail cur "contains() predicates require a named step"
        | (Ast.Parent, _) when axis = Ast.Descendant ->
            fail cur "'//..' is not supported"
        | _ -> ());
        steps ({ Ast.axis; test; contains } :: acc)
    | Some _ | None ->
        if acc = [] then fail cur "query has no steps";
        List.rev acc
  in
  steps []

let expect_end cur =
  match peek cur with
  | Some c -> fail cur "unexpected '%c' (steps start with '/')" c
  | None -> ()

(* An aggregate wrapper is a lowercase keyword directly followed by a
   parenthesised path; anything else starting with a letter is an
   unknown function. *)
let read_func cur =
  let start = cur.pos in
  while
    cur.pos < String.length cur.src
    && (let c = cur.src.[cur.pos] in c >= 'a' && c <= 'z')
  do
    cur.pos <- cur.pos + 1
  done;
  match String.sub cur.src start (cur.pos - start) with
  | "count" -> Ast.Count
  | "sum" -> Ast.Sum
  | "avg" -> Ast.Avg
  | "" -> fail cur "queries start with '/' or an aggregate function"
  | other ->
      cur.pos <- start;
      fail cur "unknown aggregate function %S (count, sum or avg)" other

let parse_query input =
  let cur = { src = String.trim input; pos = 0 } in
  match
    if String.length cur.src = 0 then fail cur "empty query";
    match peek cur with
    | Some '/' ->
        let path = read_steps cur in
        expect_end cur;
        { Ast.func = None; path }
    | Some _ ->
        let func = read_func cur in
        skip_ws cur;
        eat cur '(';
        skip_ws cur;
        let path = read_steps cur in
        skip_ws cur;
        eat cur ')';
        skip_ws cur;
        expect_end cur;
        { Ast.func = Some func; path }
    | None -> fail cur "empty query"
  with
  | query -> Ok query
  | exception Error (pos, msg) -> Error (Printf.sprintf "at position %d: %s" pos msg)

let parse input =
  match parse_query input with
  | Ok { Ast.func = None; path } -> Ok path
  | Ok { Ast.func = Some f; _ } ->
      Error
        (Printf.sprintf "at position 0: aggregate %s() is not a location path"
           (Ast.func_to_string f))
  | Error _ as e -> e

let parse_exn input =
  match parse input with
  | Ok q -> q
  | Error msg -> invalid_arg ("Xpath.parse: " ^ msg)
