type axis = Child | Descendant
type test = Name of string | Any | Parent
type step = { axis : axis; test : test; contains : string option }
type t = step list

(* Aggregate wrappers around a location path: count(path), sum(path),
   avg(path).  [query] is the full query surface; a bare path is
   [{ func = None; path }]. *)
type agg_func = Count | Sum | Avg
type query = { func : agg_func option; path : t }

let step ?contains axis test = { axis; test; contains }
let func_to_string = function Count -> "count" | Sum -> "sum" | Avg -> "avg"

let test_to_string = function Name n -> n | Any -> "*" | Parent -> ".."

let step_to_string s =
  let sep = match s.axis with Child -> "/" | Descendant -> "//" in
  let predicate =
    match s.contains with
    | None -> ""
    | Some w -> Printf.sprintf "[contains(text(), %S)]" w
  in
  sep ^ test_to_string s.test ^ predicate

let to_string steps = String.concat "" (List.map step_to_string steps)

let query_to_string { func; path } =
  match func with
  | None -> to_string path
  | Some f -> Printf.sprintf "%s(%s)" (func_to_string f) (to_string path)

let add_unique name names = if List.mem name names then names else names @ [ name ]

let name_tests steps =
  List.fold_left
    (fun acc s -> match s.test with Name n -> add_unique n acc | Any | Parent -> acc)
    [] steps

let names_after steps =
  let arr = Array.make (List.length steps) [] in
  let rec go i = function
    | [] -> ()
    | _ :: rest ->
        arr.(i) <- name_tests rest;
        go (i + 1) rest
  in
  go 0 steps;
  arr

(* Pattern items of a contains() argument: literal characters plus the
   two regular-expression forms of the paper's section 4 — '.' matches
   any single character (the trie step "*") and '.*' matches any
   character run (the trie step "//"). *)
type pattern_item = Literal of char | Any_char | Any_run

let pattern_items word =
  let n = String.length word in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match word.[i] with
      | '.' when i + 1 < n && word.[i + 1] = '*' -> go (i + 2) (Any_run :: acc)
      | '.' -> go (i + 1) (Any_char :: acc)
      | c when c >= 'a' && c <= 'z' -> go (i + 1) (Literal c :: acc)
      | c ->
          invalid_arg
            (Printf.sprintf
               "Ast.rewrite_contains: %C in pattern %S (lowercase letters, '.' and '.*' only)"
               c word)
  in
  match go 0 [] with
  | [] -> invalid_arg "Ast.rewrite_contains: empty pattern"
  | items -> items

let steps_of_pattern ~exact word =
  let items = pattern_items word in
  (* The first concrete item hangs anywhere below the node (//); each
     Any_run makes the item after it a descendant step. *)
  let rec go items ~axis acc =
    match items with
    | [] -> List.rev acc
    | Any_run :: rest -> go rest ~axis:Descendant acc
    | Literal c :: rest ->
        go rest ~axis:Child
          ({ axis; test = Name (String.make 1 c); contains = None } :: acc)
    | Any_char :: rest -> go rest ~axis:Child ({ axis; test = Any; contains = None } :: acc)
  in
  let trailing_run = match List.rev items with Any_run :: _ -> true | _ -> false in
  let steps = go items ~axis:Descendant [] in
  if exact then begin
    let marker_axis = if trailing_run then Descendant else Child in
    steps
    @ [ { axis = marker_axis; test = Name Secshare_trie.Tokenize.end_marker; contains = None } ]
  end
  else steps

let rewrite_contains ?(exact = false) steps =
  List.concat_map
    (fun s ->
      match s.contains with
      | None -> [ s ]
      | Some word -> { s with contains = None } :: steps_of_pattern ~exact word)
    steps

let equal (a : t) b = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)
