(* One parsed source file plus its lint directives.

   Directives come in two forms.  Ordinary comments (invisible to the
   compiler), introduced by the word "lint" followed by a colon:

     allow-<key> <reason>   suppress a finding with that key on this
                            or the next line
     pretend-path <path>    lint this file as if it lived at <path>
                            (used by the fixture corpus)

   and structured attributes, visible to the parser and attached to
   the expression or binding they cover:

     [@lint.suppress "<key>" ~reason:"<why>"]

   where <key> is a suppression key, a full rule id, or a pass prefix
   ("secret-flow" covers secret-flow/sink).  A structured suppression
   covers every matching finding within its host node's line range; a
   structured suppression that matches nothing is itself a finding
   (lint/stale-suppression), so suppressions cannot outlive the code
   they excuse. *)

type suppression = {
  supp_line : int;
  key : string;
  reason : string;
  mutable used : bool;
}

type structured = {
  s_key : string;
  s_reason : string;
  s_line : int;  (** first line of the host node *)
  s_end_line : int;  (** last line of the host node *)
  s_malformed : bool;
  mutable s_used : bool;
}

type t = {
  path : string;  (** where the file really is *)
  effective_path : string;  (** what path-scoped rules should see *)
  structure : Parsetree.structure;
  suppressions : suppression list;
  structured : structured list;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* First whitespace-separated token of [s], and the trimmed rest. *)
let split_token s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

(* Recover directives from one line.  A directive comment is
   single-line by convention; the reason runs to the closing "*)". *)
let directive_of_line line =
  match Str_find.find_sub line "lint:" with
  | None -> None
  | Some i ->
      let after = String.sub line (i + 5) (String.length line - i - 5) in
      let upto_close =
        match Str_find.find_sub after "*)" with
        | Some j -> String.sub after 0 j
        | None -> after
      in
      let token, rest = split_token upto_close in
      if starts_with ~prefix:"allow-" token then
        let key = String.sub token 6 (String.length token - 6) in
        Some (`Allow (key, rest))
      else if String.equal token "pretend-path" then
        let path, _ = split_token rest in
        Some (`Pretend path)
      else None

let scan_directives text =
  let suppressions = ref [] in
  let pretend = ref None in
  let line_no = ref 0 in
  List.iter
    (fun line ->
      incr line_no;
      match directive_of_line line with
      | Some (`Allow (key, reason)) ->
          suppressions := { supp_line = !line_no; key; reason; used = false }
                          :: !suppressions
      | Some (`Pretend path) -> pretend := Some path
      | None -> ())
    (String.split_on_char '\n' text);
  (List.rev !suppressions, !pretend)

(* --- structured suppressions ------------------------------------- *)

open Parsetree

(* Payload of [@lint.suppress "<key>" ~reason:"<why>"].  The payload is
   parsed but never typechecked, so the key-then-labelled-reason shape
   is recovered from the raw application. *)
let parse_suppress_payload (attr : attribute) =
  let const_string e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | _ -> None
  in
  match attr.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (key, _, _)) -> Some (key, "")
      | Pexp_apply (head, args) -> (
          match const_string head with
          | None -> None
          | Some key ->
              let reason =
                List.fold_left
                  (fun acc (label, arg) ->
                    match (label, const_string arg) with
                    | Asttypes.Labelled "reason", Some r -> r
                    | _ -> acc)
                  "" args
              in
              Some (key, reason))
      | _ -> None)
  | _ -> None

let structured_of ~(host : Location.t) (attr : attribute) =
  if not (String.equal attr.attr_name.Location.txt "lint.suppress") then None
  else
    let s_line = host.Location.loc_start.Lexing.pos_lnum in
    let s_end_line = host.Location.loc_end.Lexing.pos_lnum in
    match parse_suppress_payload attr with
    | Some (key, reason) ->
        Some
          {
            s_key = key;
            s_reason = reason;
            s_line;
            s_end_line;
            s_malformed = false;
            s_used = false;
          }
    | None ->
        Some
          {
            s_key = "";
            s_reason = "";
            s_line;
            s_end_line;
            s_malformed = true;
            s_used = false;
          }

(* Collect [@lint.suppress] from expressions and [@@lint.suppress]
   from value bindings, remembering the host node's line range. *)
let scan_structured structure =
  let acc = ref [] in
  let add ~host attrs =
    List.iter
      (fun attr ->
        match structured_of ~host attr with
        | Some s -> acc := s :: !acc
        | None -> ())
      attrs
  in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    add ~host:e.pexp_loc e.pexp_attributes;
    super.expr it e
  in
  let value_binding it vb =
    add ~host:vb.pvb_loc vb.pvb_attributes;
    super.value_binding it vb
  in
  let it = { super with expr; value_binding } in
  it.structure it structure;
  List.rev !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse [path]; a syntax error becomes a finding instead of an
   exception so one broken file cannot hide the rest of the report. *)
let load path =
  let text = read_file path in
  let suppressions, pretend = scan_directives text in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
      Ok
        {
          path;
          effective_path = Option.value pretend ~default:path;
          structure;
          suppressions;
          structured = scan_structured structure;
        }
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            loc.Location.loc_start.Lexing.pos_lnum
        | _ -> lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      Error
        (Finding.v ~rule:"parse/error" ~allow_key:"parse" ~severity:Finding.Error
           ~file:path ~line ~col:0
           (Printf.sprintf "does not parse: %s" (Printexc.to_string exn)))

(* A structured key matches a finding by suppression key, full rule id,
   or pass prefix ("secret-flow" covers "secret-flow/sink"). *)
let structured_matches s (f : Finding.t) =
  (not s.s_malformed)
  && (String.equal s.s_key f.Finding.allow_key
     || String.equal s.s_key f.Finding.rule
     || starts_with ~prefix:(s.s_key ^ "/") f.Finding.rule)
  && s.s_line <= f.Finding.line
  && f.Finding.line <= s.s_end_line

(* Mark-and-filter: a finding is suppressed by a matching-key comment
   directive on its own line or the line above, or by a structured
   suppression whose host node spans its line. *)
let suppress_for source (f : Finding.t) =
  let comment_matches s =
    String.equal s.key f.Finding.allow_key
    && (s.supp_line = f.Finding.line || s.supp_line + 1 = f.Finding.line)
  in
  match List.find_opt (fun s -> (not s.used) && comment_matches s) source.suppressions with
  | Some s ->
      s.used <- true;
      Some s.reason
  | None -> (
      (* a directive already used for one finding still covers others
         on the same line(s) *)
      match List.find_opt comment_matches source.suppressions with
      | Some s -> Some s.reason
      | None -> (
          match
            List.find_opt (fun s -> structured_matches s f) source.structured
          with
          | Some s ->
              s.s_used <- true;
              Some s.s_reason
          | None -> None))

let unused_suppressions source = List.filter (fun s -> not s.used) source.suppressions

(* Structured suppressions that covered no finding: either stale (the
   code they excused is gone) or malformed payloads. *)
let stale_structured source =
  List.filter (fun s -> s.s_malformed || not s.s_used) source.structured
