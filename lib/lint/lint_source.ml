(* One parsed source file plus its lint directives.

   Directives are ordinary comments (invisible to the compiler),
   introduced by the word "lint" followed by a colon:

     allow-<key> <reason>   suppress a finding with that key on this
                            or the next line
     pretend-path <path>    lint this file as if it lived at <path>
                            (used by the fixture corpus)

   The parser drops comments, so directives are recovered from the raw
   text line by line. *)

type suppression = {
  supp_line : int;
  key : string;
  reason : string;
  mutable used : bool;
}

type t = {
  path : string;  (** where the file really is *)
  effective_path : string;  (** what path-scoped rules should see *)
  structure : Parsetree.structure;
  suppressions : suppression list;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* First whitespace-separated token of [s], and the trimmed rest. *)
let split_token s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

(* Recover directives from one line.  A directive comment is
   single-line by convention; the reason runs to the closing "*)". *)
let directive_of_line line =
  match Str_find.find_sub line "lint:" with
  | None -> None
  | Some i ->
      let after = String.sub line (i + 5) (String.length line - i - 5) in
      let upto_close =
        match Str_find.find_sub after "*)" with
        | Some j -> String.sub after 0 j
        | None -> after
      in
      let token, rest = split_token upto_close in
      if starts_with ~prefix:"allow-" token then
        let key = String.sub token 6 (String.length token - 6) in
        Some (`Allow (key, rest))
      else if String.equal token "pretend-path" then
        let path, _ = split_token rest in
        Some (`Pretend path)
      else None

let scan_directives text =
  let suppressions = ref [] in
  let pretend = ref None in
  let line_no = ref 0 in
  List.iter
    (fun line ->
      incr line_no;
      match directive_of_line line with
      | Some (`Allow (key, reason)) ->
          suppressions := { supp_line = !line_no; key; reason; used = false }
                          :: !suppressions
      | Some (`Pretend path) -> pretend := Some path
      | None -> ())
    (String.split_on_char '\n' text);
  (List.rev !suppressions, !pretend)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse [path]; a syntax error becomes a finding instead of an
   exception so one broken file cannot hide the rest of the report. *)
let load path =
  let text = read_file path in
  let suppressions, pretend = scan_directives text in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
      Ok
        {
          path;
          effective_path = Option.value pretend ~default:path;
          structure;
          suppressions;
        }
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            loc.Location.loc_start.Lexing.pos_lnum
        | _ -> lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      Error
        (Finding.v ~rule:"parse/error" ~allow_key:"parse" ~severity:Finding.Error
           ~file:path ~line ~col:0
           (Printf.sprintf "does not parse: %s" (Printexc.to_string exn)))

(* Mark-and-filter: a finding is suppressed by a matching-key directive
   on its own line or the line above. *)
let suppress_for source (f : Finding.t) =
  match
    List.find_opt
      (fun s ->
        (not s.used)
        && String.equal s.key f.Finding.allow_key
        && (s.supp_line = f.Finding.line || s.supp_line + 1 = f.Finding.line))
      source.suppressions
  with
  | Some s ->
      s.used <- true;
      Some s.reason
  | None -> (
      (* a directive already used for one finding still covers others
         on the same line(s) *)
      match
        List.find_opt
          (fun s ->
            String.equal s.key f.Finding.allow_key
            && (s.supp_line = f.Finding.line || s.supp_line + 1 = f.Finding.line))
          source.suppressions
      with
      | Some s -> Some s.reason
      | None -> None)

let unused_suppressions source = List.filter (fun s -> not s.used) source.suppressions
