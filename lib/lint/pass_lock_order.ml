(* Lock-order: within the concurrent subtrees of lib/, nested
   acquisitions must follow the declared partial order in
   [Lock_table] (DESIGN.md §10: meta -> stripe -> io, with the cursor
   table, table writer and pool queue as outer classes and the
   observability locks as leaves), and every lock site must be
   declared in the table.

   The analysis is lexical: [with_lock m (fun () -> ...)] holds the
   lock for the wrapped closure, [Mutex.lock m] holds it for the rest
   of the enclosing sequence (or until a matching [Mutex.unlock m]).
   Cross-function nesting (a callee that locks) is out of scope and is
   covered by the SSDB_LOCK_CHECK runtime witness in the pager.

   Files under lib/ but outside [Lock_table.in_scope] must not own
   locks at all; a lock primitive there is reported as
   lint-coverage/lock-order-skip instead of being silently dropped. *)

open Parsetree

(* Lock primitives that make an out-of-scope file a coverage gap. *)
let lock_primitive path =
  match path with
  | [ "Mutex"; ("create" | "lock" | "try_lock") ]
  | [ "Condition"; ("create" | "wait") ] ->
      true
  | _ -> false

let coverage_findings (source : Lint_source.t) : Finding.t list =
  let out_acc = ref [] in
  Ast_util.iter_expressions source.Lint_source.structure (fun e ->
      match e.pexp_desc with
      | Pexp_ident _ | Pexp_apply _ -> (
          let fn = match e.pexp_desc with Pexp_apply (fn, _) -> fn | _ -> e in
          match Ast_util.ident_path fn with
          | Some path when lock_primitive path ->
              let line, col = Ast_util.line_col e.pexp_loc in
              out_acc :=
                Finding.v ~rule:"lint-coverage/lock-order-skip"
                  ~allow_key:"lint-coverage" ~severity:Finding.Warning
                  ~file:source.Lint_source.path ~line ~col
                  (Printf.sprintf
                     "%s uses %s but is outside the lock-order pass's scope; move \
                      the lock into a covered subtree or extend Lock_table.in_scope"
                     (Ast_util.normalize_path source.Lint_source.effective_path)
                     (String.concat "." path))
                :: !out_acc
          | _ -> ())
      | _ -> ());
  (* one warning per file is enough to make the gap visible *)
  match List.rev !out_acc with [] -> [] | f :: _ -> [ f ]

let run (source : Lint_source.t) : Finding.t list =
  let path = source.Lint_source.effective_path in
  if not (Lock_table.in_scope path) then
    if Ast_util.path_has_prefix path ~prefix:"lib/" then coverage_findings source
    else []
  else begin
    let file = path in
    let out_acc = ref [] in
    let finding ~loc ~rule ~allow_key msg =
      let line, col = Ast_util.line_col loc in
      out_acc :=
        Finding.v ~rule ~allow_key ~severity:Finding.Error
          ~file:source.Lint_source.path ~line ~col msg
        :: !out_acc
    in
    (* Stack of currently-held classes, innermost first; threaded
       through the traversal as mutable state. *)
    let held = ref [] in
    let wrapper_depth = ref 0 in
    let check_and_classify ~loc lock_expr =
      match Lock_table.lock_name_of lock_expr with
      | None ->
          finding ~loc ~rule:"lock-order/undeclared" ~allow_key:"lock-undeclared"
            "lock expression is not a declared lock site; add it to the order table";
          None
      | Some lock_name -> (
          match Lock_table.classify ~file ~lock_name with
          | None ->
              finding ~loc ~rule:"lock-order/undeclared" ~allow_key:"lock-undeclared"
                (Printf.sprintf
                   "lock `%s' is not in the declared order table for %s; declare its \
                    rank before taking it"
                   lock_name (Ast_util.basename file));
              None
          | Some k ->
              (match !held with
              | top :: _ when top.Lock_table.rank >= k.Lock_table.rank ->
                  finding ~loc ~rule:"lock-order/inversion" ~allow_key:"lock-order"
                    (Printf.sprintf
                       "acquires %s (rank %d) while holding %s (rank %d); declared \
                        order is table-writer/cursor-table/pool-queue -> meta -> \
                        stripe -> io"
                       k.Lock_table.class_name k.Lock_table.rank
                       top.Lock_table.class_name top.Lock_table.rank)
              | _ -> ());
              Some k)
    in
    let super = Ast_iterator.default_iterator in
    let rec visit it e =
      match e.pexp_desc with
      (* with_lock [~rank] LOCK F : F runs with LOCK held *)
      | Pexp_apply (fn, args)
        when (match Ast_util.ident_last fn with
             | Some "with_lock" -> true
             | _ -> false)
             && List.length (List.filter (fun (l, _) -> l = Asttypes.Nolabel) args) >= 2
        ->
          let positional = List.filter_map
              (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
              args
          in
          let lock_expr = List.hd positional in
          let body = List.nth positional 1 in
          let k = check_and_classify ~loc:e.pexp_loc lock_expr in
          (match k with
          | Some k ->
              held := k :: !held;
              Fun.protect
                ~finally:(fun () -> held := List.tl !held)
                (fun () -> List.iter (fun b -> visit it b) (body :: List.tl (List.tl positional)))
          | None -> List.iter (fun b -> visit it b) (List.tl positional));
          visit it lock_expr
      (* e1; e2 with e1 = Mutex.lock m : rest of sequence holds m *)
      | Pexp_sequence (e1, e2) -> (
          match Lock_table.mutex_call e1 "lock" with
          | Some lock_expr when !wrapper_depth = 0 -> (
              match check_and_classify ~loc:e1.pexp_loc lock_expr with
              | Some k ->
                  held := k :: !held;
                  Fun.protect
                    ~finally:(fun () ->
                      held := List.filter (fun h -> h != k) !held)
                    (fun () -> visit it e2)
              | None -> visit it e2)
          | _ -> (
              (match Lock_table.mutex_call e1 "unlock" with
              | Some lock_expr when !wrapper_depth = 0 -> (
                  match Lock_table.lock_name_of lock_expr with
                  | Some lock_name -> (
                      match Lock_table.classify ~file ~lock_name with
                      | Some k ->
                          held :=
                            List.filter
                              (fun h ->
                                not
                                  (h.Lock_table.class_name = k.Lock_table.class_name))
                              !held
                      | None -> ())
                  | None -> ())
              | _ -> visit it e1);
              visit it e2))
      | _ -> super.expr it e
    in
    let expr it e = visit it e in
    let value_binding it vb =
      (* The definitions of [with_lock] wrappers contain [Mutex.lock m]
         on their parameter; the call sites are what get classified. *)
      let is_wrapper =
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ } -> String.equal txt "with_lock"
        | _ -> false
      in
      if is_wrapper then begin
        incr wrapper_depth;
        Fun.protect
          ~finally:(fun () -> decr wrapper_depth)
          (fun () -> super.value_binding it vb)
      end
      else super.value_binding it vb
    in
    let it = { super with expr; value_binding } in
    it.structure it source.Lint_source.structure;
    List.rev !out_acc
  end
