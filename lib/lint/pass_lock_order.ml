(* Lock-order: within lib/store and lib/core, nested acquisitions must
   follow the declared partial order (DESIGN.md §10: meta -> stripe ->
   io, with the cursor table, table writer and pool queue as outer
   classes), and every lock site must be declared in the table below.

   The analysis is lexical: [with_lock m (fun () -> ...)] holds the
   lock for the wrapped closure, [Mutex.lock m] holds it for the rest
   of the enclosing sequence (or until a matching [Mutex.unlock m]).
   Cross-function nesting (a callee that locks) is out of scope and is
   covered by the SSDB_LOCK_CHECK runtime witness in the pager. *)

open Parsetree

type klass = { class_name : string; rank : int }

(* The declared order table.  A lock is identified by the file that
   owns it and the last identifier of the lock expression.  New lock
   sites MUST be added here (and to DESIGN.md §11) or the pass reports
   lock-order/undeclared. *)
let classify ~file ~lock_name =
  match (Ast_util.basename file, lock_name) with
  | "node_table.ml", "write_lock" -> Some { class_name = "table-writer"; rank = 10 }
  | "server_filter.ml", ("t" | "lock") -> Some { class_name = "cursor-table"; rank = 12 }
  | "pool.ml", "lock" -> Some { class_name = "pool-queue"; rank = 15 }
  | "pager.ml", "meta" -> Some { class_name = "pager-meta"; rank = 20 }
  | "pager.ml", ("latch" | "stripe") -> Some { class_name = "pager-stripe"; rank = 30 }
  | "wal.ml", "lock" -> Some { class_name = "wal-append"; rank = 35 }
  | "pager.ml", "io" -> Some { class_name = "pager-io"; rank = 40 }
  | "pager.ml", "witness_lock" -> Some { class_name = "lock-witness"; rank = 50 }
  | _ -> None

let in_scope path =
  Ast_util.path_has_prefix path ~prefix:"lib/store/"
  || Ast_util.path_has_prefix path ~prefix:"lib/core/"

(* Last identifier of a lock expression: [st.meta] -> "meta",
   [stripe.latch] -> "latch", [t] -> "t". *)
let lock_name_of expr =
  match expr.pexp_desc with
  | Pexp_field (_, lid) -> Some (Ast_util.field_last lid)
  | Pexp_ident { txt; _ } -> Some (Ast_util.last_of (Ast_util.flatten_longident txt))
  | _ -> None

let mutex_call expr which =
  match expr.pexp_desc with
  | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) -> (
      match Ast_util.ident_path fn with
      | Some [ "Mutex"; f ] when String.equal f which -> Some arg
      | _ -> None)
  | _ -> None

let run (source : Lint_source.t) : Finding.t list =
  if not (in_scope source.Lint_source.effective_path) then []
  else begin
    let file = source.Lint_source.effective_path in
    let out_acc = ref [] in
    let finding ~loc ~rule ~allow_key msg =
      let line, col = Ast_util.line_col loc in
      out_acc :=
        Finding.v ~rule ~allow_key ~severity:Finding.Error
          ~file:source.Lint_source.path ~line ~col msg
        :: !out_acc
    in
    (* Stack of currently-held classes, innermost first; threaded
       through the traversal as mutable state. *)
    let held = ref [] in
    let wrapper_depth = ref 0 in
    let check_and_classify ~loc lock_expr =
      match lock_name_of lock_expr with
      | None ->
          finding ~loc ~rule:"lock-order/undeclared" ~allow_key:"lock-undeclared"
            "lock expression is not a declared lock site; add it to the order table";
          None
      | Some lock_name -> (
          match classify ~file ~lock_name with
          | None ->
              finding ~loc ~rule:"lock-order/undeclared" ~allow_key:"lock-undeclared"
                (Printf.sprintf
                   "lock `%s' is not in the declared order table for %s; declare its \
                    rank before taking it"
                   lock_name (Ast_util.basename file));
              None
          | Some k ->
              (match !held with
              | top :: _ when top.rank >= k.rank ->
                  finding ~loc ~rule:"lock-order/inversion" ~allow_key:"lock-order"
                    (Printf.sprintf
                       "acquires %s (rank %d) while holding %s (rank %d); declared \
                        order is table-writer/cursor-table/pool-queue -> meta -> \
                        stripe -> io"
                       k.class_name k.rank top.class_name top.rank)
              | _ -> ());
              Some k)
    in
    let super = Ast_iterator.default_iterator in
    let rec visit it e =
      match e.pexp_desc with
      (* with_lock [~rank] LOCK F : F runs with LOCK held *)
      | Pexp_apply (fn, args)
        when (match Ast_util.ident_last fn with
             | Some "with_lock" -> true
             | _ -> false)
             && List.length (List.filter (fun (l, _) -> l = Asttypes.Nolabel) args) >= 2
        ->
          let positional = List.filter_map
              (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
              args
          in
          let lock_expr = List.hd positional in
          let body = List.nth positional 1 in
          let k = check_and_classify ~loc:e.pexp_loc lock_expr in
          (match k with
          | Some k ->
              held := k :: !held;
              Fun.protect
                ~finally:(fun () -> held := List.tl !held)
                (fun () -> List.iter (fun b -> visit it b) (body :: List.tl (List.tl positional)))
          | None -> List.iter (fun b -> visit it b) (List.tl positional));
          visit it lock_expr
      (* e1; e2 with e1 = Mutex.lock m : rest of sequence holds m *)
      | Pexp_sequence (e1, e2) -> (
          match mutex_call e1 "lock" with
          | Some lock_expr when !wrapper_depth = 0 -> (
              match check_and_classify ~loc:e1.pexp_loc lock_expr with
              | Some k ->
                  held := k :: !held;
                  Fun.protect
                    ~finally:(fun () ->
                      held := List.filter (fun h -> h != k) !held)
                    (fun () -> visit it e2)
              | None -> visit it e2)
          | _ -> (
              (match mutex_call e1 "unlock" with
              | Some lock_expr when !wrapper_depth = 0 -> (
                  match lock_name_of lock_expr with
                  | Some lock_name -> (
                      match classify ~file ~lock_name with
                      | Some k ->
                          held := List.filter (fun h -> not (h.class_name = k.class_name)) !held
                      | None -> ())
                  | None -> ())
              | _ -> visit it e1);
              visit it e2))
      | _ -> super.expr it e
    in
    let expr it e = visit it e in
    let value_binding it vb =
      (* The definitions of [with_lock] wrappers contain [Mutex.lock m]
         on their parameter; the call sites are what get classified. *)
      let is_wrapper =
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ } -> String.equal txt "with_lock"
        | _ -> false
      in
      if is_wrapper then begin
        incr wrapper_depth;
        Fun.protect
          ~finally:(fun () -> decr wrapper_depth)
          (fun () -> super.value_binding it vb)
      end
      else super.value_binding it vb
    in
    let it = { super with expr; value_binding } in
    it.structure it source.Lint_source.structure;
    List.rev !out_acc
  end
