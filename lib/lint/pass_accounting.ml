(* Accounting discipline:

   - Cursor-table removals happen only inside [finish_cursor_locked]
     (DESIGN.md §10: the single removal path keeps the open-cursor
     gauge, per-reason eviction counters and slow-query lifetimes from
     drifting apart).
   - [Metrics.t] instances are merged only via the field-exhaustive
     [Metrics.add]: a manual `acc.f <- acc.f + other.f` silently drops
     counters the moment a new field is added. *)

open Parsetree

let metric_fields =
  [
    "evaluations";
    "equality_tests";
    "reconstructions";
    "nodes_examined";
    "degenerate_divisions";
  ]

let in_core path = Ast_util.path_has_prefix path ~prefix:"lib/core/"

let is_metrics_ml path =
  String.equal (Ast_util.normalize_path path) "lib/core/metrics.ml"

(* Does [expr] read a metric field of a record other than [base_str]? *)
let foreign_metric_read ~base_str expr =
  let found = ref None in
  let super = Ast_iterator.default_iterator in
  let expr_it it e =
    (match e.pexp_desc with
    | Pexp_field (b, lid) when List.mem (Ast_util.field_last lid) metric_fields ->
        let b_str = Ast_util.expr_to_string b in
        if not (String.equal b_str base_str) then found := Some (b_str, e.pexp_loc)
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it expr;
  !found

let run (source : Lint_source.t) : Finding.t list =
  let path = source.Lint_source.effective_path in
  let out_acc = ref [] in
  let finding ~loc ~rule ~allow_key msg =
    let line, col = Ast_util.line_col loc in
    out_acc :=
      Finding.v ~rule ~allow_key ~severity:Finding.Error ~file:source.Lint_source.path
        ~line ~col msg
    :: !out_acc
  in
  Ast_util.iter_expressions_with_bindings source.Lint_source.structure
    (fun ~bindings e ->
      match e.pexp_desc with
      (* Hashtbl.remove <x>.cursors _ outside finish_cursor_locked *)
      | Pexp_apply (fn, ((_, first) :: _ as _args))
        when in_core path
             && (match Ast_util.ident_path fn with
                | Some [ "Hashtbl"; "remove" ] -> true
                | _ -> false) -> (
          match first.pexp_desc with
          | Pexp_field (_, lid) when String.equal (Ast_util.field_last lid) "cursors" ->
              if not (List.mem "finish_cursor_locked" bindings) then
                finding ~loc:e.pexp_loc ~rule:"accounting/cursor-removal"
                  ~allow_key:"cursor-removal"
                  "cursor-table removal outside finish_cursor_locked: every cursor \
                   must leave through the single removal path (DESIGN.md \u{00a7}10)"
          | _ -> ())
      (* acc.f <- ... other.f ... where f is a Metrics counter *)
      | Pexp_setfield (base, lid, rhs)
        when List.mem (Ast_util.field_last lid) metric_fields
             && not (is_metrics_ml path) -> (
          let base_str = Ast_util.expr_to_string base in
          match foreign_metric_read ~base_str rhs with
          | Some (other, loc) ->
              finding ~loc ~rule:"accounting/metrics-merge" ~allow_key:"metrics-merge"
                (Printf.sprintf
                   "manual Metrics merge (%s.%s reads %s.%s): merge instances with \
                    the field-exhaustive Metrics.add instead"
                   base_str (Ast_util.field_last lid) other (Ast_util.field_last lid))
          | None -> ())
      | _ -> ());
  List.rev !out_acc
