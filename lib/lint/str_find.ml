(* Naive substring search — directive lines are short, so the
   quadratic worst case never matters. *)

let find_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then Some 0
  else begin
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i <= nh - nn do
      if String.equal (String.sub haystack !i nn) needle then found := Some !i;
      incr i
    done;
    !found
  end
