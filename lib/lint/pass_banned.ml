(* Banned APIs:

   - [Stdlib.Random] anywhere outside lib/prg and test code: every
     random draw in the product must come from the seeded, auditable
     generators in lib/prg (shares from ChaCha20, workload noise from
     SplitMix64), never the ambient global RNG.
   - [Obj.magic]: never.
   - Polymorphic [=] / [compare] / [Hashtbl.hash] on polynomial
     values: polynomial representations are not canonical-by-type, and
     structural comparison silently couples code to the memory layout.
   - Unguarded [Hashtbl] mutation in server-side concurrent modules:
     mutation must sit under [with_lock], a [Mutex.lock] region, or a
     function whose name ends in [_locked] (the called-with-lock-held
     convention).
   - [Thread.create] anywhere under lib/rpc: the RPC layer is
     event-driven (one loop domain + the eval pool); spawning ad-hoc
     threads there reintroduces the per-connection-thread model the
     event loop replaced.
   - [Thread.create] anywhere under lib/shard: the router serves
     every connection from the RPC event loop and fans shard calls
     out synchronously per request; spawning threads there would
     smuggle unsynchronised concurrency past the cursor-table lock.
   - Allocating combinators ([Array.map], [List.map], ...) inside the
     designated kernel modules: those inner loops are the product's
     hot path and must stay allocation-free — every temporary
     array/list per call shows up as GC pressure at scan rates. *)

open Parsetree

let random_allowed path =
  Ast_util.path_has_prefix path ~prefix:"lib/prg/"
  || Ast_util.path_has_prefix path ~prefix:"test/"

(* Modules whose hash tables are reached from more than one thread.
   lib/rpc/server.ml is deliberately absent since the event-loop
   rewrite: its only hash tables ([t.conns] and the Evloop index) are
   confined to the loop domain, and everything shared across domains
   there is a plain counter under [with_lock]. *)
let concurrent_files =
  [
    "lib/core/server_filter.ml";
    "lib/core/pool.ml";
    "lib/store/pager.ml";
    "lib/obs/trace.ml";
    "lib/obs/registry.ml";
    "lib/obs/metrics_http.ml";
    "lib/shard/router.ml";
  ]

(* Kernel modules: allocation-free by contract.  See the header of
   each listed file. *)
let kernel_files = [ "lib/poly/flat.ml" ]

(* Combinators that allocate a fresh array/list per call.  Mutating /
   folding combinators ([Array.fill], [Array.iter], [fold_left], ...)
   stay legal in kernels. *)
let allocating_combinators =
  [
    ("Array", "make");
    ("Array", "make_matrix");
    ("Array", "map");
    ("Array", "mapi");
    ("Array", "map2");
    ("Array", "init");
    ("Array", "append");
    ("Array", "concat");
    ("Array", "to_list");
    ("Array", "of_list");
    ("Array", "copy");
    ("Array", "sub");
    ("List", "map");
    ("List", "mapi");
    ("List", "map2");
    ("List", "rev_map");
    ("List", "concat_map");
    ("List", "filter_map");
    ("List", "filter");
    ("List", "init");
    ("List", "append");
    ("List", "concat");
  ]

let hashtbl_mutators = [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

(* Operand looks like a polynomial: canonical local names, or a call
   that returns one.  The check is deliberately SHALLOW — it looks at
   the operand's head only, so [Cyclic.eval ring poly x = 0] (an int
   comparison whose argument happens to be a polynomial) is not
   flagged, while [poly = other] and [Cyclic.mul r a b = c] are. *)
let poly_names =
  [ "poly"; "polys"; "node_poly"; "child_polys"; "client_poly"; "server_poly" ]

let poly_fns =
  [
    ("Codec", "unpack_cyclic");
    ("Cyclic", "add");
    ("Cyclic", "sub");
    ("Cyclic", "mul");
    ("Cyclic", "one");
    ("Cyclic", "of_dense");
    ("Share", "client");
    ("Share", "server_share");
    ("Share", "reconstruct");
  ]

let rec polyish expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } ->
      List.mem
        (String.lowercase_ascii (Ast_util.last_of (Ast_util.flatten_longident txt)))
        poly_names
  | Pexp_field (_, lid) ->
      List.mem (String.lowercase_ascii (Ast_util.field_last lid)) poly_names
  | Pexp_apply (fn, _) -> (
      match Ast_util.ident_path fn with
      | Some path when List.length path >= 2 ->
          let m = List.nth path (List.length path - 2) in
          List.mem (m, Ast_util.last_of path) poly_fns
      | _ -> false)
  | Pexp_constraint (inner, _) -> polyish inner
  | _ -> false

let run (source : Lint_source.t) : Finding.t list =
  let path = source.Lint_source.effective_path in
  let out_acc = ref [] in
  let finding ~loc ~severity ~rule ~allow_key msg =
    let line, col = Ast_util.line_col loc in
    out_acc :=
      Finding.v ~rule ~allow_key ~severity ~file:source.Lint_source.path ~line ~col msg
      :: !out_acc
  in
  let concurrent =
    List.exists (fun f -> String.equal (Ast_util.normalize_path path) f) concurrent_files
  in
  let kernel =
    List.exists (fun f -> String.equal (Ast_util.normalize_path path) f) kernel_files
  in
  let in_rpc = Ast_util.path_has_prefix path ~prefix:"lib/rpc/" in
  let in_shard = Ast_util.path_has_prefix path ~prefix:"lib/shard/" in
  (* Guard depth for the unguarded-hashtbl check: >0 while lexically
     under with_lock, a Mutex.lock region, or a *_locked function. *)
  let guard_depth = ref 0 in
  let super = Ast_iterator.default_iterator in
  let rec visit it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match Ast_util.flatten_longident txt with
        | "Random" :: _ :: _ | "Stdlib" :: "Random" :: _ ->
            if not (random_allowed path) then
              finding ~loc:e.pexp_loc ~severity:Finding.Error ~rule:"banned/random"
                ~allow_key:"banned-random"
                "Stdlib.Random outside lib/prg: use the seeded generators \
                 (Splitmix64/Xoshiro/Chacha20) so randomness stays auditable"
        | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] ->
            finding ~loc:e.pexp_loc ~severity:Finding.Error ~rule:"banned/obj-magic"
              ~allow_key:"banned-obj-magic" "Obj.magic is banned"
        | ([ "Thread"; "create" ] | [ "Stdlib"; "Thread"; "create" ]) when in_rpc ->
            finding ~loc:e.pexp_loc ~severity:Finding.Error ~rule:"banned/thread-in-rpc"
              ~allow_key:"thread-in-rpc"
              "Thread.create inside lib/rpc: the RPC layer is event-driven; put \
               the work on the event loop or the eval pool instead of spawning a \
               thread per connection"
        | ([ "Thread"; "create" ] | [ "Stdlib"; "Thread"; "create" ]) when in_shard ->
            finding ~loc:e.pexp_loc ~severity:Finding.Error
              ~rule:"banned/thread-in-shard" ~allow_key:"thread-in-shard"
              "Thread.create inside lib/shard: the router runs on the RPC event \
               loop and keeps its cursor table behind one lock; fan shard calls \
               out synchronously instead of spawning threads"
        | ([ m; f ] | [ "Stdlib"; m; f ])
          when kernel && List.mem (m, f) allocating_combinators ->
            finding ~loc:e.pexp_loc ~severity:Finding.Error ~rule:"banned/kernel-alloc"
              ~allow_key:"kernel-alloc"
              (Printf.sprintf
                 "%s.%s allocates per call and this module is a designated \
                  allocation-free kernel; write the loop over caller-provided \
                  scratch instead"
                 m f)
        | _ -> ())
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply (fn, args) -> (
        let arg_exprs = List.map snd args in
        (match Ast_util.ident_path fn with
        | Some ([ op ] | [ "Stdlib"; op ]) when List.mem op [ "="; "<>"; "compare" ] ->
            if List.exists polyish arg_exprs then
              finding ~loc:e.pexp_loc ~severity:Finding.Error ~rule:"banned/poly-compare"
                ~allow_key:"poly-compare"
                (Printf.sprintf
                   "polymorphic %s on a polynomial value; use a dedicated equality \
                    over the coefficient representation"
                   op)
        | Some path_l when Ast_util.path_ends_with path_l ~suffix:[ "Hashtbl"; "hash" ] ->
            if List.exists polyish arg_exprs then
              finding ~loc:e.pexp_loc ~severity:Finding.Error ~rule:"banned/hashtbl-hash"
                ~allow_key:"hashtbl-hash"
                "Hashtbl.hash on a polynomial value; hash a canonical encoding instead"
            else
              finding ~loc:e.pexp_loc ~severity:Finding.Warning ~rule:"banned/hashtbl-hash"
                ~allow_key:"hashtbl-hash"
                "Hashtbl.hash is representation-dependent; prefer an explicit key"
        | Some [ "Hashtbl"; m ] when concurrent && List.mem m hashtbl_mutators ->
            if !guard_depth = 0 then
              finding ~loc:e.pexp_loc ~severity:Finding.Error
                ~rule:"banned/unguarded-hashtbl" ~allow_key:"unguarded-hashtbl"
                (Printf.sprintf
                   "Hashtbl.%s in a concurrent module outside any lock guard; wrap it \
                    in with_lock / Mutex.lock or move it into a *_locked function"
                   m)
        | _ -> ());
        (* with_lock LOCK F guards everything inside its arguments *)
        match Ast_util.ident_last fn with
        | Some "with_lock" ->
            incr guard_depth;
            Fun.protect
              ~finally:(fun () -> decr guard_depth)
              (fun () -> List.iter (visit it) arg_exprs)
        | _ -> super.expr it e)
    | Pexp_sequence (e1, e2) -> (
        match e1.pexp_desc with
        | Pexp_apply (lock_fn, _)
          when (match Ast_util.ident_path lock_fn with
               | Some [ "Mutex"; "lock" ] -> true
               | _ -> false) ->
            visit it e1;
            incr guard_depth;
            Fun.protect ~finally:(fun () -> decr guard_depth) (fun () -> visit it e2)
        | _ ->
            visit it e1;
            visit it e2)
    | _ -> super.expr it e
  in
  let expr it e = visit it e in
  let value_binding it vb =
    let guarded_fn =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } ->
          String.length txt >= 7
          && String.equal (String.sub txt (String.length txt - 7) 7) "_locked"
      | _ -> false
    in
    if guarded_fn then begin
      incr guard_depth;
      Fun.protect
        ~finally:(fun () -> decr guard_depth)
        (fun () -> super.value_binding it vb)
    end
    else super.value_binding it vb
  in
  let it = { super with expr; value_binding } in
  it.structure it source.Lint_source.structure;
  List.rev !out_acc
