(* The declared lock table, shared by [Pass_lock_order] (intra-file
   acquisition order) and [Pass_races] (guarded-by checking).  A lock
   site is identified by the basename of the file that owns it and the
   last identifier of the lock expression; its class name is the
   handle the concurrency model's [Guarded_by] declarations use.

   New lock sites MUST be declared here (and in DESIGN.md §16) or the
   lock-order pass reports lock-order/undeclared.  Ranks encode the
   acquisition partial order: a lock may only be taken while holding
   strictly lower-ranked locks.  Leaf ranks (>= 44) belong to the
   observability locks, which are taken under everything. *)

open Parsetree

type klass = { class_name : string; rank : int }

let fixture_base base =
  let has_prefix p =
    String.length base >= String.length p && String.sub base 0 (String.length p) = p
  in
  has_prefix "bad_race_" || has_prefix "good_race_"

let classify ~file ~lock_name =
  match (Ast_util.basename file, lock_name) with
  | "node_table.ml", "write_lock" -> Some { class_name = "table-writer"; rank = 10 }
  | "server_filter.ml", ("t" | "lock") -> Some { class_name = "cursor-table"; rank = 12 }
  | "server.ml", ("t" | "lock") -> Some { class_name = "rpc-server-stats"; rank = 13 }
  | "router.ml", ("t" | "lock") -> Some { class_name = "router-cursors"; rank = 14 }
  | "pool.ml", "lock" -> Some { class_name = "pool-queue"; rank = 15 }
  | "metrics_http.ml", "lock" -> Some { class_name = "metrics-http"; rank = 17 }
  | "pager.ml", "meta" -> Some { class_name = "pager-meta"; rank = 20 }
  | "pager.ml", ("latch" | "stripe") -> Some { class_name = "pager-stripe"; rank = 30 }
  | "wal.ml", "lock" -> Some { class_name = "wal-append"; rank = 35 }
  | "pager.ml", "io" -> Some { class_name = "pager-io"; rank = 40 }
  | "trace.ml", "ambient_lock" -> Some { class_name = "trace-ambient"; rank = 44 }
  | "trace.ml", "ring_lock" -> Some { class_name = "trace-ring"; rank = 45 }
  | "trace.ml", "log_lock" -> Some { class_name = "trace-log"; rank = 46 }
  | "registry.ml", ("t" | "registry" | "lock") ->
      Some { class_name = "obs-registry"; rank = 47 }
  | "histogram.ml", ("t" | "lock" | "into") ->
      Some { class_name = "obs-histogram"; rank = 48 }
  | "events.ml", "emit_lock" -> Some { class_name = "events-sink"; rank = 49 }
  | "pager.ml", "witness_lock" -> Some { class_name = "lock-witness"; rank = 50 }
  | "race_check.ml", "lock" -> Some { class_name = "race-witness"; rank = 55 }
  | base, ("lock" | "fixture_lock") when fixture_base base ->
      Some { class_name = "fixture-lock"; rank = 60 }
  | _ -> None

(* Every class name above, for validating [Guarded_by] declarations. *)
let class_names =
  [
    "table-writer";
    "cursor-table";
    "rpc-server-stats";
    "router-cursors";
    "pool-queue";
    "metrics-http";
    "pager-meta";
    "pager-stripe";
    "wal-append";
    "pager-io";
    "trace-ambient";
    "trace-ring";
    "trace-log";
    "obs-registry";
    "obs-histogram";
    "events-sink";
    "lock-witness";
    "race-witness";
    "fixture-lock";
  ]

(* Directories whose lock sites the order pass analyzes.  Everything
   under lib/ outside this set must not create locks at all; the pass
   reports lint-coverage/lock-order-skip if one does. *)
let in_scope path =
  List.exists
    (fun prefix -> Ast_util.path_has_prefix path ~prefix)
    [ "lib/store/"; "lib/core/"; "lib/rpc/"; "lib/obs/"; "lib/shard/" ]

(* Last identifier of a lock expression: [st.meta] -> "meta",
   [stripe.latch] -> "latch", [t] -> "t". *)
let lock_name_of expr =
  match expr.pexp_desc with
  | Pexp_field (_, lid) -> Some (Ast_util.field_last lid)
  | Pexp_ident { txt; _ } -> Some (Ast_util.last_of (Ast_util.flatten_longident txt))
  | _ -> None

let mutex_call expr which =
  match expr.pexp_desc with
  | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) -> (
      match Ast_util.ident_path fn with
      | Some [ "Mutex"; f ] when String.equal f which -> Some arg
      | _ -> None)
  | _ -> None
