(* Secret-flow: identifiers and producers that carry share/seed/
   polynomial/tag material must never appear in argument position of a
   logging, formatting, error-string or metric-label sink (DESIGN.md
   §9: telemetry must not become the side channel that breaks the
   client/server split).

   The check is name-based and untyped: an expression is tainted when
   it mentions an identifier from the secret vocabulary or applies a
   known secret producer.  That makes it a discipline as much as an
   analysis — secret values must keep their canonical names — which is
   exactly what a reviewer enforces today, mechanised. *)

open Parsetree

(* Exact (lowercased) last-component names that denote secret material. *)
let secret_names =
  [
    "seed";
    "share";
    "shares";
    "poly";
    "polys";
    "node_poly";
    "child_polys";
    "client_poly";
    "server_poly";
    "client_value";
    "server_value";
    "share_bytes";
    "coeffs";
    "secret";
    "plaintext";
    "tag_name";
    "tagname";
    "point";
    "points";
  ]

(* (module, function) calls whose *result* is secret material. *)
let secret_producers =
  [
    ("Share", "client");
    ("Share", "server_share");
    ("Share", "reconstruct");
    ("Codec", "unpack_cyclic");
    ("Seed", "generate");
    ("Seed", "load");
    ("Seed", "of_hex");
    ("Seed", "to_hex");
    ("Mapping", "value");
    ("Mapping", "find");
    ("Mapping", "name_of_value");
    ("Node_prg", "poly");
    ("Node_prg", "generate");
  ]

(* Partial-aggregate vocabulary: server-side code folds numeric shares
   into a blinded partial sum ([Agg_partial]).  The sum is uniformly
   random on its own, but a log line per query turns the server into a
   tape of its own replies — correlate two epochs (or subtract a known
   query) and the blinding cancels.  So the partial-sum names must
   never reach a sink in server code; log the row count or the reply
   size instead (DESIGN.md §15). *)
let agg_secret_names = [ "sum"; "partial_sum"; "agg_sum"; "total_sum"; "partial" ]

(* (module, function) calls whose result carries partial-aggregate
   material on the server side. *)
let agg_secret_producers = [ ("Numeric", "add"); ("Numeric", "of_bytes") ]

(* Server-side scope for the aggregate rule: the RPC layer, the shard
   router, the server-side filter, and the server binary. *)
let agg_server_scope path =
  Ast_util.path_has_prefix path ~prefix:"lib/rpc/"
  || Ast_util.path_has_prefix path ~prefix:"lib/shard/"
  ||
  match Ast_util.normalize_path path with
  | "lib/core/server_filter.ml" | "bin/ssdb_server.ml" -> true
  | _ -> false

let printf_like =
  [ "printf"; "eprintf"; "sprintf"; "fprintf"; "ksprintf"; "kfprintf"; "kprintf" ]

let format_like =
  [ "printf"; "eprintf"; "sprintf"; "asprintf"; "fprintf"; "kasprintf"; "kfprintf" ]

let event_like = [ "error"; "info"; "debug"; "logf" ]

(* Classify a callee path as a sink, returning a display name. *)
let sink_of path =
  match path with
  | [ "failwith" ] | [ "Stdlib"; "failwith" ] -> Some "failwith"
  | [ "invalid_arg" ] | [ "Stdlib"; "invalid_arg" ] -> Some "invalid_arg"
  | [ ("print_string" | "print_endline" | "prerr_string" | "prerr_endline") ] ->
      Some (List.hd path)
  | _ when List.length path >= 2 -> (
      let m = List.nth path (List.length path - 2) in
      let f = Ast_util.last_of path in
      match m with
      | "Printf" when List.mem f printf_like -> Some ("Printf." ^ f)
      | "Format" when List.mem f format_like -> Some ("Format." ^ f)
      | "Events" when List.mem f event_like -> Some ("Events." ^ f)
      | _ -> None)
  | _ -> None

let is_registry_family path =
  List.length path >= 2
  && String.equal (List.nth path (List.length path - 2)) "Registry"
  && List.mem (Ast_util.last_of path) [ "counter"; "gauge"; "histogram"; "declare" ]

(* Label values proven safe by construction: enumerations the server
   already knows (DESIGN.md §9). *)
let safe_label_fns = [ "reason_label"; "request_name"; "level_to_string"; "op_base_name" ]

(* Structure-only projections: applying one of these to a secret
   yields a value that reveals nothing but its size, so the taint scan
   does not descend into their arguments ([Bytes.length row.share] is
   how pp_row redacts the share bytes). *)
let declassifiers = [ "length" ]

(* Find subexpressions of [e] tainted by [names]/[producers]; call
   [report] for each. *)
let scan_vocab ~names ~producers ~producer_word ~report e =
  let super = Ast_iterator.default_iterator in
  let rec expr it e =
    match e.pexp_desc with
    | Pexp_apply (fn, _)
      when (match Ast_util.ident_last fn with
           | Some f -> List.mem f declassifiers
           | None -> false) ->
        ()
    | _ -> expr_inner it e
  and expr_inner it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        let name = String.lowercase_ascii (Ast_util.last_of (Ast_util.flatten_longident txt)) in
        if List.mem name names then report e.pexp_loc ("identifier `" ^ name ^ "'")
    | Pexp_field (_, lid) ->
        let name = String.lowercase_ascii (Ast_util.field_last lid) in
        if List.mem name names then report e.pexp_loc ("field `" ^ name ^ "'")
    | Pexp_apply (fn, _) -> (
        match Ast_util.ident_path fn with
        | Some path when List.length path >= 2 ->
            let m = List.nth path (List.length path - 2) in
            let f = Ast_util.last_of path in
            if List.mem (m, f) producers then
              report e.pexp_loc (Printf.sprintf "call to %s %s.%s" producer_word m f)
        | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e

let scan_taint ~report e =
  scan_vocab ~names:secret_names ~producers:secret_producers
    ~producer_word:"secret producer" ~report e

let scan_agg_taint ~report e =
  scan_vocab ~names:agg_secret_names ~producers:agg_secret_producers
    ~producer_word:"partial-aggregate producer" ~report e

let finding source ~loc ~rule ~allow_key msg =
  let line, col = Ast_util.line_col loc in
  Finding.v ~rule ~allow_key ~severity:Finding.Error ~file:source.Lint_source.path ~line
    ~col msg

(* Check one ~labels:[ (k, v); ... ] argument: each value expression
   must be a literal, a safe enumeration call, or an untainted
   identifier. *)
let check_labels source ~sink_loc labels_expr out =
  let check_value v =
    scan_taint v ~report:(fun loc what ->
        out
          (finding source ~loc ~rule:"secret-flow/label" ~allow_key:"secret-label"
             (Printf.sprintf "metric label value carries %s%s" what
                " - labels may only carry server-known enumerations (DESIGN.md \u{00a7}9)")));
    ignore sink_loc;
    match v.pexp_desc with
    | Pexp_apply (fn, _) -> (
        match Ast_util.ident_last fn with
        | Some f when List.mem f safe_label_fns -> ()
        | _ -> ())
    | _ -> ()
  in
  let rec walk_list e =
    match e.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
      ->
        (match hd.pexp_desc with
        | Pexp_tuple [ _key; value ] -> check_value value
        | _ -> check_value hd);
        walk_list tl
    | _ -> ()
  in
  walk_list labels_expr

let run (source : Lint_source.t) : Finding.t list =
  let out_acc = ref [] in
  let out f = out_acc := f :: !out_acc in
  let server_side = agg_server_scope source.Lint_source.effective_path in
  Ast_util.iter_expressions source.Lint_source.structure (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, args) -> (
          match Ast_util.ident_path fn with
          | Some path -> (
              (match sink_of path with
              | Some sink_name ->
                  List.iter
                    (fun ((_ : Asttypes.arg_label), arg) ->
                      scan_taint arg ~report:(fun loc what ->
                          out
                            (finding source ~loc ~rule:"secret-flow/sink"
                               ~allow_key:"secret-sink"
                               (Printf.sprintf "%s reaches sink %s" what sink_name)));
                      if server_side then
                        scan_agg_taint arg ~report:(fun loc what ->
                            out
                              (finding source ~loc ~rule:"secret-flow/agg-sink"
                                 ~allow_key:"agg-sink"
                                 (Printf.sprintf
                                    "%s reaches sink %s in server code - partial \
                                     aggregate values must never be logged; report \
                                     the row count or reply size instead (DESIGN.md \
                                     \u{00a7}15)"
                                    what sink_name))))
                    args
              | None -> ());
              if is_registry_family path then
                List.iter
                  (fun (label, arg) ->
                    match label with
                    | Asttypes.Labelled "labels" ->
                        check_labels source ~sink_loc:e.pexp_loc arg out
                    | _ -> ())
                  args)
          | None -> ())
      | _ -> ());
  List.rev !out_acc
