(* Small helpers over the compiler-libs Parsetree shared by every
   pass.  Everything here is untyped and name-based: the passes trade
   soundness for zero build-system coupling (they parse, they never
   typecheck), and DESIGN.md §11 documents that contract. *)

open Parsetree

let rec flatten_longident = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_longident l @ [ s ]
  | Longident.Lapply (a, b) -> flatten_longident a @ flatten_longident b

(* The (module-path, name) view of an identifier expression. *)
let ident_path expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten_longident txt)
  | _ -> None

let last_of path = List.nth path (List.length path - 1)

(* Last path component, e.g. [failwith], [Printf.sprintf] -> "sprintf". *)
let ident_last expr = Option.map last_of (ident_path expr)

(* Last component of a record-field longident. *)
let field_last lid = last_of (flatten_longident lid.Location.txt)

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Stable textual form of an expression, used to compare receiver
   expressions structurally (e.g. [acc] vs [t.metrics]). *)
let expr_to_string expr =
  try Format.asprintf "%a" Pprintast.expression expr with _ -> "<unprintable>"

(* Does [path] end with [suffix] (component-wise)? *)
let path_ends_with path ~suffix =
  let np = List.length path and ns = List.length suffix in
  np >= ns
  && List.for_all2 String.equal
       (List.filteri (fun i _ -> i >= np - ns) path)
       suffix

(* Normalize an on-disk or pretend path to repo-relative with forward
   slashes, e.g. "/root/repo/lib/core/pool.ml" -> "lib/core/pool.ml"
   when the repo root is a prefix; otherwise returned as-is. *)
let normalize_path path =
  let path =
    String.concat "/" (String.split_on_char '\\' path) (* windows-proof, cheap *)
  in
  let parts = String.split_on_char '/' path in
  let rec from_anchor = function
    | ("lib" | "bin" | "test" | "bench" | "examples") :: _ as tail ->
        Some (String.concat "/" tail)
    | _ :: rest -> from_anchor rest
    | [] -> None
  in
  match from_anchor parts with Some p -> p | None -> path

let path_has_prefix path ~prefix =
  let p = normalize_path path in
  String.length p >= String.length prefix && String.equal (String.sub p 0 (String.length prefix)) prefix

let basename path = Filename.basename path

(* Iterate every expression of a structure with [f] (pre-order),
   using the default iterator for everything else. *)
let iter_expressions structure f =
  let super = Ast_iterator.default_iterator in
  let expr it e =
    f e;
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure

(* The value-binding names enclosing each point of the tree matter to
   several passes ("is this inside [finish_cursor_locked]?").  This
   traversal threads that context: [f ~bindings expr] sees the stack
   of enclosing let-bound names, innermost first. *)
let iter_expressions_with_bindings structure f =
  let super = Ast_iterator.default_iterator in
  let bindings = ref [] in
  let binding_name vb =
    match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> Some txt | _ -> None
  in
  let with_binding name body =
    match name with
    | None -> body ()
    | Some n ->
        bindings := n :: !bindings;
        Fun.protect ~finally:(fun () -> bindings := List.tl !bindings) body
  in
  let value_binding it vb =
    with_binding (binding_name vb) (fun () -> super.value_binding it vb)
  in
  let expr it e =
    f ~bindings:!bindings e;
    super.expr it e
  in
  let it = { super with expr; value_binding } in
  it.structure it structure
