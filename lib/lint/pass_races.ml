(* Whole-program guarded-by / domain-confinement checking over lib/.

   Phase 1 (per file) inventories the shared mutable roots — module
   level bindings whose right-hand side builds mutable state (ref,
   Hashtbl.create, Buffer.create, Array.make, Atomic.make, ...),
   mutable record fields, fields of mutable-container type, and local
   mutable bindings that escape into spawned closures — and records
   every access with its lexical lockset (the [with_lock]/[Mutex.lock]
   discipline of [Pass_lock_order]) and executor context (closures
   passed to Domain.spawn/Thread.create/Pool.map_* run elsewhere).

   Phase 2 (whole program) resolves calls across files, then runs two
   fixpoints: a callee's *entry lockset* is the intersection over all
   call sites of (locks held lexically at the site ∪ the caller's own
   entry lockset) — which is how the [_locked] suffix convention
   becomes a checked property — and a function's *domain* is the join
   of the domains it is called from, seeded by [@@runs_on] attributes
   and spawn sites (two different domains join to Mixed).

   Phase 3 checks every access against the declared model
   ([Concurrency_model] or inline attributes): Guarded_by roots must
   hold their class at every access, Guarded_writes at every write,
   Domain_confined roots must never be touched from a different or
   mixed domain, Atomic_ok roots pass with their recorded reason.
   Undeclared roots and declarations without a root are findings, so
   the model stays complete in both directions.

   Everything is untyped and name-based, per the lib/lint contract
   (DESIGN.md §11): roots are matched per file by name, so a field
   mutated from another compilation unit is outside the net — the
   SSDB_RACE_CHECK runtime witness is the dynamic backstop. *)

open Parsetree
module SS = Set.Make (String)

type ctx = Top | Spawned of string  (* executor the code runs on *)

type access = {
  acc_root : string;
  acc_write : bool;
  acc_locks : SS.t;
  acc_ctx : ctx;
  acc_fn : string;
  acc_loc : Location.t;
}

type call = {
  call_path : string list;
  call_locks : SS.t;
  call_ctx : ctx;
  call_fn : string;
  call_loc : Location.t;
}

type root = {
  root_name : string;
  root_loc : Location.t;
  root_attr : Concurrency_model.guard option;
  root_attr_err : string option;
  root_local : bool;  (* an escaping local, declared by attribute only *)
}

type file_info = {
  fi_path : string;  (* real path, for findings *)
  fi_eff : string;  (* normalized effective path *)
  fi_base : string;
  fi_fixture : bool;
  mutable fi_roots : root list;
  mutable fi_accesses : access list;
  mutable fi_calls : call list;
  mutable fi_defined : SS.t;  (* top-level binding names *)
  mutable fi_submodules : SS.t;
  mutable fi_runs_on : (string * string) list;  (* fn -> domain *)
  mutable fi_spawns : (string * string) list;  (* fn spawned by name -> domain *)
  mutable fi_init : SS.t;  (* [@@init_path] functions: pre-publication *)
  mutable fi_requires : (string * string) list;  (* fn -> required class *)
  mutable fi_attr_errs : (Location.t * string) list;
}

(* --- attribute parsing ------------------------------------------- *)

let attr_string (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* The concurrency attributes: at most one per binding/field. *)
let guard_of_attributes attrs =
  List.fold_left
    (fun (decl, err) (attr : attribute) ->
      let name = attr.attr_name.Location.txt in
      let with_payload mk =
        match attr_string attr with
        | Some s when String.length s > 0 -> (Some (mk s), err)
        | _ -> (decl, Some (Printf.sprintf "[@%s] needs a non-empty string payload" name))
      in
      match name with
      | "guarded_by" -> with_payload (fun s -> Concurrency_model.Guarded_by s)
      | "guarded_writes" -> with_payload (fun s -> Concurrency_model.Guarded_writes s)
      | "domain_confined" ->
          with_payload (fun s -> Concurrency_model.Domain_confined s)
      | "atomic_ok" -> with_payload (fun s -> Concurrency_model.Atomic_ok s)
      | _ -> (decl, err))
    (None, None) attrs

let named_string_attr name attrs =
  List.fold_left
    (fun acc (attr : attribute) ->
      if String.equal attr.attr_name.Location.txt name then attr_string attr else acc)
    None attrs

let runs_on_of_attributes attrs = named_string_attr "runs_on" attrs

(* [@@init_path "reason"]: the function runs before its state is
   published to any other executor (constructors, recovery), so its
   accesses are single-owner by construction and its call sites must
   not weaken callees' entry locksets. *)
let init_path_of_attributes attrs = named_string_attr "init_path" attrs

let has_attr name attrs =
  List.exists (fun (a : attribute) -> String.equal a.attr_name.Location.txt name) attrs

(* [@@requires "class"]: the function's contract is that callers hold
   the lock class; it seeds the entry lockset and is checked at every
   resolved call site. *)
let requires_of_attributes attrs = named_string_attr "requires" attrs

(* --- mutable-root shapes ------------------------------------------ *)

let rec strip_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

(* Does this right-hand side build mutable state directly? *)
let mutable_maker e =
  match (strip_constraint e).pexp_desc with
  | Pexp_apply (fn, _) -> (
      match Ast_util.ident_path fn with
      | Some [ "ref" ] | Some [ "Stdlib"; "ref" ] -> true
      | Some path when List.length path >= 2 -> (
          match (List.nth path (List.length path - 2), Ast_util.last_of path) with
          | "Hashtbl", "create"
          | "Queue", "create"
          | "Buffer", "create"
          | "Atomic", "make"
          | "Array", ("make" | "init" | "make_matrix")
          | "Bytes", ("create" | "make")
          | "Weak", "create" ->
              true
          | _ -> false)
      | _ -> false)
  | _ -> false

(* Head type constructor of a field's declared type. *)
let rec type_head (ct : core_type) =
  match ct.ptyp_desc with
  | Ptyp_constr (lid, _) -> Some (Ast_util.flatten_longident lid.Location.txt)
  | Ptyp_alias (ct, _) -> type_head ct
  | _ -> None

let container_type ~strict ct =
  match type_head ct with
  | Some path -> (
      match path with
      | [ "ref" ] | [ "Stdlib"; "ref" ]
      | [ "Hashtbl"; "t" ]
      | [ "Queue"; "t" ]
      | [ "Buffer"; "t" ]
      | [ "Atomic"; "t" ] ->
          true
      | [ "array" ] | [ "bytes" ] | [ "Bytes"; "t" ] -> strict
      | _ -> false)
  | None -> false

(* Calls that mutate their [idx]th positional argument. *)
let mutator_arg path =
  match path with
  | [ ":=" ] -> Some 0
  | _ when List.length path >= 2 -> (
      match (List.nth path (List.length path - 2), Ast_util.last_of path) with
      | "Hashtbl", ("replace" | "add" | "remove" | "clear" | "reset" | "filter_map_inplace")
      | "Queue", ("pop" | "take" | "clear")
      | ( "Buffer",
          ( "add_string" | "add_char" | "add_bytes" | "add_subbytes" | "add_substring"
          | "add_buffer" | "clear" | "reset" | "truncate" ) )
      | "Array", ("set" | "unsafe_set" | "fill" | "sort")
      | "Bytes", ("set" | "unsafe_set" | "fill")
      | "Atomic", ("set" | "exchange" | "incr" | "decr" | "fetch_and_add" | "compare_and_set")
        ->
          Some 0
      | "Queue", ("add" | "push" | "transfer") -> Some 1
      | "Array", "blit" | "Bytes", ("blit" | "blit_string") -> Some 2
      | _ -> None)
  | _ -> ( match path with [ ":=" ] -> Some 0 | _ -> None)

let is_spawn path =
  List.exists (fun p -> Ast_util.path_ends_with path ~suffix:p) Concurrency_model.spawn_fns

let is_pool_fanout path =
  List.exists (fun p -> Ast_util.path_ends_with path ~suffix:p) Concurrency_model.pool_fns

let is_escape ~base path =
  List.exists
    (fun (b, p) -> String.equal b base && Ast_util.path_ends_with path ~suffix:p)
    Concurrency_model.escape_fns

(* --- per-file analysis -------------------------------------------- *)

let analyze_file (source : Lint_source.t) : file_info =
  let eff = Ast_util.normalize_path source.Lint_source.effective_path in
  let fi =
    {
      fi_path = source.Lint_source.path;
      fi_eff = eff;
      fi_base = Ast_util.basename eff;
      fi_fixture = not (String.equal source.Lint_source.path source.Lint_source.effective_path);
      fi_roots = [];
      fi_accesses = [];
      fi_calls = [];
      fi_defined = SS.empty;
      fi_submodules = SS.empty;
      fi_runs_on = [];
      fi_spawns = [];
      fi_init = SS.empty;
      fi_requires = [];
      fi_attr_errs = [];
    }
  in
  let strict = List.mem fi.fi_base Concurrency_model.strict_container_files in
  (* field and binding roots of this file, filled as declarations are
     seen; accesses match against it by name *)
  let root_names = Hashtbl.create 16 in
  let add_root ~field r =
    fi.fi_roots <- r :: fi.fi_roots;
    (* a module-level binding wins over a same-named field: bare-ident
       accesses only ever mean the binding *)
    match Hashtbl.find_opt root_names r.root_name with
    | Some `Binding -> ()
    | _ -> Hashtbl.replace root_names r.root_name (if field then `Field else `Binding)
  in
  (* traversal state *)
  let cur_fn = ref "" in
  let cur_ctx = ref Top in
  let held = ref SS.empty in
  let wrapper_depth = ref 0 in
  (* per-top-level-function local state *)
  let local_muts : (string, Location.t * Concurrency_model.guard option * string option) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let local_funs : (string, expression) Hashtbl.t = Hashtbl.create 8 in
  let escaped_locals : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* locations already recorded as a mutator's target; the generic
     ident/field read visit must not double-count them *)
  let claimed : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let record_access root ~write ~loc =
    fi.fi_accesses <-
      {
        acc_root = root;
        acc_write = write;
        acc_locks = !held;
        acc_ctx = !cur_ctx;
        acc_fn = !cur_fn;
        acc_loc = loc;
      }
      :: fi.fi_accesses
  in
  let local_key name = !cur_fn ^ "." ^ name in
  (* A bare identifier only ever denotes a module-level binding or a
     local; fields with the same name are reached via [expr.field] and
     shadowing locals must not count as field accesses. *)
  let touch_ident ?(write = false) name loc =
    match Hashtbl.find_opt root_names name with
    | Some `Binding -> record_access name ~write ~loc
    | Some `Field | None ->
        if Hashtbl.mem local_muts name then record_access (local_key name) ~write ~loc
  in
  let classify lock_expr =
    match Lock_table.lock_name_of lock_expr with
    | None -> None
    | Some lock_name -> Lock_table.classify ~file:fi.fi_eff ~lock_name
  in
  (* all identifiers mentioned in [e], for escape scanning *)
  let idents_of e =
    let acc = ref SS.empty in
    Ast_util.iter_expressions [ { pstr_desc = Pstr_eval (e, []); pstr_loc = e.pexp_loc } ]
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt = Longident.Lident n; _ } -> acc := SS.add n !acc
        | _ -> ());
    !acc
  in
  let mark_escapes e =
    let mentioned = idents_of e in
    let note n = if Hashtbl.mem local_muts n then Hashtbl.replace escaped_locals n () in
    SS.iter
      (fun n ->
        note n;
        match Hashtbl.find_opt local_funs n with
        | Some body -> SS.iter note (idents_of body)
        | None -> ())
      mentioned
  in
  (* domain of a closure spawned at [loc]: the body's head callee's
     [@@runs_on] if declared, else a unique anonymous executor *)
  let rec closure_body e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) -> closure_body body
    | Pexp_function _ -> e
    | _ -> e
  in
  let head_callee e =
    match (closure_body e).pexp_desc with
    | Pexp_apply (fn, _) -> Ast_util.ident_path fn
    | Pexp_ident { txt; _ } -> Some (Ast_util.flatten_longident txt)
    | _ -> None
  in
  let spawn_domain ~loc e =
    let anon () =
      let line, _ = Ast_util.line_col loc in
      Printf.sprintf "spawn:%s:%d" fi.fi_base line
    in
    match head_callee e with
    | Some [ f ] -> (
        match List.assoc_opt f fi.fi_runs_on with Some d -> d | None -> anon ())
    | _ -> anon ()
  in
  let super = Ast_iterator.default_iterator in
  let rec visit it e =
    match e.pexp_desc with
    (* with_lock [~rank] LOCK F : F runs with LOCK held *)
    | Pexp_apply (fn, args)
      when (match Ast_util.ident_last fn with
           | Some "with_lock" -> true
           | _ -> false)
           && List.length (List.filter (fun (l, _) -> l = Asttypes.Nolabel) args) >= 2 ->
        let positional =
          List.filter_map (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None) args
        in
        let lock_expr = List.hd positional in
        let rest = List.tl positional in
        (match classify lock_expr with
        | Some k ->
            let saved = !held in
            held := SS.add k.Lock_table.class_name !held;
            Fun.protect
              ~finally:(fun () -> held := saved)
              (fun () -> List.iter (visit it) rest)
        | None -> List.iter (visit it) rest);
        visit it lock_expr
    (* e1; e2 with e1 = Mutex.lock m : rest of sequence holds m *)
    | Pexp_sequence (e1, e2) -> (
        match Lock_table.mutex_call e1 "lock" with
        | Some lock_expr when !wrapper_depth = 0 -> (
            match classify lock_expr with
            | Some k ->
                let saved = !held in
                held := SS.add k.Lock_table.class_name !held;
                Fun.protect ~finally:(fun () -> held := saved) (fun () -> visit it e2)
            | None -> visit it e2)
        | _ -> (
            (match Lock_table.mutex_call e1 "unlock" with
            | Some lock_expr when !wrapper_depth = 0 -> (
                match classify lock_expr with
                | Some k -> held := SS.remove k.Lock_table.class_name !held
                | None -> ())
            | _ -> visit it e1);
            visit it e2))
    | Pexp_apply (fn, args) -> (
        match Ast_util.ident_path fn with
        | Some path ->
            let spawnish = is_spawn path || is_pool_fanout path in
            let escapish = is_escape ~base:fi.fi_base path in
            if spawnish || escapish then begin
              List.iter (fun (_, a) -> mark_escapes a) args;
              List.iter
                (fun ((_ : Asttypes.arg_label), a) ->
                  match (strip_constraint a).pexp_desc with
                  | Pexp_fun _ | Pexp_function _ when spawnish ->
                      (* the closure runs on another executor: fresh
                         lockset, its own domain *)
                      let dom = spawn_domain ~loc:e.pexp_loc a in
                      (match head_callee a with
                      | Some [ f ] when SS.mem f fi.fi_defined ->
                          fi.fi_spawns <- (f, dom) :: fi.fi_spawns
                      | _ -> ());
                      let saved_ctx = !cur_ctx and saved_held = !held in
                      cur_ctx := Spawned dom;
                      held := SS.empty;
                      Fun.protect
                        ~finally:(fun () ->
                          cur_ctx := saved_ctx;
                          held := saved_held)
                        (fun () -> visit it a)
                  | Pexp_ident { txt = Longident.Lident f; _ }
                    when spawnish && SS.mem f fi.fi_defined ->
                      let line, _ = Ast_util.line_col e.pexp_loc in
                      fi.fi_spawns <-
                        (f, Printf.sprintf "spawn:%s:%d" fi.fi_base line)
                        :: fi.fi_spawns
                  | _ -> visit it a)
                args
            end
            else begin
              fi.fi_calls <-
                {
                  call_path = path;
                  call_locks = !held;
                  call_ctx = !cur_ctx;
                  call_fn = !cur_fn;
                  call_loc = e.pexp_loc;
                }
                :: fi.fi_calls;
              (match mutator_arg path with
              | Some idx -> (
                  let positional =
                    List.filter_map
                      (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
                      args
                  in
                  match List.nth_opt positional idx with
                  | Some target -> (
                      match (strip_constraint target).pexp_desc with
                      | Pexp_ident { txt = Longident.Lident n; _ } ->
                          touch_ident ~write:true n target.pexp_loc;
                          Hashtbl.replace claimed target.pexp_loc ()
                      | Pexp_field (_, lid) ->
                          let n = Ast_util.field_last lid in
                          if Hashtbl.mem root_names n then begin
                            record_access n ~write:true ~loc:target.pexp_loc;
                            Hashtbl.replace claimed target.pexp_loc ()
                          end
                      | _ -> ())
                  | None -> ())
              | None -> ());
              super.expr it e
            end
        | None -> super.expr it e)
    | Pexp_ident { txt = Longident.Lident n; _ } ->
        if not (Hashtbl.mem claimed e.pexp_loc) then touch_ident n e.pexp_loc;
        super.expr it e
    | Pexp_field (recv, lid) ->
        let n = Ast_util.field_last lid in
        (* a field of a function result is a fresh value (a stats
           snapshot, a freshly built record), not the mutable root that
           happens to share the field name *)
        let receiver_is_value =
          match (strip_constraint recv).pexp_desc with Pexp_apply _ -> true | _ -> false
        in
        if
          (not receiver_is_value)
          && (not (Hashtbl.mem claimed e.pexp_loc))
          && Hashtbl.mem root_names n
        then record_access n ~write:false ~loc:e.pexp_loc;
        super.expr it e
    | Pexp_setfield (recv, lid, v) ->
        let n = Ast_util.field_last lid in
        if Hashtbl.mem root_names n then record_access n ~write:true ~loc:e.pexp_loc;
        visit it recv;
        visit it v
    | _ -> super.expr it e
  in
  let expr it e = visit it e in
  let value_binding it vb =
    (* local bindings (top-level ones are walked explicitly below) *)
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ } ->
        let rhs = strip_constraint vb.pvb_expr in
        if mutable_maker rhs then begin
          let decl, err = guard_of_attributes vb.pvb_attributes in
          Hashtbl.replace local_muts name (vb.pvb_loc, decl, err)
        end
        else (
          match rhs.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> Hashtbl.replace local_funs name rhs
          | _ -> ())
    | _ -> ());
    let is_wrapper =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> String.equal txt "with_lock"
      | _ -> false
    in
    if is_wrapper then begin
      incr wrapper_depth;
      Fun.protect ~finally:(fun () -> decr wrapper_depth) (fun () -> super.value_binding it vb)
    end
    else super.value_binding it vb
  in
  let it = { super with expr; value_binding } in
  (* pre-scan: top-level names, submodules, runs_on seeds, type roots *)
  let rec prescan items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ } ->
                    fi.fi_defined <- SS.add name fi.fi_defined;
                    (match runs_on_of_attributes vb.pvb_attributes with
                    | Some d -> fi.fi_runs_on <- (name, d) :: fi.fi_runs_on
                    | None -> ());
                    (match init_path_of_attributes vb.pvb_attributes with
                    | Some why when String.length why > 0 ->
                        fi.fi_init <- SS.add name fi.fi_init
                    | Some _ | None ->
                        if has_attr "init_path" vb.pvb_attributes then
                          fi.fi_attr_errs <-
                            ( vb.pvb_loc,
                              Printf.sprintf
                                "[@@init_path] on `%s' needs a non-empty string payload \
                                 explaining why it runs pre-publication"
                                name )
                            :: fi.fi_attr_errs);
                    (match requires_of_attributes vb.pvb_attributes with
                    | Some cls when String.length cls > 0 ->
                        if List.mem cls Lock_table.class_names then
                          fi.fi_requires <- (name, cls) :: fi.fi_requires
                        else
                          fi.fi_attr_errs <-
                            ( vb.pvb_loc,
                              Printf.sprintf
                                "[@@requires] on `%s' names unknown lock class `%s'; \
                                 declare it in Lock_table"
                                name cls )
                            :: fi.fi_attr_errs
                    | Some _ | None ->
                        if has_attr "requires" vb.pvb_attributes then
                          fi.fi_attr_errs <-
                            ( vb.pvb_loc,
                              Printf.sprintf
                                "[@@requires] on `%s' needs a non-empty lock-class \
                                 string payload"
                                name )
                            :: fi.fi_attr_errs)
                | _ -> ())
              vbs
        | Pstr_type (_, decls) ->
            List.iter
              (fun (td : type_declaration) ->
                match td.ptype_kind with
                | Ptype_record labels ->
                    List.iter
                      (fun (ld : label_declaration) ->
                        let is_mutable = ld.pld_mutable = Asttypes.Mutable in
                        if is_mutable || container_type ~strict ld.pld_type then begin
                          let decl, err = guard_of_attributes ld.pld_attributes in
                          add_root ~field:true
                            {
                              root_name = ld.pld_name.Location.txt;
                              root_loc = ld.pld_loc;
                              root_attr = decl;
                              root_attr_err = err;
                              root_local = false;
                            }
                        end)
                      labels
                | _ -> ())
              decls
        | Pstr_module mb -> (
            (match mb.pmb_name.Location.txt with
            | Some name -> fi.fi_submodules <- SS.add name fi.fi_submodules
            | None -> ());
            match mb.pmb_expr.pmod_desc with
            | Pmod_structure items -> prescan items
            | _ -> ())
        | _ -> ())
      items
  in
  (* main walk: top-level bindings get their name as context; local
     escape bookkeeping resets per binding *)
  let rec walk items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let name =
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } -> txt
                  | _ -> ""
                in
                (* module-level mutable state is a root *)
                (if mutable_maker vb.pvb_expr then
                   let decl, err = guard_of_attributes vb.pvb_attributes in
                   add_root ~field:false
                     {
                       root_name = name;
                       root_loc = vb.pvb_loc;
                       root_attr = decl;
                       root_attr_err = err;
                       root_local = false;
                     });
                Hashtbl.reset local_muts;
                Hashtbl.reset local_funs;
                Hashtbl.reset escaped_locals;
                cur_fn := name;
                cur_ctx := Top;
                held := SS.empty;
                let is_wrapper = String.equal name "with_lock" in
                if is_wrapper then incr wrapper_depth;
                visit it vb.pvb_expr;
                if is_wrapper then decr wrapper_depth;
                (* escaping locals become roots needing a declaration *)
                Hashtbl.iter
                  (fun lname () ->
                    match Hashtbl.find_opt local_muts lname with
                    | Some (loc, decl, err) ->
                        add_root ~field:false
                          {
                            root_name = name ^ "." ^ lname;
                            root_loc = loc;
                            root_attr = decl;
                            root_attr_err = err;
                            root_local = true;
                          }
                    | None -> ())
                  escaped_locals)
              vbs
        | Pstr_eval (e, _) ->
            cur_fn := "";
            cur_ctx := Top;
            held := SS.empty;
            visit it e
        | Pstr_module mb -> (
            match mb.pmb_expr.pmod_desc with
            | Pmod_structure items -> walk items
            | _ -> ())
        | _ -> ())
      items
  in
  prescan source.Lint_source.structure;
  walk source.Lint_source.structure;
  fi

(* --- whole-program fixpoints -------------------------------------- *)

type domain = Bot | D of string | Mixed

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | D x, D y when String.equal x y -> D x
  | _ -> Mixed

let module_name_of_base base =
  String.capitalize_ascii (Filename.remove_extension base)

let run (sources : Lint_source.t list) : Finding.t list =
  let files =
    List.filter_map
      (fun (s : Lint_source.t) ->
        if Ast_util.path_has_prefix s.Lint_source.effective_path ~prefix:"lib/" then
          Some (analyze_file s)
        else None)
      sources
  in
  let by_module = Hashtbl.create 32 in
  List.iter (fun fi -> Hashtbl.replace by_module (module_name_of_base fi.fi_base) fi) files;
  let fkey fi fn = fi.fi_eff ^ "#" ^ fn in
  (* resolve a call path to a defined function's key *)
  let resolve fi path =
    match path with
    | [ f ] when SS.mem f fi.fi_defined -> Some (fkey fi f)
    | [ m; f ] when SS.mem m fi.fi_submodules && SS.mem f fi.fi_defined ->
        Some (fkey fi f)
    | [ m; f ] -> (
        match Hashtbl.find_opt by_module m with
        | Some target when SS.mem f target.fi_defined -> Some (fkey target f)
        | _ -> None)
    | _ -> None
  in
  (* call sites per callee *)
  let sites : (string, [ `Fn of string | `Spawn ] * SS.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fi ->
      List.iter
        (fun c ->
          match resolve fi c.call_path with
          | Some callee ->
              let base =
                match c.call_ctx with Top -> `Fn (fkey fi c.call_fn) | Spawned _ -> `Spawn
              in
              Hashtbl.add sites callee (base, c.call_locks)
          | None -> ())
        fi.fi_calls;
      List.iter
        (fun (f, _dom) -> Hashtbl.add sites (fkey fi f) (`Spawn, SS.empty))
        fi.fi_spawns)
    files;
  let all_classes = SS.of_list Lock_table.class_names in
  (* [@@init_path] functions per key, and [@@requires] contracts *)
  let init_fns : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let requires : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun fi ->
      SS.iter (fun f -> Hashtbl.replace init_fns (fkey fi f) ()) fi.fi_init;
      List.iter (fun (f, cls) -> Hashtbl.replace requires (fkey fi f) cls) fi.fi_requires)
    files;
  let is_init k = Hashtbl.mem init_fns k in
  let requires_of k =
    match Hashtbl.find_opt requires k with Some c -> SS.singleton c | None -> SS.empty
  in
  (* Entry lockset semantics: sites inside [@@init_path] functions are
     pre-publication and dropped.  A function with no resolved sites at
     all keeps only its [@@requires] contract (pessimistic: an uncalled
     function proves nothing).  A function whose every site is an init
     call is itself transitively pre-publication (⊤, so its own call
     sites are vacuous in callees' intersections).  Otherwise the entry
     is the contract plus the intersection over the live sites. *)
  let entry : (string, SS.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fi ->
      SS.iter
        (fun f ->
          let k = fkey fi f in
          Hashtbl.replace entry k
            (if Hashtbl.mem sites k then all_classes else requires_of k))
        fi.fi_defined)
    files;
  let entry_of k = Option.value (Hashtbl.find_opt entry k) ~default:SS.empty in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 32 do
    changed := false;
    incr iters;
    Hashtbl.iter
      (fun k current ->
        match Hashtbl.find_all sites k with
        | [] -> ()
        | site_list ->
            let live =
              List.filter
                (fun (base, _) ->
                  match base with `Fn caller -> not (is_init caller) | `Spawn -> true)
                site_list
            in
            let next =
              if live = [] then all_classes
              else
                SS.union (requires_of k)
                  (Option.value ~default:SS.empty
                     (List.fold_left
                        (fun acc (base, locks) ->
                          let site_locks =
                            match base with
                            | `Fn caller -> SS.union locks (entry_of caller)
                            | `Spawn -> locks
                          in
                          match acc with
                          | None -> Some site_locks
                          | Some acc -> Some (SS.inter acc site_locks))
                        None live))
            in
            if not (SS.equal next current) then begin
              Hashtbl.replace entry k next;
              changed := true
            end)
      (Hashtbl.copy entry)
  done;
  (* domain fixpoint *)
  let dom : (string, domain) Hashtbl.t = Hashtbl.create 64 in
  let dom_of k = Option.value (Hashtbl.find_opt dom k) ~default:Bot in
  List.iter
    (fun fi ->
      List.iter (fun (f, d) -> Hashtbl.replace dom (fkey fi f) (D d)) fi.fi_runs_on;
      List.iter
        (fun (f, d) ->
          let k = fkey fi f in
          Hashtbl.replace dom k (join (dom_of k) (D d)))
        fi.fi_spawns)
    files;
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 32 do
    changed := false;
    incr iters;
    List.iter
      (fun fi ->
        List.iter
          (fun c ->
            match resolve fi c.call_path with
            | Some callee ->
                let caller_dom =
                  match c.call_ctx with
                  | Spawned d -> D d
                  | Top -> dom_of (fkey fi c.call_fn)
                in
                if caller_dom <> Bot then begin
                  let next = join (dom_of callee) caller_dom in
                  if next <> dom_of callee then begin
                    Hashtbl.replace dom callee next;
                    changed := true
                  end
                end
            | None -> ())
          fi.fi_calls)
      files
  done;
  (* --- checks ----------------------------------------------------- *)
  let out_acc = ref [] in
  let finding fi ~loc ~rule ~allow_key msg =
    let line, col = Ast_util.line_col loc in
    out_acc :=
      Finding.v ~rule ~allow_key ~severity:Finding.Error ~file:fi.fi_path ~line ~col msg
      :: !out_acc
  in
  let decl_of fi root =
    match root.root_attr with
    | Some g -> Some g
    | None ->
        if root.root_local then None
        else Concurrency_model.find ~file:fi.fi_eff ~root:root.root_name
  in
  (* contract attribute problems and call-site contract violations *)
  List.iter
    (fun fi ->
      List.iter
        (fun (loc, msg) ->
          finding fi ~loc ~rule:"races/bad-decl" ~allow_key:"race-decl" msg)
        fi.fi_attr_errs;
      List.iter
        (fun c ->
          match resolve fi c.call_path with
          | Some callee -> (
              match Hashtbl.find_opt requires callee with
              | Some cls ->
                  let caller_init =
                    match c.call_ctx with
                    | Top -> is_init (fkey fi c.call_fn)
                    | Spawned _ -> false
                  in
                  if not caller_init then
                    let effective =
                      match c.call_ctx with
                      | Top -> SS.union c.call_locks (entry_of (fkey fi c.call_fn))
                      | Spawned _ -> c.call_locks
                    in
                    if not (SS.mem cls effective) then
                      finding fi ~loc:c.call_loc ~rule:"races/unguarded-call"
                        ~allow_key:"race-unguarded"
                        (Printf.sprintf
                           "call to `%s' requires holding %s (held: %s%s)"
                           (String.concat "." c.call_path)
                           cls
                           (match SS.elements effective with
                           | [] -> "nothing"
                           | held -> String.concat ", " held)
                           (match c.call_ctx with
                           | Spawned d -> "; runs on " ^ d
                           | Top -> ""))
              | None -> ())
          | None -> ())
        fi.fi_calls)
    files;
  List.iter
    (fun fi ->
      let decls = Hashtbl.create 16 in
      List.iter
        (fun root ->
          (match root.root_attr_err with
          | Some err ->
              finding fi ~loc:root.root_loc ~rule:"races/bad-decl" ~allow_key:"race-decl"
                err
          | None -> ());
          match decl_of fi root with
          | Some g ->
              (match g with
              | Concurrency_model.Guarded_by cls | Concurrency_model.Guarded_writes cls
                ->
                  if not (List.mem cls Lock_table.class_names) then
                    finding fi ~loc:root.root_loc ~rule:"races/bad-decl"
                      ~allow_key:"race-decl"
                      (Printf.sprintf
                         "`%s' names unknown lock class `%s'; declare it in Lock_table"
                         root.root_name cls)
              | _ -> ());
              Hashtbl.replace decls root.root_name g
          | None ->
              finding fi ~loc:root.root_loc ~rule:"races/undeclared-root"
                ~allow_key:"race-undeclared"
                (Printf.sprintf
                   "shared mutable root `%s' has no concurrency declaration; add \
                    [@guarded_by \"<class>\"], [@domain_confined \"<domain>\"] or \
                    [@atomic_ok \"<why>\"], or an entry in Concurrency_model \
                    (DESIGN.md \u{00a7}16)"
                   root.root_name))
        fi.fi_roots;
      (* declarations whose root vanished (skipped for fixture files,
         which pretend to be real paths without carrying their state) *)
      if not fi.fi_fixture then
        List.iter
          (fun (name, _) ->
            if not (List.exists (fun r -> String.equal r.root_name name) fi.fi_roots)
            then
              finding fi ~loc:Location.none ~rule:"races/stale-decl"
                ~allow_key:"race-stale-decl"
                (Printf.sprintf
                   "Concurrency_model declares `%s' for %s but no such mutable root \
                    exists; delete the entry"
                   name fi.fi_eff))
          (Concurrency_model.entries_for fi.fi_eff);
      List.iter
        (fun a ->
          (* accesses inside an [@@init_path] function are pre-publication *)
          let exempt =
            match a.acc_ctx with
            | Top -> is_init (fkey fi a.acc_fn)
            | Spawned _ -> false
          in
          if exempt then ()
          else
          match Hashtbl.find_opt decls a.acc_root with
          | None -> ()
          | Some (Concurrency_model.Atomic_ok _) -> ()
          | Some (Concurrency_model.Guarded_by cls)
          | Some (Concurrency_model.Guarded_writes cls) -> (
              let check_needed =
                match Hashtbl.find_opt decls a.acc_root with
                | Some (Concurrency_model.Guarded_writes _) -> a.acc_write
                | _ -> true
              in
              if check_needed then
                let effective =
                  match a.acc_ctx with
                  | Top -> SS.union a.acc_locks (entry_of (fkey fi a.acc_fn))
                  | Spawned _ -> a.acc_locks
                in
                if not (SS.mem cls effective) then
                  finding fi ~loc:a.acc_loc ~rule:"races/unguarded-access"
                    ~allow_key:"race-unguarded"
                    (Printf.sprintf
                       "%s of `%s' without holding %s (held: %s%s)"
                       (if a.acc_write then "write" else "read")
                       a.acc_root cls
                       (match SS.elements effective with
                       | [] -> "nothing"
                       | held -> String.concat ", " held)
                       (match a.acc_ctx with
                       | Spawned d -> "; runs on " ^ d
                       | Top -> "")))
          | Some (Concurrency_model.Domain_confined d) ->
              let vdom =
                match a.acc_ctx with
                | Spawned d' -> D d'
                | Top -> dom_of (fkey fi a.acc_fn)
              in
              let violation =
                match vdom with
                | Mixed -> true
                | D d' ->
                    if String.equal d "caller" then
                      (* caller-owned state must never be touched from a
                         spawned executor at all *)
                      match a.acc_ctx with Spawned _ -> true | Top -> false
                    else not (String.equal d' d)
                | Bot -> false
              in
              if violation then
                finding fi ~loc:a.acc_loc ~rule:"races/confinement-escape"
                  ~allow_key:"race-confinement"
                  (Printf.sprintf
                     "`%s' is confined to domain %s but this access runs on %s"
                     a.acc_root d
                     (match vdom with
                     | Mixed -> "multiple domains"
                     | D d' -> d'
                     | Bot -> "an unknown domain")))
        fi.fi_accesses)
    files;
  List.sort Finding.order !out_acc
