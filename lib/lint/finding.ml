(* A structured lint finding: stable rule id, suppression key, source
   position, severity and a human message.  Rule ids are
   "<pass>/<check>"; the suppression key is the token a suppression
   comment names after its "allow-" prefix. *)

type severity = Error | Warning | Info

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

type t = {
  rule : string;
  allow_key : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~rule ~allow_key ~severity ~file ~line ~col message =
  { rule; allow_key; severity; file; line; col; message }

let order a b =
  compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" f.file f.line f.col
    (severity_name f.severity) f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"severity\":\"%s\",\"rule\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.file) f.line f.col (severity_name f.severity) (json_escape f.rule)
    (json_escape f.message)
