(* The checked-in concurrency model: every shared mutable root in lib/
   is declared here (or carries an inline attribute), naming the lock
   class that guards it, the domain it is confined to, or the reason
   unsynchronised access is sound.  [Pass_races] inventories the tree
   and reports any root this table misses — and any entry whose root
   no longer exists — so the model cannot rot in either direction.
   DESIGN.md §16 is the prose version of this table.

   Declaration kinds:

   - [Guarded_by cls]: every access (read or write) holds the lock
     class [cls] from [Lock_table], lexically or via every call site.
   - [Guarded_writes cls]: writes hold [cls]; reads are lock-free by
     a single-writer publication argument (B+tree readers).
   - [Domain_confined d]: only code running on domain [d] ("evloop")
     or, for ["caller"], on whichever single executor owns the value,
     may touch the root.  Accesses from unknown (pre-publication)
     contexts are allowed; the runtime witness covers those.
   - [Atomic_ok why]: unsynchronised access is sound for the stated
     reason (Atomic.t cells, write-once publication, defensive
     copies).  The reason is mandatory.

   Inline attributes override this table:
     [@@guarded_by "pool-queue"]      on a module-level binding
     [@guarded_by "pool-queue"]       on a record field (after its type)
     [@@domain_confined "evloop"]  /  [@@atomic_ok "why"]
     [let[@atomic_ok "why"] x = ref ... in ...] on an escaping local
     [@@runs_on "evloop"]             seeds a function's domain. *)

type guard =
  | Guarded_by of string
  | Guarded_writes of string
  | Domain_confined of string
  | Atomic_ok of string

(* Functions whose function arguments run on another executor: the
   closure (or the function passed by name) escapes the caller's
   domain, so the race pass analyzes it with an empty lockset and its
   own domain identity. *)
let spawn_fns = [ [ "Domain"; "spawn" ]; [ "Thread"; "create" ] ]

(* Pool.map_array/map_list task closures run on worker domains. *)
let pool_fns = [ [ "Pool"; "map_array" ]; [ "Pool"; "map_list" ] ]

(* Per-file escape points: a closure passed here outlives the call and
   runs on another executor even though the callee is not a spawn
   primitive (the pool's task queue). *)
let escape_fns = [ ("pool.ml", [ "Queue"; "add" ]) ]

(* Files whose [array]/[bytes]-typed record fields join the inventory.
   Everywhere else only ref/Hashtbl/Queue/Buffer/Atomic fields do:
   array payloads in the math layers are immutable by convention and
   never cross an executor. *)
let strict_container_files =
  [
    "pool.ml";
    "pager.ml";
    "page.ml";
    "node_table.ml";
    "btree.ml";
    "server_filter.ml";
    "server.ml";
    "evloop.ml";
    "histogram.ml";
    "race_check.ml";
  ]

(* The guarded-by table, keyed (normalized file path, root name).
   Inline attributes in the showcase files (pool, rpc server, the
   witness itself) carry their own declarations; everything declared
   here instead keeps the annotation burden off stable code. *)
let table : ((string * string) * guard) list =
  [
    (* --- lib/core/pool.ml: the evaluation worker pool -------------- *)
    (("lib/core/pool.ml", "queue"), Guarded_by "pool-queue");
    (("lib/core/pool.ml", "closed"), Guarded_by "pool-queue");
    (("lib/core/pool.ml", "remaining"), Guarded_by "pool-queue");
    ( ("lib/core/pool.ml", "domains"),
      Atomic_ok "written once by create before the pool is shared" );
    (* --- lib/rpc/evloop.ml: poll interest set, loop-domain only ---- *)
    (("lib/rpc/evloop.ml", "fds"), Domain_confined "evloop");
    (("lib/rpc/evloop.ml", "events"), Domain_confined "evloop");
    (("lib/rpc/evloop.ml", "revents"), Domain_confined "evloop");
    (("lib/rpc/evloop.ml", "count"), Domain_confined "evloop");
    (("lib/rpc/evloop.ml", "index"), Domain_confined "evloop");
    (("lib/rpc/evloop.ml", "ready_fds"), Domain_confined "evloop");
    (("lib/rpc/evloop.ml", "ready_evs"), Domain_confined "evloop");
    (* --- lib/core/server_filter.ml: the server cursor table --------
       The lock guards the table and its accounting only; a cursor's
       scan state has single-owner affinity (one in-flight request per
       cursor, enforced by the protocol and the runtime witness). *)
    (("lib/core/server_filter.ml", "cursors"), Guarded_by "cursor-table");
    (("lib/core/server_filter.ml", "next_cursor"), Guarded_by "cursor-table");
    (("lib/core/server_filter.ml", "evicted_total"), Guarded_by "cursor-table");
    (("lib/core/server_filter.ml", "expired_total"), Guarded_by "cursor-table");
    (("lib/core/server_filter.ml", "last_used"), Guarded_by "cursor-table");
    (("lib/core/server_filter.ml", "state"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "pending_parents"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "buffered_rows"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "current_range"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "pending_ranges"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "next_calls"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "batches"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "rows"), Domain_confined "caller");
    (("lib/core/server_filter.ml", "resp_bytes"), Domain_confined "caller");
    (* --- lib/shard/router.ml: same cursor-table discipline --------- *)
    (("lib/shard/router.ml", "cursors"), Guarded_by "router-cursors");
    (("lib/shard/router.ml", "next_cursor"), Guarded_by "router-cursors");
    (("lib/shard/router.ml", "ticks"), Guarded_by "router-cursors");
    (("lib/shard/router.ml", "last_used"), Guarded_by "router-cursors");
    (("lib/shard/router.ml", "members"), Domain_confined "caller");
    (("lib/shard/router.ml", "remote"), Domain_confined "caller");
    (("lib/shard/router.ml", "alive"), Domain_confined "caller");
    (("lib/shard/router.ml", "lambdas"), Domain_confined "caller");
    (("lib/shard/router.ml", "opened"), Domain_confined "caller");
    (("lib/shard/router.ml", "exhausted"), Domain_confined "caller");
    (("lib/shard/router.ml", "merged"), Domain_confined "caller");
    (("lib/shard/router.ml", "skip"), Domain_confined "caller");
    (("lib/shard/router.ml", "pending"), Domain_confined "caller");
    (("lib/shard/router.ml", "active"), Domain_confined "caller");
    (("lib/shard/router.ml", "l_shard"), Domain_confined "caller");
    (("lib/shard/router.ml", "l_remote"), Domain_confined "caller");
    (("lib/shard/router.ml", "l_emitted"), Domain_confined "caller");
    (("lib/shard/router.ml", "l_done"), Domain_confined "caller");
    (* --- lib/store: single-writer B+tree under the table writer lock.
       Readers are lock-free against published structure, so structural
       fields are Guarded_writes; the interprocedural entry-lockset
       proves the write paths reach them only under write_lock. *)
    (("lib/store/node_table.ml", "rows"), Guarded_writes "table-writer");
    (("lib/store/node_table.ml", "fill_page"), Guarded_writes "table-writer");
    (("lib/store/node_table.ml", "wal"), Guarded_writes "table-writer");
    (("lib/store/node_table.ml", "since_checkpoint"), Guarded_writes "table-writer");
    ( ("lib/store/node_table.ml", "recovery"),
      Atomic_ok "set once by open_file before the table is shared" );
    (("lib/store/btree.ml", "lkeys"), Guarded_writes "table-writer");
    (("lib/store/btree.ml", "ln"), Guarded_writes "table-writer");
    (("lib/store/btree.ml", "next"), Guarded_writes "table-writer");
    (("lib/store/btree.ml", "ikeys"), Guarded_writes "table-writer");
    (("lib/store/btree.ml", "icount"), Guarded_writes "table-writer");
    (("lib/store/btree.ml", "kids"), Guarded_writes "table-writer");
    (("lib/store/btree.ml", "root"), Guarded_writes "table-writer");
    (("lib/store/btree.ml", "count"), Guarded_writes "table-writer");
    (("lib/store/page.ml", "data"), Guarded_writes "table-writer");
    (("lib/store/page.ml", "count"), Guarded_writes "table-writer");
    (("lib/store/page.ml", "free_off"), Guarded_writes "table-writer");
    ( ("lib/store/page.ml", "share"),
      Atomic_ok "row payloads are written once at insert and immutable after" );
    (* --- lib/store/pager.ml: striped page cache -------------------- *)
    (("lib/store/pager.ml", "cache"), Guarded_by "pager-stripe");
    (("lib/store/pager.ml", "clock"), Guarded_by "pager-stripe");
    (("lib/store/pager.ml", "hits"), Guarded_by "pager-stripe");
    (("lib/store/pager.ml", "misses"), Guarded_by "pager-stripe");
    (("lib/store/pager.ml", "evictions"), Guarded_by "pager-stripe");
    (("lib/store/pager.ml", "dirty"), Guarded_by "pager-stripe");
    (("lib/store/pager.ml", "last_used"), Guarded_by "pager-stripe");
    (("lib/store/pager.ml", "npages"), Guarded_by "pager-meta");
    ( ("lib/store/pager.ml", "stripes"),
      Atomic_ok "stripe array is built by create and never replaced" );
    ( ("lib/store/pager.ml", "barrier"),
      Atomic_ok "checkpoint quiesce counter; transitions happen under meta" );
    ( ("lib/store/pager.ml", "enabled"),
      Atomic_ok "read from SSDB_LOCK_CHECK once at startup, constant after" );
    (("lib/store/pager.ml", "held"), Guarded_by "lock-witness");
    (* --- lib/store/wal.ml: append path serialised on the fd -------- *)
    (("lib/store/wal.ml", "entries"), Guarded_by "wal-append");
    (("lib/store/wal.ml", "lsn"), Guarded_by "wal-append");
    ( ("lib/store/store_io.ml", "current"),
      Atomic_ok "test seam; swapped only before concurrent sections start" );
    ( ("lib/store/store_io.ml", "failpoint"),
      Atomic_ok "test seam; installed before concurrent sections start" );
    ( ("lib/store/store_io.ml", "remaining"),
      Atomic_ok "test seam; decremented on the single writer path" );
    (* --- lib/obs: observability ------------------------------------ *)
    (("lib/obs/histogram.ml", "sum"), Guarded_by "obs-histogram");
    (("lib/obs/histogram.ml", "count"), Guarded_by "obs-histogram");
    (("lib/obs/histogram.ml", "max_value"), Guarded_by "obs-histogram");
    (("lib/obs/histogram.ml", "counts"), Guarded_by "obs-histogram");
    ( ("lib/obs/histogram.ml", "bounds"),
      Atomic_ok "copied at create, never mutated" );
    ( ("lib/obs/histogram.ml", "default_bounds"),
      Atomic_ok "module constant, never mutated" );
    (("lib/obs/histogram.ml", "snap_bounds"), Domain_confined "caller");
    (("lib/obs/histogram.ml", "cumulative"), Domain_confined "caller");
    (("lib/obs/registry.ml", "families"), Guarded_by "obs-registry");
    ( ("lib/obs/registry.ml", "children"),
      Atomic_ok
        "append-only list updated under the registry lock; the lock-free render \
         iteration can at worst miss a brand-new child, never see a torn cell" );
    (("lib/obs/trace.ml", "span_counter"), Atomic_ok "Atomic.t counter");
    (("lib/obs/trace.ml", "ambient"), Guarded_by "trace-ambient");
    (("lib/obs/trace.ml", "ring"), Guarded_by "trace-ring");
    (("lib/obs/trace.ml", "ring_next"), Guarded_by "trace-ring");
    (("lib/obs/trace.ml", "log_channel"), Guarded_by "trace-log");
    (("lib/obs/events.ml", "current_level"), Atomic_ok "Atomic.t level cell");
    (("lib/obs/events.ml", "sink"), Guarded_by "events-sink");
    ( ("lib/obs/metrics_http.ml", "running"),
      Atomic_ok "bool Atomic.t polled by the accept loop; stop uses exchange" );
    (("lib/obs/metrics_http.ml", "threads"), Guarded_by "metrics-http");
    ( ("lib/obs/metrics_http.ml", "accept_thread"),
      Atomic_ok "written once by serve; joined by stop after running flips" );
    (* --- lib/obs/race_check.ml: the lockset witness's own state ---- *)
    ( ("lib/obs/race_check.ml", "enabled_flag"),
      Atomic_ok "bool Atomic.t; flipped by tests before concurrent sections" );
    (("lib/obs/race_check.ml", "held"), Guarded_by "race-witness");
    (("lib/obs/race_check.ml", "state"), Guarded_by "race-witness");
    (("lib/obs/race_check.ml", "report_acc"), Guarded_by "race-witness");
    (("lib/obs/race_check.ml", "owner"), Guarded_by "race-witness");
    (("lib/obs/race_check.ml", "cset"), Guarded_by "race-witness");
    (("lib/obs/race_check.ml", "written_shared"), Guarded_by "race-witness");
    (("lib/obs/race_check.ml", "reported"), Guarded_by "race-witness");
  ]

(* Whole-file defaults for the sequential layers: parser/builder/client
   state owned by a single caller at a time.  An explicit table entry
   or inline attribute always wins over the default. *)
let file_defaults : (string * guard) list =
  [
    ("lib/core/encode.ml", Domain_confined "caller");
    ("lib/core/lru.ml", Domain_confined "caller");
    ("lib/core/mapping.ml", Domain_confined "caller");
    ("lib/core/metrics.ml", Domain_confined "caller");
    ("lib/core/operator.ml", Domain_confined "caller");
    ("lib/core/reference.ml", Domain_confined "caller");
    ("lib/prg/splitmix64.ml", Domain_confined "caller");
    ("lib/rpc/wire.ml", Domain_confined "caller");
    ("lib/rpc/transport.ml", Domain_confined "caller");
    ("lib/xml/dtd.ml", Domain_confined "caller");
    ("lib/xml/sax.ml", Domain_confined "caller");
    ("lib/xml/tree.ml", Domain_confined "caller");
    ("lib/xpath/parser.ml", Domain_confined "caller");
    ("lib/lint/lint_source.ml", Domain_confined "caller");
    ("lib/lint/pass_races.ml", Domain_confined "caller");
  ]

let find ~file ~root =
  match List.assoc_opt (file, root) table with
  | Some g -> Some g
  | None -> List.assoc_opt file file_defaults

let entries_for file =
  List.filter_map
    (fun ((f, root), guard) ->
      if String.equal f file then Some (root, guard) else None)
    table
