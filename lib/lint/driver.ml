(* The pass registry and the tree walker: collect .ml files, run every
   pass, apply suppression comments, and render the report.

   Two kinds of pass: per-file passes see one parsed source at a time;
   program passes ([Pass_races]) see every parsed source at once, so
   they can resolve calls across files.  [--pass NAME] restricts the
   run to one pass of either kind; stale-suppression accounting only
   happens on full runs, where every pass that could use a suppression
   has had its chance. *)

type pass = { pass_name : string; run : Lint_source.t -> Finding.t list }

type program_pass = {
  pp_name : string;
  run_program : Lint_source.t list -> Finding.t list;
}

let passes =
  [
    { pass_name = "secret-flow"; run = Pass_secret_flow.run };
    { pass_name = "lock-order"; run = Pass_lock_order.run };
    { pass_name = "banned-api"; run = Pass_banned.run };
    { pass_name = "accounting"; run = Pass_accounting.run };
  ]

let program_passes = [ { pp_name = "races"; run_program = Pass_races.run } ]

let pass_names =
  List.map (fun p -> p.pass_name) passes @ List.map (fun p -> p.pp_name) program_passes

type suppressed = { finding : Finding.t; reason : string }

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : suppressed list;
  unused_allows : (string * int * string) list;  (** file, line, key *)
  files_scanned : int;
}

let is_ml path = Filename.check_suffix path ".ml"

let rec collect ~include_fixtures path acc =
  if Sys.is_directory path then
    let base = Filename.basename path in
    if
      String.equal base "_build"
      || String.equal base ".git"
      || ((not include_fixtures) && String.equal base "lint_fixtures")
    then acc
    else
      Array.fold_left
        (fun acc entry -> collect ~include_fixtures (Filename.concat path entry) acc)
        acc
        (let entries = Sys.readdir path in
         Array.sort compare entries;
         entries)
  else if is_ml path then path :: acc
  else acc

let lint_files ?passes:selected paths : report =
  let files = List.rev paths in
  let enabled name =
    match selected with None -> true | Some names -> List.mem name names
  in
  let full_run = selected = None in
  let all_findings = ref [] in
  let suppressed = ref [] in
  let unused = ref [] in
  let scanned = ref 0 in
  let sources = ref [] in
  let sift source raw =
    List.iter
      (fun f ->
        match Lint_source.suppress_for source f with
        | Some reason -> suppressed := { finding = f; reason } :: !suppressed
        | None -> all_findings := f :: !all_findings)
      raw
  in
  List.iter
    (fun file ->
      incr scanned;
      match Lint_source.load file with
      | Error f -> all_findings := f :: !all_findings
      | Ok source ->
          sources := source :: !sources;
          let raw =
            List.concat_map
              (fun p -> if enabled p.pass_name then p.run source else [])
              passes
          in
          sift source raw)
    files;
  let sources = List.rev !sources in
  (* program passes: findings come back tagged with their real file
     path; route each through that file's suppressions *)
  let by_path = Hashtbl.create 64 in
  List.iter (fun (s : Lint_source.t) -> Hashtbl.replace by_path s.Lint_source.path s) sources;
  List.iter
    (fun pp ->
      if enabled pp.pp_name then
        List.iter
          (fun (f : Finding.t) ->
            match Hashtbl.find_opt by_path f.Finding.file with
            | Some source -> sift source [ f ]
            | None -> all_findings := f :: !all_findings)
          (pp.run_program sources))
    program_passes;
  (* suppression hygiene, only meaningful when every pass has run *)
  if full_run then
    List.iter
      (fun (source : Lint_source.t) ->
        List.iter
          (fun (s : Lint_source.suppression) ->
            unused :=
              (source.Lint_source.path, s.Lint_source.supp_line, s.Lint_source.key)
              :: !unused)
          (Lint_source.unused_suppressions source);
        List.iter
          (fun (s : Lint_source.structured) ->
            let msg =
              if s.Lint_source.s_malformed then
                "[@lint.suppress] payload is malformed; expected \
                 [@lint.suppress \"<key>\" ~reason:\"<why>\"]"
              else
                Printf.sprintf
                  "[@lint.suppress \"%s\"] suppresses nothing; the finding it excused \
                   is gone, delete it"
                  s.Lint_source.s_key
            in
            all_findings :=
              Finding.v ~rule:"lint/stale-suppression" ~allow_key:"stale-suppression"
                ~severity:Finding.Error ~file:source.Lint_source.path
                ~line:s.Lint_source.s_line ~col:0 msg
              :: !all_findings)
          (Lint_source.stale_structured source))
      sources;
  {
    findings = List.sort Finding.order !all_findings;
    suppressed =
      List.sort (fun a b -> Finding.order a.finding b.finding) !suppressed;
    unused_allows = List.sort compare !unused;
    files_scanned = !scanned;
  }

(* Lint files and/or directory trees.  Paths given explicitly are
   always linted, even fixture files; directory recursion skips
   [lint_fixtures] (and _build) unless [include_fixtures]. *)
let lint_paths ?(include_fixtures = false) ?passes paths : report =
  let files =
    List.concat_map
      (fun p ->
        if Sys.file_exists p && Sys.is_directory p then
          List.rev (collect ~include_fixtures p [])
        else [ p ])
      paths
  in
  lint_files ?passes files

let error_count report =
  List.length
    (List.filter (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
       report.findings)

let exit_code report = if error_count report > 0 then 1 else 0

let print_text out report =
  List.iter (fun f -> Printf.fprintf out "%s\n" (Finding.to_text f)) report.findings;
  if report.suppressed <> [] then begin
    Printf.fprintf out "\nSuppressed findings (every allow- needs a reason):\n";
    List.iter
      (fun s ->
        Printf.fprintf out "  %s\n    allowed: %s\n"
          (Finding.to_text s.finding)
          (if String.equal s.reason "" then "(no reason given!)" else s.reason))
      report.suppressed
  end;
  List.iter
    (fun (file, line, key) ->
      Printf.fprintf out "%s:%d:0: [warning lint/unused-allow] allow-%s suppresses nothing\n"
        file line key)
    report.unused_allows;
  Printf.fprintf out "%d file(s) scanned, %d error(s), %d warning(s), %d suppressed\n"
    report.files_scanned (error_count report)
    (List.length
       (List.filter
          (fun (f : Finding.t) -> f.Finding.severity = Finding.Warning)
          report.findings))
    (List.length report.suppressed)

let print_json out report =
  let fields = List.map Finding.to_json report.findings in
  let supp =
    List.map
      (fun s ->
        Printf.sprintf "{\"finding\":%s,\"reason\":\"%s\"}" (Finding.to_json s.finding)
          (Finding.json_escape s.reason))
      report.suppressed
  in
  Printf.fprintf out
    "{\"files_scanned\":%d,\"errors\":%d,\"findings\":[%s],\"suppressed\":[%s]}\n"
    report.files_scanned (error_count report) (String.concat "," fields)
    (String.concat "," supp)

(* SARIF 2.1.0, the minimal profile code-scanning UIs ingest: one run,
   one rule entry per distinct rule id, one result per finding. *)
let print_sarif out report =
  let esc = Finding.json_escape in
  let rules = ref [] in
  List.iter
    (fun (f : Finding.t) ->
      if not (List.mem f.Finding.rule !rules) then rules := f.Finding.rule :: !rules)
    report.findings;
  let rules = List.rev !rules in
  let rule_index r =
    let rec go i = function
      | [] -> 0
      | x :: rest -> if String.equal x r then i else go (i + 1) rest
    in
    go 0 rules
  in
  let rule_objs =
    List.map (fun r -> Printf.sprintf "{\"id\":\"%s\"}" (esc r)) rules
  in
  let results =
    List.map
      (fun (f : Finding.t) ->
        let level =
          match f.Finding.severity with
          | Finding.Error -> "error"
          | Finding.Warning -> "warning"
          | Finding.Info -> "note"
        in
        Printf.sprintf
          "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
          (esc f.Finding.rule) (rule_index f.Finding.rule) level
          (esc f.Finding.message) (esc f.Finding.file)
          (max 1 f.Finding.line)
          (max 1 (f.Finding.col + 1)))
      report.findings
  in
  Printf.fprintf out
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"ssdb_lint\",\"informationUri\":\"https://example.invalid/ssdb\",\"rules\":[%s]}},\"results\":[%s]}]}\n"
    (String.concat "," rule_objs)
    (String.concat "," results)
