(* The pass registry and the tree walker: collect .ml files, run every
   pass, apply suppression comments, and render the report. *)

type pass = { pass_name : string; run : Lint_source.t -> Finding.t list }

let passes =
  [
    { pass_name = "secret-flow"; run = Pass_secret_flow.run };
    { pass_name = "lock-order"; run = Pass_lock_order.run };
    { pass_name = "banned-api"; run = Pass_banned.run };
    { pass_name = "accounting"; run = Pass_accounting.run };
  ]

type suppressed = { finding : Finding.t; reason : string }

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : suppressed list;
  unused_allows : (string * int * string) list;  (** file, line, key *)
  files_scanned : int;
}

let is_ml path = Filename.check_suffix path ".ml"

let rec collect ~include_fixtures path acc =
  if Sys.is_directory path then
    let base = Filename.basename path in
    if
      String.equal base "_build"
      || String.equal base ".git"
      || ((not include_fixtures) && String.equal base "lint_fixtures")
    then acc
    else
      Array.fold_left
        (fun acc entry -> collect ~include_fixtures (Filename.concat path entry) acc)
        acc
        (let entries = Sys.readdir path in
         Array.sort compare entries;
         entries)
  else if is_ml path then path :: acc
  else acc

let lint_files paths : report =
  let files = List.rev paths in
  let all_findings = ref [] in
  let suppressed = ref [] in
  let unused = ref [] in
  let scanned = ref 0 in
  List.iter
    (fun file ->
      incr scanned;
      match Lint_source.load file with
      | Error f -> all_findings := f :: !all_findings
      | Ok source ->
          let raw = List.concat_map (fun p -> p.run source) passes in
          List.iter
            (fun f ->
              match Lint_source.suppress_for source f with
              | Some reason -> suppressed := { finding = f; reason } :: !suppressed
              | None -> all_findings := f :: !all_findings)
            raw;
          List.iter
            (fun (s : Lint_source.suppression) ->
              unused :=
                (source.Lint_source.path, s.Lint_source.supp_line, s.Lint_source.key)
                :: !unused)
            (Lint_source.unused_suppressions source))
    files;
  {
    findings = List.sort Finding.order !all_findings;
    suppressed =
      List.sort (fun a b -> Finding.order a.finding b.finding) !suppressed;
    unused_allows = List.sort compare !unused;
    files_scanned = !scanned;
  }

(* Lint files and/or directory trees.  Paths given explicitly are
   always linted, even fixture files; directory recursion skips
   [lint_fixtures] (and _build) unless [include_fixtures]. *)
let lint_paths ?(include_fixtures = false) paths : report =
  let files =
    List.concat_map
      (fun p ->
        if Sys.file_exists p && Sys.is_directory p then
          List.rev (collect ~include_fixtures p [])
        else [ p ])
      paths
  in
  lint_files files

let error_count report =
  List.length
    (List.filter (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
       report.findings)

let exit_code report = if error_count report > 0 then 1 else 0

let print_text out report =
  List.iter (fun f -> Printf.fprintf out "%s\n" (Finding.to_text f)) report.findings;
  if report.suppressed <> [] then begin
    Printf.fprintf out "\nSuppressed findings (every allow- needs a reason):\n";
    List.iter
      (fun s ->
        Printf.fprintf out "  %s\n    allowed: %s\n"
          (Finding.to_text s.finding)
          (if String.equal s.reason "" then "(no reason given!)" else s.reason))
      report.suppressed
  end;
  List.iter
    (fun (file, line, key) ->
      Printf.fprintf out "%s:%d:0: [warning lint/unused-allow] allow-%s suppresses nothing\n"
        file line key)
    report.unused_allows;
  Printf.fprintf out "%d file(s) scanned, %d error(s), %d warning(s), %d suppressed\n"
    report.files_scanned (error_count report)
    (List.length
       (List.filter
          (fun (f : Finding.t) -> f.Finding.severity = Finding.Warning)
          report.findings))
    (List.length report.suppressed)

let print_json out report =
  let fields = List.map Finding.to_json report.findings in
  let supp =
    List.map
      (fun s ->
        Printf.sprintf "{\"finding\":%s,\"reason\":\"%s\"}" (Finding.to_json s.finding)
          (Finding.json_escape s.reason))
      report.suppressed
  in
  Printf.fprintf out
    "{\"files_scanned\":%d,\"errors\":%d,\"findings\":[%s],\"suppressed\":[%s]}\n"
    report.files_scanned (error_count report) (String.concat "," fields)
    (String.concat "," supp)
