type occurrence = Once | Optional | Zero_or_more | One_or_more

type particle = { body : body; occ : occurrence }
and body = Name of string | Seq of particle list | Choice of particle list

type content =
  | Empty
  | Any
  | Pcdata
  | Mixed of string list
  | Children of particle

type t = { order : string list; models : (string, content) Hashtbl.t }

exception Dtd_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Dtd_error msg)) fmt

(* --- content model parsing (recursive descent over a string) --- *)

type cursor = { src : string; mutable pos : int }

let peek_c cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && (match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    cur.pos <- cur.pos + 1
  done

let eat cur c =
  skip_ws cur;
  match peek_c cur with
  | Some x when x = c -> cur.pos <- cur.pos + 1
  | Some x -> fail "expected '%c', got '%c' in content model %S" c x cur.src
  | None -> fail "expected '%c' at end of content model %S" c cur.src

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name cur =
  skip_ws cur;
  let start = cur.pos in
  while cur.pos < String.length cur.src && is_name_char cur.src.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail "expected a name in content model %S" cur.src;
  String.sub cur.src start (cur.pos - start)

let read_occurrence cur =
  match peek_c cur with
  | Some '?' ->
      cur.pos <- cur.pos + 1;
      Optional
  | Some '*' ->
      cur.pos <- cur.pos + 1;
      Zero_or_more
  | Some '+' ->
      cur.pos <- cur.pos + 1;
      One_or_more
  | Some _ | None -> Once

let rec read_cp cur =
  skip_ws cur;
  let body =
    match peek_c cur with
    | Some '(' -> read_group cur
    | Some _ -> Name (read_name cur)
    | None -> fail "unexpected end of content model %S" cur.src
  in
  { body; occ = read_occurrence cur }

and read_group cur =
  eat cur '(';
  let first = read_cp cur in
  skip_ws cur;
  match peek_c cur with
  | Some '|' ->
      let rec alts acc =
        skip_ws cur;
        match peek_c cur with
        | Some '|' ->
            cur.pos <- cur.pos + 1;
            alts (read_cp cur :: acc)
        | Some ')' ->
            cur.pos <- cur.pos + 1;
            List.rev acc
        | Some c -> fail "expected '|' or ')', got '%c' in %S" c cur.src
        | None -> fail "unterminated choice in %S" cur.src
      in
      Choice (alts [ first ])
  | Some ',' ->
      let rec parts acc =
        skip_ws cur;
        match peek_c cur with
        | Some ',' ->
            cur.pos <- cur.pos + 1;
            parts (read_cp cur :: acc)
        | Some ')' ->
            cur.pos <- cur.pos + 1;
            List.rev acc
        | Some c -> fail "expected ',' or ')', got '%c' in %S" c cur.src
        | None -> fail "unterminated sequence in %S" cur.src
      in
      Seq (parts [ first ])
  | Some ')' ->
      cur.pos <- cur.pos + 1;
      Seq [ first ]
  | Some c -> fail "expected '|', ',' or ')', got '%c' in %S" c cur.src
  | None -> fail "unterminated group in %S" cur.src

let parse_content spec =
  let spec = String.trim spec in
  if String.equal spec "EMPTY" then Empty
  else if String.equal spec "ANY" then Any
  else begin
    let cur = { src = spec; pos = 0 } in
    skip_ws cur;
    (* Mixed content: ( #PCDATA ... ) *)
    let probe = { src = spec; pos = cur.pos } in
    let is_mixed =
      match peek_c probe with
      | Some '(' ->
          probe.pos <- probe.pos + 1;
          skip_ws probe;
          probe.pos + 7 <= String.length spec
          && String.equal (String.sub spec probe.pos 7) "#PCDATA"
      | _ -> false
    in
    if is_mixed then begin
      eat cur '(';
      skip_ws cur;
      cur.pos <- cur.pos + 7;
      let rec names acc =
        skip_ws cur;
        match peek_c cur with
        | Some '|' ->
            cur.pos <- cur.pos + 1;
            names (read_name cur :: acc)
        | Some ')' ->
            cur.pos <- cur.pos + 1;
            List.rev acc
        | Some c -> fail "expected '|' or ')' in mixed content, got '%c'" c
        | None -> fail "unterminated mixed content %S" spec
      in
      let alternatives = names [] in
      let trailing_star =
        match peek_c cur with
        | Some '*' ->
            cur.pos <- cur.pos + 1;
            true
        | _ -> false
      in
      match (alternatives, trailing_star) with
      | [], _ -> Pcdata
      | names, true -> Mixed names
      | _ :: _, false -> fail "mixed content with elements requires a trailing '*': %S" spec
    end
    else begin
      let p = read_cp cur in
      skip_ws cur;
      if cur.pos <> String.length spec then
        fail "trailing garbage in content model %S" spec;
      Children p
    end
  end

(* --- declaration scanning --- *)

let parse text =
  let models = Hashtbl.create 97 in
  let order = ref [] in
  let len = String.length text in
  let rec scan i =
    if i >= len then Ok ()
    else if i + 3 < len && String.sub text i 4 = "<!--" then begin
      (* comment *)
      match String.index_from_opt text (i + 4) '>' with
      | _ -> (
          let rec find_end j =
            if j + 2 >= len then Error "unterminated comment in DTD"
            else if String.sub text j 3 = "-->" then Ok (j + 3)
            else find_end (j + 1)
          in
          match find_end (i + 4) with Ok j -> scan j | Error e -> Error e)
    end
    else if i + 9 <= len && String.sub text i 9 = "<!ELEMENT" then begin
      match String.index_from_opt text i '>' with
      | None -> Error "unterminated <!ELEMENT declaration"
      | Some close -> (
          let decl = String.sub text (i + 9) (close - i - 9) in
          let decl = String.trim decl in
          (* name then content spec *)
          let name_end = ref 0 in
          while
            !name_end < String.length decl && is_name_char decl.[!name_end]
          do
            incr name_end
          done;
          if !name_end = 0 then Error ("malformed <!ELEMENT: " ^ decl)
          else begin
            let name = String.sub decl 0 !name_end in
            let spec = String.sub decl !name_end (String.length decl - !name_end) in
            match parse_content spec with
            | content ->
                if Hashtbl.mem models name then
                  Error (Printf.sprintf "duplicate declaration of element '%s'" name)
                else begin
                  Hashtbl.add models name content;
                  order := name :: !order;
                  scan (close + 1)
                end
            | exception Dtd_error msg -> Error msg
          end)
    end
    else if text.[i] = '<' then begin
      (* some other declaration (ATTLIST, ENTITY, ...): skip to '>' *)
      match String.index_from_opt text i '>' with
      | None -> Error "unterminated declaration"
      | Some close -> scan (close + 1)
    end
    else scan (i + 1)
  in
  match scan 0 with
  | Ok () -> Ok { order = List.rev !order; models }
  | Error e -> Error e

let element_names t = t.order
let content_model t name = Hashtbl.find_opt t.models name

(* --- validation --- *)

(* All possible remainders after matching a prefix of [names] against
   [p]; backtracking regex-style matcher (content models here are tiny,
   so the potential blow-up is irrelevant). *)
let rec remainders p names =
  let once body names =
    match body with
    | Name n -> ( match names with x :: rest when String.equal x n -> [ rest ] | _ -> [])
    | Seq parts ->
        List.fold_left
          (fun states part ->
            List.concat_map (fun state -> remainders part state) states)
          [ names ] parts
    | Choice parts -> List.concat_map (fun part -> remainders part names) parts
  in
  let dedup states =
    List.sort_uniq compare states
  in
  match p.occ with
  | Once -> dedup (once p.body names)
  | Optional -> dedup (names :: once p.body names)
  | Zero_or_more | One_or_more ->
      let rec star states acc =
        match states with
        | [] -> acc
        | state :: rest ->
            if List.mem state acc then star rest acc
            else begin
              let next =
                List.filter
                  (fun s -> List.length s < List.length state)
                  (once p.body state)
              in
              star (next @ rest) (state :: acc)
            end
      in
      let from_one = once p.body names in
      let seeds = if p.occ = Zero_or_more then [ names ] else from_one in
      dedup (star seeds [])

let matches p names = List.mem [] (remainders p names)

let pp_particle fmt p =
  let rec go fmt p =
    (match p.body with
    | Name n -> Format.pp_print_string fmt n
    | Seq parts ->
        Format.fprintf fmt "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
             go)
          parts
    | Choice parts ->
        Format.fprintf fmt "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "|")
             go)
          parts);
    match p.occ with
    | Once -> ()
    | Optional -> Format.pp_print_char fmt '?'
    | Zero_or_more -> Format.pp_print_char fmt '*'
    | One_or_more -> Format.pp_print_char fmt '+'
  in
  go fmt p

let validate t tree =
  let problem = ref None in
  let report fmt = Printf.ksprintf (fun msg -> if !problem = None then problem := Some msg) fmt in
  let child_names children =
    List.filter_map (fun c -> Tree.name c) children
  in
  let has_text children =
    List.exists
      (function
        | Tree.Text s -> not (String.for_all (fun c -> c = ' ' || c = '\n' || c = '\t' || c = '\r') s)
        | Tree.Element _ -> false)
      children
  in
  let check node =
    match node with
    | Tree.Text _ -> ()
    | Tree.Element { name; children; _ } -> (
        match content_model t name with
        | None -> report "element '%s' is not declared in the DTD" name
        | Some Empty ->
            if children <> [] then report "element '%s' is declared EMPTY but has content" name
        | Some Any -> ()
        | Some Pcdata ->
            if child_names children <> [] then
              report "element '%s' is (#PCDATA) but has element children" name
        | Some (Mixed allowed) ->
            List.iter
              (fun n ->
                if not (List.mem n allowed) then
                  report "element '%s' does not allow child '%s' in mixed content" name n)
              (child_names children)
        | Some (Children p) ->
            if has_text children then
              report "element '%s' has element-only content but contains text" name;
            let names = child_names children in
            if not (matches p names) then
              report "element '%s': children [%s] do not match model %s" name
                (String.concat "," names)
                (Format.asprintf "%a" pp_particle p))
  in
  Tree.iter_elements tree ~f:check;
  match !problem with None -> Ok () | Some msg -> Error msg

let xmark =
  {dtd|<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist (listitem)*>
<!ELEMENT listitem (text | parlist)*>
<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ELEMENT personref EMPTY>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ELEMENT interest EMPTY>
<!ELEMENT education (#PCDATA)>
<!ELEMENT income (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT seller EMPTY>
<!ELEMENT current (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer EMPTY>
<!ELEMENT price (#PCDATA)>
<!ELEMENT annotation (author, description?, happiness)>
<!ELEMENT author EMPTY>
<!ELEMENT happiness (#PCDATA)>
|dtd}
