type t =
  | Element of { name : string; attrs : (string * string) list; children : t list }
  | Text of string

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s

let name = function Element { name; _ } -> Some name | Text _ -> None
let children = function Element { children; _ } -> children | Text _ -> []

(* Merge adjacent text children produced by split SAX text runs. *)
let merge_text children =
  let rec go acc = function
    | [] -> List.rev acc
    | Text a :: Text b :: rest -> go acc (Text (a ^ b) :: rest)
    | node :: rest -> go (node :: acc) rest
  in
  go [] children

type builder = { mutable stack : (string * (string * string) list * t list) list; mutable root : t option }

let feed builder event =
  match event with
  | Sax.Start_element (name, attrs) -> builder.stack <- (name, attrs, []) :: builder.stack
  | Sax.End_element _ -> (
      match builder.stack with
      | (name, attrs, rev_children) :: rest ->
          let node = Element { name; attrs; children = merge_text (List.rev rev_children) } in
          (match rest with
          | [] ->
              builder.root <- Some node;
              builder.stack <- []
          | (pname, pattrs, pchildren) :: rest' ->
              builder.stack <- (pname, pattrs, node :: pchildren) :: rest')
      | [] -> invalid_arg "Tree.feed: unbalanced end element")
  | Sax.Text s -> (
      match builder.stack with
      | (name, attrs, children) :: rest ->
          builder.stack <- (name, attrs, Text s :: children) :: rest
      | [] -> if not (String.for_all (fun c -> c = ' ' || c = '\n' || c = '\t' || c = '\r') s) then invalid_arg "Tree.feed: text outside root")
  | Sax.Comment _ | Sax.Pi _ -> ()

let finish builder =
  match (builder.root, builder.stack) with
  | Some root, [] -> Ok root
  | _ -> Error "incomplete document"

let of_input input =
  let builder = { stack = []; root = None } in
  match Sax.fold input ~init:() ~f:(fun () e -> feed builder e) with
  | () -> finish builder
  | exception Sax.Parse_error (pos, msg) ->
      Error (Printf.sprintf "line %d, column %d: %s" pos.Sax.line pos.Sax.col msg)

let of_string s = of_input (Sax.input_of_string s)
let of_channel ic = of_input (Sax.input_of_channel ic)

let of_events events =
  let builder = { stack = []; root = None } in
  match List.iter (feed builder) events with
  | () -> finish builder
  | exception Invalid_argument msg -> Error msg

let to_events t =
  let rec go acc = function
    | Text s -> Sax.Text s :: acc
    | Element { name; attrs; children } ->
        let acc = Sax.Start_element (name, attrs) :: acc in
        let acc = List.fold_left go acc children in
        Sax.End_element name :: acc
  in
  List.rev (go [] t)

let rec element_count = function
  | Text _ -> 0
  | Element { children; _ } -> 1 + List.fold_left (fun acc c -> acc + element_count c) 0 children

let rec text_bytes = function
  | Text s -> String.length s
  | Element { children; _ } -> List.fold_left (fun acc c -> acc + text_bytes c) 0 children

let rec depth = function
  | Text _ -> 1
  | Element { children; _ } ->
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let tag_names t =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Text _ -> acc
    | Element { name; children; _ } -> List.fold_left go (S.add name acc) children
  in
  S.elements (go S.empty t)

let iter_elements t ~f =
  let rec go node =
    match node with
    | Text _ -> ()
    | Element { children; _ } ->
        f node;
        List.iter go children
  in
  go t

let find_all t ~name =
  let acc = ref [] in
  iter_elements t ~f:(fun node ->
      match node with
      | Element { name = n; _ } when String.equal n name -> acc := node :: !acc
      | Element _ | Text _ -> ());
  List.rev !acc

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element ea, Element eb ->
      String.equal ea.name eb.name && ea.attrs = eb.attrs
      && List.length ea.children = List.length eb.children
      && List.for_all2 equal ea.children eb.children
  | Text _, Element _ | Element _, Text _ -> false

let rec pp fmt = function
  | Text s -> Format.fprintf fmt "%S" s
  | Element { name; children = []; _ } -> Format.fprintf fmt "<%s/>" name
  | Element { name; children; _ } ->
      Format.fprintf fmt "@[<hv 2><%s>@,%a@;<0 -2></%s>@]" name
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
        children name
