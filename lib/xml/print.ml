let attrs_to_buf buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (Entity.escape_attribute v);
      Buffer.add_char buf '"')
    attrs

let has_text_child children =
  List.exists (function Tree.Text _ -> true | Tree.Element _ -> false) children

let to_buffer ?(decl = false) ?indent buf tree =
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let pad level =
    match indent with
    | Some k ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (level * k) ' ')
    | None -> ()
  in
  let rec go level node =
    match node with
    | Tree.Text s -> Buffer.add_string buf (Entity.escape_text s)
    | Tree.Element { name; attrs; children = [] } ->
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        attrs_to_buf buf attrs;
        Buffer.add_string buf "/>"
    | Tree.Element { name; attrs; children } ->
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        attrs_to_buf buf attrs;
        Buffer.add_char buf '>';
        (* Mixed content is serialised verbatim; element-only content
           may be pretty-printed without changing the data model. *)
        let pretty = indent <> None && not (has_text_child children) in
        List.iter
          (fun child ->
            if pretty then pad (level + 1);
            go (level + 1) child)
          children;
        if pretty then pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
  in
  go 0 tree

let to_string ?decl ?indent tree =
  let buf = Buffer.create 4096 in
  to_buffer ?decl ?indent buf tree;
  Buffer.contents buf

let to_channel ?decl ?indent oc tree =
  let buf = Buffer.create 65536 in
  to_buffer ?decl ?indent buf tree;
  Buffer.output_buffer oc buf

let events_to_string events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Sax.event) ->
      match e with
      | Sax.Start_element (name, attrs) ->
          Buffer.add_char buf '<';
          Buffer.add_string buf name;
          attrs_to_buf buf attrs;
          Buffer.add_char buf '>'
      | Sax.End_element name ->
          Buffer.add_string buf "</";
          Buffer.add_string buf name;
          Buffer.add_char buf '>'
      | Sax.Text s -> Buffer.add_string buf (Entity.escape_text s)
      | Sax.Comment s ->
          Buffer.add_string buf "<!--";
          Buffer.add_string buf s;
          Buffer.add_string buf "-->"
      | Sax.Pi (target, body) ->
          Buffer.add_string buf "<?";
          Buffer.add_string buf target;
          Buffer.add_char buf ' ';
          Buffer.add_string buf body;
          Buffer.add_string buf "?>")
    events;
  Buffer.contents buf
