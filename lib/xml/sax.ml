type event =
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of string * string

type position = { line : int; col : int }

exception Parse_error of position * string

(* A buffered character reader over either a string or a channel, with
   single-character lookahead and position tracking. *)
type input = {
  refill : bytes -> int;  (* returns 0 at end of stream *)
  buf : bytes;
  mutable len : int;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable eof : bool;
}

let buffer_size = 65536

let make_input refill =
  {
    refill;
    buf = Bytes.create buffer_size;
    len = 0;
    pos = 0;
    line = 1;
    col = 1;
    eof = false;
  }

let input_of_string s =
  let offset = ref 0 in
  let refill buf =
    let remaining = String.length s - !offset in
    let n = min remaining (Bytes.length buf) in
    Bytes.blit_string s !offset buf 0 n;
    offset := !offset + n;
    n
  in
  make_input refill

let input_of_channel ic =
  let refill buf = input ic buf 0 (Bytes.length buf) in
  make_input refill

let position t = { line = t.line; col = t.col }
let error t msg = raise (Parse_error (position t, msg))
let errorf t fmt = Printf.ksprintf (error t) fmt

let ensure t =
  if t.pos >= t.len && not t.eof then begin
    let n = t.refill t.buf in
    t.len <- n;
    t.pos <- 0;
    if n = 0 then t.eof <- true
  end

let peek t =
  ensure t;
  if t.pos >= t.len then None else Some (Bytes.get t.buf t.pos)

let advance t c =
  t.pos <- t.pos + 1;
  if c = '\n' then begin
    t.line <- t.line + 1;
    t.col <- 1
  end
  else t.col <- t.col + 1

let next t =
  match peek t with
  | None -> None
  | Some c ->
      advance t c;
      Some c

let next_exn t what =
  match next t with
  | Some c -> c
  | None -> errorf t "unexpected end of input (expecting %s)" what

let expect t expected what =
  let c = next_exn t what in
  if c <> expected then errorf t "expected '%c' (%s), got '%c'" expected what c

let expect_string t s what = String.iter (fun c -> expect t c what) s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space t =
  let rec go () =
    match peek t with
    | Some c when is_space c ->
        advance t c;
        go ()
    | _ -> ()
  in
  go ()

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name t =
  match peek t with
  | Some c when is_name_start c ->
      let buf = Buffer.create 16 in
      let rec go () =
        match peek t with
        | Some c when is_name_char c ->
            advance t c;
            Buffer.add_char buf c;
            go ()
        | _ -> Buffer.contents buf
      in
      go ()
  | Some c -> errorf t "invalid name start character '%c'" c
  | None -> error t "unexpected end of input (expecting a name)"

let decode_here t raw =
  match Entity.decode raw with
  | Ok s -> s
  | Error msg -> error t msg

let read_attribute_value t =
  let quote = next_exn t "attribute value quote" in
  if quote <> '"' && quote <> '\'' then
    errorf t "attribute value must be quoted, got '%c'" quote;
  let buf = Buffer.create 16 in
  let rec go () =
    match next_exn t "attribute value" with
    | c when c = quote -> decode_here t (Buffer.contents buf)
    | '<' -> error t "'<' is not allowed inside an attribute value"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let read_attributes t =
  let rec go acc =
    skip_space t;
    match peek t with
    | Some c when is_name_start c ->
        let name = read_name t in
        skip_space t;
        expect t '=' "attribute '='";
        skip_space t;
        let value = read_attribute_value t in
        if List.mem_assoc name acc then errorf t "duplicate attribute '%s'" name;
        go ((name, value) :: acc)
    | _ -> List.rev acc
  in
  go []

(* Read until the terminator string [stop]; used for comments, CDATA
   and processing instructions. *)
let read_until t stop what =
  let buf = Buffer.create 32 in
  let stop_len = String.length stop in
  let matches_tail () =
    Buffer.length buf >= stop_len
    && String.equal (Buffer.sub buf (Buffer.length buf - stop_len) stop_len) stop
  in
  let rec go () =
    if matches_tail () then Buffer.sub buf 0 (Buffer.length buf - stop_len)
    else begin
      let c = next_exn t what in
      Buffer.add_char buf c;
      go ()
    end
  in
  go ()

(* DOCTYPE: skip to the matching '>', tracking an optional internal
   subset in [...] which may itself contain quoted strings and
   comments. *)
let skip_doctype t =
  let rec go depth =
    match next_exn t "DOCTYPE declaration" with
    | '>' when depth = 0 -> ()
    | '[' -> go (depth + 1)
    | ']' when depth > 0 -> go (depth - 1)
    | '"' ->
        let rec quoted () = if next_exn t "quoted literal" <> '"' then quoted () in
        quoted ();
        go depth
    | '\'' ->
        let rec quoted () = if next_exn t "quoted literal" <> '\'' then quoted () in
        quoted ();
        go depth
    | _ -> go depth
  in
  go 0

type markup =
  | M_start of string * (string * string) list * bool (* self-closing *)
  | M_end of string
  | M_comment of string
  | M_cdata of string
  | M_pi of string * string
  | M_doctype

(* Parse one '<'-initiated construct (the '<' is already consumed). *)
let read_markup t =
  match peek t with
  | Some '/' ->
      advance t '/';
      let name = read_name t in
      skip_space t;
      expect t '>' "end of closing tag";
      M_end name
  | Some '?' ->
      advance t '?';
      let target = read_name t in
      let body = read_until t "?>" "processing instruction" in
      M_pi (target, String.trim body)
  | Some '!' -> begin
      advance t '!';
      match peek t with
      | Some '-' ->
          expect_string t "--" "comment opener";
          let body = read_until t "-->" "comment" in
          (* XML forbids '--' inside comments. *)
          let rec check i =
            match String.index_from_opt body i '-' with
            | Some j when j + 1 < String.length body && body.[j + 1] = '-' ->
                error t "'--' is not allowed inside a comment"
            | Some j -> check (j + 1)
            | None -> ()
          in
          check 0;
          M_comment body
      | Some '[' ->
          expect_string t "[CDATA[" "CDATA opener";
          M_cdata (read_until t "]]>" "CDATA section")
      | Some 'D' ->
          expect_string t "DOCTYPE" "DOCTYPE keyword";
          skip_doctype t;
          M_doctype
      | Some c -> errorf t "unexpected '<!%c'" c
      | None -> error t "unexpected end of input after '<!'"
    end
  | Some c when is_name_start c ->
      let name = read_name t in
      let attrs = read_attributes t in
      skip_space t;
      (match next_exn t "end of start tag" with
      | '>' -> M_start (name, attrs, false)
      | '/' ->
          expect t '>' "'>' of self-closing tag";
          M_start (name, attrs, true)
      | c -> errorf t "unexpected '%c' in start tag" c)
  | Some c -> errorf t "unexpected '%c' after '<'" c
  | None -> error t "unexpected end of input after '<'"

let read_text t =
  let buf = Buffer.create 64 in
  let rec go () =
    match peek t with
    | Some '<' | None -> decode_here t (Buffer.contents buf)
    | Some c ->
        advance t c;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let all_space s = String.for_all is_space s

let fold input ~init ~f =
  let t = input in
  let acc = ref init in
  let emit e = acc := f !acc e in
  let stack = ref [] in
  let seen_root = ref false in
  let rec loop () =
    match peek t with
    | None ->
        (match !stack with
        | [] ->
            if not !seen_root then error t "document has no root element";
            !acc
        | name :: _ -> errorf t "unexpected end of input: '<%s>' is not closed" name)
    | Some '<' ->
        advance t '<';
        (match read_markup t with
        | M_start (name, attrs, self_closing) ->
            if !stack = [] && !seen_root then
              errorf t "multiple root elements ('%s')" name;
            if !stack = [] then seen_root := true;
            emit (Start_element (name, attrs));
            if self_closing then emit (End_element name)
            else stack := name :: !stack;
            loop ()
        | M_end name -> (
            match !stack with
            | top :: rest when String.equal top name ->
                stack := rest;
                emit (End_element name);
                loop ()
            | top :: _ -> errorf t "mismatched closing tag </%s>, expected </%s>" name top
            | [] -> errorf t "closing tag </%s> without an open element" name)
        | M_comment body ->
            emit (Comment body);
            loop ()
        | M_cdata body ->
            if !stack = [] && not (all_space body) then
              error t "character data outside the root element";
            if body <> "" then emit (Text body);
            loop ()
        | M_pi (target, body) ->
            if String.lowercase_ascii target <> "xml" then emit (Pi (target, body));
            loop ()
        | M_doctype ->
            if !seen_root then error t "DOCTYPE after the root element";
            loop ())
    | Some _ ->
        let text = read_text t in
        if !stack = [] then begin
          if not (all_space text) then error t "character data outside the root element"
        end
        else if text <> "" then emit (Text text);
        loop ()
  in
  loop ()

let iter input ~f = fold input ~init:() ~f:(fun () e -> f e)

let fold_string s ~init ~f =
  match fold (input_of_string s) ~init ~f with
  | acc -> Ok acc
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "line %d, column %d: %s" pos.line pos.col msg)

let pp_event fmt = function
  | Start_element (name, []) -> Format.fprintf fmt "<%s>" name
  | Start_element (name, attrs) ->
      Format.fprintf fmt "<%s %s>" name
        (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) attrs))
  | End_element name -> Format.fprintf fmt "</%s>" name
  | Text s -> Format.fprintf fmt "text(%S)" s
  | Comment s -> Format.fprintf fmt "comment(%S)" s
  | Pi (target, body) -> Format.fprintf fmt "pi(%s,%S)" target body
