(** XML serialisation. *)

val to_string : ?decl:bool -> ?indent:int -> Tree.t -> string
(** Serialise a tree.  [decl] prepends an XML declaration (default
    false).  [indent], when given, pretty-prints with that many spaces
    per level *only* around element-only content (text content is
    never reformatted, so parse–print round-trips preserve data). *)

val to_channel : ?decl:bool -> ?indent:int -> out_channel -> Tree.t -> unit

val events_to_string : Sax.event list -> string
(** Serialise a raw event stream (no pretty-printing). *)
