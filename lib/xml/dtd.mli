(** A DTD subset: [<!ELEMENT>] declarations with full content models.

    The paper's mapping function is defined over "tag names chosen from
    a fixed sized set (described in a DTD)" — the XMark auction DTD of
    Appendix A has 77 elements, which motivates the field choice
    p = 83.  This module parses such DTDs, exposes the element-name
    set, and validates documents against the content models (used to
    check our synthetic XMark generator). *)

type occurrence = Once | Optional | Zero_or_more | One_or_more

type particle = { body : body; occ : occurrence }
and body = Name of string | Seq of particle list | Choice of particle list

type content =
  | Empty
  | Any
  | Pcdata  (** [(#PCDATA)] *)
  | Mixed of string list  (** [(#PCDATA | a | b)*] *)
  | Children of particle

type t

val parse : string -> (t, string) result
(** Parse every [<!ELEMENT ...>] declaration in the input; comments,
    [<!ATTLIST>]/[<!ENTITY>] declarations and whitespace are ignored.
    Duplicate element declarations are an error. *)

val element_names : t -> string list
(** Declared element names, in declaration order. *)

val content_model : t -> string -> content option

val validate : t -> Tree.t -> (unit, string) result
(** Check that every element of the document matches its declared
    content model (undeclared elements are an error; text is only
    allowed under [PCDATA]/[Mixed]/[ANY] content). *)

val xmark : string
(** The auction DTD of the paper's Appendix A, verbatim. *)
