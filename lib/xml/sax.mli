(** A streaming (SAX-style) XML parser.

    The encoder consumes events rather than a DOM so that, as in the
    paper (§5.1), memory use is proportional to the *depth* of the
    document, not its size — "no need for a big client machine with
    lots of memory".

    Supported: elements, attributes ([" "] or [' '] quoted),
    self-closing tags, text with entity and character references,
    comments, CDATA sections, processing instructions, an XML
    declaration, and a DOCTYPE declaration (skipped, including an
    internal subset).  Not supported (out of scope): namespaces as a
    semantic layer (prefixes pass through verbatim), external DTD
    fetching, non-UTF-8 encodings. *)

type event =
  | Start_element of string * (string * string) list
      (** Tag name and attributes in document order. *)
  | End_element of string
  | Text of string
      (** Decoded character data; adjacent runs may be split. *)
  | Comment of string
  | Pi of string * string  (** Processing-instruction target and body. *)

type position = { line : int; col : int }

exception Parse_error of position * string

type input

val input_of_string : string -> input
val input_of_channel : in_channel -> input

val fold : input -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Run the parser to the end of the document, threading an
    accumulator through every event.  Enforces well-formedness:
    matching tags, a single root element, no stray markup.
    @raise Parse_error on malformed input. *)

val iter : input -> f:(event -> unit) -> unit

val fold_string : string -> init:'a -> f:('a -> event -> 'a) -> ('a, string) result
(** [fold] on a string input with the error rendered as a message
    ("line L, column C: ..."). *)

val pp_event : Format.formatter -> event -> unit
