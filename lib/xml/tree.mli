(** In-memory XML document trees (the DOM counterpart of {!Sax}). *)

type t =
  | Element of { name : string; attrs : (string * string) list; children : t list }
  | Text of string

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

val name : t -> string option
(** Tag name of an element node, [None] for text. *)

val children : t -> t list
(** Children of an element ([[]] for text). *)

val of_string : string -> (t, string) result
(** Parse a document; comments and processing instructions are
    dropped, adjacent text runs are merged. *)

val of_channel : in_channel -> (t, string) result

val of_events : Sax.event list -> (t, string) result
(** Build from an event list (must describe exactly one element). *)

val to_events : t -> Sax.event list
(** Document-order event stream of the tree. *)

val element_count : t -> int
(** Number of element nodes. *)

val text_bytes : t -> int
(** Total size of all text content in bytes. *)

val depth : t -> int
(** 1 for a leaf element or a text node. *)

val tag_names : t -> string list
(** Distinct element names, sorted. *)

val iter_elements : t -> f:(t -> unit) -> unit
(** Pre-order visit of element nodes. *)

val find_all : t -> name:string -> t list
(** All descendant-or-self elements with the given name, in document
    order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
