(** Predefined XML entities and character references. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for text content. *)

val escape_attribute : string -> string
(** Escape ampersand, angle brackets and both quote characters for
    attribute values. *)

val decode : string -> (string, string) result
(** Decode entity and character references ([&amp;], [&#10;],
    [&#x41;], ...) in a text run.  Unknown entities are an error. *)
