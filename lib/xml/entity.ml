let escape_general ~quotes s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quotes -> Buffer.add_string buf "&quot;"
      | '\'' when quotes -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text s = escape_general ~quotes:false s
let escape_attribute s = escape_general ~quotes:true s

let utf8_of_code_point cp buf =
  if cp < 0 then Error "negative character reference"
  else if cp < 0x80 then begin
    Buffer.add_char buf (Char.chr cp);
    Ok ()
  end
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)));
    Ok ()
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)));
    Ok ()
  end
  else if cp <= 0x10FFFF then begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)));
    Ok ()
  end
  else Error "character reference out of Unicode range"

let decode s =
  let buf = Buffer.create (String.length s) in
  let len = String.length s in
  let rec go i =
    if i >= len then Ok (Buffer.contents buf)
    else if s.[i] <> '&' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else begin
      match String.index_from_opt s i ';' with
      | None -> Error "unterminated entity reference"
      | Some j ->
          let name = String.sub s (i + 1) (j - i - 1) in
          let continue_after () = go (j + 1) in
          let named n =
            Buffer.add_string buf n;
            continue_after ()
          in
          (match name with
          | "amp" -> named "&"
          | "lt" -> named "<"
          | "gt" -> named ">"
          | "quot" -> named "\""
          | "apos" -> named "'"
          | "" -> Error "empty entity reference"
          | _ when name.[0] = '#' ->
              let parse_cp () =
                if String.length name > 1 && (name.[1] = 'x' || name.[1] = 'X') then
                  int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
                else int_of_string_opt (String.sub name 1 (String.length name - 1))
              in
              (match parse_cp () with
              | None -> Error (Printf.sprintf "malformed character reference &%s;" name)
              | Some cp -> (
                  match utf8_of_code_point cp buf with
                  | Ok () -> continue_after ()
                  | Error e -> Error e))
          | _ -> Error (Printf.sprintf "unknown entity &%s;" name))
    end
  in
  go 0
