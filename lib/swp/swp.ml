module Chacha20 = Secshare_prg.Chacha20
module Seed = Secshare_prg.Seed

let block_size = 16
let stream_size = 12 (* the S_i part *)
let check_size = 4 (* the F_k(S_i) part *)

type key = { stream_key : bytes; word_key : bytes }

(* Derive two independent ChaCha20 keys from the seed by domain
   separation. *)
let key_of_seed seed =
  let master = Seed.to_bytes seed in
  let derive tag =
    let nonce = Bytes.make Chacha20.nonce_length '\000' in
    Bytes.blit_string tag 0 nonce 0 (min (String.length tag) Chacha20.nonce_length);
    Chacha20.keystream ~key:master ~nonce ~counter:0 32
  in
  { stream_key = derive "swp-stream"; word_key = derive "swp-words" }

type encrypted = { blocks : bytes array; positions : (int * int) array }
type trapdoor = { word_block : bytes; prf_key : bytes }

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(* Canonical 16-byte block of a word: the first bytes verbatim, with a
   64-bit digest of the whole word folded into the tail so that long
   words stay distinguishable. *)
let block_of_word word =
  let block = Bytes.make block_size '\000' in
  Bytes.blit_string word 0 block 0 (min (String.length word) block_size);
  if String.length word > block_size then begin
    let digest = fnv1a64 word in
    for i = 0 to 7 do
      let off = block_size - 8 + i in
      Bytes.set_uint8 block off
        (Bytes.get_uint8 block off
        lxor Int64.to_int (Int64.logand (Int64.shift_right_logical digest (8 * i)) 0xFFL))
    done
  end;
  block

(* The per-word PRF key is derived from the block's first 12 bytes (the
   part the client can recover before knowing the word — the standard
   SWP split). *)
let word_prf_key key block =
  let nonce = Bytes.sub block 0 stream_size in
  Chacha20.keystream ~key:key.word_key ~nonce ~counter:0 32

(* S_i: 12 pseudorandom bytes per position, from one long keystream. *)
let stream_at key i =
  let nonce = Bytes.make Chacha20.nonce_length '\000' in
  Bytes.set_int64_le nonce 0 (Int64.of_int i);
  Chacha20.keystream ~key:key.stream_key ~nonce ~counter:0 stream_size

(* F_k(s): the 4-byte PRF check value. *)
let prf prf_key s =
  let nonce = Bytes.make Chacha20.nonce_length '\000' in
  Bytes.blit s 0 nonce 0 stream_size;
  Chacha20.keystream ~key:prf_key ~nonce ~counter:1 check_size

let xor_into dst src off =
  for i = 0 to Bytes.length src - 1 do
    Bytes.set_uint8 dst (off + i) (Bytes.get_uint8 dst (off + i) lxor Bytes.get_uint8 src i)
  done

let encrypt_block key ~position word =
  let block = block_of_word word in
  let s = stream_at key position in
  let f = prf (word_prf_key key block) s in
  let cipher = Bytes.copy block in
  xor_into cipher s 0;
  xor_into cipher f stream_size;
  cipher

let encrypt_words key pairs =
  let blocks =
    Array.of_list
      (List.mapi (fun i (_, word) -> encrypt_block key ~position:i word) pairs)
  in
  let positions = Array.make (List.length pairs) (0, 0) in
  let word_index = Hashtbl.create 64 in
  List.iteri
    (fun i (pre, _) ->
      let idx = Option.value (Hashtbl.find_opt word_index pre) ~default:0 in
      Hashtbl.replace word_index pre (idx + 1);
      positions.(i) <- (pre, idx))
    pairs;
  { blocks; positions }

let flatten_tree tree =
  let acc = ref [] in
  let pre = ref 0 in
  let rec go node =
    match node with
    | Secshare_xml.Tree.Text s ->
        (* text words belong to the enclosing element *)
        List.iter (fun w -> acc := (!pre, w) :: !acc) (Secshare_trie.Tokenize.words s)
    | Secshare_xml.Tree.Element { name; children; _ } ->
        incr pre;
        acc := (!pre, String.lowercase_ascii name) :: !acc;
        let my_pre = !pre in
        List.iter
          (fun child ->
            match child with
            | Secshare_xml.Tree.Text s ->
                List.iter
                  (fun w -> acc := (my_pre, w) :: !acc)
                  (Secshare_trie.Tokenize.words s)
            | Secshare_xml.Tree.Element _ -> go child)
          children
  in
  go tree;
  List.rev !acc

let encrypt_tree key tree = encrypt_words key (flatten_tree tree)

let trapdoor key word =
  let block = block_of_word (String.lowercase_ascii word) in
  { word_block = block; prf_key = word_prf_key key block }

let matches trapdoor cipher =
  (* t = C xor W; a true match gives t = S || F_k(S) *)
  let t = Bytes.copy cipher in
  xor_into t trapdoor.word_block 0;
  let s = Bytes.sub t 0 stream_size in
  let expected = prf trapdoor.prf_key s in
  let ok = ref true in
  for i = 0 to check_size - 1 do
    if Bytes.get_uint8 t (stream_size + i) <> Bytes.get_uint8 expected i then ok := false
  done;
  !ok

let search enc trapdoor =
  let hits = ref [] in
  Array.iteri (fun i cipher -> if matches trapdoor cipher then hits := i :: !hits) enc.blocks;
  List.rev !hits

let search_elements enc trapdoor =
  List.sort_uniq compare (List.map (fun i -> fst enc.positions.(i)) (search enc trapdoor))

let decrypt_block key enc position =
  if position < 0 || position >= Array.length enc.blocks then
    invalid_arg (Printf.sprintf "Swp.decrypt_block: position %d out of range" position);
  let cipher = enc.blocks.(position) in
  let s = stream_at key position in
  let block = Bytes.copy cipher in
  (* left part: xor out the stream; it determines the word key, which
     then unlocks the check part *)
  xor_into block (Bytes.cat s (Bytes.make check_size '\000')) 0;
  let f = prf (word_prf_key key block) s in
  xor_into block (Bytes.cat (Bytes.make stream_size '\000') f) 0;
  (* strip padding *)
  let len = ref 0 in
  while !len < block_size && Bytes.get block !len <> '\000' do
    incr len
  done;
  Bytes.sub_string block 0 !len

let storage_bytes enc =
  (Array.length enc.blocks * block_size) + (Array.length enc.positions * 8)
