(** A baseline: Song–Wagner–Perrig searchable symmetric encryption
    (IEEE S&P 2000) — the scheme the paper's related-work section
    positions itself against ("[5] suggest a different technique that
    supports encrypting the data itself.  We adapted this work to
    exploit the tree structure in XML documents").

    This is the *sequential-scan* alternative: the document is
    flattened into a sequence of fixed-size word blocks, each encrypted
    as [W_i XOR (S_i, F_{k(W_i)}(S_i))] where [S_i] is a pseudorandom
    stream and [F] a keyed PRF.  To search, the client reveals a
    per-word trapdoor; the server scans *every* position and checks the
    PRF relation — O(document) work per query and no tree pruning,
    which is exactly what the paper's polynomial encoding buys.

    Implemented with ChaCha20 as both the stream and the PRF.  Word
    blocks are 16 bytes (longer words are truncated after hashing
    their tail in); the PRF check uses m = 4 bytes, so false positives
    occur with probability 2^-32 per position. *)

type key

val key_of_seed : Secshare_prg.Seed.t -> key

type encrypted = {
  blocks : bytes array;  (** one 16-byte ciphertext per word position *)
  positions : (int * int) array;
      (** for each word position: (element [pre], word index within the
          element) — public structural metadata, as in the paper's
          pre/post/parent columns *)
}

val encrypt_words : key -> (int * string) list -> encrypted
(** Encrypt a flattened document: [(element_pre, word)] pairs in
    document order. *)

val encrypt_tree : key -> Secshare_xml.Tree.t -> encrypted
(** Flatten an XML tree — each element contributes its tag name, each
    text node its lowercase words — and encrypt the sequence.  Element
    [pre] numbers match the secret-sharing encoder's numbering. *)

type trapdoor

val trapdoor : key -> string -> trapdoor
(** The search token for one word: reveals that word's PRF key (and
    the word block itself, as in the basic SWP scheme). *)

val search : encrypted -> trapdoor -> int list
(** Positions whose ciphertext matches the trapdoor (the server's
    linear scan).  Every position is touched: the cost is
    O(number of word blocks). *)

val search_elements : encrypted -> trapdoor -> int list
(** Distinct element [pre]s containing a match, ascending. *)

val decrypt_block : key -> encrypted -> int -> string
(** Recover the plaintext word block at a position (client side, for
    tests).  @raise Invalid_argument on a bad position. *)

val storage_bytes : encrypted -> int
(** Ciphertext bytes plus position metadata. *)
