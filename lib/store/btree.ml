(* Concurrency: lookups and range folds ([mem], [seek],
   [fold_range_while], …) are pure traversals — they read key arrays
   and child pointers and mutate nothing, so a frozen tree (no inserts
   or deletes in flight) supports any number of parallel readers with
   no latching.  Structural mutation blits arrays in place; it must be
   externally serialised and must not overlap reads (Node_table
   enforces this with its writer lock + read-after-load discipline). *)

type leaf = {
  mutable lkeys : int array; (* capacity order + 1; slots 0 .. ln-1 used *)
  mutable ln : int;
  mutable next : leaf option;
}

and internal = {
  mutable ikeys : int array; (* capacity order + 1; slots 0 .. icount-1 used *)
  mutable icount : int;
  mutable kids : node array; (* capacity order + 2; slots 0 .. icount used *)
}

and node = Leaf of leaf | Internal of internal

type t = { mutable root : node; order : int; mutable count : int }

(* Child [i] of an internal node holds keys k with
   ikeys.(i-1) <= k < ikeys.(i) (boundary indexes omitted); every
   separator equals the smallest key of the subtree to its right. *)

let new_leaf order = { lkeys = Array.make (order + 1) 0; ln = 0; next = None }

let new_internal order =
  {
    ikeys = Array.make (order + 1) 0;
    icount = 0;
    kids = Array.make (order + 2) (Leaf (new_leaf order));
  }

let create ?(order = 64) () =
  let order = max 4 order in
  { root = Leaf (new_leaf order); order; count = 0 }

(* Position of the first slot with key >= k (binary search). *)
let lower_bound keys n k =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

(* Which child to descend into for key k: first separator > k gives its
   left child; equal separators send us right. *)
let child_index inode k =
  let lo = ref 0 and hi = ref inode.icount in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if inode.ikeys.(mid) <= k then lo := mid + 1 else hi := mid
  done;
  !lo

type split = No_split | Split of int * node

let[@requires "table-writer"] insert t k =
  if k < 0 then invalid_arg "Btree.insert: negative key";
  let order = t.order in
  let exception Already_present in
  let split_leaf leaf =
    let right = new_leaf order in
    let half = (leaf.ln + 1) / 2 in
    let moved = leaf.ln - half in
    Array.blit leaf.lkeys half right.lkeys 0 moved;
    right.ln <- moved;
    leaf.ln <- half;
    right.next <- leaf.next;
    leaf.next <- Some right;
    Split (right.lkeys.(0), Leaf right)
  in
  let split_internal inode =
    let right = new_internal order in
    let mid = inode.icount / 2 in
    let sep = inode.ikeys.(mid) in
    let moved = inode.icount - mid - 1 in
    Array.blit inode.ikeys (mid + 1) right.ikeys 0 moved;
    Array.blit inode.kids (mid + 1) right.kids 0 (moved + 1);
    right.icount <- moved;
    inode.icount <- mid;
    Split (sep, Internal right)
  in
  let rec go node =
    match node with
    | Leaf leaf ->
        let pos = lower_bound leaf.lkeys leaf.ln k in
        if pos < leaf.ln && leaf.lkeys.(pos) = k then raise Already_present;
        Array.blit leaf.lkeys pos leaf.lkeys (pos + 1) (leaf.ln - pos);
        leaf.lkeys.(pos) <- k;
        leaf.ln <- leaf.ln + 1;
        if leaf.ln > order then split_leaf leaf else No_split
    | Internal inode -> (
        let ci = child_index inode k in
        match go inode.kids.(ci) with
        | No_split -> No_split
        | Split (sep, right) ->
            Array.blit inode.ikeys ci inode.ikeys (ci + 1) (inode.icount - ci);
            Array.blit inode.kids (ci + 1) inode.kids (ci + 2) (inode.icount - ci);
            inode.ikeys.(ci) <- sep;
            inode.kids.(ci + 1) <- right;
            inode.icount <- inode.icount + 1;
            if inode.icount > order then split_internal inode else No_split)
  in
  match go t.root with
  | No_split ->
      t.count <- t.count + 1;
      true
  | Split (sep, right) ->
      let new_root = new_internal order in
      new_root.ikeys.(0) <- sep;
      new_root.kids.(0) <- t.root;
      new_root.kids.(1) <- right;
      new_root.icount <- 1;
      t.root <- Internal new_root;
      t.count <- t.count + 1;
      true
  | exception Already_present -> false

let mem t k =
  let rec go = function
    | Leaf leaf ->
        let pos = lower_bound leaf.lkeys leaf.ln k in
        pos < leaf.ln && leaf.lkeys.(pos) = k
    | Internal inode -> go inode.kids.(child_index inode k)
  in
  go t.root

(* --- deletion with rebalancing --- *)

let min_fill order = order / 2

let leaf_of node = match node with Leaf l -> l | Internal _ -> assert false
let internal_of node = match node with Internal i -> i | Leaf _ -> assert false

let[@requires "table-writer"] delete t k =
  let order = t.order in
  let exception Absent in
  (* Returns true when [node] is underfull after the deletion. *)
  let rec go node =
    match node with
    | Leaf leaf ->
        let pos = lower_bound leaf.lkeys leaf.ln k in
        if pos >= leaf.ln || leaf.lkeys.(pos) <> k then raise Absent;
        Array.blit leaf.lkeys (pos + 1) leaf.lkeys pos (leaf.ln - pos - 1);
        leaf.ln <- leaf.ln - 1;
        leaf.ln < min_fill order
    | Internal inode ->
        let ci = child_index inode k in
        let underfull = go inode.kids.(ci) in
        if not underfull then false
        else begin
          rebalance inode ci;
          inode.icount < min_fill order
        end
  (* Fix the underfull child [ci] of [inode] by borrowing from or
     merging with a sibling. *)
  and rebalance inode ci =
    let left_sibling = if ci > 0 then Some (ci - 1) else None in
    let right_sibling = if ci < inode.icount then Some (ci + 1) else None in
    let child = inode.kids.(ci) in
    match child with
    | Leaf leaf -> (
        let borrow_from_left li =
          let left = leaf_of inode.kids.(li) in
          if left.ln > min_fill order then begin
            Array.blit leaf.lkeys 0 leaf.lkeys 1 leaf.ln;
            leaf.lkeys.(0) <- left.lkeys.(left.ln - 1);
            leaf.ln <- leaf.ln + 1;
            left.ln <- left.ln - 1;
            inode.ikeys.(li) <- leaf.lkeys.(0);
            true
          end
          else false
        in
        let borrow_from_right ri =
          let right = leaf_of inode.kids.(ri) in
          if right.ln > min_fill order then begin
            leaf.lkeys.(leaf.ln) <- right.lkeys.(0);
            leaf.ln <- leaf.ln + 1;
            Array.blit right.lkeys 1 right.lkeys 0 (right.ln - 1);
            right.ln <- right.ln - 1;
            inode.ikeys.(ri - 1) <- right.lkeys.(0);
            true
          end
          else false
        in
        let merge_leaves li ri =
          (* merge kids.(ri) into kids.(li), drop separator li *)
          let left = leaf_of inode.kids.(li) and right = leaf_of inode.kids.(ri) in
          Array.blit right.lkeys 0 left.lkeys left.ln right.ln;
          left.ln <- left.ln + right.ln;
          left.next <- right.next;
          Array.blit inode.ikeys ri inode.ikeys (ri - 1) (inode.icount - ri);
          Array.blit inode.kids (ri + 1) inode.kids ri (inode.icount - ri);
          inode.icount <- inode.icount - 1
        in
        match (left_sibling, right_sibling) with
        | Some li, _ when borrow_from_left li -> ()
        | _, Some ri when borrow_from_right ri -> ()
        | Some li, _ -> merge_leaves li (li + 1)
        | None, Some ri -> merge_leaves (ri - 1) ri
        | None, None -> ())
    | Internal inner -> (
        let borrow_from_left li =
          let left = internal_of inode.kids.(li) in
          if left.icount > min_fill order then begin
            Array.blit inner.ikeys 0 inner.ikeys 1 inner.icount;
            Array.blit inner.kids 0 inner.kids 1 (inner.icount + 1);
            inner.ikeys.(0) <- inode.ikeys.(li);
            inner.kids.(0) <- left.kids.(left.icount);
            inner.icount <- inner.icount + 1;
            inode.ikeys.(li) <- left.ikeys.(left.icount - 1);
            left.icount <- left.icount - 1;
            true
          end
          else false
        in
        let borrow_from_right ri =
          let right = internal_of inode.kids.(ri) in
          if right.icount > min_fill order then begin
            inner.ikeys.(inner.icount) <- inode.ikeys.(ri - 1);
            inner.kids.(inner.icount + 1) <- right.kids.(0);
            inner.icount <- inner.icount + 1;
            inode.ikeys.(ri - 1) <- right.ikeys.(0);
            Array.blit right.ikeys 1 right.ikeys 0 (right.icount - 1);
            Array.blit right.kids 1 right.kids 0 right.icount;
            right.icount <- right.icount - 1;
            true
          end
          else false
        in
        let merge_internals li ri =
          let left = internal_of inode.kids.(li) and right = internal_of inode.kids.(ri) in
          left.ikeys.(left.icount) <- inode.ikeys.(li);
          Array.blit right.ikeys 0 left.ikeys (left.icount + 1) right.icount;
          Array.blit right.kids 0 left.kids (left.icount + 1) (right.icount + 1);
          left.icount <- left.icount + 1 + right.icount;
          Array.blit inode.ikeys ri inode.ikeys (ri - 1) (inode.icount - ri);
          Array.blit inode.kids (ri + 1) inode.kids ri (inode.icount - ri);
          inode.icount <- inode.icount - 1
        in
        match (left_sibling, right_sibling) with
        | Some li, _ when borrow_from_left li -> ()
        | _, Some ri when borrow_from_right ri -> ()
        | Some li, _ -> merge_internals li (li + 1)
        | None, Some ri -> merge_internals (ri - 1) ri
        | None, None -> ())
  in
  match go t.root with
  | _ ->
      (* shrink the root if it lost all separators *)
      (match t.root with
      | Internal inode when inode.icount = 0 -> t.root <- inode.kids.(0)
      | Internal _ | Leaf _ -> ());
      t.count <- t.count - 1;
      true
  | exception Absent -> false

let count t = t.count

let min_key t =
  let rec go = function
    | Leaf leaf -> if leaf.ln = 0 then None else Some leaf.lkeys.(0)
    | Internal inode -> go inode.kids.(0)
  in
  go t.root

let max_key t =
  let rec go = function
    | Leaf leaf -> if leaf.ln = 0 then None else Some leaf.lkeys.(leaf.ln - 1)
    | Internal inode -> go inode.kids.(inode.icount)
  in
  go t.root

(* Leaf containing the first key >= lo, plus the slot index. *)
let seek t lo =
  let rec go = function
    | Leaf leaf -> (leaf, lower_bound leaf.lkeys leaf.ln lo)
    | Internal inode -> go inode.kids.(child_index inode lo)
  in
  go t.root

let fold_range_while t ~lo ~init ~f =
  let leaf, pos = seek t lo in
  let rec walk leaf pos acc =
    if pos >= leaf.ln then
      match leaf.next with None -> acc | Some next -> walk next 0 acc
    else
      match f acc leaf.lkeys.(pos) with
      | Some acc -> walk leaf (pos + 1) acc
      | None -> acc
  in
  walk leaf pos init

let fold_range t ~lo ~hi ~init ~f =
  fold_range_while t ~lo ~init ~f:(fun acc k -> if k > hi then None else Some (f acc k))

let to_list t =
  List.rev (fold_range t ~lo:0 ~hi:max_int ~init:[] ~f:(fun acc k -> k :: acc))

type stats = {
  depth : int;
  nodes : int;
  leaves : int;
  keys : int;
  footprint_bytes : int;
}

let stats t =
  let nodes = ref 0 and leaves = ref 0 and bytes = ref 0 in
  let rec go depth node =
    incr nodes;
    match node with
    | Leaf leaf ->
        incr leaves;
        (* keys array + header words *)
        bytes := !bytes + (8 * (Array.length leaf.lkeys + 4));
        depth
    | Internal inode ->
        bytes :=
          !bytes + (8 * (Array.length inode.ikeys + Array.length inode.kids + 4));
        go (depth + 1) inode.kids.(0)
  in
  let depth = go 1 t.root in
  (* visit remaining nodes for the count (go above only followed the
     leftmost path for depth); do a full traversal for sizes *)
  nodes := 0;
  leaves := 0;
  bytes := 0;
  let rec visit node =
    incr nodes;
    match node with
    | Leaf leaf -> begin
        incr leaves;
        bytes := !bytes + (8 * (Array.length leaf.lkeys + 4))
      end
    | Internal inode ->
        bytes := !bytes + (8 * (Array.length inode.ikeys + Array.length inode.kids + 4));
        for i = 0 to inode.icount do
          visit inode.kids.(i)
        done
  in
  visit t.root;
  { depth; nodes = !nodes; leaves = !leaves; keys = t.count; footprint_bytes = !bytes }

let check_invariants t =
  let order = t.order in
  let problem = ref None in
  let report fmt = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt in
  (* (lo, hi) bounds: every key k in the subtree must satisfy
     lo <= k < hi *)
  let rec go node ~lo ~hi ~is_root ~depth =
    match node with
    | Leaf leaf ->
        if (not is_root) && leaf.ln < min_fill order then
          report "leaf underfull: %d < %d" leaf.ln (min_fill order);
        if leaf.ln > order then report "leaf overfull: %d > %d" leaf.ln order;
        for i = 0 to leaf.ln - 1 do
          let k = leaf.lkeys.(i) in
          if k < lo || k >= hi then report "leaf key %d outside (%d, %d)" k lo hi;
          if i > 0 && leaf.lkeys.(i - 1) >= k then report "leaf keys not strictly sorted"
        done;
        depth
    | Internal inode ->
        if (not is_root) && inode.icount < min_fill order then
          report "internal underfull: %d < %d" inode.icount (min_fill order);
        if is_root && inode.icount < 1 then report "root internal has no separator";
        if inode.icount > order then report "internal overfull";
        for i = 0 to inode.icount - 1 do
          let k = inode.ikeys.(i) in
          if k < lo || k >= hi then report "separator %d outside (%d, %d)" k lo hi;
          if i > 0 && inode.ikeys.(i - 1) >= k then report "separators not sorted"
        done;
        let depths =
          List.init (inode.icount + 1) (fun i ->
              let child_lo = if i = 0 then lo else inode.ikeys.(i - 1) in
              let child_hi = if i = inode.icount then hi else inode.ikeys.(i) in
              go inode.kids.(i) ~lo:child_lo ~hi:child_hi ~is_root:false
                ~depth:(depth + 1))
        in
        (match depths with
        | d :: rest when List.for_all (Int.equal d) rest -> ()
        | _ -> report "leaves at unequal depths");
        List.fold_left max depth depths
  in
  let _ = go t.root ~lo:min_int ~hi:max_int ~is_root:true ~depth:0 in
  (* leaf chain must enumerate exactly the sorted keys *)
  let chained = to_list t in
  if List.length chained <> t.count then
    report "leaf chain has %d keys, count says %d" (List.length chained) t.count;
  match !problem with None -> Ok () | Some m -> Error m
