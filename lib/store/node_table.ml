type t = {
  pager : Pager.t;
  mutable fill_page : int; (* index of the page currently accepting rows, -1 if none *)
  pre_index : Index.t; (* pre -> row locator *)
  post_index : Index.t; (* post -> pre *)
  parent_index : Index.t; (* parent -> pre *)
  mutable rows : int;
  mutable wal : Wal.t option; (* present in durable file mode *)
  write_lock : Mutex.t; (* serialises inserts; reads take no lock *)
}

(* Row locator: page index and slot packed into one index value. *)
let slot_bits = 12
let max_slots = 1 lsl slot_bits
let locator ~page ~slot = (page lsl slot_bits) lor slot
let locator_page loc = loc lsr slot_bits
let locator_slot loc = loc land (max_slots - 1)

let make pager =
  {
    pager;
    fill_page = -1;
    pre_index = Index.create ();
    post_index = Index.create ();
    parent_index = Index.create ();
    rows = 0;
    wal = None;
    write_lock = Mutex.create ();
  }

let create ?page_size () = make (Pager.in_memory ?page_size ())

let wal_path path = path ^ ".wal"

let create_file ?page_size ?cache_pages ?(durable = false) path =
  let t = make (Pager.create_file ?page_size ?cache_pages path) in
  if durable then t.wal <- Some (Wal.create (wal_path path));
  t

let index_row t (row : Page.row) loc =
  if not (Index.add t.pre_index ~key:row.Page.pre ~value:loc) then
    invalid_arg (Printf.sprintf "Node_table.insert: duplicate pre %d" row.Page.pre);
  ignore (Index.add t.post_index ~key:row.Page.post ~value:row.Page.pre);
  ignore (Index.add t.parent_index ~key:row.Page.parent ~value:row.Page.pre);
  t.rows <- t.rows + 1

(* Insert into pages and indexes without touching the log (used both
   by the public insert and by WAL recovery). *)
let rec insert_unlogged t row =
  if Index.find_first t.pre_index ~key:row.Page.pre <> None then
    invalid_arg (Printf.sprintf "Node_table.insert: duplicate pre %d" row.Page.pre);
  let try_add page_idx =
    let page = Pager.get t.pager page_idx in
    match Page.add_row page row with
    | Some slot ->
        Pager.mark_dirty t.pager page_idx;
        Some (locator ~page:page_idx ~slot)
    | None -> None
  in
  let loc =
    let existing = if t.fill_page >= 0 then try_add t.fill_page else None in
    match existing with
    | Some loc -> loc
    | None ->
        let fresh = Page.create ~size:(Pager.page_size t.pager) in
        let idx = Pager.append t.pager fresh in
        t.fill_page <- idx;
        (match try_add idx with
        | Some loc -> loc
        | None -> invalid_arg "Node_table.insert: row does not fit in a fresh page")
  in
  index_row t row loc

and open_file ?cache_pages path =
  match Pager.open_file ?cache_pages path with
  | Error _ as e -> e
  | Ok pager -> (
      let t = make pager in
      match
        for pidx = 0 to Pager.page_count pager - 1 do
          let page = Pager.get pager pidx in
          Page.iter_rows page ~f:(fun slot row ->
              index_row t row (locator ~page:pidx ~slot))
        done
      with
      | exception Invalid_argument msg -> failwith msg
      | () -> (
          t.fill_page <- Pager.page_count pager - 1;
          (* Crash recovery: replay any rows the log holds that never
             made it into a checkpointed page. *)
          if not (Sys.file_exists (wal_path path)) then Ok t
          else
            match Wal.replay (wal_path path) with
            | Error msg -> Error ("wal: " ^ msg)
            | Ok logged -> (
                List.iter
                  (fun row ->
                    if Index.find_first t.pre_index ~key:row.Page.pre = None then
                      insert_unlogged t row)
                  logged;
                (* checkpoint the recovered state *)
                Pager.flush pager;
                match Wal.open_existing (wal_path path) with
                | Error msg -> Error ("wal: " ^ msg)
                | Ok wal ->
                    Wal.checkpoint wal;
                    t.wal <- Some wal;
                    Ok t)))

(* Inserts are serialised by [write_lock]; index and page reads take
   no lock at all (see the .mli for the read-after-load discipline). *)
let insert t row =
  Mutex.lock t.write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.write_lock)
    (fun () ->
      insert_unlogged t row;
      match t.wal with None -> () | Some wal -> Wal.append_insert wal row)

let fetch t loc =
  let page = Pager.get t.pager (locator_page loc) in
  Page.get_row page (locator_slot loc)

let find_by_pre t pre =
  match Index.find_first t.pre_index ~key:pre with
  | Some loc -> Some (fetch t loc)
  | None -> None

let root t =
  match Index.find_first t.parent_index ~key:0 with
  | Some pre -> find_by_pre t pre
  | None -> None

let children t ~parent =
  List.filter_map (fun pre -> find_by_pre t pre) (Index.find_all t.parent_index ~key:parent)

let fold_descendants t ~pre ~post ~init ~f =
  Index.fold_from t.pre_index ~key:(pre + 1) ~init ~f:(fun acc ~key:_ ~value:loc ->
      let row = fetch t loc in
      if row.Page.post < post then Some (f acc row) else None)

let descendants t ~pre ~post =
  List.rev (fold_descendants t ~pre ~post ~init:[] ~f:(fun acc row -> row :: acc))

let scan_range t ~from_pre ~below_post ~max_rows =
  let max_rows = max 1 max_rows in
  let resume = ref None in
  let count = ref 0 in
  let rows =
    Index.fold_from t.pre_index ~key:from_pre ~init:[]
      ~f:(fun rows ~key:_ ~value:loc ->
        let row = fetch t loc in
        if row.Page.post >= below_post then None
        else if !count >= max_rows then begin
          (* budget hit: this row was not taken, restart here *)
          resume := Some row.Page.pre;
          None
        end
        else begin
          incr count;
          Some (row :: rows)
        end)
  in
  (List.rev rows, !resume)

let parent_of t ~pre =
  match find_by_pre t pre with
  | None -> None
  | Some row ->
      if row.Page.parent = 0 then None else find_by_pre t row.Page.parent

let row_count t = t.rows
let data_bytes t = Pager.data_bytes t.pager

let index_bytes t =
  Index.footprint_bytes t.pre_index
  + Index.footprint_bytes t.post_index
  + Index.footprint_bytes t.parent_index

let iter t ~f =
  for pidx = 0 to Pager.page_count t.pager - 1 do
    let page = Pager.get t.pager pidx in
    Page.iter_rows page ~f:(fun _ row -> f row)
  done

let flush t =
  Pager.flush t.pager;
  match t.wal with None -> () | Some wal -> Wal.checkpoint wal

let close t =
  flush t;
  Pager.close t.pager;
  match t.wal with None -> () | Some wal -> Wal.close wal
