module Obs = Secshare_obs

type recovery_stats = {
  redo_pages : int;
  redo_rows : int;
  wal_records : int;
  discarded_bytes : int;
}

type t = {
  pager : Pager.t;
  mutable fill_page : int; (* index of the page currently accepting rows, -1 if none *)
  pre_index : Index.t; (* pre -> row locator *)
  post_index : Index.t; (* post -> pre *)
  parent_index : Index.t; (* parent -> pre *)
  mutable rows : int;
  mutable wal : Wal.t option; (* present in durable file mode *)
  checkpoint_every : int option; (* auto-checkpoint after this many inserts *)
  mutable since_checkpoint : int;
  mutable recovery : recovery_stats option; (* set when open_file replayed a log *)
  write_lock : Mutex.t; (* serialises inserts; reads take no lock *)
}

let obs_redo_pages =
  Obs.Registry.counter ~help:"Page images replayed from write-ahead logs on recovery."
    "ssdb_store_recovery_redo_pages_total"

let obs_redo_rows =
  Obs.Registry.counter ~help:"Rows replayed from write-ahead logs on recovery."
    "ssdb_store_recovery_redo_rows_total"

let obs_recoveries =
  Obs.Registry.counter ~help:"Table opens that replayed a write-ahead log."
    "ssdb_store_recoveries_total"

let obs_backfilled_pages =
  Obs.Registry.counter
    ~help:"Unreadable hole pages backfilled with empty images on recovery."
    "ssdb_store_recovery_backfilled_pages_total"

(* Row locator: page index and slot packed into one index value. *)
let slot_bits = 12
let max_slots = 1 lsl slot_bits
let locator ~page ~slot = (page lsl slot_bits) lor slot
let locator_page loc = loc lsr slot_bits
let locator_slot loc = loc land (max_slots - 1)

let make ?checkpoint_every pager =
  {
    pager;
    fill_page = -1;
    pre_index = Index.create ();
    post_index = Index.create ();
    parent_index = Index.create ();
    rows = 0;
    wal = None;
    checkpoint_every;
    since_checkpoint = 0;
    recovery = None;
    write_lock = Mutex.create ();
  }

let create ?page_size () = make (Pager.in_memory ?page_size ())

let wal_path path = path ^ ".wal"

(* Log-before-write hook for the pager: the images about to overwrite
   heap pages are appended to the WAL, sealed with a commit record and
   fsynced — only then may the pager touch the heap file.  A crash
   that tears any of those heap writes is repaired by page redo. *)
let page_barrier wal images =
  Wal.append_page_images wal images;
  Wal.append_commit wal;
  Wal.sync wal

let attach_wal t wal =
  t.wal <- Some wal;
  Pager.set_write_barrier t.pager (Some (page_barrier wal))

let[@init_path
     "the table is not published until create_file returns; no other executor can \
      reach it"] create_file ?page_size ?cache_pages ?(durable = false) ?checkpoint_every
    path =
  let t = make ?checkpoint_every (Pager.create_file ?page_size ?cache_pages path) in
  if durable then attach_wal t (Wal.create (wal_path path));
  t

let index_row t (row : Page.row) loc =
  if not (Index.add t.pre_index ~key:row.Page.pre ~value:loc) then
    invalid_arg (Printf.sprintf "Node_table.insert: duplicate pre %d" row.Page.pre);
  ignore (Index.add t.post_index ~key:row.Page.post ~value:row.Page.pre);
  ignore (Index.add t.parent_index ~key:row.Page.parent ~value:row.Page.pre);
  t.rows <- t.rows + 1

(* Insert into pages and indexes without touching the log (used both
   by the public insert and by WAL recovery). *)
let insert_unlogged t row =
  if Index.find_first t.pre_index ~key:row.Page.pre <> None then
    invalid_arg (Printf.sprintf "Node_table.insert: duplicate pre %d" row.Page.pre);
  if Bytes.length row.Page.share > Wal.max_share_len then
    invalid_arg
      (Printf.sprintf "Node_table.insert: share of %d bytes exceeds the %d-byte limit"
         (Bytes.length row.Page.share) Wal.max_share_len);
  let try_add page_idx =
    let page = Pager.get t.pager page_idx in
    match Page.add_row page row with
    | Some slot ->
        Pager.mark_dirty t.pager page_idx;
        Some (locator ~page:page_idx ~slot)
    | None -> None
  in
  let loc =
    let existing = if t.fill_page >= 0 then try_add t.fill_page else None in
    match existing with
    | Some loc -> loc
    | None ->
        let fresh = Page.create ~size:(Pager.page_size t.pager) in
        let idx = Pager.append t.pager fresh in
        t.fill_page <- idx;
        (match try_add idx with
        | Some loc -> loc
        | None -> invalid_arg "Node_table.insert: row does not fit in a fresh page")
  in
  index_row t row loc

(* Caller holds [write_lock].  Durability ordering — each step must be
   complete before the next begins:
     1. WAL: dirty page images + commit record, fsynced   (Pager.flush
        runs the write barrier before any heap write)
     2. heap: page images and the file header written
     3. heap: fsync
     4. WAL: checkpoint record, fsync, truncate
   Step 4 after step 3 is the lost-write fix: the log may only forget
   changes the heap has durably promised to keep.  Truncating before
   the heap fsync would leave a crash window where neither file holds
   the data. *)
let flush_locked t =
  Pager.flush t.pager;
  match t.wal with
  | None -> ()
  | Some wal ->
      Pager.sync t.pager;
      Wal.checkpoint wal;
      t.since_checkpoint <- 0

(* Inserts are serialised by [write_lock]; index and page reads take
   no lock at all (see the .mli for the read-after-load discipline). *)
let insert t row =
  Mutex.lock t.write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.write_lock)
    (fun () ->
      insert_unlogged t row;
      match t.wal with
      | None -> ()
      | Some wal -> (
          (match Wal.append_row wal row with
          | Ok () -> ()
          | Error (Wal.Share_too_large n) ->
              (* unreachable: insert_unlogged bounds the share first *)
              invalid_arg
                (Printf.sprintf "Node_table.insert: share of %d bytes too large" n));
          t.since_checkpoint <- t.since_checkpoint + 1;
          match t.checkpoint_every with
          | Some every when t.since_checkpoint >= every -> flush_locked t
          | _ -> ()))

let fetch t loc =
  let page = Pager.get t.pager (locator_page loc) in
  Page.get_row page (locator_slot loc)

(* --- recovery ------------------------------------------------------ *)

(* During recovery [tolerate_holes] repairs hole pages: a page below
   the heap frontier that never reached the disk, because it was still
   dirty in the cache when the process died while a higher-index page
   was evicted (logged and heap-written) past it.  Such a page reads
   back as zeros (or a torn fragment) and fails [Page.deserialize].
   Every row it held was inserted after the last checkpoint — a
   checkpoint heap-writes every dirty page — so the log's row records
   re-create them all; the hole itself is backfilled with a valid
   empty page image so the heap is self-consistent again.  The redo
   pass runs first, so any page with a logged image is already valid
   here: what still fails to read is exactly a hole. *)
let rebuild_indexes ?(tolerate_holes = false) t =
  for pidx = 0 to Pager.page_count t.pager - 1 do
    let page =
      match Pager.get t.pager pidx with
      | page -> page
      | exception Failure _ when tolerate_holes ->
          let empty = Page.create ~size:(Pager.page_size t.pager) in
          Pager.install_page t.pager pidx (Page.serialize empty);
          Obs.Registry.inc obs_backfilled_pages;
          Pager.get t.pager pidx
    in
    Page.iter_rows page ~f:(fun slot row -> index_row t row (locator ~page:pidx ~slot))
  done;
  t.fill_page <- Pager.page_count t.pager - 1

let empty_plan =
  {
    Wal.redo_pages = [];
    redo_rows = [];
    last_checkpoint = None;
    max_lsn = 0L;
    records = 0;
    valid_bytes = 0;
    discarded_bytes = 0;
  }

let[@init_path
     "recovery and index rebuild run before the table is published; no other executor \
      can reach it"] open_file ?cache_pages ?(durable = false) ?checkpoint_every path =
  (* Scan the log (if any) before opening the heap: its page images
     determine whether a short/torn heap file is tolerable. *)
  let plan_result =
    if Sys.file_exists (wal_path path) then Wal.scan (wal_path path)
    else Ok empty_plan
  in
  match plan_result with
  | Error msg -> Error ("wal: " ^ msg)
  | Ok plan -> (
      let recovering = plan.Wal.records > 0 in
      let pager_result =
        match Pager.open_file ?cache_pages ~recovery:recovering path with
        | Ok _ as ok -> ok
        | Error _ as e when not recovering -> e
        | Error _ -> (
            (* The heap file is unreadable (missing, empty, or torn
               header) while the log holds records.  A completed
               checkpoint always leaves a durable valid heap header
               behind (the heap is fsynced before the log truncates),
               so an unreadable header proves no checkpoint ever
               completed — the log still holds every change since the
               table was created, and the heap is rebuilt from it. *)
            let page_size =
              match plan.Wal.redo_pages with
              | (_, image) :: _ -> Some (Bytes.length image)
              | [] -> None
            in
            match Pager.create_file ?page_size ?cache_pages path with
            | pager -> Ok pager
            | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))
      in
      match pager_result with
      | Error _ as e -> e
      | Ok pager -> (
          let t = make ?checkpoint_every pager in
          (* From here on the pager fd (and later the WAL fd) must not
             leak: every early return closes what is open so repeated
             failed opens do not exhaust descriptors. *)
          match
            (* Redo pass: lay logged post-images over the heap file.
               Every CRC-valid image is applied (newest LSN per page)
               — an image was only ever logged en route to a heap
               write, so a page that differs is exactly a torn or lost
               write. *)
            List.iter
              (fun (idx, image) -> Pager.install_page pager idx image)
              plan.Wal.redo_pages;
            rebuild_indexes ~tolerate_holes:recovering t;
            (* Row redo: re-insert logged rows the redone pages do not
               already hold (rows acknowledged after the last page
               flush). *)
            List.iter
              (fun row ->
                if Index.find_first t.pre_index ~key:row.Page.pre = None then
                  insert_unlogged t row)
              plan.Wal.redo_rows
          with
          | exception Invalid_argument msg ->
              Pager.abort pager;
              Error msg
          | exception Failure msg ->
              Pager.abort pager;
              Error msg
          | exception Unix.Unix_error (err, _, _) ->
              (* ENOSPC/EIO from the redo writes: fail the open without
                 leaking the pager fd *)
              Pager.abort pager;
              Error (Unix.error_message err)
          | () ->
              if recovering then begin
                t.recovery <-
                  Some
                    {
                      redo_pages = List.length plan.Wal.redo_pages;
                      redo_rows = List.length plan.Wal.redo_rows;
                      wal_records = plan.Wal.records;
                      discarded_bytes = plan.Wal.discarded_bytes;
                    };
                Obs.Registry.inc obs_recoveries;
                Obs.Registry.inc ~by:(List.length plan.Wal.redo_pages) obs_redo_pages;
                Obs.Registry.inc ~by:(List.length plan.Wal.redo_rows) obs_redo_rows
              end;
              if durable || recovering then begin
                match Wal.open_existing (wal_path path) with
                | Error msg ->
                    Pager.abort pager;
                    Error ("wal: " ^ msg)
                | Ok wal -> (
                    match
                      attach_wal t wal;
                      (* Checkpoint the recovered state so the next
                         crash replays only new work.  Ordering as in
                         [flush_locked]: heap flushed and fsynced
                         before the log truncates. *)
                      if recovering then flush_locked t;
                      if not durable then begin
                        (* the caller did not ask for a durable table:
                           recovery is done, detach the log *)
                        Pager.set_write_barrier pager None;
                        t.wal <- None;
                        Wal.close wal
                      end
                    with
                    | exception Failure msg ->
                        Wal.close wal;
                        Pager.abort pager;
                        Error msg
                    | exception Unix.Unix_error (err, _, _) ->
                        (* e.g. the post-recovery checkpoint's fsync
                           failing: close both fds, report an Error *)
                        Wal.close wal;
                        Pager.abort pager;
                        Error (Unix.error_message err)
                    | () -> Ok t)
              end
              else Ok t))

let recovery_stats t = t.recovery

let find_by_pre t pre =
  match Index.find_first t.pre_index ~key:pre with
  | Some loc -> Some (fetch t loc)
  | None -> None

let root t =
  match Index.find_first t.parent_index ~key:0 with
  | Some pre -> find_by_pre t pre
  | None -> None

let children t ~parent =
  List.filter_map (fun pre -> find_by_pre t pre) (Index.find_all t.parent_index ~key:parent)

let fold_descendants t ~pre ~post ~init ~f =
  Index.fold_from t.pre_index ~key:(pre + 1) ~init ~f:(fun acc ~key:_ ~value:loc ->
      let row = fetch t loc in
      if row.Page.post < post then Some (f acc row) else None)

let descendants t ~pre ~post =
  List.rev (fold_descendants t ~pre ~post ~init:[] ~f:(fun acc row -> row :: acc))

let scan_range t ~from_pre ~below_post ~max_rows =
  let max_rows = max 1 max_rows in
  let resume = ref None in
  let count = ref 0 in
  let rows =
    Index.fold_from t.pre_index ~key:from_pre ~init:[]
      ~f:(fun rows ~key:_ ~value:loc ->
        let row = fetch t loc in
        if row.Page.post >= below_post then None
        else if !count >= max_rows then begin
          (* budget hit: this row was not taken, restart here *)
          resume := Some row.Page.pre;
          None
        end
        else begin
          incr count;
          Some (row :: rows)
        end)
  in
  (List.rev rows, !resume)

let parent_of t ~pre =
  match find_by_pre t pre with
  | None -> None
  | Some row ->
      if row.Page.parent = 0 then None else find_by_pre t row.Page.parent

let row_count t = t.rows
let data_bytes t = Pager.data_bytes t.pager

let index_bytes t =
  Index.footprint_bytes t.pre_index
  + Index.footprint_bytes t.post_index
  + Index.footprint_bytes t.parent_index

let iter t ~f =
  for pidx = 0 to Pager.page_count t.pager - 1 do
    let page = Pager.get t.pager pidx in
    Page.iter_rows page ~f:(fun _ row -> f row)
  done

let flush t =
  Mutex.lock t.write_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.write_lock) (fun () -> flush_locked t)

let close t =
  flush t;
  Pager.close t.pager;
  match t.wal with None -> () | Some wal -> Wal.close wal
