(** Low-level durable I/O for the storage engine.

    Every byte the store writes to disk flows through this module, for
    three reasons:

    - {b Short writes are retried.}  [Unix.write] may write fewer
      bytes than asked (signal interruption, pipe-capacity pressure);
      the pager and the WAL used to [failwith] on that, crashing the
      server and tearing the page mid-image.  [write_all] loops until
      the buffer is on its way to the kernel, retrying [EINTR].
    - {b Tests can substitute a fake fd layer.}  [set_ops] swaps the
      write/fsync/ftruncate primitives process-wide, so the test suite
      can model a kernel page cache that loses un-fsynced writes on
      power loss and prove the checkpoint ordering (heap fsync
      {e before} WAL truncation) rather than eyeball it.
    - {b Crash points can be injected.}  The torn-write failpoint
      makes the Nth matching write emit only half its buffer and then
      die (or raise), reproducing a torn page under a crash exactly
      where the WAL protocol must cover it. *)

type ops = {
  write : Unix.file_descr -> bytes -> int -> int -> int;
      (** Same contract as [Unix.write]: may be partial. *)
  fsync : Unix.file_descr -> unit;
  ftruncate : Unix.file_descr -> int -> unit;
}

val real_ops : ops
(** The genuine [Unix] primitives. *)

val set_ops : ops option -> unit
(** Install a substitute I/O layer ([None] restores [real_ops]).
    Test-only seam; affects every store fd in the process. *)

val fsync : Unix.file_descr -> unit
val ftruncate : Unix.file_descr -> int -> unit

(** What kind of write a call site is performing — the torn-write
    failpoint is armed against a specific kind so a test can tear page
    images without also tearing WAL appends (or vice versa). *)
type write_kind = Page_write | Wal_write | Header_write

val write_all : kind:write_kind -> Unix.file_descr -> bytes -> unit
(** Write the whole buffer at the fd's current offset, retrying
    partial and [EINTR]-interrupted writes.
    @raise Failure if the fd accepts no further bytes. *)

val really_read : Unix.file_descr -> bytes -> int -> int -> unit
(** Read exactly [len] bytes, retrying partial and interrupted reads.
    @raise Failure on end-of-file before [len] bytes arrived. *)

(** {2 Torn-write failpoint} *)

type torn_action =
  | Torn_raise  (** raise [Failure "torn write injected"] (in-process tests) *)
  | Torn_exit of int  (** [Unix._exit code] — die like a power loss (harness) *)

val arm_torn_write : kind:write_kind -> after:int -> action:torn_action -> unit
(** The [after]-th subsequent [write_all] of the given kind (1-based)
    writes only the first half of its buffer and then performs
    [action].  Only one failpoint is armed at a time. *)

val disarm_torn_write : unit -> unit

val torn_write_armed : unit -> bool
