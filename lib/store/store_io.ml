type ops = {
  write : Unix.file_descr -> bytes -> int -> int -> int;
  fsync : Unix.file_descr -> unit;
  ftruncate : Unix.file_descr -> int -> unit;
}

let real_ops =
  { write = Unix.write; fsync = Unix.fsync; ftruncate = Unix.ftruncate }

let current = ref real_ops
let set_ops = function None -> current := real_ops | Some ops -> current := ops
let fsync fd = !current.fsync fd
let ftruncate fd len = !current.ftruncate fd len

type write_kind = Page_write | Wal_write | Header_write

type torn_action = Torn_raise | Torn_exit of int

type failpoint = { fp_kind : write_kind; mutable remaining : int; action : torn_action }

let failpoint : failpoint option ref = ref None

let arm_torn_write ~kind ~after ~action =
  if after < 1 then invalid_arg "Store_io.arm_torn_write: after must be >= 1";
  failpoint := Some { fp_kind = kind; remaining = after; action }

let disarm_torn_write () = failpoint := None
let torn_write_armed () = !failpoint <> None

(* Write [len] bytes from [off], retrying partial writes and EINTR.
   Progress of 0 means the fd will never accept more — fail rather
   than spin. *)
let rec write_range fd buf off len =
  if len > 0 then begin
    match !current.write fd buf off len with
    | 0 -> failwith "Store_io.write_all: write returned 0 bytes"
    | n -> write_range fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_range fd buf off len
  end

let write_all ~kind fd buf =
  let len = Bytes.length buf in
  let tear =
    match !failpoint with
    | Some fp when fp.fp_kind = kind ->
        fp.remaining <- fp.remaining - 1;
        fp.remaining = 0
    | _ -> false
  in
  if not tear then write_range fd buf 0 len
  else begin
    (* a torn write: half the buffer reaches the file, then the
       process dies (or the injection site raises, for in-process
       tests).  The failpoint disarms itself so recovery code running
       in the same process is not re-torn. *)
    let action = (Option.get !failpoint).action in
    failpoint := None;
    write_range fd buf 0 (len / 2);
    match action with
    | Torn_exit code -> Unix._exit code
    | Torn_raise -> failwith "torn write injected"
  end

let rec really_read fd buf off len =
  if len > 0 then begin
    match Unix.read fd buf off len with
    | 0 -> failwith "Store_io.really_read: unexpected end of file"
    | n -> really_read fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_read fd buf off len
  end
