let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc byte =
  let table = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xFFl) in
  Int32.logxor table.(idx) (Int32.shift_right_logical crc 8)

let digest_bytes ?(off = 0) ?len buf =
  let len = Option.value len ~default:(Bytes.length buf - off) in
  let crc = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    crc := update !crc (Bytes.get_uint8 buf i)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let digest_string s = digest_bytes (Bytes.unsafe_of_string s)
