(** The flat relational table of encoded nodes — the paper's MySQL
    back-end (§5.1).

    Each row holds the [pre], [post] and [parent] sequence numbers (the
    XPath-accelerator encoding of the tree structure) and the server's
    polynomial share.  B+tree indexes on all three columns support the
    axes the query engines need:

    - the root is the unique row with [parent = 0];
    - children of a node are the rows with [parent = pre(node)];
    - descendants of a node are the rows scanned from [pre(node) + 1]
      in [pre] order while [post < post(node)] (document order makes
      the subtree a contiguous [pre] run).

    Sequence numbering convention (as in the paper): [pre] counts open
    tags from 1, [post] counts close tags from 1, and the root's
    [parent] is 0.

    {b Concurrency.}  The read paths ([find_by_pre], [children],
    [scan_range], [fold_descendants], …) take no latches: B+tree
    traversal is a pure walk over index nodes and row fetches go
    through the pager's striped buffer-pool latches, so any number of
    sessions can scan one table in parallel.  Writes are serialised by
    an internal writer lock, but a B+tree being split is not safe to
    traverse — the supported discipline is the serving lifecycle:
    load/encode first (single writer, or [insert] calls from several
    threads), then share the table with any number of lock-free
    readers.  Mixed concurrent read/write is not supported. *)

type t

val create : ?page_size:int -> unit -> t
(** In-memory table. *)

val create_file : ?page_size:int -> ?cache_pages:int -> ?durable:bool -> string -> t
(** Table backed by a page file.  With [durable:true] every insert is
    written (and fsynced) to a write-ahead log at [path ^ ".wal"]
    before being acknowledged; [flush]/[close] checkpoint the pages
    and truncate the log. *)

val open_file : ?cache_pages:int -> string -> (t, string) result
(** Re-open a table; the heap is scanned once to rebuild the indexes.
    If a write-ahead log is present, rows it holds beyond the last
    checkpoint are recovered (a torn log tail is discarded). *)

val insert : t -> Page.row -> unit
(** Append a row.  @raise Invalid_argument on a duplicate [pre]. *)

val find_by_pre : t -> int -> Page.row option
val root : t -> Page.row option
(** The row with [parent = 0]. *)

val children : t -> parent:int -> Page.row list
(** Rows with the given parent, ascending [pre]. *)

val descendants : t -> pre:int -> post:int -> Page.row list
(** All rows strictly inside the subtree of the node with the given
    [pre]/[post] numbers, in document order. *)

val fold_descendants :
  t -> pre:int -> post:int -> init:'a -> f:('a -> Page.row -> 'a) -> 'a
(** Streaming variant of [descendants]. *)

val scan_range :
  t -> from_pre:int -> below_post:int -> max_rows:int -> Page.row list * int option
(** Resumable range scan: up to [max_rows] rows in ascending [pre]
    order starting at [from_pre], stopping at the first row with
    [post >= below_post].  The second component is the [pre] to resume
    from when the scan stopped on the row budget ([None] when the
    range itself was exhausted).  Subtree conventions: a node's strict
    descendants are [(from_pre = pre + 1, below_post = post)]; the
    subtree including the node itself is
    [(from_pre = pre, below_post = post + 1)]. *)

val parent_of : t -> pre:int -> Page.row option
(** The parent row of the node with the given [pre] (None for the
    root or an unknown [pre]). *)

val row_count : t -> int
val data_bytes : t -> int
(** Bytes of page images holding the rows (the paper's "output
    size"). *)

val index_bytes : t -> int
(** Combined footprint of the pre/post/parent B+trees (the paper's
    "index size"). *)

val iter : t -> f:(Page.row -> unit) -> unit
(** Visit all rows in insertion order. *)

val flush : t -> unit
val close : t -> unit
