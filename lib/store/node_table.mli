(** The flat relational table of encoded nodes — the paper's MySQL
    back-end (§5.1).

    Each row holds the [pre], [post] and [parent] sequence numbers (the
    XPath-accelerator encoding of the tree structure) and the server's
    polynomial share.  B+tree indexes on all three columns support the
    axes the query engines need:

    - the root is the unique row with [parent = 0];
    - children of a node are the rows with [parent = pre(node)];
    - descendants of a node are the rows scanned from [pre(node) + 1]
      in [pre] order while [post < post(node)] (document order makes
      the subtree a contiguous [pre] run).

    Sequence numbering convention (as in the paper): [pre] counts open
    tags from 1, [post] counts close tags from 1, and the root's
    [parent] is 0.

    {b Concurrency.}  The read paths ([find_by_pre], [children],
    [scan_range], [fold_descendants], …) take no latches: B+tree
    traversal is a pure walk over index nodes and row fetches go
    through the pager's striped buffer-pool latches, so any number of
    sessions can scan one table in parallel.  Writes are serialised by
    an internal writer lock, but a B+tree being split is not safe to
    traverse — the supported discipline is the serving lifecycle:
    load/encode first (single writer, or [insert] calls from several
    threads), then share the table with any number of lock-free
    readers.  Mixed concurrent read/write is not supported. *)

type t

(** What [open_file] replayed from the write-ahead log, when it did. *)
type recovery_stats = {
  redo_pages : int;  (** logged page images laid over the heap file *)
  redo_rows : int;  (** logged rows re-inserted (not found in redone pages) *)
  wal_records : int;  (** valid records in the scanned log *)
  discarded_bytes : int;  (** torn/corrupt log tail bytes cut off *)
}

val create : ?page_size:int -> unit -> t
(** In-memory table. *)

val create_file :
  ?page_size:int ->
  ?cache_pages:int ->
  ?durable:bool ->
  ?checkpoint_every:int ->
  string ->
  t
(** Table backed by a page file.  With [durable:true] every insert is
    written (and fsynced) to a write-ahead log at [path ^ ".wal"]
    before being acknowledged, and every dirty page image is logged
    and fsynced before it overwrites the heap file (torn-write
    protection); [flush]/[close] checkpoint — heap pages written, heap
    fd fsynced, {e then} the log truncated.  [checkpoint_every:n]
    additionally checkpoints automatically after every [n] inserts,
    bounding log growth and recovery time. *)

val open_file :
  ?cache_pages:int ->
  ?durable:bool ->
  ?checkpoint_every:int ->
  string ->
  (t, string) result
(** Re-open a table.  If a write-ahead log with records is present,
    crash recovery runs first: every CRC-valid page image past the
    last checkpoint is written back over the heap file (newest image
    per page — this repairs torn heap writes, and is why a short heap
    file is tolerated when the log covers it), the indexes are rebuilt
    from the repaired heap, logged rows not yet present are
    re-inserted, and the recovered state is checkpointed.  If the heap
    file itself is unreadable while the log holds records (a crash
    before the first checkpoint ever completed), the heap is rebuilt
    from the log alone.  A hole page — one below the heap frontier
    that never reached the disk because it was still dirty in the
    cache when a later page was evicted past it — is backfilled as an
    empty page and its rows are re-inserted from the log.  A torn or
    corrupt log tail is discarded.  [recovery_stats] reports what was
    replayed.  [durable]/[checkpoint_every] select the same durable
    write path as [create_file] (a table created without [durable] is
    adopted: a fresh log is started for it); without [durable] the log
    is detached again once recovery completes.  No file descriptor is
    leaked on any error path. *)

val recovery_stats : t -> recovery_stats option
(** What the open replayed; [None] when the table opened clean (or was
    just created). *)

val insert : t -> Page.row -> unit
(** Append a row.  @raise Invalid_argument on a duplicate [pre]. *)

val find_by_pre : t -> int -> Page.row option
val root : t -> Page.row option
(** The row with [parent = 0]. *)

val children : t -> parent:int -> Page.row list
(** Rows with the given parent, ascending [pre]. *)

val descendants : t -> pre:int -> post:int -> Page.row list
(** All rows strictly inside the subtree of the node with the given
    [pre]/[post] numbers, in document order. *)

val fold_descendants :
  t -> pre:int -> post:int -> init:'a -> f:('a -> Page.row -> 'a) -> 'a
(** Streaming variant of [descendants]. *)

val scan_range :
  t -> from_pre:int -> below_post:int -> max_rows:int -> Page.row list * int option
(** Resumable range scan: up to [max_rows] rows in ascending [pre]
    order starting at [from_pre], stopping at the first row with
    [post >= below_post].  The second component is the [pre] to resume
    from when the scan stopped on the row budget ([None] when the
    range itself was exhausted).  Subtree conventions: a node's strict
    descendants are [(from_pre = pre + 1, below_post = post)]; the
    subtree including the node itself is
    [(from_pre = pre, below_post = post + 1)]. *)

val parent_of : t -> pre:int -> Page.row option
(** The parent row of the node with the given [pre] (None for the
    root or an unknown [pre]). *)

val row_count : t -> int
val data_bytes : t -> int
(** Bytes of page images holding the rows (the paper's "output
    size"). *)

val index_bytes : t -> int
(** Combined footprint of the pre/post/parent B+trees (the paper's
    "index size"). *)

val iter : t -> f:(Page.row -> unit) -> unit
(** Visit all rows in insertion order. *)

val flush : t -> unit
(** Checkpoint the table: dirty page images logged to the WAL (with a
    commit record, fsynced), written to the heap file, heap fd
    fsynced, and only then the log truncated.  The ordering is the
    durability contract — the log never forgets data the heap has not
    durably accepted. *)

val close : t -> unit
