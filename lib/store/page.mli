(** Slotted pages holding encoded node rows.

    A row is one line of the paper's flat relational table: the
    [pre], [post] and [parent] sequence numbers plus the server's
    share of the node polynomial (§5.1).  Pages serialise to a fixed
    size with a CRC-32 checksum. *)

type row = { pre : int; post : int; parent : int; share : bytes }

val row_equal : row -> row -> bool
val pp_row : Format.formatter -> row -> unit

type t

val size : t -> int
val create : size:int -> t

val add_row : t -> row -> int option
(** Append a row; [Some slot] on success, [None] when the page has no
    room left.  @raise Invalid_argument if the row could never fit
    even in an empty page, or if a sequence number is outside
    [0, 2^31). *)

val get_row : t -> int -> row
(** @raise Invalid_argument on an out-of-range slot. *)

val row_count : t -> int
val used_bytes : t -> int

val iter_rows : t -> f:(int -> row -> unit) -> unit
(** Visit rows as [(slot, row)] in slot order. *)

val serialize : t -> bytes
(** Fixed-size image with an embedded checksum. *)

val deserialize : bytes -> (t, string) result
(** Rejects images with a bad magic number or checksum. *)
