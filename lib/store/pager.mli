(** Page storage with a buffer pool.

    Backing stores: anonymous memory (the default for benchmarks) or a
    file of fixed-size page images.  File mode keeps a bounded LRU
    cache of deserialised pages and writes dirty pages back on
    eviction and flush.

    {b Concurrency.}  File mode is safe for concurrent use: the buffer
    pool is split into latch stripes (a page always hashes to the same
    stripe), so sessions faulting different pages rarely contend, and
    the shared file descriptor's seek+read/write pairs are serialised
    by a dedicated I/O lock below the stripe latches.  Memory mode has
    no latches: it is written by the single-threaded encoder and is
    safe for any number of readers once encoding has finished (the
    append path must not run concurrently with readers). *)

type t

(** Runtime witness for the pager's declared lock order (meta ->
    stripe -> io).  Enabled by [SSDB_LOCK_CHECK=1] in the environment
    (or [set_enabled true]); every acquisition then records its rank
    on a per-thread stack and an out-of-order acquisition raises
    [Failure] instead of risking a deadlock in production.  This
    cross-validates ssdb_lint's lexical lock-order pass at runtime,
    across the function boundaries the static pass cannot see.
    [acquired]/[released] are exposed so tests can drive the witness
    directly; pager internals call them on every latch operation. *)
module Lock_check : sig
  type rank = Meta | Stripe | Io

  val set_enabled : bool -> unit
  val acquired : rank -> unit
  val released : rank -> unit
end

val in_memory : ?page_size:int -> unit -> t
(** All pages live on the OCaml heap; [flush] is a no-op. *)

val create_file : ?page_size:int -> ?cache_pages:int -> string -> t
(** Create (truncate) a page file.  [cache_pages] bounds the buffer
    pool (default 256). *)

val open_file : ?cache_pages:int -> ?recovery:bool -> string -> (t, string) result
(** Open an existing page file; the page size is recovered from the
    file header.  Fails on a bad header or torn page file.
    [~recovery:true] tolerates a file shorter than its header promises
    — the caller (WAL recovery) is about to [install_page] logged
    images over the damage before anything reads it. *)

val page_size : t -> int
val page_count : t -> int

val append : t -> Page.t -> int
(** Add a page, returning its index.  The page must have the pager's
    page size.  @raise Invalid_argument otherwise. *)

val get : t -> int -> Page.t
(** Fetch a page (through the cache in file mode).  The returned page
    is shared: mutations are visible to other [get]s; call
    [mark_dirty] after mutating.  @raise Invalid_argument on an
    out-of-range index; @raise Failure on a corrupt page image. *)

val mark_dirty : t -> int -> unit

val set_write_barrier : t -> ((int * bytes) list -> unit) option -> unit
(** Install (or clear) the write-ahead hook.  Before any dirty page
    image is written over the heap file — on [flush] or cache eviction
    — the barrier is called with the exact serialized images about to
    land.  The durable node table points this at the WAL: it logs the
    images and fsyncs, so a torn heap write is always repairable by
    redo.  Latency caveat: [flush] runs the barrier with no latches
    held, but evicting a {e dirty} victim runs it under that stripe's
    latch, so a cache-miss read on the same stripe stalls behind the
    log append + fsync — size [cache_pages] so dirty evictions are
    rare under read-heavy load.  No-op in memory mode. *)

val flush : t -> unit
(** Write every dirty cached page (through the barrier, if set) and
    the file header.  Does {e not} fsync — call [sync]. *)

val sync : t -> unit
(** fsync the heap fd: everything flushed so far is durable.  No-op in
    memory mode. *)

val install_page : t -> int -> bytes -> unit
(** Recovery-only: write a serialized page image directly at the given
    index, bypassing and invalidating the cache, extending the file if
    the index is past the current frontier.  The image is validated
    ([Page.deserialize]) before anything is written.
    @raise Invalid_argument on memory backing or a size mismatch;
    @raise Failure if the image does not deserialize. *)

val close : t -> unit
(** [flush], [sync], then close the fd. *)

val abort : t -> unit
(** Close the fd {e without} flushing — for error paths where the
    in-memory state is suspect and must not reach the disk. *)

val data_bytes : t -> int
(** Total bytes of page images (page_count * page_size). *)

type cache_stats = { hits : int; misses : int; evictions : int }

val cache_stats : t -> cache_stats
