(** Page storage with a buffer pool.

    Backing stores: anonymous memory (the default for benchmarks) or a
    file of fixed-size page images.  File mode keeps a bounded LRU
    cache of deserialised pages and writes dirty pages back on
    eviction and flush.

    {b Concurrency.}  File mode is safe for concurrent use: the buffer
    pool is split into latch stripes (a page always hashes to the same
    stripe), so sessions faulting different pages rarely contend, and
    the shared file descriptor's seek+read/write pairs are serialised
    by a dedicated I/O lock below the stripe latches.  Memory mode has
    no latches: it is written by the single-threaded encoder and is
    safe for any number of readers once encoding has finished (the
    append path must not run concurrently with readers). *)

type t

val in_memory : ?page_size:int -> unit -> t
(** All pages live on the OCaml heap; [flush] is a no-op. *)

val create_file : ?page_size:int -> ?cache_pages:int -> string -> t
(** Create (truncate) a page file.  [cache_pages] bounds the buffer
    pool (default 256). *)

val open_file : ?cache_pages:int -> string -> (t, string) result
(** Open an existing page file; the page size is recovered from the
    file header.  Fails on a bad header or torn page file. *)

val page_size : t -> int
val page_count : t -> int

val append : t -> Page.t -> int
(** Add a page, returning its index.  The page must have the pager's
    page size.  @raise Invalid_argument otherwise. *)

val get : t -> int -> Page.t
(** Fetch a page (through the cache in file mode).  The returned page
    is shared: mutations are visible to other [get]s; call
    [mark_dirty] after mutating.  @raise Invalid_argument on an
    out-of-range index; @raise Failure on a corrupt page image. *)

val mark_dirty : t -> int -> unit
val flush : t -> unit
val close : t -> unit

val data_bytes : t -> int
(** Total bytes of page images (page_count * page_size). *)

type cache_stats = { hits : int; misses : int; evictions : int }

val cache_stats : t -> cache_stats
