(** Page-level redo write-ahead log for the node table.

    The paper's prototype delegates durability to MySQL; this storage
    engine earns the same guarantee with an ARIES-style redo log.  Two
    record granularities cooperate:

    - {b Row records} make each insert durable the moment it is
      acknowledged: the row is appended (CRC-framed, with an LSN) and
      fsynced before [Node_table.insert] returns.
    - {b Page-image records} close the torn-page hole that row redo
      alone cannot: before the pager overwrites any dirty page in the
      heap file, the full post-image is logged and fsynced.  If the
      heap write is then torn by a crash, recovery lays the logged
      image back over the damaged page — whole-page redo is oblivious
      to how little of the in-place write survived.

    Commit records mark the end of each flush batch; a checkpoint
    record (followed by truncation to the file header) certifies that
    every logged change is durable in the heap file.  The node table
    writes the checkpoint only {e after} fsyncing the heap fd, so the
    log never forgets data the heap has not yet promised to keep.

    Record framing is [u32 length | u32 crc32 | payload]; a torn tail
    or corrupted record fails its CRC and scanning stops cleanly at
    the last valid prefix. *)

type t

(** Typed append failures.  A share longer than [max_share_len] would
    not fit a page cell (whose length field is u16) and is rejected
    outright — the previous format silently truncated the length to
    16 bits and corrupted the log. *)
type append_error = Share_too_large of int

val max_share_len : int

val create : string -> t
(** Create (or truncate) a log file and write its header. *)

val open_existing : string -> (t, string) result
(** Open an existing log for appending.  The file is scanned first:
    [entry_count] reflects the records actually present, the next LSN
    continues past the largest logged LSN, and a torn tail is
    truncated away so later appends extend the valid prefix.  A
    missing file is created fresh ([create] semantics), so a table
    encoded without durability can later be opened durable. *)

val append_row : t -> Page.row -> (unit, append_error) result
(** Append one committed-row record and fsync the log. *)

val append_page_images : t -> (int * bytes) list -> unit
(** Append one page-image record per [(page index, serialized image)]
    pair, without syncing — callers batch images and then [sync]. *)

val append_commit : t -> unit
(** Append a commit record marking the end of a flush batch (no
    sync). *)

val sync : t -> unit
(** fsync the log fd: everything appended so far is durable. *)

val checkpoint : t -> unit
(** The heap file has been fsynced and covers every logged change:
    append a checkpoint record, fsync, truncate the log back to its
    header and fsync again.  A crash between those steps leaves a
    checkpoint record whose LSN tells recovery to ignore everything
    logged before it. *)

(** What a scan of the log prescribes for recovery. *)
type recovery_plan = {
  redo_pages : (int * bytes) list;
      (** newest logged image per page (ascending page index) past the
          last checkpoint; recovery writes these over the heap file *)
  redo_rows : Page.row list;
      (** committed rows logged past the last checkpoint, in append
          order; recovery re-inserts any that the redone pages do not
          already hold *)
  last_checkpoint : int64 option;  (** LSN of the last checkpoint record *)
  max_lsn : int64;  (** largest LSN in the valid prefix (0 when empty) *)
  records : int;  (** valid records in the scanned prefix *)
  valid_bytes : int;  (** length of the valid prefix, header included *)
  discarded_bytes : int;  (** torn/corrupt bytes past the valid prefix *)
}

val scan : string -> (recovery_plan, string) result
(** Read a log file and compute its recovery plan.  A torn or
    CRC-corrupt record ends the scan cleanly (the valid prefix is
    used); an unreadable file or a foreign header is an [Error]. *)

val entry_count : t -> int
(** Records in the log right now: counted on open, incremented per
    append, reset by [checkpoint]. *)

val next_lsn : t -> int64
val close : t -> unit
