(** A write-ahead log for the node table.

    The paper's prototype delegates durability to MySQL; our storage
    engine gets the same guarantee with a minimal ARIES-style redo log:
    every inserted row is appended (CRC-framed) to the log before it is
    acknowledged, the pager checkpoints pages on [flush], and re-opening
    after a crash replays whatever the log holds beyond the last
    checkpoint.  A torn tail (partial final record) is detected by the
    framing checksum and discarded. *)

type t

val create : string -> t
(** Create or truncate a log file. *)

val open_existing : string -> (t, string) result
(** Open an existing log for appending (the file may be empty). *)

val append_insert : t -> Page.row -> unit
(** Append one insert record and fsync it.
    @raise Failure on write errors. *)

val checkpoint : t -> unit
(** All logged rows are now safely in the data file: truncate the
    log. *)

val replay : string -> (Page.row list, string) result
(** Read the records of a log file in append order, stopping cleanly
    at a torn or corrupt tail (the valid prefix is returned).  Returns
    an error only if the file cannot be read at all. *)

val entry_count : t -> int
(** Records appended since the last checkpoint (this process's view). *)

val close : t -> unit
