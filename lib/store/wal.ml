(* Record framing:
     u32  payload length
     u32  crc32 of the payload
     ...  payload: u32 pre, u32 post, u32 parent, u16 share length, share *)

type t = { fd : Unix.file_descr; mutable entries : int }

let create path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  { fd; entries = 0 }

let open_existing path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
  | fd ->
      ignore (Unix.lseek fd 0 Unix.SEEK_END);
      Ok { fd; entries = 0 }
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let encode_row (row : Page.row) =
  let share_len = Bytes.length row.Page.share in
  let payload = Bytes.create (14 + share_len) in
  Bytes.set_int32_le payload 0 (Int32.of_int row.Page.pre);
  Bytes.set_int32_le payload 4 (Int32.of_int row.Page.post);
  Bytes.set_int32_le payload 8 (Int32.of_int row.Page.parent);
  Bytes.set_uint16_le payload 12 share_len;
  Bytes.blit row.Page.share 0 payload 14 share_len;
  payload

let decode_row payload =
  if Bytes.length payload < 14 then None
  else begin
    let pre = Int32.to_int (Bytes.get_int32_le payload 0) in
    let post = Int32.to_int (Bytes.get_int32_le payload 4) in
    let parent = Int32.to_int (Bytes.get_int32_le payload 8) in
    let share_len = Bytes.get_uint16_le payload 12 in
    if Bytes.length payload <> 14 + share_len then None
    else Some { Page.pre; post; parent; share = Bytes.sub payload 14 share_len }
  end

let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd buf off (len - off) in
      if n = 0 then failwith "Wal: short write";
      go (off + n)
    end
  in
  go 0

let append_insert t row =
  let payload = encode_row row in
  let frame = Bytes.create (8 + Bytes.length payload) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length payload));
  Bytes.set_int32_le frame 4 (Crc32.digest_bytes payload);
  Bytes.blit payload 0 frame 8 (Bytes.length payload);
  write_all t.fd frame;
  Unix.fsync t.fd;
  t.entries <- t.entries + 1

let checkpoint t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  Unix.fsync t.fd;
  t.entries <- 0

let replay path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let len = String.length contents in
      let rec go pos acc =
        if pos + 8 > len then List.rev acc
        else begin
          let payload_len = Int32.to_int (String.get_int32_le contents pos) in
          let crc = String.get_int32_le contents (pos + 4) in
          if payload_len < 0 || payload_len > 1 lsl 24 || pos + 8 + payload_len > len
          then List.rev acc (* torn tail *)
          else begin
            let payload = Bytes.of_string (String.sub contents (pos + 8) payload_len) in
            if not (Int32.equal crc (Crc32.digest_bytes payload)) then List.rev acc
            else
              match decode_row payload with
              | None -> List.rev acc
              | Some row -> go (pos + 8 + payload_len) (row :: acc)
          end
        end
      in
      Ok (go 0 [])

let entry_count t = t.entries
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
