module Obs = Secshare_obs

(* File layout:
     8 bytes   magic "SSDBWAL2"
     records   u32 payload length | u32 crc32(payload) | payload

   Payload encodings (all little-endian):
     kind 1  Row         u8 kind, u64 lsn, u32 pre, u32 post, u32 parent,
                         u32 share length, share bytes
     kind 2  Page_image  u8 kind, u64 lsn, u32 page index, image bytes
     kind 3  Commit      u8 kind, u64 lsn
     kind 4  Checkpoint  u8 kind, u64 lsn *)

let magic = "SSDBWAL2"
let header_len = String.length magic

(* Shares live in page cells whose length field is u16; the log field
   is u32 so the format never truncates, and appends reject anything a
   page could not hold anyway. *)
let max_share_len = 0xFFFF

(* One record must fit the scanner's sanity bound with room to spare:
   the largest legal payload is a page image (pages are <= 0xFFFF
   bytes) or a max-share row. *)
let max_payload = 1 lsl 24

type t = {
  fd : Unix.file_descr;
  lock : Mutex.t;  (** serialises appends/sync/checkpoint on the shared fd *)
  mutable entries : int;
  mutable lsn : int64;  (** next LSN to assign *)
}

type append_error = Share_too_large of int

let obs_records =
  Obs.Registry.counter ~help:"Records appended to write-ahead logs."
    "ssdb_wal_records_total"

let obs_bytes =
  Obs.Registry.counter ~help:"Bytes appended to write-ahead logs (framing included)."
    "ssdb_wal_bytes_total"

let obs_fsyncs =
  Obs.Registry.counter ~help:"fsync calls on write-ahead log fds."
    "ssdb_wal_fsyncs_total"

let obs_checkpoints =
  Obs.Registry.counter ~help:"Write-ahead log checkpoints (log truncations)."
    "ssdb_wal_checkpoints_total"

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Store_io.write_all ~kind:Store_io.Wal_write fd (Bytes.of_string magic);
  Store_io.fsync fd;
  { fd; lock = Mutex.create (); entries = 0; lsn = 1L }

(* --- record codecs ------------------------------------------------- *)

type record =
  | Row of int64 * Page.row
  | Page_image of int64 * int * bytes
  | Commit of int64
  | Checkpoint of int64

let encode_record = function
  | Row (lsn, row) ->
      let share_len = Bytes.length row.Page.share in
      let payload = Bytes.create (25 + share_len) in
      Bytes.set_uint8 payload 0 1;
      Bytes.set_int64_le payload 1 lsn;
      Bytes.set_int32_le payload 9 (Int32.of_int row.Page.pre);
      Bytes.set_int32_le payload 13 (Int32.of_int row.Page.post);
      Bytes.set_int32_le payload 17 (Int32.of_int row.Page.parent);
      Bytes.set_int32_le payload 21 (Int32.of_int share_len);
      Bytes.blit row.Page.share 0 payload 25 share_len;
      payload
  | Page_image (lsn, page, image) ->
      let payload = Bytes.create (13 + Bytes.length image) in
      Bytes.set_uint8 payload 0 2;
      Bytes.set_int64_le payload 1 lsn;
      Bytes.set_int32_le payload 9 (Int32.of_int page);
      Bytes.blit image 0 payload 13 (Bytes.length image);
      payload
  | Commit lsn ->
      let payload = Bytes.create 9 in
      Bytes.set_uint8 payload 0 3;
      Bytes.set_int64_le payload 1 lsn;
      payload
  | Checkpoint lsn ->
      let payload = Bytes.create 9 in
      Bytes.set_uint8 payload 0 4;
      Bytes.set_int64_le payload 1 lsn;
      payload

let decode_record payload =
  let len = Bytes.length payload in
  if len < 9 then None
  else
    let lsn = Bytes.get_int64_le payload 1 in
    match Bytes.get_uint8 payload 0 with
    | 1 ->
        if len < 25 then None
        else begin
          let pre = Int32.to_int (Bytes.get_int32_le payload 9) in
          let post = Int32.to_int (Bytes.get_int32_le payload 13) in
          let parent = Int32.to_int (Bytes.get_int32_le payload 17) in
          let share_len = Int32.to_int (Bytes.get_int32_le payload 21) in
          if share_len < 0 || len <> 25 + share_len then None
          else
            Some
              (Row (lsn, { Page.pre; post; parent; share = Bytes.sub payload 25 share_len }))
        end
    | 2 ->
        if len < 13 then None
        else begin
          let page = Int32.to_int (Bytes.get_int32_le payload 9) in
          if page < 0 then None else Some (Page_image (lsn, page, Bytes.sub payload 13 (len - 13)))
        end
    | 3 -> if len = 9 then Some (Commit lsn) else None
    | 4 -> if len = 9 then Some (Checkpoint lsn) else None
    | _ -> None

(* --- appending ----------------------------------------------------- *)

(* Caller holds [t.lock]. *)
let append_record_locked t record =
  let payload = encode_record record in
  let frame = Bytes.create (8 + Bytes.length payload) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length payload));
  Bytes.set_int32_le frame 4 (Crc32.digest_bytes payload);
  Bytes.blit payload 0 frame 8 (Bytes.length payload);
  Store_io.write_all ~kind:Store_io.Wal_write t.fd frame;
  t.entries <- t.entries + 1;
  Obs.Registry.inc obs_records;
  Obs.Registry.inc ~by:(Bytes.length frame) obs_bytes

let take_lsn_locked t =
  let lsn = t.lsn in
  t.lsn <- Int64.add lsn 1L;
  lsn

let sync_locked t =
  Store_io.fsync t.fd;
  Obs.Registry.inc obs_fsyncs

let append_row t row =
  let share_len = Bytes.length row.Page.share in
  if share_len > max_share_len then Error (Share_too_large share_len)
  else begin
    with_lock t.lock (fun () ->
        append_record_locked t (Row (take_lsn_locked t, row));
        sync_locked t);
    Ok ()
  end

let append_page_images t images =
  with_lock t.lock (fun () ->
      List.iter
        (fun (page, image) ->
          append_record_locked t (Page_image (take_lsn_locked t, page, image)))
        images)

let append_commit t =
  with_lock t.lock (fun () -> append_record_locked t (Commit (take_lsn_locked t)))

let sync t = with_lock t.lock (fun () -> sync_locked t)

let checkpoint t =
  with_lock t.lock (fun () ->
      (* The record-then-truncate pair is crash-ordered: if the
         process dies after the fsync of the checkpoint record but
         before the truncation, the surviving log still tells recovery
         (via the checkpoint LSN) that everything before it is already
         durable in the heap. *)
      append_record_locked t (Checkpoint (take_lsn_locked t));
      sync_locked t;
      Store_io.ftruncate t.fd header_len;
      ignore (Unix.lseek t.fd header_len Unix.SEEK_SET);
      sync_locked t;
      t.entries <- 0;
      Obs.Registry.inc obs_checkpoints)

(* --- scanning ------------------------------------------------------ *)

type recovery_plan = {
  redo_pages : (int * bytes) list;
  redo_rows : Page.row list;
  last_checkpoint : int64 option;
  max_lsn : int64;
  records : int;
  valid_bytes : int;
  discarded_bytes : int;
}

let scan path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let len = String.length contents in
      if len > 0 && len < header_len then Error "wal file shorter than its header"
      else if len >= header_len && not (String.equal (String.sub contents 0 header_len) magic)
      then Error "not a wal file (bad magic)"
      else begin
        let records = ref [] and count = ref 0 in
        let rec go pos =
          if pos + 8 > len then pos
          else begin
            let payload_len = Int32.to_int (String.get_int32_le contents pos) in
            let crc = String.get_int32_le contents (pos + 4) in
            if payload_len < 9 || payload_len > max_payload || pos + 8 + payload_len > len
            then pos (* torn tail *)
            else begin
              let payload = Bytes.of_string (String.sub contents (pos + 8) payload_len) in
              if not (Int32.equal crc (Crc32.digest_bytes payload)) then pos
              else
                match decode_record payload with
                | None -> pos
                | Some record ->
                    records := record :: !records;
                    incr count;
                    go (pos + 8 + payload_len)
            end
          end
        in
        let valid_bytes = go (min len header_len) in
        let records = List.rev !records in
        let lsn_of = function
          | Row (lsn, _) | Page_image (lsn, _, _) | Commit lsn | Checkpoint lsn -> lsn
        in
        let max_lsn =
          List.fold_left
            (fun acc r -> if Int64.compare (lsn_of r) acc > 0 then lsn_of r else acc)
            0L records
        in
        let last_checkpoint =
          List.fold_left
            (fun acc r -> match r with Checkpoint lsn -> Some lsn | _ -> acc)
            None records
        in
        let past_ckpt lsn =
          match last_checkpoint with None -> true | Some c -> Int64.compare lsn c > 0
        in
        (* newest image per page wins *)
        let images : (int, int64 * bytes) Hashtbl.t = Hashtbl.create 16 in
        let rows = ref [] in
        List.iter
          (fun r ->
            match r with
            | Row (lsn, row) -> if past_ckpt lsn then rows := row :: !rows
            | Page_image (lsn, page, image) ->
                if past_ckpt lsn then begin
                  match Hashtbl.find_opt images page with
                  | Some (prev, _) when Int64.compare prev lsn > 0 -> ()
                  | _ -> Hashtbl.replace images page (lsn, image)
                end
            | Commit _ | Checkpoint _ -> ())
          records;
        let redo_pages =
          Hashtbl.fold (fun page (_, image) acc -> (page, image) :: acc) images []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        Ok
          {
            redo_pages;
            redo_rows = List.rev !rows;
            last_checkpoint;
            max_lsn;
            records = !count;
            valid_bytes;
            discarded_bytes = len - valid_bytes;
          }
      end

let open_existing path =
  if not (Sys.file_exists path) then
    (* A table created without [durable] has no log at all; a durable
       open adopts it by starting a fresh one, exactly as [create]
       would have. *)
    match create path with
    | wal -> Ok wal
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  else
  match scan path with
  | Error _ as e -> e
  | Ok plan -> (
      match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
      | fd ->
          (* a torn tail is cut off so new appends extend the valid
             prefix instead of hiding behind garbage *)
          if plan.valid_bytes < header_len then begin
            (* fresh or empty file: stamp the header *)
            Store_io.ftruncate fd 0;
            Store_io.write_all ~kind:Store_io.Wal_write fd (Bytes.of_string magic);
            Store_io.fsync fd
          end
          else if plan.discarded_bytes > 0 then begin
            Store_io.ftruncate fd plan.valid_bytes;
            Store_io.fsync fd
          end;
          ignore (Unix.lseek fd 0 Unix.SEEK_END);
          Ok
            {
              fd;
              lock = Mutex.create ();
              entries = plan.records;
              lsn = Int64.add plan.max_lsn 1L;
            })

let entry_count t = with_lock t.lock (fun () -> t.entries)
let next_lsn t = with_lock t.lock (fun () -> t.lsn)
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
