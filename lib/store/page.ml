type row = { pre : int; post : int; parent : int; share : bytes }

let row_equal a b =
  a.pre = b.pre && a.post = b.post && a.parent = b.parent && Bytes.equal a.share b.share

let pp_row fmt r =
  Format.fprintf fmt "{pre=%d; post=%d; parent=%d; share=%d bytes}" r.pre r.post
    r.parent (Bytes.length r.share)

(* Layout:
     0  u16  magic (0x5DB5)
     2  u16  row count
     4  u16  free offset (start of the cell area, grows downward)
     6  u16  reserved
     8  u32  crc32 of bytes [12, size)
     12 ...  slot directory: u16 cell offset per row
     ...     cells, from the end of the page downward:
             u32 pre, u32 post, u32 parent, u16 share length, share *)

let header_size = 12
let magic = 0x5DB5
let slot_size = 2

type t = { data : bytes; mutable count : int; mutable free_off : int }

let size t = Bytes.length t.data

let create ~size =
  if size < 64 then invalid_arg "Page.create: page size too small";
  if size > 0xFFFF then invalid_arg "Page.create: page size must fit in 16 bits";
  { data = Bytes.make size '\000'; count = 0; free_off = size }

let cell_size row = 4 + 4 + 4 + 2 + Bytes.length row.share

let check_seq what v =
  if v < 0 || v >= 1 lsl 31 then
    invalid_arg (Printf.sprintf "Page.add_row: %s=%d out of [0, 2^31)" what v)

let add_row t row =
  check_seq "pre" row.pre;
  check_seq "post" row.post;
  check_seq "parent" row.parent;
  let need = cell_size row in
  if need + slot_size > Bytes.length t.data - header_size then
    invalid_arg "Page.add_row: row larger than a page";
  let slot_end = header_size + ((t.count + 1) * slot_size) in
  if t.free_off - need < slot_end then None
  else begin
    let off = t.free_off - need in
    Bytes.set_int32_le t.data off (Int32.of_int row.pre);
    Bytes.set_int32_le t.data (off + 4) (Int32.of_int row.post);
    Bytes.set_int32_le t.data (off + 8) (Int32.of_int row.parent);
    Bytes.set_uint16_le t.data (off + 12) (Bytes.length row.share);
    Bytes.blit row.share 0 t.data (off + 14) (Bytes.length row.share);
    Bytes.set_uint16_le t.data (header_size + (t.count * slot_size)) off;
    t.free_off <- off;
    t.count <- t.count + 1;
    Some (t.count - 1)
  end

let get_row t slot =
  if slot < 0 || slot >= t.count then
    invalid_arg (Printf.sprintf "Page.get_row: slot %d out of [0, %d)" slot t.count);
  let off = Bytes.get_uint16_le t.data (header_size + (slot * slot_size)) in
  let pre = Int32.to_int (Bytes.get_int32_le t.data off) in
  let post = Int32.to_int (Bytes.get_int32_le t.data (off + 4)) in
  let parent = Int32.to_int (Bytes.get_int32_le t.data (off + 8)) in
  let share_len = Bytes.get_uint16_le t.data (off + 12) in
  let share = Bytes.sub t.data (off + 14) share_len in
  { pre; post; parent; share }

let row_count t = t.count
let used_bytes t = header_size + (t.count * slot_size) + (size t - t.free_off)

let iter_rows t ~f =
  for slot = 0 to t.count - 1 do
    f slot (get_row t slot)
  done

let serialize t =
  let out = Bytes.copy t.data in
  Bytes.set_uint16_le out 0 magic;
  Bytes.set_uint16_le out 2 t.count;
  Bytes.set_uint16_le out 4 t.free_off;
  Bytes.set_uint16_le out 6 0;
  let crc = Crc32.digest_bytes ~off:header_size out in
  Bytes.set_int32_le out 8 crc;
  out

let deserialize image =
  if Bytes.length image < 64 then Error "page image too small"
  else if Bytes.get_uint16_le image 0 <> magic then Error "bad page magic"
  else begin
    let stored_crc = Bytes.get_int32_le image 8 in
    let crc = Crc32.digest_bytes ~off:header_size image in
    if not (Int32.equal stored_crc crc) then Error "page checksum mismatch"
    else begin
      let count = Bytes.get_uint16_le image 2 in
      let free_off = Bytes.get_uint16_le image 4 in
      Ok { data = Bytes.copy image; count; free_off }
    end
  end
