(** CRC-32 (IEEE 802.3 polynomial), used as the page checksum of the
    storage engine. *)

val digest_bytes : ?off:int -> ?len:int -> bytes -> int32
val digest_string : string -> int32
