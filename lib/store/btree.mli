(** An in-memory B+tree over integer keys.

    This is the index structure behind the node table — the stand-in
    for the B-tree indexes MySQL maintains on the [pre], [post] and
    [parent] columns in the paper's prototype (§5.1).  Keys are unique
    62-bit non-negative integers; secondary indexes with duplicates are
    layered on top by packing [(column_value, row_id)] composites (see
    {!Index}).

    Leaves are linked for ordered range scans; internal nodes hold
    separator keys.  All of insert / member / delete / range run in
    O(log n) node visits. *)

type t

val create : ?order:int -> unit -> t
(** [order] is the maximum number of keys per node (default 64;
    minimum 4). *)

val insert : t -> int -> bool
(** [insert t k] adds [k]; returns [false] (and leaves the tree
    unchanged) if [k] was already present.
    @raise Invalid_argument on negative keys. *)

val mem : t -> int -> bool

val delete : t -> int -> bool
(** Returns [false] if the key was absent.  Rebalances (borrow/merge)
    so the B+tree invariants are preserved. *)

val count : t -> int

val min_key : t -> int option
val max_key : t -> int option

val fold_range : t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over keys in [lo, hi] inclusive, ascending. *)

val fold_range_while :
  t -> lo:int -> init:'a -> f:('a -> int -> 'a option) -> 'a
(** Scan ascending from the smallest key [>= lo]; stop when [f]
    returns [None] (the last accumulator is returned) or the keys run
    out. *)

val to_list : t -> int list
(** All keys ascending (for tests). *)

type stats = {
  depth : int;
  nodes : int;
  leaves : int;
  keys : int;
  footprint_bytes : int;  (** estimated in-memory footprint *)
}

val stats : t -> stats

val check_invariants : t -> (unit, string) result
(** Structural validation: ordering, separator correctness, fill
    factors, leaf chaining.  Used by the property tests. *)
