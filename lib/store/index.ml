type t = Btree.t

let limit = 1 lsl 31

let pack ~key ~value =
  if key < 0 || key >= limit then
    invalid_arg (Printf.sprintf "Index: key %d out of [0, 2^31)" key);
  if value < 0 || value >= limit then
    invalid_arg (Printf.sprintf "Index: value %d out of [0, 2^31)" value);
  (key lsl 31) lor value

let unpack packed = (packed lsr 31, packed land (limit - 1))

let create ?order () = Btree.create ?order ()
let[@requires "table-writer"] add t ~key ~value = Btree.insert t (pack ~key ~value)
let[@requires "table-writer"] remove t ~key ~value = Btree.delete t (pack ~key ~value)
let mem t ~key ~value = Btree.mem t (pack ~key ~value)

let find_all t ~key =
  List.rev
    (Btree.fold_range t ~lo:(pack ~key ~value:0) ~hi:(pack ~key ~value:(limit - 1))
       ~init:[]
       ~f:(fun acc packed -> snd (unpack packed) :: acc))

let find_first t ~key =
  (* The smallest pair at or after (key, 0) decides in one step. *)
  let first = ref None in
  ignore
    (Btree.fold_range_while t ~lo:(pack ~key ~value:0) ~init:() ~f:(fun () packed ->
         let k, v = unpack packed in
         if k = key then first := Some v;
         None));
  !first

let fold_from t ~key ~init ~f =
  Btree.fold_range_while t ~lo:(pack ~key ~value:0) ~init ~f:(fun acc packed ->
      let k, v = unpack packed in
      f acc ~key:k ~value:v)

let entry_count t = Btree.count t
let footprint_bytes t = (Btree.stats t).Btree.footprint_bytes
let btree_stats t = Btree.stats t
