(** Secondary indexes with duplicate keys, layered over {!Btree} by
    packing [(key, value)] composites into single 62-bit integers.

    Both components must lie in [0, 2^31) — comfortably true for the
    [pre]/[post]/[parent] sequence numbers and row locators they
    index. *)

type t

val create : ?order:int -> unit -> t

val add : t -> key:int -> value:int -> bool
(** False if the exact (key, value) pair was already present.
    @raise Invalid_argument if either component is outside
    [0, 2^31). *)

val remove : t -> key:int -> value:int -> bool

val mem : t -> key:int -> value:int -> bool

val find_all : t -> key:int -> int list
(** All values for [key], ascending. *)

val find_first : t -> key:int -> int option

val fold_from :
  t -> key:int -> init:'a -> f:('a -> key:int -> value:int -> 'a option) -> 'a
(** Ordered scan of (key, value) pairs starting at the smallest pair
    with key [>= key]; stop when [f] returns [None]. *)

val entry_count : t -> int
val footprint_bytes : t -> int
val btree_stats : t -> Btree.stats
