type cache_stats = { hits : int; misses : int; evictions : int }

let default_page_size = 8192
let header_size = 64
let file_magic = "SSDBPAG1"

type cache_entry = { page : Page.t; mutable dirty : bool; mutable last_used : int }

type file_state = {
  fd : Unix.file_descr;
  mutable npages : int;
  cache : (int, cache_entry) Hashtbl.t;
  cache_pages : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type backing = Memory of Page.t array ref * int ref | File of file_state
type t = { psize : int; backing : backing }

let page_size t = t.psize

let in_memory ?(page_size = default_page_size) () =
  { psize = page_size; backing = Memory (ref [||], ref 0) }

let write_header fd psize npages =
  let hdr = Bytes.make header_size '\000' in
  Bytes.blit_string file_magic 0 hdr 0 8;
  Bytes.set_int32_le hdr 8 (Int32.of_int psize);
  Bytes.set_int32_le hdr 12 (Int32.of_int npages);
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let written = Unix.write fd hdr 0 header_size in
  if written <> header_size then failwith "Pager: short header write"

let create_file ?(page_size = default_page_size) ?(cache_pages = 256) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_header fd page_size 0;
  {
    psize = page_size;
    backing =
      File
        {
          fd;
          npages = 0;
          cache = Hashtbl.create 64;
          cache_pages = max 4 cache_pages;
          clock = 0;
          hits = 0;
          misses = 0;
          evictions = 0;
        };
  }

let open_file ?(cache_pages = 256) path =
  match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | fd -> (
      let hdr = Bytes.create header_size in
      let n = Unix.read fd hdr 0 header_size in
      if n <> header_size || not (String.equal (Bytes.sub_string hdr 0 8) file_magic)
      then begin
        Unix.close fd;
        Error "not a page file (bad header)"
      end
      else begin
        let psize = Int32.to_int (Bytes.get_int32_le hdr 8) in
        let npages = Int32.to_int (Bytes.get_int32_le hdr 12) in
        let expected = header_size + (npages * psize) in
        let actual = (Unix.fstat fd).Unix.st_size in
        if actual < expected then begin
          Unix.close fd;
          Error
            (Printf.sprintf "torn page file: %d bytes, header promises %d" actual
               expected)
        end
        else
          Ok
            {
              psize;
              backing =
                File
                  {
                    fd;
                    npages;
                    cache = Hashtbl.create 64;
                    cache_pages = max 4 cache_pages;
                    clock = 0;
                    hits = 0;
                    misses = 0;
                    evictions = 0;
                  };
            }
      end)

let page_count t =
  match t.backing with
  | Memory (_, used) -> !used
  | File st -> st.npages

let write_page_at fd psize idx page =
  let image = Page.serialize page in
  ignore (Unix.lseek fd (header_size + (idx * psize)) Unix.SEEK_SET);
  let written = Unix.write fd image 0 psize in
  if written <> psize then failwith "Pager: short page write"

let read_page_at fd psize idx =
  let image = Bytes.create psize in
  ignore (Unix.lseek fd (header_size + (idx * psize)) Unix.SEEK_SET);
  let rec fill off =
    if off < psize then begin
      let n = Unix.read fd image off (psize - off) in
      if n = 0 then failwith "Pager: short page read";
      fill (off + n)
    end
  in
  fill 0;
  match Page.deserialize image with
  | Ok page -> page
  | Error msg -> failwith (Printf.sprintf "Pager: page %d corrupt: %s" idx msg)

let evict_if_needed st psize =
  while Hashtbl.length st.cache >= st.cache_pages do
    let victim = ref None in
    Hashtbl.iter
      (fun idx entry ->
        match !victim with
        | Some (_, best) when best.last_used <= entry.last_used -> ()
        | _ -> victim := Some (idx, entry))
      st.cache;
    match !victim with
    | None -> failwith "Pager: cannot evict from an empty cache"
    | Some (idx, entry) ->
        if entry.dirty then write_page_at st.fd psize idx entry.page;
        Hashtbl.remove st.cache idx;
        st.evictions <- st.evictions + 1
  done

let append t page =
  if Page.size page <> t.psize then invalid_arg "Pager.append: page size mismatch";
  match t.backing with
  | Memory (pages, used) ->
      if !used >= Array.length !pages then begin
        let grown = Array.make (max 16 (2 * Array.length !pages)) page in
        Array.blit !pages 0 grown 0 !used;
        pages := grown
      end;
      !pages.(!used) <- page;
      incr used;
      !used - 1
  | File st ->
      let idx = st.npages in
      st.npages <- st.npages + 1;
      evict_if_needed st t.psize;
      st.clock <- st.clock + 1;
      Hashtbl.replace st.cache idx { page; dirty = true; last_used = st.clock };
      idx

let get t idx =
  if idx < 0 || idx >= page_count t then
    invalid_arg (Printf.sprintf "Pager.get: page %d out of [0, %d)" idx (page_count t));
  match t.backing with
  | Memory (pages, _) -> !pages.(idx)
  | File st -> (
      st.clock <- st.clock + 1;
      match Hashtbl.find_opt st.cache idx with
      | Some entry ->
          entry.last_used <- st.clock;
          st.hits <- st.hits + 1;
          entry.page
      | None ->
          st.misses <- st.misses + 1;
          let page = read_page_at st.fd t.psize idx in
          evict_if_needed st t.psize;
          Hashtbl.replace st.cache idx { page; dirty = false; last_used = st.clock };
          page)

let mark_dirty t idx =
  match t.backing with
  | Memory _ -> ()
  | File st -> (
      match Hashtbl.find_opt st.cache idx with
      | Some entry -> entry.dirty <- true
      | None -> ())

let flush t =
  match t.backing with
  | Memory _ -> ()
  | File st ->
      Hashtbl.iter
        (fun idx entry ->
          if entry.dirty then begin
            write_page_at st.fd t.psize idx entry.page;
            entry.dirty <- false
          end)
        st.cache;
      write_header st.fd t.psize st.npages

let close t =
  match t.backing with
  | Memory _ -> ()
  | File st ->
      flush t;
      Unix.close st.fd

let data_bytes t = page_count t * t.psize

let cache_stats t =
  match t.backing with
  | Memory _ -> { hits = 0; misses = 0; evictions = 0 }
  | File st -> { hits = st.hits; misses = st.misses; evictions = st.evictions }
