module Obs = Secshare_obs

type cache_stats = { hits : int; misses : int; evictions : int }

let obs_page_writes =
  Obs.Registry.counter ~help:"Page images written to heap files."
    "ssdb_store_page_writes_total"

let obs_fsyncs =
  Obs.Registry.counter ~help:"fsync calls on heap-file fds."
    "ssdb_store_fsyncs_total"

let default_page_size = 8192
let header_size = 64
let file_magic = "SSDBPAG1"

type cache_entry = { page : Page.t; mutable dirty : bool; mutable last_used : int }

(* One latch stripe of the buffer pool: its own hash table, LRU clock
   and counters, guarded by its own mutex.  A page always hashes to
   the same stripe, so two sessions faulting different pages contend
   only when the pages share a stripe.  Eviction is per-stripe (each
   stripe gets an equal slice of the [cache_pages] budget), which
   keeps the latch hold time bounded by the stripe size. *)
type stripe = {
  cache : (int, cache_entry) Hashtbl.t;
  latch : Mutex.t;
  capacity : int;  (** max resident entries in this stripe *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type file_state = {
  fd : Unix.file_descr;
  io : Mutex.t;  (** serialises lseek+read/write pairs on the shared fd *)
  meta : Mutex.t;  (** guards [npages] (the file-growth frontier) *)
  mutable npages : int;
  stripes : stripe array;
  mutable barrier : ((int * bytes) list -> unit) option;
      (** write-ahead hook: called with the exact serialized images
          about to be written to the heap file, before any of them is.
          The durable node table points this at the WAL so page
          overwrites are redo-protected against torn writes. *)
}

type backing = Memory of Page.t array ref * int ref | File of file_state
type t = { psize : int; backing : backing }

(* Lock order (never acquire upward): meta -> stripe latch -> io.
   ssdb_lint's lock-order pass checks this lexically at every
   acquisition site; [Lock_check] below cross-validates it at runtime
   (SSDB_LOCK_CHECK=1) by tracking held ranks per thread, including
   across function boundaries the static pass cannot see. *)
module Lock_check = struct
  type rank = Meta | Stripe | Io

  let level = function Meta -> 1 | Stripe -> 2 | Io -> 3
  let rank_name = function Meta -> "meta" | Stripe -> "stripe" | Io -> "io"

  let enabled =
    ref (match Sys.getenv_opt "SSDB_LOCK_CHECK" with Some "1" -> true | _ -> false)

  let set_enabled b = enabled := b

  (* Held-rank stacks keyed by thread id.  The witness table is shared
     across threads, so its own guard ranks below every pager lock
     ("lock-witness" in the declared order table): it is only ever the
     innermost acquisition. *)
  let witness_lock = Mutex.create ()
  let held : (int, rank list) Hashtbl.t = Hashtbl.create 8

  let stack_of tid = Option.value ~default:[] (Hashtbl.find_opt held tid)

  let acquired rank =
    if !enabled then begin
      Mutex.lock witness_lock;
      let tid = Thread.id (Thread.self ()) in
      let stack = stack_of tid in
      let violation =
        match stack with top :: _ when level top >= level rank -> Some top | _ -> None
      in
      (match violation with
      | None -> Hashtbl.replace held tid (rank :: stack)
      | Some _ -> ());
      Mutex.unlock witness_lock;
      match violation with
      | Some top ->
          failwith
            (Printf.sprintf
               "Pager: lock-order violation: acquiring %s while holding %s (declared \
                order is meta -> stripe -> io)"
               (rank_name rank) (rank_name top))
      | None -> ()
    end

  let released rank =
    if !enabled then begin
      Mutex.lock witness_lock;
      let tid = Thread.id (Thread.self ()) in
      let rec drop = function
        | [] -> []
        | r :: rest when level r = level rank -> rest
        | r :: rest -> r :: drop rest
      in
      (match drop (stack_of tid) with
      | [] -> Hashtbl.remove held tid
      | stack -> Hashtbl.replace held tid stack);
      Mutex.unlock witness_lock
    end
end

(* Power-of-two stripe count scaled to the budget (at least 4 resident
   pages per stripe, at most 8 stripes), so a tiny cache keeps the
   configured total capacity instead of being rounded up per stripe. *)
let stripe_count_for cache_pages =
  let rec fit n = if n < 8 && n * 8 <= cache_pages then fit (n * 2) else n in
  fit 1

let make_stripes cache_pages =
  let count = stripe_count_for cache_pages in
  let capacity = max 1 (cache_pages / count) in
  Array.init count (fun _ ->
      {
        cache = Hashtbl.create 16;
        latch = Mutex.create ();
        capacity;
        clock = 0;
        hits = 0;
        misses = 0;
        evictions = 0;
      })

let stripe_of st idx = st.stripes.(idx land (Array.length st.stripes - 1))

(* Witness class per rank.  All stripe latches report as one merged
   "pager-stripe" class — holding the wrong stripe still satisfies the
   witness; DESIGN.md §16 records the limitation. *)
let race_class = function
  | Lock_check.Meta -> "pager-meta"
  | Lock_check.Stripe -> "pager-stripe"
  | Lock_check.Io -> "pager-io"

let with_lock ~rank m f =
  Lock_check.acquired rank;
  Mutex.lock m;
  Obs.Race_check.acquired (race_class rank);
  Fun.protect
    ~finally:(fun () ->
      Obs.Race_check.released (race_class rank);
      Mutex.unlock m;
      Lock_check.released rank)
    f

let page_size t = t.psize

let in_memory ?(page_size = default_page_size) () =
  { psize = page_size; backing = Memory (ref [||], ref 0) }

(* The header is 64 bytes and assumed to land atomically (it never
   straddles a sector); page images get no such assumption — their
   overwrites are protected by the WAL's page-image redo records. *)
let write_header fd psize npages =
  let hdr = Bytes.make header_size '\000' in
  Bytes.blit_string file_magic 0 hdr 0 8;
  Bytes.set_int32_le hdr 8 (Int32.of_int psize);
  Bytes.set_int32_le hdr 12 (Int32.of_int npages);
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  Store_io.write_all ~kind:Store_io.Header_write fd hdr

let make_file_state fd npages cache_pages =
  {
    fd;
    io = Mutex.create ();
    meta = Mutex.create ();
    npages;
    stripes = make_stripes (max 4 cache_pages);
    barrier = None;
  }

let create_file ?(page_size = default_page_size) ?(cache_pages = 256) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_header fd page_size 0;
  { psize = page_size; backing = File (make_file_state fd 0 cache_pages) }

let open_file ?(cache_pages = 256) ?(recovery = false) path =
  match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | fd -> (
      let hdr = Bytes.create header_size in
      let n = Unix.read fd hdr 0 header_size in
      if n <> header_size || not (String.equal (Bytes.sub_string hdr 0 8) file_magic)
      then begin
        Unix.close fd;
        Error "not a page file (bad header)"
      end
      else begin
        let psize = Int32.to_int (Bytes.get_int32_le hdr 8) in
        let npages = Int32.to_int (Bytes.get_int32_le hdr 12) in
        let expected = header_size + (npages * psize) in
        let actual = (Unix.fstat fd).Unix.st_size in
        if actual < expected && not recovery then begin
          Unix.close fd;
          Error
            (Printf.sprintf "torn page file: %d bytes, header promises %d" actual
               expected)
        end
        else
          (* [recovery] tolerates a short file: the caller is about to
             lay WAL page images over the damage before any read. *)
          Ok { psize; backing = File (make_file_state fd npages cache_pages) }
      end)

let page_count t =
  match t.backing with
  | Memory (_, used) -> !used
  | File st -> with_lock ~rank:Lock_check.Meta st.meta (fun () -> st.npages)

let write_image_at st psize idx image =
  with_lock ~rank:Lock_check.Io st.io (fun () ->
      ignore (Unix.lseek st.fd (header_size + (idx * psize)) Unix.SEEK_SET);
      Store_io.write_all ~kind:Store_io.Page_write st.fd image;
      Obs.Registry.inc obs_page_writes)

let read_page_at st psize idx =
  let image = Bytes.create psize in
  with_lock ~rank:Lock_check.Io st.io (fun () ->
      ignore (Unix.lseek st.fd (header_size + (idx * psize)) Unix.SEEK_SET);
      match Store_io.really_read st.fd image 0 psize with
      | () -> ()
      | exception Failure _ -> failwith (Printf.sprintf "Pager: page %d short read" idx));
  match Page.deserialize image with
  | Ok page -> page
  | Error msg -> failwith (Printf.sprintf "Pager: page %d corrupt: %s" idx msg)

(* The _locked suffix is the called-with-lock-held convention ssdb_lint
   enforces: the caller owns the stripe latch. *)
let evict_locked st stripe psize =
  while Hashtbl.length stripe.cache >= stripe.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun idx entry ->
        match !victim with
        | Some (_, best) when best.last_used <= entry.last_used -> ()
        | _ -> victim := Some (idx, entry))
      stripe.cache;
    match !victim with
    | None -> failwith "Pager: cannot evict from an empty cache"
    | Some (idx, entry) ->
        if entry.dirty then begin
          (* log-before-write: the exact image about to overwrite the
             heap page is WAL-logged and fsynced first (the barrier
             does both), so a crash that tears this write is repaired
             by redo on the next open.  The barrier runs under this
             stripe's latch — unlike flush, which batches images and
             runs it latch-free — so a dirty eviction stalls same-
             stripe cache misses behind the log fsync; acceptable
             because dirty evictions are rare under a sane cache
             budget, and the alternative (dropping the latch around
             the write) would let a concurrent mark_dirty on the
             victim be lost. *)
          let image = Page.serialize entry.page in
          (match st.barrier with Some log -> log [ (idx, image) ] | None -> ());
          write_image_at st psize idx image
        end;
        Hashtbl.remove stripe.cache idx;
        stripe.evictions <- stripe.evictions + 1
  done

let append t page =
  if Page.size page <> t.psize then invalid_arg "Pager.append: page size mismatch";
  match t.backing with
  | Memory (pages, used) ->
      if !used >= Array.length !pages then begin
        let grown = Array.make (max 16 (2 * Array.length !pages)) page in
        Array.blit !pages 0 grown 0 !used;
        pages := grown
      end;
      !pages.(!used) <- page;
      incr used;
      !used - 1
  | File st ->
      let idx =
        with_lock ~rank:Lock_check.Meta st.meta (fun () ->
            let idx = st.npages in
            st.npages <- st.npages + 1;
            idx)
      in
      let stripe = stripe_of st idx in
      with_lock ~rank:Lock_check.Stripe stripe.latch (fun () ->
          evict_locked st stripe t.psize;
          stripe.clock <- stripe.clock + 1;
          Obs.Race_check.access ~write:true "pager.cache";
          Hashtbl.replace stripe.cache idx
            { page; dirty = true; last_used = stripe.clock });
      idx

let get t idx =
  if idx < 0 || idx >= page_count t then
    invalid_arg (Printf.sprintf "Pager.get: page %d out of [0, %d)" idx (page_count t));
  match t.backing with
  | Memory (pages, _) -> !pages.(idx)
  | File st ->
      let stripe = stripe_of st idx in
      with_lock ~rank:Lock_check.Stripe stripe.latch (fun () ->
          stripe.clock <- stripe.clock + 1;
          Obs.Race_check.access "pager.cache";
          match Hashtbl.find_opt stripe.cache idx with
          | Some entry ->
              entry.last_used <- stripe.clock;
              stripe.hits <- stripe.hits + 1;
              entry.page
          | None ->
              (* The disk read happens under the stripe latch: it blocks
                 only this stripe, and guarantees a page is faulted in
                 exactly once even when several sessions miss on it
                 simultaneously. *)
              stripe.misses <- stripe.misses + 1;
              let page = read_page_at st t.psize idx in
              evict_locked st stripe t.psize;
              Hashtbl.replace stripe.cache idx
                { page; dirty = false; last_used = stripe.clock };
              page)

let mark_dirty t idx =
  match t.backing with
  | Memory _ -> ()
  | File st -> (
      let stripe = stripe_of st idx in
      with_lock ~rank:Lock_check.Stripe stripe.latch (fun () ->
          match Hashtbl.find_opt stripe.cache idx with
          | Some entry -> entry.dirty <- true
          | None -> ()))

(* Serialized snapshots of every dirty page, taken under the stripe
   latches.  These exact images are what the barrier logs and what the
   write phase puts on disk, so the logged redo image always matches
   the heap write it protects. *)
let dirty_images st =
  Array.fold_left
    (fun acc stripe ->
      with_lock ~rank:Lock_check.Stripe stripe.latch (fun () ->
          Hashtbl.fold
            (fun idx entry acc ->
              if entry.dirty then (idx, Page.serialize entry.page) :: acc else acc)
            stripe.cache acc))
    [] st.stripes
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let flush t =
  match t.backing with
  | Memory _ -> ()
  | File st ->
      let images = dirty_images st in
      (* the barrier runs with no latches held: it appends to the WAL
         and fsyncs, which must not block other stripes *)
      (match st.barrier with
      | Some log when images <> [] -> log images
      | _ -> ());
      List.iter
        (fun (idx, image) ->
          let stripe = stripe_of st idx in
          with_lock ~rank:Lock_check.Stripe stripe.latch (fun () ->
              write_image_at st t.psize idx image;
              match Hashtbl.find_opt stripe.cache idx with
              | Some entry -> entry.dirty <- false
              | None -> ()))
        images;
      with_lock ~rank:Lock_check.Meta st.meta (fun () ->
          with_lock ~rank:Lock_check.Io st.io (fun () -> write_header st.fd t.psize st.npages))

let sync t =
  match t.backing with
  | Memory _ -> ()
  | File st ->
      with_lock ~rank:Lock_check.Io st.io (fun () ->
          Store_io.fsync st.fd;
          Obs.Registry.inc obs_fsyncs)

let set_write_barrier t barrier =
  match t.backing with
  | Memory _ -> ()
  | File st -> st.barrier <- barrier

let install_page t idx image =
  match t.backing with
  | Memory _ -> invalid_arg "Pager.install_page: memory backing"
  | File st ->
      if Bytes.length image <> t.psize then
        invalid_arg "Pager.install_page: image size mismatch";
      (match Page.deserialize image with
      | Ok _ -> ()
      | Error msg ->
          failwith (Printf.sprintf "Pager: redo image for page %d corrupt: %s" idx msg));
      with_lock ~rank:Lock_check.Meta st.meta (fun () ->
          if idx >= st.npages then st.npages <- idx + 1);
      let stripe = stripe_of st idx in
      with_lock ~rank:Lock_check.Stripe stripe.latch (fun () ->
          Hashtbl.remove stripe.cache idx;
          write_image_at st t.psize idx image)

let close t =
  match t.backing with
  | Memory _ -> ()
  | File st ->
      flush t;
      sync t;
      Unix.close st.fd

let abort t =
  match t.backing with
  | Memory _ -> ()
  | File st -> ( try Unix.close st.fd with Unix.Unix_error _ -> ())

let data_bytes t = page_count t * t.psize

let cache_stats t =
  match t.backing with
  | Memory _ -> { hits = 0; misses = 0; evictions = 0 }
  | File st ->
      Array.fold_left
        (fun (acc : cache_stats) stripe ->
          with_lock ~rank:Lock_check.Stripe stripe.latch (fun () : cache_stats ->
              {
                hits = acc.hits + stripe.hits;
                misses = acc.misses + stripe.misses;
                evictions = acc.evictions + stripe.evictions;
              }))
        { hits = 0; misses = 0; evictions = 0 }
        st.stripes
