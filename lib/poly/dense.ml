type t = int array
(* Invariant: last element (if any) is nonzero; coefficients are
   canonical field encodings. *)

let zero = [||]
let is_zero f = Array.length f = 0
let degree f = Array.length f - 1

let normalize_array (r : Ring.t) a =
  let a = Array.map r.Ring.normalize a in
  let d = ref (Array.length a - 1) in
  while !d >= 0 && a.(!d) = 0 do
    decr d
  done;
  Array.sub a 0 (!d + 1)

let of_coeffs r a = normalize_array r a
let to_coeffs f = Array.copy f
let coeff f i = if i >= 0 && i < Array.length f then f.(i) else 0
let constant r c = normalize_array r [| c |]
let one r = constant r 1
let linear (r : Ring.t) ~root = normalize_array r [| r.Ring.neg root; 1 |]

let add (r : Ring.t) a b =
  let n = max (Array.length a) (Array.length b) in
  let c = Array.make n 0 in
  Array.iteri (fun i x -> c.(i) <- x) a;
  Array.iteri (fun i x -> c.(i) <- r.Ring.add c.(i) x) b;
  normalize_array r c

let neg (r : Ring.t) a = Array.map r.Ring.neg a

let sub (r : Ring.t) a b = add r a (neg r b)

let mul (r : Ring.t) a b =
  if is_zero a || is_zero b then zero
  else begin
    let c = Array.make (degree a + degree b + 1) 0 in
    Array.iteri
      (fun i x ->
        if x <> 0 then
          Array.iteri
            (fun j y -> c.(i + j) <- r.Ring.add c.(i + j) (r.Ring.mul x y))
            b)
      a;
    normalize_array r c
  end

let scale (r : Ring.t) k a = normalize_array r (Array.map (r.Ring.mul k) a)

let of_roots r roots =
  List.fold_left (fun acc root -> mul r acc (linear r ~root)) (one r) roots

let divmod (r : Ring.t) a b =
  if is_zero b then raise Division_by_zero;
  if degree a < degree b then (zero, a)
  else begin
    let lead_inv = r.Ring.inv b.(degree b) in
    let rem = Array.copy a in
    let quot = Array.make (degree a - degree b + 1) 0 in
    for d = degree a downto degree b do
      let c = r.Ring.mul rem.(d) lead_inv in
      if c <> 0 then begin
        let shift = d - degree b in
        quot.(shift) <- c;
        Array.iteri
          (fun j y -> rem.(shift + j) <- r.Ring.sub rem.(shift + j) (r.Ring.mul c y))
          b
      end
    done;
    (normalize_array r quot, normalize_array r rem)
  end

let gcd r a b =
  let rec go a b = if is_zero b then a else go b (snd (divmod r a b)) in
  let g = go a b in
  if is_zero g then zero else scale r (r.Ring.inv g.(degree g)) g

let eval (r : Ring.t) f point =
  let point = r.Ring.normalize point in
  let acc = ref 0 in
  for i = Array.length f - 1 downto 0 do
    acc := r.Ring.add (r.Ring.mul !acc point) f.(i)
  done;
  !acc

let interpolate (r : Ring.t) points =
  let xs = List.map fst points in
  if List.length (List.sort_uniq compare (List.map r.Ring.normalize xs)) <> List.length xs
  then Error "interpolate: duplicate x values"
  else begin
    (* sum over i of y_i * prod_{j<>i} (x - x_j) / (x_i - x_j) *)
    let term (xi, yi) =
      let xi = r.Ring.normalize xi and yi = r.Ring.normalize yi in
      let numerator, denominator =
        List.fold_left
          (fun (num, den) (xj, _) ->
            let xj = r.Ring.normalize xj in
            if xj = xi then (num, den)
            else (mul r num (linear r ~root:xj), r.Ring.mul den (r.Ring.sub xi xj)))
          (one r, 1) points
      in
      scale r (r.Ring.mul yi (r.Ring.inv denominator)) numerator
    in
    Ok (List.fold_left (fun acc point -> add r acc (term point)) zero points)
  end

let roots (r : Ring.t) f =
  if is_zero f then []
  else
    List.filter (fun a -> eval r f a = 0) (List.init r.Ring.order Fun.id)

let equal (a : t) (b : t) = a = b

let pp fmt f =
  if is_zero f then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    for i = Array.length f - 1 downto 0 do
      if f.(i) <> 0 then begin
        if not !first then Format.pp_print_string fmt " + ";
        first := false;
        match (i, f.(i)) with
        | 0, c -> Format.fprintf fmt "%d" c
        | 1, 1 -> Format.pp_print_string fmt "x"
        | 1, c -> Format.fprintf fmt "%dx" c
        | i, 1 -> Format.fprintf fmt "x^%d" i
        | i, c -> Format.fprintf fmt "%dx^%d" c i
      end
    done
  end
