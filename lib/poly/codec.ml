let bits_per_coeff q =
  if q < 2 then invalid_arg "Codec.bits_per_coeff: field order must be >= 2";
  let rec go bits cap = if cap >= q then bits else go (bits + 1) (cap * 2) in
  go 1 2

let byte_length ~q ~n = ((n * bits_per_coeff q) + 7) / 8

let pack ~q coeffs =
  let bits = bits_per_coeff q in
  let n = Array.length coeffs in
  let out = Bytes.make (byte_length ~q ~n) '\000' in
  let bitpos = ref 0 in
  Array.iter
    (fun c ->
      if c < 0 || c >= q then
        invalid_arg (Printf.sprintf "Codec.pack: coefficient %d out of [0,%d)" c q);
      for b = 0 to bits - 1 do
        if (c lsr b) land 1 = 1 then begin
          let pos = !bitpos + b in
          let byte = Bytes.get_uint8 out (pos lsr 3) in
          Bytes.set_uint8 out (pos lsr 3) (byte lor (1 lsl (pos land 7)))
        end
      done;
      bitpos := !bitpos + bits)
    coeffs;
  out

let unpack ~q ~n buf =
  let bits = bits_per_coeff q in
  let needed = byte_length ~q ~n in
  if Bytes.length buf < needed then
    invalid_arg
      (Printf.sprintf "Codec.unpack: need %d bytes, got %d" needed
         (Bytes.length buf));
  let coeffs = Array.make n 0 in
  let bitpos = ref 0 in
  for i = 0 to n - 1 do
    let c = ref 0 in
    for b = 0 to bits - 1 do
      let pos = !bitpos + b in
      let byte = Bytes.get_uint8 buf (pos lsr 3) in
      if (byte lsr (pos land 7)) land 1 = 1 then c := !c lor (1 lsl b)
    done;
    if !c >= q then
      invalid_arg (Printf.sprintf "Codec.unpack: decoded coefficient %d >= %d" !c q);
    coeffs.(i) <- !c;
    bitpos := !bitpos + bits
  done;
  coeffs

let pack_cyclic (r : Ring.t) v = pack ~q:r.Ring.order (Cyclic.to_int_array v)

let unpack_cyclic (r : Ring.t) buf =
  Cyclic.of_int_array r (unpack ~q:r.Ring.order ~n:r.Ring.n buf)
