(* Shamir threshold sharing over the encoding field (see shamir.mli).

   Everything here is plain field arithmetic through the ring's cached
   closures; nothing touches the cyclic quotient.  The share and
   reconstruction paths are deliberately deterministic in the order of
   [xs] and the draws of [gen] so callers can reproduce a dealer run
   exactly (the table splitter keys its PRG by row). *)

let check_xs (r : Ring.t) ~what xs =
  if xs = [] then invalid_arg (what ^ ": no x-coordinates");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let x = r.Ring.normalize x in
      if x = 0 then invalid_arg (what ^ ": zero x-coordinate (g(0) is the secret)");
      if Hashtbl.mem seen x then
        invalid_arg (Printf.sprintf "%s: duplicate x-coordinate %d" what x);
      Hashtbl.replace seen x ())
    xs

(* Evaluate g(x) = s + a_1 x + ... + a_{t-1} x^{t-1} by Horner, with
   the random coefficients in [coeffs] (degree 1 first). *)
let eval_at (r : Ring.t) ~secret coeffs x =
  let high =
    List.fold_left (fun v a -> r.Ring.add (r.Ring.mul v x) a) 0 (List.rev coeffs)
  in
  r.Ring.add (r.Ring.mul high x) secret

let share (r : Ring.t) ~threshold ~xs ~gen secret =
  if threshold < 1 then invalid_arg "Shamir.share: threshold < 1";
  if List.length xs < threshold then
    invalid_arg "Shamir.share: fewer x-coordinates than the threshold";
  check_xs r ~what:"Shamir.share" xs;
  let secret = r.Ring.normalize secret in
  let coeffs = List.init (threshold - 1) (fun _ -> r.Ring.normalize (gen ())) in
  List.map (fun x -> eval_at r ~secret coeffs (r.Ring.normalize x)) xs

let lambdas_at_zero (r : Ring.t) ~xs =
  check_xs r ~what:"Shamir.lambdas_at_zero" xs;
  let xs = List.map r.Ring.normalize xs in
  List.map
    (fun xi ->
      List.fold_left
        (fun acc xj ->
          if xj = xi then acc else r.Ring.mul acc (r.Ring.div xj (r.Ring.sub xj xi)))
        1 xs)
    xs

let combine (r : Ring.t) ~lambdas vs =
  if List.length lambdas <> List.length vs then
    invalid_arg "Shamir.combine: lambda/value length mismatch";
  List.fold_left2 (fun acc l v -> r.Ring.add acc (r.Ring.mul l v)) 0 lambdas vs

let reconstruct r shares =
  let lambdas = lambdas_at_zero r ~xs:(List.map fst shares) in
  combine r ~lambdas (List.map snd shares)

let share_vector (r : Ring.t) ~threshold ~xs ~gen secrets =
  if threshold < 1 then invalid_arg "Shamir.share_vector: threshold < 1";
  if List.length xs < threshold then
    invalid_arg "Shamir.share_vector: fewer x-coordinates than the threshold";
  check_xs r ~what:"Shamir.share_vector" xs;
  let xs = List.map r.Ring.normalize xs in
  let len = Array.length secrets in
  let outs = List.map (fun _ -> Array.make len 0) xs in
  for j = 0 to len - 1 do
    let coeffs = List.init (threshold - 1) (fun _ -> r.Ring.normalize (gen ())) in
    let secret = r.Ring.normalize secrets.(j) in
    List.iter2 (fun x out -> out.(j) <- eval_at r ~secret coeffs x) xs outs
  done;
  outs

let combine_vectors (r : Ring.t) ~lambdas vectors =
  if List.length lambdas <> List.length vectors then
    invalid_arg "Shamir.combine_vectors: lambda/vector count mismatch";
  match vectors with
  | [] -> invalid_arg "Shamir.combine_vectors: no vectors"
  | first :: rest ->
      let len = Array.length first in
      List.iter
        (fun v ->
          if Array.length v <> len then
            invalid_arg "Shamir.combine_vectors: vector length mismatch")
        rest;
      let out = Array.make len 0 in
      for j = 0 to len - 1 do
        out.(j) <-
          List.fold_left2
            (fun acc l v -> r.Ring.add acc (r.Ring.mul l v.(j)))
            0 lambdas vectors
      done;
      out
