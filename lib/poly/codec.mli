(** Bit-packed serialisation of coefficient vectors.

    The paper stores each polynomial in [(p^e - 1) * log2(p^e)] bits
    (17 bytes for p = 29: 28 coefficients of 5 bits); this codec
    realises that layout: each coefficient occupies exactly
    [bits_per_coeff q] bits, packed little-endian bit order. *)

val bits_per_coeff : int -> int
(** [ceil (log2 q)]: bits needed for one coefficient of a polynomial
    over a field of order [q].  @raise Invalid_argument if [q < 2]. *)

val byte_length : q:int -> n:int -> int
(** Bytes needed to pack [n] coefficients over a field of order
    [q]. *)

val pack : q:int -> int array -> bytes
(** Pack a coefficient vector; every entry must be in [0, q).
    @raise Invalid_argument on out-of-range coefficients. *)

val unpack : q:int -> n:int -> bytes -> int array
(** Inverse of [pack].  @raise Invalid_argument if the buffer is
    shorter than [byte_length ~q ~n] or any decoded coefficient is
    [>= q] (corruption guard). *)

val pack_cyclic : Ring.t -> Cyclic.t -> bytes
(** Pack a ring element ([n = q - 1] coefficients). *)

val unpack_cyclic : Ring.t -> bytes -> Cyclic.t
(** Inverse of [pack_cyclic]. *)
