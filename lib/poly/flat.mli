(** Allocation-free polynomial kernels over flat byte tables.

    These are the hot loops of the whole system: evaluating
    secret-share polynomials during scans and multiplying reduced
    child polynomials during equality recovery.  The reference
    implementations ({!Dense.eval}, {!Cyclic.eval}, {!Cyclic.mul})
    walk closure-cached field operations; the kernels here walk the
    flat byte tables of {!Secshare_field.Table} instead, so a Horner
    step is two [Bytes.unsafe_get]s and results stay bit-identical
    (the tables are built from the same field operations).

    Every entry point takes the table and any per-query scratch
    explicitly; none allocates on the per-coefficient path.  The
    module is a designated kernel module for [ssdb_lint]: allocating
    combinators ([Array.map], [List.map], ...) are banned inside it.

    All evaluation here is evaluation in the cyclic quotient
    [F_q[x]/(x^n - 1)], which agrees with the unreduced polynomial
    only at nonzero points — {!point_row} enforces that, mirroring
    {!Cyclic.eval}. *)

val point_row : Secshare_field.Table.t -> point:int -> Bytes.t
(** The per-query evaluation table for [point]: the multiplication-
    table row [x -> x * point] every Horner step multiplies by.
    [point] must already be canonical (callers hold a {!Ring.t} and
    normalise with it, exactly as {!Cyclic.eval} does internally).
    @raise Invalid_argument on the zero point (evaluation at 0 is not
    preserved by cyclic reduction; see {!Cyclic.eval}) or a
    non-canonical one. *)

val eval_coeffs : Secshare_field.Table.t -> mul_row:Bytes.t -> int array -> int
(** Horner evaluation of a coefficient vector (least degree first,
    canonical encodings — e.g. {!Cyclic.view}) at the point whose
    {!point_row} is [mul_row].  Bit-identical to {!Cyclic.eval}. *)

val eval_share :
  Secshare_field.Table.t -> mul_row:Bytes.t -> n:int -> Bytes.t -> int
(** Horner evaluation straight over a {!Codec}-packed share — the
    coefficients are field-decoded inline from the bit-packed buffer,
    so the per-row [Codec.unpack] allocation of the reference path
    disappears entirely.  Validates exactly like [Codec.unpack]:
    @raise Invalid_argument if the buffer is short or a decoded
    coefficient is outside [0, q). *)

val eval_share_batch :
  Secshare_field.Table.t ->
  mul_row:Bytes.t ->
  n:int ->
  Bytes.t array ->
  out:int array ->
  unit
(** Evaluate a whole scan batch of packed shares at one point in a
    single pass, writing [out.(i) <- eval of shares.(i)].  [out] is
    caller-allocated (at least as long as the batch) so the kernel
    itself allocates nothing.
    @raise Invalid_argument if [out] is shorter than the batch. *)

val mul_into :
  Secshare_field.Table.t ->
  n:int ->
  a:int array ->
  b:int array ->
  out:int array ->
  unit
(** Cyclic schoolbook product [out <- a * b] in [F_q[x]/(x^n - 1)],
    identical fold order to {!Cyclic.mul} but through the byte
    tables.  [out] must be distinct from [a] and [b]; all three must
    have length at least [n].  The equality path ping-pongs two
    caller-owned scratch buffers through this to fold a product of
    children without allocating per step. *)
