(** Runtime handle bundling a field with cached primitive operations.

    The encoding field is chosen when a database is created (its order
    depends on the tag-name count), so polynomial code receives the
    field as a value.  Unpacking the first-class module once here and
    caching the operations as closures keeps inner loops free of
    repeated module projections. *)

type t = {
  field : Secshare_field.Field_intf.packed;
  order : int;  (** q = p^e *)
  characteristic : int;
  degree : int;
  n : int;  (** ring dimension for the cyclic quotient, q - 1 *)
  add : int -> int -> int;
  sub : int -> int -> int;
  neg : int -> int;
  mul : int -> int -> int;
  inv : int -> int;
  div : int -> int -> int;
  normalize : int -> int;
  table : Secshare_field.Table.t option;
      (** Flat byte op-tables when [order <= 256]; the packed kernels in
          {!Flat} require them, closure-based paths ignore them. *)
}

let make field =
  let module F = (val field : Secshare_field.Field_intf.FIELD) in
  let lift2 op a b = F.to_int (op (F.of_int a) (F.of_int b)) in
  let lift1 op a = F.to_int (op (F.of_int a)) in
  {
    field;
    order = F.order;
    characteristic = F.characteristic;
    degree = F.degree;
    n = F.order - 1;
    add = lift2 F.add;
    sub = lift2 F.sub;
    neg = lift1 F.neg;
    mul = lift2 F.mul;
    inv = lift1 F.inv;
    div = lift2 F.div;
    normalize = (fun k -> F.to_int (F.of_int k));
    table = Secshare_field.Table.create field;
  }

let of_prime_power ~p ~e = make (Secshare_field.Gf.create ~p ~e)
let of_prime ~p = make (Secshare_field.Modp.create ~p)
