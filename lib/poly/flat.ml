(* Designated kernel module: no allocation inside the per-coefficient
   loops, no allocating combinators anywhere in the file (ssdb_lint
   enforces the latter).  Everything is explicit index arithmetic over
   Bytes with unsafe access; the bounds are established once per call
   by the validation prologue. *)

module Table = Secshare_field.Table

let point_row tab ~point =
  if point = 0 then
    invalid_arg "Flat.point_row: evaluation at 0 is not preserved by reduction";
  Table.mul_row tab ~point

let eval_coeffs tab ~mul_row (a : int array) =
  let acc = ref 0 in
  for i = Array.length a - 1 downto 0 do
    let shifted = Char.code (Bytes.unsafe_get mul_row !acc) in
    acc := Table.unsafe_add tab shifted (Array.unsafe_get a i)
  done;
  !acc

(* Decode coefficient [i] of a Codec-packed buffer: a little-endian
   window read at bit position [i * bits].  bits <= 8 always (q <= 256),
   so a coefficient spans at most two bytes. *)
let[@inline] coeff_at buf ~bits ~mask i =
  let pos = i * bits in
  let byte = pos lsr 3 in
  let shift = pos land 7 in
  let w = Char.code (Bytes.unsafe_get buf byte) lsr shift in
  let w =
    if shift + bits <= 8 then w
    else w lor (Char.code (Bytes.unsafe_get buf (byte + 1)) lsl (8 - shift))
  in
  w land mask

let check_share tab ~n buf =
  let bits = Table.bits tab in
  let needed = ((n * bits) + 7) / 8 in
  if Bytes.length buf < needed then
    invalid_arg
      (Printf.sprintf "Flat.eval_share: need %d bytes, got %d" needed
         (Bytes.length buf))

let eval_share tab ~mul_row ~n buf =
  check_share tab ~n buf;
  let bits = Table.bits tab in
  let mask = (1 lsl bits) - 1 in
  let q = Table.order tab in
  let acc = ref 0 in
  for i = n - 1 downto 0 do
    let c = coeff_at buf ~bits ~mask i in
    if c >= q then
      invalid_arg
        (Printf.sprintf "Flat.eval_share: decoded coefficient %d >= %d" c q);
    let shifted = Char.code (Bytes.unsafe_get mul_row !acc) in
    acc := Table.unsafe_add tab shifted c
  done;
  !acc

let eval_share_batch tab ~mul_row ~n shares ~out =
  let batch = Array.length shares in
  if Array.length out < batch then
    invalid_arg
      (Printf.sprintf "Flat.eval_share_batch: out has %d slots for %d shares"
         (Array.length out) batch);
  for i = 0 to batch - 1 do
    Array.unsafe_set out i (eval_share tab ~mul_row ~n (Array.unsafe_get shares i))
  done

let mul_into tab ~n ~(a : int array) ~(b : int array) ~(out : int array) =
  if Array.length a < n || Array.length b < n || Array.length out < n then
    invalid_arg "Flat.mul_into: buffers shorter than the ring dimension";
  if out == a || out == b then
    invalid_arg "Flat.mul_into: out must be distinct from the operands";
  Array.fill out 0 n 0;
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0 then
      for j = 0 to n - 1 do
        let k = if i + j >= n then i + j - n else i + j in
        Array.unsafe_set out k
          (Table.unsafe_add tab (Array.unsafe_get out k)
             (Table.unsafe_mul tab ai (Array.unsafe_get b j)))
      done
  done
