(** The quotient ring [F_q[x]/(x^n - 1)] with [n = q - 1]: the paper's
    reduced encoding (figure 1(d)).

    Elements are fixed-length coefficient vectors of length [n].
    Reduction folds the coefficient of [x^i] onto [x^(i mod n)], which
    preserves evaluation at every *nonzero* field point (since
    [a^n = 1] for [a <> 0]); evaluation at 0 is not preserved and the
    scheme never uses it.

    The ring has zero divisors, so there is no general division;
    {!recover_linear_factor} implements the specific quotient the
    equality test needs. *)

type t

val dim : Ring.t -> int
(** The ring dimension [n = q - 1]. *)

val zero : Ring.t -> t
val one : Ring.t -> t
val is_zero : t -> bool

val of_dense : Ring.t -> Dense.t -> t
(** Reduction modulo [x^n - 1]. *)

val to_dense : Ring.t -> t -> Dense.t
(** The canonical representative of degree [< n]. *)

val of_int_array : Ring.t -> int array -> t
(** Coefficient vector, least degree first.  Entries are normalised
    into the field.  @raise Invalid_argument if the length is not
    [dim r]. *)

val to_int_array : t -> int array
(** Fresh coefficient vector of length [dim r]. *)

val view : t -> int array
(** The underlying coefficient buffer, NOT a copy: zero-allocation
    access for the {!Flat} kernels.  Callers must not mutate it. *)

val coeff : t -> int -> int

val linear : Ring.t -> root:int -> t
(** The reduced image of [x - root]. *)

val add : Ring.t -> t -> t -> t
val sub : Ring.t -> t -> t -> t
val neg : Ring.t -> t -> t
val scale : Ring.t -> int -> t -> t

val mul : Ring.t -> t -> t -> t
(** Schoolbook product with index folding; O(n^2). *)

val mul_x : Ring.t -> t -> t
(** Multiplication by [x]: a cyclic shift; O(n). *)

val mul_linear : Ring.t -> root:int -> t -> t
(** [mul_linear r ~root f] is [(x - root) * f]; O(n).  This is the
    encoding step [f(node) = (x - map(node)) . prod f(children)]. *)

val eval : Ring.t -> t -> int -> int
(** Evaluation at a field point; meaningful (agreeing with the
    unreduced polynomial) only at nonzero points.
    @raise Invalid_argument on the zero point. *)

val recover_linear_factor :
  Ring.t -> product:t -> node:t -> (int, [ `Degenerate | `Not_linear ]) result
(** The equality test's division: given the reduced product [g] of a
    node's children polynomials and the node's own reduced polynomial
    [f], find the field element [t] such that [f = (x - t) * g].

    [Error `Degenerate] when [g] is the zero element of the quotient
    (possible only when the node's descendants cover every nonzero
    field element — excluded by the paper's choice of p = 83 > 77 tag
    names, but detected rather than mis-answered).
    [Error `Not_linear] when no such [t] exists. *)

val random : Ring.t -> gen:(unit -> int) -> t
(** A vector whose [n] coefficients are drawn from [gen] (expected to
    return canonical field encodings, e.g. a PRG reduced mod [q]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
