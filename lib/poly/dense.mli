(** Dense polynomials of arbitrary degree over a runtime field.

    This is the *unreduced* representation of the paper's figure 1(c):
    the node polynomial [(x - map(node)) . prod f(child)] before
    reduction into the cyclic quotient ring (see {!Cyclic}).

    Coefficients are canonical field-element encodings ([0 .. q-1]);
    the representation is normalised (no trailing zero coefficient);
    the zero polynomial has an empty coefficient array. *)

type t

val zero : t
val one : Ring.t -> t
val is_zero : t -> bool

val degree : t -> int
(** Degree; [-1] for the zero polynomial. *)

val of_coeffs : Ring.t -> int array -> t
(** Coefficient array, index = degree.  Values are normalised into the
    field and trailing zeros stripped. *)

val to_coeffs : t -> int array
(** Fresh normalised coefficient array. *)

val coeff : t -> int -> int
(** [coeff f i] is the coefficient of [x^i] (0 beyond the degree). *)

val constant : Ring.t -> int -> t

val linear : Ring.t -> root:int -> t
(** [linear r ~root] is the monic [x - root]: the leaf encoding
    [f(leaf) = x - map(leaf)]. *)

val of_roots : Ring.t -> int list -> t
(** Monic product [prod (x - root)]. *)

val add : Ring.t -> t -> t -> t
val sub : Ring.t -> t -> t -> t
val neg : Ring.t -> t -> t
val mul : Ring.t -> t -> t -> t
val scale : Ring.t -> int -> t -> t

val divmod : Ring.t -> t -> t -> t * t
(** [divmod r a b] is [(q, rem)] with [a = q*b + rem] and
    [degree rem < degree b].  @raise Division_by_zero if [b] is
    zero. *)

val gcd : Ring.t -> t -> t -> t
(** Monic greatest common divisor ([zero] if both arguments are
    zero). *)

val eval : Ring.t -> t -> int -> int
(** Horner evaluation at a field point. *)

val interpolate : Ring.t -> (int * int) list -> (t, string) result
(** Lagrange interpolation: the unique polynomial of degree < n through
    n points with distinct abscissae.  Fails on duplicate x values.
    (The scheme never needs this online — shares are reconstructed
    coefficient-wise — but it witnesses that q-1 honest evaluations
    determine a node polynomial, which is what the equality test
    exploits.) *)

val roots : Ring.t -> t -> int list
(** All roots in the field, ascending, without multiplicity (by
    exhaustive evaluation; fields here are small). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
