(** Shamir t-of-n threshold sharing over the encoding field.

    Where the paper splits each node polynomial between exactly one
    client and one server (additive 2-party sharing, {!Dense}/{!Cyclic}
    + [Share]), this module generalises the {e server} side: a field
    element [s] is hidden in the constant term of a random polynomial
    [g] of degree [t - 1], and party [i] receives [g(x_i)].  Any [t]
    parties reconstruct [s] by Lagrange interpolation at zero; any
    [t - 1] shares are jointly uniform and independent of [s] (the
    degree-[t - 1] coefficients are free), so no coalition below the
    threshold learns anything.

    Reconstruction at zero is a {e linear} combination
    [s = sum_i lambda_i g(x_i)] with multipliers {!lambdas_at_zero}
    that depend only on the x-coordinates.  Linearity is what makes the
    sharded serving path cheap: applied coefficient-wise to a whole
    share polynomial, the same multipliers recombine {e evaluations} of
    the per-shard shares — each shard runs the ordinary flat kernels on
    its own share, and the client (or router) folds the [t] results
    with [lambda]s instead of re-interpolating polynomials.

    All x-coordinates must be distinct {e nonzero} field points ([g(0)]
    is the secret), which bounds the party count by [q - 1]. *)

val share :
  Ring.t -> threshold:int -> xs:int list -> gen:(unit -> int) -> int -> int list
(** [share r ~threshold ~xs ~gen s] evaluates a fresh random polynomial
    of degree [threshold - 1] with constant term [s] at every point of
    [xs], consuming exactly [threshold - 1] draws from [gen] (expected
    to return canonical field encodings, e.g. a PRG reduced mod [q]).
    [threshold = 1] degenerates to plain replication.
    @raise Invalid_argument if [threshold < 1], [xs] is shorter than
    [threshold], or [xs] contains zero or a duplicate. *)

val lambdas_at_zero : Ring.t -> xs:int list -> int list
(** The Lagrange multipliers [lambda_i = prod_{j<>i} x_j / (x_j - x_i)]
    evaluating interpolation at zero: for any polynomial [g] of degree
    [< length xs], [g(0) = sum_i lambda_i g(x_i)].
    @raise Invalid_argument if [xs] is empty or contains zero or a
    duplicate x-coordinate. *)

val combine : Ring.t -> lambdas:int list -> int list -> int
(** [combine r ~lambdas vs] is [sum_i lambdas_i * vs_i] — reconstruction
    given precomputed multipliers.  Works equally on secrets and on
    {e evaluations} of shared polynomials (linearity).
    @raise Invalid_argument on length mismatch. *)

val reconstruct : Ring.t -> (int * int) list -> int
(** [reconstruct r shares] recovers the secret from [(x_i, g(x_i))]
    pairs — [combine] with [lambdas_at_zero] of the pairs' x's.  Needs
    exactly the sharing threshold many pairs to be correct (more is
    fine only if they lie on the same degree-[t - 1] polynomial).
    @raise Invalid_argument on empty, zero or duplicate x's. *)

val share_vector :
  Ring.t ->
  threshold:int ->
  xs:int list ->
  gen:(unit -> int) ->
  int array ->
  int array list
(** Coefficient-wise {!share} of a whole coefficient vector: one share
    vector per x-coordinate, in the order of [xs].  Coefficient [j] of
    the result vectors is a fresh sharing of input coefficient [j];
    [gen] is consumed left to right, [threshold - 1] draws per
    coefficient. *)

val combine_vectors : Ring.t -> lambdas:int list -> int array list -> int array
(** Coefficient-wise {!combine}: recovers the original vector from
    [t] share vectors.  @raise Invalid_argument on length mismatches
    (between [lambdas] and the vectors, or among the vectors). *)
