type t = int array
(* Invariant: length = Ring.n, entries are canonical field encodings. *)

let dim (r : Ring.t) = r.Ring.n
let zero r = Array.make (dim r) 0

let one r =
  let v = zero r in
  v.(0) <- 1;
  v

let is_zero v = Array.for_all (fun c -> c = 0) v

let of_dense (r : Ring.t) f =
  let n = dim r in
  let v = Array.make n 0 in
  let coeffs = Dense.to_coeffs f in
  Array.iteri (fun i c -> v.(i mod n) <- r.Ring.add v.(i mod n) c) coeffs;
  v

let to_dense (r : Ring.t) v = Dense.of_coeffs r v

let of_int_array (r : Ring.t) a =
  if Array.length a <> dim r then
    invalid_arg
      (Printf.sprintf "Cyclic.of_int_array: expected %d coefficients, got %d"
         (dim r) (Array.length a));
  Array.map r.Ring.normalize a

let to_int_array v = Array.copy v
let view (v : t) = v
let coeff v i = v.(i)
let linear r ~root = of_dense r (Dense.linear r ~root)

let add (r : Ring.t) a b = Array.map2 r.Ring.add a b
let sub (r : Ring.t) a b = Array.map2 r.Ring.sub a b
let neg (r : Ring.t) a = Array.map r.Ring.neg a
let scale (r : Ring.t) k a = Array.map (r.Ring.mul k) a

let mul (r : Ring.t) a b =
  let n = dim r in
  let c = Array.make n 0 in
  for i = 0 to n - 1 do
    let ai = a.(i) in
    if ai <> 0 then
      for j = 0 to n - 1 do
        let k = if i + j >= n then i + j - n else i + j in
        c.(k) <- r.Ring.add c.(k) (r.Ring.mul ai b.(j))
      done
  done;
  c

let mul_x (r : Ring.t) a =
  let n = dim r in
  Array.init n (fun i -> a.((i + n - 1) mod n))

let mul_linear (r : Ring.t) ~root f =
  (* (x - root) * f = mul_x f - root * f, fused into one pass. *)
  let n = dim r in
  let root = r.Ring.normalize root in
  Array.init n (fun i ->
      let shifted = f.((i + n - 1) mod n) in
      r.Ring.sub shifted (r.Ring.mul root f.(i)))

let eval (r : Ring.t) v point =
  let point = r.Ring.normalize point in
  if point = 0 then
    invalid_arg "Cyclic.eval: evaluation at 0 is not preserved by reduction";
  let acc = ref 0 in
  for i = Array.length v - 1 downto 0 do
    acc := r.Ring.add (r.Ring.mul !acc point) v.(i)
  done;
  !acc

let recover_linear_factor (r : Ring.t) ~product ~node =
  if is_zero product then Error `Degenerate
  else begin
    (* f = (x - t).g  <=>  t.g = x.g - f  coefficient-wise. *)
    let target = sub r (mul_x r product) node in
    let pivot = ref (-1) in
    Array.iteri (fun i c -> if c <> 0 && !pivot < 0 then pivot := i) product;
    let i = !pivot in
    let t = r.Ring.div target.(i) product.(i) in
    if scale r t product = target then Ok t else Error `Not_linear
  end

let random (r : Ring.t) ~gen = Array.init (dim r) (fun _ -> r.Ring.normalize (gen ()))
let equal (a : t) (b : t) = a = b

let pp fmt v =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int v)))
