(** Synthetic XMark auction documents (Schmidt et al., the benchmark
    of the paper's §6), conforming to the DTD of Appendix A
    ({!Secshare_xml.Dtd.xmark}).

    The generator is deterministic in its seed and linear in its scale
    factor, so encoding experiments can sweep document sizes
    reproducibly.  [factor = 1.0] yields a document of roughly 100 KB
    serialised. *)

type profile = {
  items_per_region : int;
  categories : int;
  people : int;
  open_auctions : int;
  closed_auctions : int;
}

val profile_of_factor : float -> profile
(** The paper-shaped workload mix scaled by [factor] (at least one of
    each population). *)

val generate : ?seed:int64 -> factor:float -> unit -> Secshare_xml.Tree.t
(** A document with [profile_of_factor factor] populations. *)

val generate_profile : ?seed:int64 -> profile -> Secshare_xml.Tree.t

val generate_bytes : ?seed:int64 -> target_bytes:int -> unit -> Secshare_xml.Tree.t
(** Calibrates the factor so the serialised document is within a few
    percent of [target_bytes].  @raise Invalid_argument below 10
    KB. *)
