(** Word pools for the synthetic auction documents.  The real XMark
    generator draws from Shakespeare; any stable English-ish pool
    preserves the experiments (they depend on structure, not
    prose). *)

let first_names =
  [|
    "joan"; "john"; "mary"; "james"; "linda"; "robert"; "patricia"; "michael";
    "barbara"; "william"; "elizabeth"; "david"; "jennifer"; "richard"; "maria";
    "charles"; "susan"; "joseph"; "margaret"; "thomas"; "dorothy"; "daniel";
    "lisa"; "paul"; "nancy"; "mark"; "karen"; "donald"; "betty"; "george";
    "helen"; "kenneth"; "sandra"; "steven"; "donna"; "edward"; "carol"; "brian";
    "ruth"; "ronald"; "sharon"; "anthony"; "michelle"; "kevin"; "laura";
  |]

let last_names =
  [|
    "johnson"; "smith"; "williams"; "jones"; "brown"; "davis"; "miller";
    "wilson"; "moore"; "taylor"; "anderson"; "thomas"; "jackson"; "white";
    "harris"; "martin"; "thompson"; "garcia"; "martinez"; "robinson"; "clark";
    "rodriguez"; "lewis"; "lee"; "walker"; "hall"; "allen"; "young";
    "hernandez"; "king"; "wright"; "lopez"; "hill"; "scott"; "green"; "adams";
    "baker"; "gonzalez"; "nelson"; "carter"; "mitchell"; "perez"; "roberts";
  |]

let cities =
  [|
    "amsterdam"; "eindhoven"; "enschede"; "utrecht"; "rotterdam"; "toronto";
    "boston"; "seattle"; "portland"; "austin"; "denver"; "chicago"; "atlanta";
    "dallas"; "houston"; "phoenix"; "miami"; "berlin"; "munich"; "hamburg";
    "paris"; "lyon"; "madrid"; "barcelona"; "rome"; "milan"; "vienna";
    "zurich"; "geneva"; "brussels"; "antwerp"; "london"; "oxford"; "cambridge";
  |]

let countries =
  [|
    "netherlands"; "canada"; "germany"; "france"; "spain"; "italy"; "austria";
    "switzerland"; "belgium"; "england"; "scotland"; "ireland"; "denmark";
    "norway"; "sweden"; "finland"; "portugal"; "greece"; "poland"; "hungary";
  |]

let streets =
  [|
    "main"; "oak"; "pine"; "maple"; "cedar"; "elm"; "park"; "lake"; "hill";
    "river"; "church"; "market"; "bridge"; "station"; "mill"; "forest";
  |]

let education = [| "high"; "school"; "college"; "graduate"; "other" |]
let genders = [| "male"; "female" |]
let payment = [| "cash"; "creditcard"; "money"; "order"; "personal"; "check" |]
let shipping = [| "will"; "ship"; "internationally"; "buyer"; "pays"; "fixed"; "cost" |]
let auction_types = [| "regular"; "featured"; "dutch" |]
let happiness_words = [| "happy"; "satisfied"; "neutral"; "unhappy" |]

let lorem =
  [|
    "lorem"; "ipsum"; "dolor"; "sit"; "amet"; "consectetur"; "adipiscing";
    "elit"; "sed"; "do"; "eiusmod"; "tempor"; "incididunt"; "ut"; "labore";
    "et"; "dolore"; "magna"; "aliqua"; "enim"; "ad"; "minim"; "veniam";
    "quis"; "nostrud"; "exercitation"; "ullamco"; "laboris"; "nisi";
    "aliquip"; "ex"; "ea"; "commodo"; "consequat"; "duis"; "aute"; "irure";
    "in"; "reprehenderit"; "voluptate"; "velit"; "esse"; "cillum"; "eu";
    "fugiat"; "nulla"; "pariatur"; "excepteur"; "sint"; "occaecat";
    "cupidatat"; "non"; "proident"; "sunt"; "culpa"; "qui"; "officia";
    "deserunt"; "mollit"; "anim"; "id"; "est"; "laborum"; "vintage";
    "antique"; "rare"; "mint"; "condition"; "original"; "boxed"; "limited";
    "edition"; "signed"; "collector"; "pristine"; "restored"; "classic";
    "genuine"; "authentic"; "handmade"; "ornate"; "delicate"; "sturdy";
    "polished"; "engraved"; "ceramic"; "wooden"; "silver"; "golden";
    "crystal"; "porcelain"; "leather"; "brass"; "copper"; "marble";
  |]

let item_nouns =
  [|
    "clock"; "vase"; "painting"; "lamp"; "table"; "chair"; "mirror"; "book";
    "camera"; "watch"; "ring"; "necklace"; "guitar"; "violin"; "radio";
    "telescope"; "globe"; "chess"; "set"; "teapot"; "candlestick"; "rug";
    "tapestry"; "sculpture"; "medal"; "coin"; "stamp"; "map"; "print";
  |]

let interests =
  [| "music"; "books"; "sports"; "travel"; "art"; "cooking"; "gardening"; "film" |]
