module Tree = Secshare_xml.Tree
module Rng = Secshare_prg.Xoshiro

type profile = {
  items_per_region : int;
  categories : int;
  people : int;
  open_auctions : int;
  closed_auctions : int;
}

let profile_of_factor factor =
  if factor <= 0.0 then invalid_arg "Xmark: factor must be positive";
  let scale base = max 1 (int_of_float (Float.round (float_of_int base *. factor))) in
  {
    items_per_region = scale 6;
    categories = scale 10;
    people = scale 25;
    open_auctions = scale 12;
    closed_auctions = scale 8;
  }

let el = Tree.element
let txt s = Tree.text s
let leaf name s = el name [ txt s ]

let sentence rng n =
  let words = List.init n (fun _ -> Rng.pick rng Vocab.lorem) in
  String.concat " " words

let number rng bound = string_of_int (Rng.next_int rng ~bound)
let money rng = Printf.sprintf "%d.%02d" (Rng.next_int rng ~bound:500) (Rng.next_int rng ~bound:100)

let date rng =
  Printf.sprintf "%02d/%02d/%04d"
    (1 + Rng.next_int rng ~bound:12)
    (1 + Rng.next_int rng ~bound:28)
    (1998 + Rng.next_int rng ~bound:4)

let time rng =
  Printf.sprintf "%02d:%02d:%02d"
    (Rng.next_int rng ~bound:24)
    (Rng.next_int rng ~bound:60)
    (Rng.next_int rng ~bound:60)

let person_name rng =
  Rng.pick rng Vocab.first_names ^ " " ^ Rng.pick rng Vocab.last_names

let item_name rng = Rng.pick rng Vocab.lorem ^ " " ^ Rng.pick rng Vocab.item_nouns

(* Adjacent text siblings would be merged by any conforming parser, so
   the generator coalesces them up front (keeping parse/print
   round-trips exact). *)
let coalesce_text children =
  let rec go = function
    | Tree.Text a :: Tree.Text b :: rest -> go (Tree.Text (a ^ " " ^ b) :: rest)
    | node :: rest -> node :: go rest
    | [] -> []
  in
  go children

(* text ::= (#PCDATA | bold | keyword | emph)* *)
let rec rich_text rng budget =
  let chunk () = txt (sentence rng (30 + Rng.next_int rng ~bound:30)) in
  if budget <= 0 then [ chunk () ]
  else begin
    let pieces = 1 + Rng.next_int rng ~bound:3 in
    coalesce_text
      (List.concat
         (List.init pieces (fun _ ->
              match Rng.next_int rng ~bound:10 with
              | 0 -> [ el "bold" (rich_text rng (budget - 1)) ]
              | 1 -> [ el "keyword" (rich_text rng (budget - 1)) ]
              | 2 -> [ el "emph" (rich_text rng (budget - 1)) ]
              | _ -> [ chunk () ])))
  end

(* description ::= (text | parlist); parlist ::= (listitem)*;
   listitem ::= (text | parlist)* *)
let rec description rng depth =
  if depth > 0 && Rng.next_int rng ~bound:4 = 0 then
    el "description" [ parlist rng (depth - 1) ]
  else el "description" [ el "text" (rich_text rng 1) ]

and parlist rng depth =
  let items = 1 + Rng.next_int rng ~bound:3 in
  el "parlist"
    (List.init items (fun _ ->
         if depth > 0 && Rng.next_int rng ~bound:4 = 0 then
           el "listitem" [ parlist rng (depth - 1) ]
         else el "listitem" [ el "text" (rich_text rng 1) ]))

let category rng index =
  el "category"
    ~attrs:[ ("id", Printf.sprintf "category%d" index) ]
    [ leaf "name" (sentence rng 2); description rng 1 ]

let catgraph rng ncats =
  let edges = if ncats < 2 then 0 else ncats + Rng.next_int rng ~bound:(max 1 ncats) in
  el "catgraph"
    (List.init edges (fun _ ->
         el "edge"
           ~attrs:
             [
               ("from", Printf.sprintf "category%d" (Rng.next_int rng ~bound:ncats));
               ("to", Printf.sprintf "category%d" (Rng.next_int rng ~bound:ncats));
             ]
           []))

let mailbox rng =
  let mails = Rng.next_int rng ~bound:3 in
  el "mailbox"
    (List.init mails (fun _ ->
         el "mail"
           [
             leaf "from" (person_name rng);
             leaf "to" (person_name rng);
             leaf "date" (date rng);
             el "text" (rich_text rng 0);
           ]))

let item rng ~ncats ~index =
  el "item"
    ~attrs:[ ("id", Printf.sprintf "item%d" index) ]
    [
      leaf "location" (Rng.pick rng Vocab.countries);
      leaf "quantity" (number rng 10);
      leaf "name" (item_name rng);
      leaf "payment" (Rng.pick rng Vocab.payment);
      description rng 2;
      leaf "shipping" (Rng.pick rng Vocab.shipping);
      el "incategory"
        ~attrs:[ ("category", Printf.sprintf "category%d" (Rng.next_int rng ~bound:(max 1 ncats))) ]
        [];
      mailbox rng;
    ]

let address rng =
  let province =
    if Rng.next_int rng ~bound:2 = 0 then [ leaf "province" (Rng.pick rng Vocab.countries) ]
    else []
  in
  el "address"
    ([
       leaf "street" (number rng 100 ^ " " ^ Rng.pick rng Vocab.streets);
       leaf "city" (Rng.pick rng Vocab.cities);
       leaf "country" (Rng.pick rng Vocab.countries);
     ]
    @ province
    @ [ leaf "zipcode" (number rng 99999) ])

let profile_element rng =
  let interests =
    List.init (Rng.next_int rng ~bound:3) (fun _ ->
        el "interest" ~attrs:[ ("category", Rng.pick rng Vocab.interests) ] [])
  in
  let optional p node = if Rng.next_int rng ~bound:100 < p then [ node () ] else [] in
  el "profile"
    ~attrs:[ ("income", money rng) ]
    (interests
    @ optional 60 (fun () -> leaf "education" (Rng.pick rng Vocab.education))
    @ optional 70 (fun () -> leaf "gender" (Rng.pick rng Vocab.genders))
    @ [ leaf "business" (if Rng.next_int rng ~bound:2 = 0 then "yes" else "no") ]
    @ optional 60 (fun () -> leaf "age" (number rng 60)))

let person rng ~index =
  let optional p node = if Rng.next_int rng ~bound:100 < p then [ node () ] else [] in
  let watches =
    optional 40 (fun () ->
        el "watches"
          (List.init (Rng.next_int rng ~bound:4) (fun i ->
               el "watch"
                 ~attrs:[ ("open_auction", Printf.sprintf "open_auction%d" i) ]
                 [])))
  in
  el "person"
    ~attrs:[ ("id", Printf.sprintf "person%d" index) ]
    ([
       leaf "name" (person_name rng);
       leaf "emailaddress" (Rng.pick rng Vocab.first_names ^ "@" ^ Rng.pick rng Vocab.cities ^ ".com");
     ]
    @ optional 60 (fun () -> leaf "phone" ("+" ^ number rng 99 ^ " " ^ number rng 9999999))
    @ optional 75 (fun () -> address rng)
    @ optional 30 (fun () -> leaf "homepage" ("www." ^ Rng.pick rng Vocab.last_names ^ ".org"))
    @ optional 50 (fun () -> leaf "creditcard" (number rng 9999 ^ " " ^ number rng 9999))
    @ optional 70 (fun () -> profile_element rng)
    @ watches)

let annotation rng =
  let maybe_description =
    if Rng.next_int rng ~bound:2 = 0 then [ description rng 1 ] else []
  in
  el "annotation"
    ([ el "author" ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.next_int rng ~bound:100)) ] [] ]
    @ maybe_description
    @ [ leaf "happiness" (Rng.pick rng Vocab.happiness_words) ])

let bidder rng =
  el "bidder"
    [
      leaf "date" (date rng);
      leaf "time" (time rng);
      el "personref" ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.next_int rng ~bound:100)) ] [];
      leaf "increase" (money rng);
    ]

let open_auction rng ~nitems ~index =
  let optional p node = if Rng.next_int rng ~bound:100 < p then [ node () ] else [] in
  let bidders = List.init (Rng.next_int rng ~bound:5) (fun _ -> bidder rng) in
  el "open_auction"
    ~attrs:[ ("id", Printf.sprintf "open_auction%d" index) ]
    ([ leaf "initial" (money rng) ]
    @ optional 40 (fun () -> leaf "reserve" (money rng))
    @ bidders
    @ [ leaf "current" (money rng) ]
    @ optional 30 (fun () -> leaf "privacy" "yes")
    @ [
        el "itemref" ~attrs:[ ("item", Printf.sprintf "item%d" (Rng.next_int rng ~bound:(max 1 nitems))) ] [];
        el "seller" ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.next_int rng ~bound:100)) ] [];
        annotation rng;
        leaf "quantity" (number rng 10);
        leaf "type" (Rng.pick rng Vocab.auction_types);
        el "interval" [ leaf "start" (date rng); leaf "end" (date rng) ];
      ])

let closed_auction rng ~nitems =
  let optional p node = if Rng.next_int rng ~bound:100 < p then [ node () ] else [] in
  el "closed_auction"
    ([
       el "seller" ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.next_int rng ~bound:100)) ] [];
       el "buyer" ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.next_int rng ~bound:100)) ] [];
       el "itemref" ~attrs:[ ("item", Printf.sprintf "item%d" (Rng.next_int rng ~bound:(max 1 nitems))) ] [];
       leaf "price" (money rng);
       leaf "date" (date rng);
       leaf "quantity" (number rng 10);
       leaf "type" (Rng.pick rng Vocab.auction_types);
     ]
    @ optional 60 (fun () -> annotation rng))

let generate_profile ?(seed = 20050905L) profile =
  let rng = Rng.create seed in
  let nitems = profile.items_per_region * 6 in
  let region name count offset =
    el name (List.init count (fun i -> item rng ~ncats:profile.categories ~index:(offset + i)))
  in
  let n = profile.items_per_region in
  el "site"
    [
      el "regions"
        [
          region "africa" n 0;
          region "asia" n n;
          region "australia" n (2 * n);
          region "europe" n (3 * n);
          region "namerica" n (4 * n);
          region "samerica" n (5 * n);
        ];
      el "categories" (List.init profile.categories (fun i -> category rng i));
      catgraph rng profile.categories;
      el "people" (List.init profile.people (fun i -> person rng ~index:i));
      el "open_auctions"
        (List.init profile.open_auctions (fun i -> open_auction rng ~nitems ~index:i));
      el "closed_auctions"
        (List.init profile.closed_auctions (fun _ -> closed_auction rng ~nitems));
    ]

let generate ?seed ~factor () = generate_profile ?seed (profile_of_factor factor)

let generate_bytes ?seed ~target_bytes () =
  if target_bytes < 10_000 then
    invalid_arg "Xmark.generate_bytes: target must be at least 10 KB";
  (* Sizes are close to linear in the factor, but integer population
     rounding bends the curve at small factors; refine the calibration
     until the size lands within 5% (or give up after a few rounds and
     keep the best attempt). *)
  let size_of doc = String.length (Secshare_xml.Print.to_string doc) in
  let target = float_of_int target_bytes in
  let rec refine factor best best_error rounds =
    let doc = generate ?seed ~factor () in
    let bytes = size_of doc in
    let error = Float.abs (float_of_int bytes -. target) /. target in
    let best, best_error =
      if error < best_error then (Some doc, error) else (best, best_error)
    in
    if error <= 0.05 || rounds <= 0 then Option.get best
    else refine (factor *. (target /. float_of_int bytes)) best best_error (rounds - 1)
  in
  refine 1.0 None infinity 4
