(* Eraser-style dynamic lockset witness (SSDB_RACE_CHECK=1).

   The static races pass (lib/lint/pass_races.ml) proves the guarded-by
   discipline lexically; this module is the dynamic backstop for what a
   name-based analysis cannot see — aliases, first-class functions,
   state reached through another compilation unit.  Instrumented
   modules report lock acquisitions ([acquired]/[released], by lock
   *class* name) and shared-state touches ([access], by root name);
   the witness runs the classic Eraser refinement per root:

     - the first accesses stay in an initialization hole (a single
       executor owns the root; no refinement), because OCaml programs
       overwhelmingly build state before publishing it;
     - once a second executor touches the root, every access
       intersects the root's candidate set with the locks its executor
       holds at that moment;
     - an empty candidate set after a shared-phase *write* is a race
       report (reads-only sharing after initialization is allowed —
       that is the single-writer publication pattern).

   An executor is a (domain, thread) pair, so Thread.t threads inside
   one domain are distinguished from parallel domains.  Reports
   accumulate; [reports] returns them and the test suites assert the
   list stays empty (and that a deliberately seeded race fills it).

   Known limitation, documented in DESIGN.md §16: striped locks
   (Pager's per-stripe latches) are reported under one merged class
   name, so holding the *wrong* stripe still satisfies the witness.
   The static pass has the same granularity; both are conservative in
   the non-reporting direction. *)

module SS = Set.Make (String)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "SSDB_RACE_CHECK" with Some "1" -> true | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* The witness's own guard is declared as "race-witness" in
   Lock_table: it ranks below every instrumented lock because it is
   only ever the innermost acquisition. *)
let lock = Mutex.create ()

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

type executor = int * int  (* domain id, thread id *)

let self () : executor = ((Domain.self () :> int), Thread.id (Thread.self ()))

(* lock-class names currently held, innermost first, per executor *)
let held : (executor, string list) Hashtbl.t = Hashtbl.create 16

type root_state = {
  mutable owner : executor option;  (* Some: still in the init hole *)
  mutable cset : SS.t option;  (* candidate locks; None until shared *)
  mutable written_shared : bool;
  mutable reported : bool;
}

let state : (string, root_state) Hashtbl.t = Hashtbl.create 32
let report_acc : string list ref = ref []

let acquired name =
  if enabled () then
    with_lock lock (fun () ->
        let ex = self () in
        let stack = Option.value ~default:[] (Hashtbl.find_opt held ex) in
        Hashtbl.replace held ex (name :: stack))

let released name =
  if enabled () then
    with_lock lock (fun () ->
        let ex = self () in
        let rec drop = function
          | [] -> []
          | n :: rest when String.equal n name -> rest
          | n :: rest -> n :: drop rest
        in
        match drop (Option.value ~default:[] (Hashtbl.find_opt held ex)) with
        | [] -> Hashtbl.remove held ex
        | stack -> Hashtbl.replace held ex stack)

let access ?(write = false) root =
  if enabled () then
    with_lock lock (fun () ->
        let ex = self () in
        let held_now =
          SS.of_list (Option.value ~default:[] (Hashtbl.find_opt held ex))
        in
        match Hashtbl.find_opt state root with
        | None ->
            Hashtbl.replace state root
              { owner = Some ex; cset = None; written_shared = false; reported = false }
        | Some st ->
            if st.owner <> Some ex then begin
              st.owner <- None;
              let cands =
                match st.cset with None -> held_now | Some c -> SS.inter c held_now
              in
              st.cset <- Some cands;
              if write then st.written_shared <- true;
              if st.written_shared && SS.is_empty cands && not st.reported then begin
                st.reported <- true;
                let dom, thr = ex in
                report_acc :=
                  Printf.sprintf
                    "race: %s of `%s' from domain %d thread %d shares no lock with \
                     earlier accessors"
                    (if write then "write" else "read")
                    root dom thr
                  :: !report_acc
              end
            end)

let reports () = with_lock lock (fun () -> List.rev !report_acc)

let reset () =
  with_lock lock (fun () ->
      (* held stacks survive a reset: locks taken before it are still
         held after it *)
      Hashtbl.reset state;
      report_acc := [])
