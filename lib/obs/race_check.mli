(** Eraser-style dynamic lockset witness.

    Off by default; enabled by [SSDB_RACE_CHECK=1] in the environment
    or {!set_enabled}.  When disabled every entry point is a single
    atomic load, so the hooks stay in production code.

    Instrumented modules call {!acquired}/{!released} with the lock
    *class* name from the declared lock table (DESIGN.md §16) around
    each acquisition, and {!access} with a stable root name at each
    shared-state touch.  A root written by two executors that share no
    lock class produces a report; {!reports} returns them oldest
    first. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val acquired : string -> unit
(** [acquired cls] records that the calling executor now holds a lock
    of class [cls]. *)

val released : string -> unit
(** [released cls] drops the innermost held lock of class [cls]. *)

val access : ?write:bool -> string -> unit
(** [access ~write root] records a touch of [root] by the calling
    executor with its currently held lock classes.  [write] defaults
    to [false]. *)

val reports : unit -> string list
val reset : unit -> unit
(** [reset] clears accumulated root states and reports (held-lock
    stacks survive, so a reset inside a locked region stays
    balanced). *)
