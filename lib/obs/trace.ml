(* Tracing core: per-query trace ids, an ambient per-thread context
   (so RPC layers can pick the id up without threading it through
   every signature), a bounded in-memory ring of recent spans, and an
   optional JSONL sink.

   A trace id of 0 means "not traced": [with_span] then runs its body
   with no timing or recording, so untraced paths pay one thread-local
   lookup and nothing else. *)

(* --- id generation: splitmix64 over an atomic state, seeded from the
   clock and pid so concurrent client processes do not collide --- *)

let id_state =
  let seed =
    Int64.logxor
      (Int64.of_float (Unix.gettimeofday () *. 1e6))
      (Int64.mul (Int64.of_int (Unix.getpid ())) 0x9E3779B97F4A7C15L)
  in
  Atomic.make seed

let splitmix64 state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rec genid () =
  let s = Atomic.get id_state in
  if not (Atomic.compare_and_set id_state s (Int64.add s 1L)) then genid ()
  else
    let id = splitmix64 s in
    if Int64.equal id 0L then genid () else id

let span_counter = Atomic.make 1
let next_span_id () = Atomic.fetch_and_add span_counter 1

(* --- ambient per-thread context --- *)

type context = { ctx_trace : int64; ctx_span : int option }

let ambient : (int, context) Hashtbl.t = Hashtbl.create 16
let ambient_lock = Mutex.create ()

let get_context () =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock ambient_lock;
  let ctx = Hashtbl.find_opt ambient id in
  Mutex.unlock ambient_lock;
  ctx

let set_context ctx =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock ambient_lock;
  (match ctx with
  | None -> Hashtbl.remove ambient id
  | Some c -> Hashtbl.replace ambient id c);
  Mutex.unlock ambient_lock

let current_id () =
  match get_context () with Some c -> c.ctx_trace | None -> 0L

let current_span () =
  match get_context () with Some c -> c.ctx_span | None -> None

let with_ambient trace_id f =
  if Int64.equal trace_id 0L then f ()
  else begin
    let saved = get_context () in
    set_context (Some { ctx_trace = trace_id; ctx_span = None });
    Fun.protect ~finally:(fun () -> set_context saved) f
  end

(* --- span ring buffer and JSONL sink --- *)

let ring_capacity = 2048
let ring : Span.t option array = Array.make ring_capacity None
let ring_next = ref 0
let ring_lock = Mutex.create ()

let log_channel : out_channel option ref = ref None
let log_lock = Mutex.create ()

let set_log_file path =
  Mutex.lock log_lock;
  (match !log_channel with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  log_channel :=
    (match path with
    | None -> None
    | Some p -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 p));
  Mutex.unlock log_lock

let record span =
  Mutex.lock ring_lock;
  ring.(!ring_next mod ring_capacity) <- Some span;
  incr ring_next;
  Mutex.unlock ring_lock;
  Mutex.lock log_lock;
  (match !log_channel with
  | Some oc ->
      output_string oc (Span.to_json span);
      output_char oc '\n';
      flush oc
  | None -> ());
  Mutex.unlock log_lock

let recent () =
  Mutex.lock ring_lock;
  let n = min !ring_next ring_capacity in
  let start = !ring_next - n in
  let spans =
    List.filter_map
      (fun i -> ring.((start + i) mod ring_capacity))
      (List.init n (fun i -> i))
  in
  Mutex.unlock ring_lock;
  spans

let clear_recent () =
  Mutex.lock ring_lock;
  Array.fill ring 0 ring_capacity None;
  ring_next := 0;
  Mutex.unlock ring_lock

let emit ?(kind = Span.Internal) ?parent ~trace_id ~name ~start ~duration () =
  if not (Int64.equal trace_id 0L) then
    record
      {
        Span.trace_id;
        span_id = next_span_id ();
        parent_id = parent;
        name;
        start;
        duration;
        kind;
      }

let with_span ?(kind = Span.Internal) name f =
  match get_context () with
  | None -> f ()
  | Some ctx ->
      let span_id = next_span_id () in
      set_context (Some { ctx with ctx_span = Some span_id });
      let start = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          set_context (Some ctx);
          record
            {
              Span.trace_id = ctx.ctx_trace;
              span_id;
              parent_id = ctx.ctx_span;
              name;
              start;
              duration = Unix.gettimeofday () -. start;
              kind;
            })
        f
