(** A finished span: one timed piece of work inside a trace. *)

type kind = Client | Server | Internal

type t = {
  trace_id : int64;  (** never 0 — 0 is the "no trace" sentinel *)
  span_id : int;  (** process-unique *)
  parent_id : int option;
  name : string;
  start : float;  (** unix epoch seconds *)
  duration : float;  (** seconds *)
  kind : kind;
}

val kind_to_string : kind -> string
val trace_id_to_hex : int64 -> string
val trace_id_of_hex : string -> int64 option

val to_json : t -> string
(** One JSON object, no trailing newline (the JSONL sink adds it). *)
