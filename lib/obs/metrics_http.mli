(** The observability HTTP endpoint ([ssdb_server --metrics-port]):

    - [GET /metrics] — Prometheus text exposition of a registry;
    - [GET /healthz] — [200 ok] while serving, [503 draining] once the
      [healthy] callback turns false (graceful-drain signal for load
      balancers).

    HTTP/1.0, one thread per connection, loopback by default.  Pass
    [port:0] to bind an ephemeral port (tests); {!port} reports the
    bound one. *)

type t

val start :
  ?addr:string ->
  port:int ->
  ?registry:Registry.t ->
  ?healthy:(unit -> bool) ->
  unit ->
  t
(** @raise Unix.Unix_error when binding fails. *)

val port : t -> int

val pending_handlers : t -> int
(** Number of connection-handler threads currently tracked.  Handlers
    remove themselves on completion, so under no load this returns to
    0 between scrapes rather than growing by one per served request —
    tests use it to pin down the reaping behaviour. *)

val stop : t -> unit
(** Stop accepting, join every connection thread still in flight. *)
