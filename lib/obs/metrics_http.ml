(* A deliberately tiny HTTP/1.0 server for the two observability
   endpoints: GET /metrics (Prometheus text exposition of a registry)
   and GET /healthz (200 while serving, 503 while draining).  One
   thread per connection, close after the response — scrape traffic
   is low-rate and the absence of keep-alive keeps the code
   inspectable.  Bound to loopback by default: the exposition carries
   counts only, but there is no reason to widen the listener. *)

type t = {
  listen_fd : Unix.file_descr;
  addr : Unix.inet_addr;
  port : int;
  running : bool Atomic.t;
  lock : Mutex.t;
  mutable threads : Thread.t list;
  accept_thread : Thread.t option ref;
}

let http_date () =
  let tm = Unix.gmtime (Unix.time ()) in
  let day = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |].(tm.Unix.tm_wday) in
  let mon =
    [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]
      .(tm.Unix.tm_mon)
  in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day tm.Unix.tm_mday mon
    (tm.Unix.tm_year + 1900) tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let write_response fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nDate: %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (http_date ()) content_type (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let len = Bytes.length payload in
  let rec go off =
    if off < len then
      let n = Unix.write fd payload off (len - off) in
      if n = 0 then () else go (off + n)
  in
  go 0

(* Read until the end-of-headers blank line, bounded at 8 KiB; only
   the request line matters. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let has_terminator contents =
    let n = String.length contents in
    let rec find i =
      if i + 4 > n then false
      else if String.sub contents i 4 = "\r\n\r\n" then true
      else find (i + 1)
    in
    find 0
  in
  let rec go () =
    let contents = Buffer.contents buf in
    if has_terminator contents then Some contents
    else if Buffer.length buf > 8192 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error _ -> None
  in
  go ()

let parse_request_line contents =
  match String.index_opt contents '\r' with
  | None -> None
  | Some eol -> (
      match String.split_on_char ' ' (String.sub contents 0 eol) with
      | [ meth; path; _version ] -> Some (meth, path)
      | _ -> None)

let handle_connection ~registry ~healthy fd =
  (match read_request fd with
  | None -> ()
  | Some contents -> (
      match parse_request_line contents with
      | Some ("GET", "/metrics") ->
          write_response fd ~status:"200 OK"
            ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (Registry.render registry)
      | Some ("GET", "/healthz") ->
          if healthy () then
            write_response fd ~status:"200 OK" ~content_type:"text/plain" "ok\n"
          else
            write_response fd ~status:"503 Service Unavailable"
              ~content_type:"text/plain" "draining\n"
      | Some ("GET", _) ->
          write_response fd ~status:"404 Not Found" ~content_type:"text/plain"
            "not found (try /metrics or /healthz)\n"
      | Some _ ->
          write_response fd ~status:"405 Method Not Allowed" ~content_type:"text/plain"
            "GET only\n"
      | None -> ()));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Run the handler, then drop ourselves from [t.threads].  Without the
   self-removal the list grows by one [Thread.t] per scrape for the
   lifetime of the endpoint (joined only at [stop]) — a slow leak under
   a 15s-interval scraper.  The accept loop creates this thread while
   holding [t.lock], so the removal here cannot run before the add. *)
let handle_and_reap t ~registry ~healthy fd =
  Fun.protect
    ~finally:(fun () ->
      let self = Thread.self () in
      Mutex.lock t.lock;
      t.threads <-
        List.filter (fun th -> Thread.id th <> Thread.id self) t.threads;
      Mutex.unlock t.lock)
    (fun () -> handle_connection ~registry ~healthy fd)

let start ?(addr = "127.0.0.1") ~port ?(registry = Registry.default)
    ?(healthy = fun () -> true) () =
  let inet_addr = Unix.inet_addr_of_string addr in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (match Unix.bind listen_fd (Unix.ADDR_INET (inet_addr, port)) with
  | () -> ()
  | exception exn ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise exn);
  Unix.listen listen_fd 16;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      listen_fd;
      addr = inet_addr;
      port;
      running = Atomic.make true;
      lock = Mutex.create ();
      threads = [];
      accept_thread = ref None;
    }
  in
  t.accept_thread :=
    Some
      (Thread.create
         (fun () ->
           while Atomic.get t.running do
             match Unix.accept t.listen_fd with
             | fd, _ when Atomic.get t.running ->
                 Mutex.lock t.lock;
                 t.threads <-
                   Thread.create (handle_and_reap t ~registry ~healthy) fd :: t.threads;
                 Mutex.unlock t.lock
             | fd, _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             | exception Unix.Unix_error _ ->
                 if Atomic.get t.running then Thread.delay 0.05
           done)
         ());
  t

let port t = t.port

let pending_handlers t =
  Mutex.lock t.lock;
  let n = List.length t.threads in
  Mutex.unlock t.lock;
  n

let stop t =
  (* exchange makes a concurrent double-stop run the shutdown once *)
  if Atomic.exchange t.running false then begin
    (* wake a blocked [accept] with a throwaway connection *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_INET (t.addr, t.port)) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match !(t.accept_thread) with None -> () | Some thread -> Thread.join thread);
    Mutex.lock t.lock;
    let threads = t.threads in
    t.threads <- [];
    Mutex.unlock t.lock;
    List.iter Thread.join threads
  end
