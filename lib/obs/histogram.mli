(** Log-bucketed, mergeable latency histogram.

    Buckets are fixed inclusive upper bounds ([v <= bound], the
    Prometheus [le] convention) plus an overflow bucket; the default
    layout is powers of two from 1 microsecond to ~8.4 seconds.  All
    operations are thread-safe.  Two histograms with the same bucket
    layout merge by elementwise addition, so per-process histograms
    aggregate into fleet-wide quantiles without approximation error
    beyond the bucket width. *)

type t

val default_bounds : float array

val create : ?bounds:float array -> unit -> t
(** @raise Invalid_argument when [bounds] is not strictly ascending. *)

val observe : t -> float -> unit
val count : t -> int
val sum : t -> float

val max_value : t -> float
(** Exact maximum of all observed values (0 when empty). *)

val bounds : t -> float array
val counts : t -> int array
(** Per-bucket counts (overflow bucket last); a copy. *)

val quantile : t -> float -> float
(** Upper bound of the bucket containing the [q]-quantile (0 when
    empty; the exact maximum for the overflow bucket). *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val merge : into:t -> t -> unit
(** Elementwise addition.  Associative and commutative over the
    resulting bucket counts, sum, count and max.
    @raise Invalid_argument when bucket layouts differ. *)

type snapshot = {
  snap_bounds : float array;
  cumulative : int array;  (** cumulative counts per bound, then +Inf *)
  snap_sum : float;
  snap_count : int;
  snap_max : float;
}

val snapshot : t -> snapshot
(** Consistent cumulative view for Prometheus exposition. *)
