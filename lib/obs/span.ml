type kind = Client | Server | Internal

type t = {
  trace_id : int64;
  span_id : int;
  parent_id : int option;
  name : string;
  start : float;  (** unix epoch seconds *)
  duration : float;  (** seconds *)
  kind : kind;
}

let kind_to_string = function
  | Client -> "client"
  | Server -> "server"
  | Internal -> "internal"

let trace_id_to_hex id = Printf.sprintf "%016Lx" id

let trace_id_of_hex s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some id -> Some id
  | None -> None

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"trace\":\"%s\",\"span\":%d,\"parent\":%s,\"name\":\"%s\",\"kind\":\"%s\",\"start\":%.6f,\"duration_ms\":%.3f}"
    (trace_id_to_hex t.trace_id) t.span_id
    (match t.parent_id with None -> "null" | Some p -> string_of_int p)
    (escape_json t.name) (kind_to_string t.kind) t.start (t.duration *. 1000.0)
