(* A named metric registry with Prometheus text exposition.

   Families are identified by name and hold one child per label set.
   Lookup-or-create is idempotent, so hot paths can re-request a
   handle by name without keeping module-level state.  Counters and
   settable gauges are lock-free ([Atomic]); histograms carry their
   own lock; the registry lock only guards the family table. *)

type labels = (string * string) list

type child =
  | Counter of int Atomic.t
  | Gauge of int Atomic.t
  | Gauge_fn of (unit -> float)
  | Histogram of Histogram.t

type kind = K_counter | K_gauge | K_histogram

type family = {
  name : string;
  help : string;
  kind : kind;
  mutable children : (labels * child) list;  (** oldest first *)
}

type t = { lock : Mutex.t; mutable families : family list (* oldest first *) }

let create () = { lock = Mutex.create (); families = [] }
let default = create ()

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name
  && not (match name.[0] with '0' .. '9' -> true | _ -> false)

let normalize_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let kind_to_string = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

(* Find or create the family, then the child for [labels].  The
   [make] thunk builds a fresh child when none exists. *)
let child_of t ~kind ~help ~labels ~make name =
  if not (valid_name name) then invalid_arg ("Registry: bad metric name " ^ name);
  let labels = normalize_labels labels in
  with_lock t (fun () ->
      let family =
        match List.find_opt (fun f -> String.equal f.name name) t.families with
        | Some f ->
            if f.kind <> kind then
              invalid_arg
                (Printf.sprintf "Registry: %s is a %s, requested as %s" name
                   (kind_to_string f.kind) (kind_to_string kind));
            f
        | None ->
            let f = { name; help; kind; children = [] } in
            t.families <- t.families @ [ f ];
            f
      in
      match List.assoc_opt labels family.children with
      | Some child -> child
      | None ->
          let child = make () in
          family.children <- family.children @ [ (labels, child) ];
          child)

type counter = int Atomic.t
type gauge = int Atomic.t

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  match
    child_of registry ~kind:K_counter ~help ~labels
      ~make:(fun () -> Counter (Atomic.make 0))
      name
  with
  | Counter a -> a
  | _ -> assert false

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  match
    child_of registry ~kind:K_gauge ~help ~labels
      ~make:(fun () -> Gauge (Atomic.make 0))
      name
  with
  | Gauge a -> a
  | _ -> assert false

let gauge_set g v = Atomic.set g v
let gauge_add g by = ignore (Atomic.fetch_and_add g by)
let gauge_value g = Atomic.get g

let gauge_fn ?(registry = default) ?(help = "") ?(labels = []) name f =
  (* replace the callback on re-registration: the newest owner of the
     name (e.g. a restarted server) wins *)
  if not (valid_name name) then invalid_arg ("Registry: bad metric name " ^ name);
  let labels = normalize_labels labels in
  with_lock registry (fun () ->
      let family =
        match List.find_opt (fun fam -> String.equal fam.name name) registry.families with
        | Some fam ->
            if fam.kind <> K_gauge then
              invalid_arg ("Registry: " ^ name ^ " already registered with another type");
            fam
        | None ->
            let fam = { name; help; kind = K_gauge; children = [] } in
            registry.families <- registry.families @ [ fam ];
            fam
      in
      family.children <-
        List.filter (fun (l, _) -> l <> labels) family.children @ [ (labels, Gauge_fn f) ])

let histogram ?(registry = default) ?(help = "") ?(labels = []) ?bounds name =
  match
    child_of registry ~kind:K_histogram ~help ~labels
      ~make:(fun () -> Histogram (Histogram.create ?bounds ()))
      name
  with
  | Histogram h -> h
  | _ -> assert false

(* Ensure the family exists (with no children yet): lets a subsystem
   declare its full metric surface at module init, so /metrics shows
   every family a fresh server *can* emit, not just those that have
   fired. *)
let declare ?(registry = default) ?(help = "") ~kind name =
  if not (valid_name name) then invalid_arg ("Registry: bad metric name " ^ name);
  with_lock registry (fun () ->
      match List.find_opt (fun f -> String.equal f.name name) registry.families with
      | Some f ->
          if f.kind <> kind then
            invalid_arg ("Registry: " ^ name ^ " already registered with another type")
      | None -> registry.families <- registry.families @ [ { name; help; kind; children = [] } ])

let clear t = with_lock t (fun () -> t.families <- [])

(* --- Prometheus text exposition (format version 0.0.4) --- *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_to_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label_value v ^ "\"") labels)
      ^ "}"

let float_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_family buf f =
  if f.help <> "" then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.name (escape_help f.help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.name (kind_to_string f.kind));
  List.iter
    (fun (labels, child) ->
      match child with
      | Counter a | Gauge a ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" f.name (labels_to_string labels) (Atomic.get a))
      | Gauge_fn fn ->
          let v = try fn () with _ -> Float.nan in
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" f.name (labels_to_string labels) (float_to_string v))
      | Histogram h ->
          let s = Histogram.snapshot h in
          let n = Array.length s.Histogram.snap_bounds in
          for i = 0 to n - 1 do
            let le = ("le", float_to_string s.Histogram.snap_bounds.(i)) in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" f.name
                 (labels_to_string (labels @ [ le ]))
                 s.Histogram.cumulative.(i))
          done;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" f.name
               (labels_to_string (labels @ [ ("le", "+Inf") ]))
               s.Histogram.cumulative.(n));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" f.name (labels_to_string labels)
               (float_to_string s.Histogram.snap_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" f.name (labels_to_string labels)
               s.Histogram.snap_count))
    f.children

let render t =
  let families = with_lock t (fun () -> t.families) in
  let buf = Buffer.create 4096 in
  List.iter (render_family buf) families;
  Buffer.contents buf
