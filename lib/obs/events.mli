(** Timestamped, leveled event log (the structured stderr lines of
    [ssdb_server --log-level], the slow-query log's transport, and the
    transport retry/reconnect breadcrumbs).

    The default level is {!Error} so libraries and tests stay quiet;
    binaries raise it.  The sink is replaceable for tests. *)

type level = Error | Info | Debug

val level_to_string : level -> string
val level_of_string : string -> (level, string) result
val set_level : level -> unit
val level : unit -> level

val set_sink : (level -> string -> unit) option -> unit
(** Replace the output sink ([None] restores the default: one
    [timestamp level message] line to stderr).  The sink only sees
    messages that pass the level filter. *)

val logf : level -> ('a, unit, string, unit) format4 -> 'a
val error : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val debug : ('a, unit, string, unit) format4 -> 'a
