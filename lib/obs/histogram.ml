(* Log-bucketed latency histogram.  Buckets are fixed at construction
   (upper bounds, ascending), so two histograms with the same bounds
   merge by elementwise addition — the property that makes per-shard
   histograms aggregatable into fleet-wide quantiles. *)

type t = {
  bounds : float array;  (** inclusive upper bounds, ascending *)
  counts : int array;  (** length = length bounds + 1 (overflow last) *)
  mutable sum : float;
  mutable count : int;
  mutable max_value : float;
  lock : Mutex.t;
}

(* Powers of two from 1 microsecond to ~8.4 seconds: 24 buckets plus
   the overflow bucket.  Log-spaced bounds keep the relative quantile
   error constant across five decades of latency. *)
let default_bounds = Array.init 24 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

let create ?(bounds = default_bounds) () =
  let bounds = Array.copy bounds in
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Histogram.create: bounds must be strictly ascending")
    bounds;
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    sum = 0.0;
    count = 0;
    max_value = 0.0;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* First bucket whose upper bound admits [v] ([v <= bound], the
   Prometheus [le] convention); the overflow bucket otherwise. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t v =
  with_lock t (fun () ->
      let i = bucket_index t.bounds v in
      t.counts.(i) <- t.counts.(i) + 1;
      t.sum <- t.sum +. v;
      t.count <- t.count + 1;
      if v > t.max_value then t.max_value <- v)

let count t = with_lock t (fun () -> t.count)
let sum t = with_lock t (fun () -> t.sum)
let max_value t = with_lock t (fun () -> t.max_value)
let bounds t = Array.copy t.bounds
let counts t = with_lock t (fun () -> Array.copy t.counts)

(* Upper bound of the bucket where the cumulative count crosses
   [q * count] — a conservative (over-) estimate, exact for values
   lying on bucket bounds.  The overflow bucket reports the true
   maximum, which is tracked exactly. *)
let quantile t q =
  with_lock t (fun () ->
      if t.count = 0 then 0.0
      else begin
        let q = Float.max 0.0 (Float.min 1.0 q) in
        let rank = int_of_float (ceil (q *. float_of_int t.count)) in
        let rank = max rank 1 in
        let n = Array.length t.bounds in
        let rec go i acc =
          if i >= n then t.max_value
          else
            let acc = acc + t.counts.(i) in
            if acc >= rank then t.bounds.(i) else go (i + 1) acc
        in
        go 0 0
      end)

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

let merge ~into t =
  if into == t then invalid_arg "Histogram.merge: cannot merge into itself";
  (* consistent lock order (registry histograms are few; deadlock is
     avoided by ordering on the physical identity of the mutexes) *)
  let snapshot =
    with_lock t (fun () -> (Array.copy t.counts, t.sum, t.count, t.max_value))
  in
  let counts, s, c, m = snapshot in
  with_lock into (fun () ->
      if Array.length into.counts <> Array.length counts then
        invalid_arg "Histogram.merge: bucket layouts differ";
      Array.iteri (fun i b -> if b <> t.bounds.(i) then
          invalid_arg "Histogram.merge: bucket layouts differ") into.bounds;
      Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) counts;
      into.sum <- into.sum +. s;
      into.count <- into.count + c;
      if m > into.max_value then into.max_value <- m)

type snapshot = {
  snap_bounds : float array;
  cumulative : int array;  (** cumulative counts per bound, then +Inf *)
  snap_sum : float;
  snap_count : int;
  snap_max : float;
}

let snapshot t =
  with_lock t (fun () ->
      let n = Array.length t.counts in
      let cumulative = Array.make n 0 in
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := !acc + t.counts.(i);
        cumulative.(i) <- !acc
      done;
      {
        snap_bounds = Array.copy t.bounds;
        cumulative;
        snap_sum = t.sum;
        snap_count = t.count;
        snap_max = t.max_value;
      })
