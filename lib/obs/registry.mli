(** A named metric registry with Prometheus text exposition.

    A metric {e family} is identified by name and holds one child per
    label set.  Every accessor is lookup-or-create and idempotent, so
    hot paths can re-request a handle by name.  Counters and settable
    gauges are lock-free; the registry lock only guards the family
    table.

    Nothing here ever stores query content: by construction the only
    values a family can carry are counts and durations — the
    information-flow discipline (DESIGN.md §9) is enforced by what the
    API can express, not by reviewer vigilance (label {e values} are
    the one free-text channel; keep them to opcode/operator/reason
    enumerations). *)

type t
type labels = (string * string) list
type kind = K_counter | K_gauge | K_histogram

val create : unit -> t

val default : t
(** The process-global registry: what [ssdb_server --metrics-port]
    exposes. *)

type counter

val counter : ?registry:t -> ?help:string -> ?labels:labels -> string -> counter
val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : ?registry:t -> ?help:string -> ?labels:labels -> string -> gauge
val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val gauge_value : gauge -> int

val gauge_fn : ?registry:t -> ?help:string -> ?labels:labels -> string -> (unit -> float) -> unit
(** A gauge sampled at render time.  Re-registering the same
    name/labels replaces the callback (the newest owner wins). *)

val histogram :
  ?registry:t -> ?help:string -> ?labels:labels -> ?bounds:float array -> string -> Histogram.t

val declare : ?registry:t -> ?help:string -> kind:kind -> string -> unit
(** Ensure the family exists even before any sample: subsystems call
    this at module init so [/metrics] shows the full metric surface of
    a fresh server. *)

val clear : t -> unit
(** Drop every family (tests). *)

val render : t -> string
(** Prometheus text exposition, format version 0.0.4. *)
