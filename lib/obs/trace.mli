(** Tracing: per-query trace ids, ambient per-thread context, a
    bounded ring of recent spans, and an optional JSONL sink.

    Trace ids are generated {e client-side}, one per query, and ride
    the RPC frame header so server-side work joins the client's trace.
    Id 0 is the "not traced" sentinel: {!with_span} then runs its body
    untimed and unrecorded. *)

val genid : unit -> int64
(** A fresh nonzero trace id (splitmix64 over clock + pid). *)

val next_span_id : unit -> int
(** A fresh process-unique span id. *)

val current_id : unit -> int64
(** The calling thread's ambient trace id; 0 when none. *)

val current_span : unit -> int option

val with_ambient : int64 -> (unit -> 'a) -> 'a
(** Run [f] with the given trace id as the thread's ambient context
    (restored afterwards).  A 0 id just runs [f]. *)

val with_span : ?kind:Span.kind -> string -> (unit -> 'a) -> 'a
(** Time [f] and record a span under the ambient trace; a plain call
    when there is no ambient trace.  The span is recorded even when
    [f] raises. *)

val emit :
  ?kind:Span.kind ->
  ?parent:int ->
  trace_id:int64 ->
  name:string ->
  start:float ->
  duration:float ->
  unit ->
  unit
(** Record an already-timed span (ignored when [trace_id] is 0). *)

val record : Span.t -> unit

val recent : unit -> Span.t list
(** The bounded in-memory ring of recently finished spans, oldest
    first (capacity 2048). *)

val clear_recent : unit -> unit

val set_log_file : string option -> unit
(** Append every finished span as one JSON line to this file (the
    [--trace-log] sink); [None] closes the sink. *)
