(* The event sink: timestamped, leveled, structured-ish (key=value)
   lines.  Libraries log through [error]/[info]/[debug]; binaries pick
   the level ([ssdb_server --log-level]).  The default level is
   [Error] so library users and tests stay quiet unless they opt in. *)

type level = Error | Info | Debug

let level_to_string = function Error -> "error" | Info -> "info" | Debug -> "debug"

let level_of_string s : (level, string) result =
  match s with
  | "error" -> Result.Ok Error
  | "info" -> Result.Ok Info
  | "debug" -> Result.Ok Debug
  | other -> Result.Error ("unknown log level " ^ other)

let severity = function Error -> 0 | Info -> 1 | Debug -> 2
let current_level = Atomic.make Error
let set_level l = Atomic.set current_level l
let level () = Atomic.get current_level

let emit_lock = Mutex.create ()

let timestamp now =
  let tm = Unix.gmtime now in
  let ms = int_of_float (Float.rem now 1.0 *. 1000.0) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    ms

let default_sink lvl msg =
  Printf.eprintf "%s %-5s %s\n%!" (timestamp (Unix.gettimeofday ())) (level_to_string lvl)
    msg

let sink : (level -> string -> unit) ref = ref default_sink

(* swap under the emit lock so an in-flight logf on another executor
   never calls a half-torn closure *)
let set_sink f =
  Mutex.lock emit_lock;
  (match f with None -> sink := default_sink | Some f -> sink := f);
  Mutex.unlock emit_lock

let logf lvl fmt =
  Printf.ksprintf
    (fun msg ->
      if severity lvl <= severity (Atomic.get current_level) then begin
        Mutex.lock emit_lock;
        (try !sink lvl msg with _ -> ());
        Mutex.unlock emit_lock
      end)
    fmt

let error fmt = logf Error fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
