type t = bytes

let of_bytes b =
  if Bytes.length b <> 32 then invalid_arg "Seed.of_bytes: seed must be 32 bytes";
  Bytes.copy b

let to_bytes t = Bytes.copy t

let to_hex t =
  String.concat "" (List.init 32 (fun i -> Printf.sprintf "%02x" (Bytes.get_uint8 t i)))

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let of_hex s =
  let s = String.trim s in
  if String.length s <> 64 then
    Error (Printf.sprintf "seed hex must be 64 characters, got %d" (String.length s))
  else begin
    let out = Bytes.create 32 in
    let bad = ref None in
    for i = 0 to 31 do
      match (hex_digit s.[2 * i], hex_digit s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set_uint8 out i ((hi lsl 4) lor lo)
      | _ -> if !bad = None then bad := Some (2 * i)
    done;
    match !bad with
    | Some pos -> Error (Printf.sprintf "invalid hex character near position %d" pos)
    | None -> Ok out
  end

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let of_passphrase phrase =
  (* Compress the passphrase to 64 bits, spread it over a ChaCha20 key,
     then run one expansion round so every seed byte depends on the
     whole digest. *)
  let digest = fnv1a64 (Printf.sprintf "%d:%s" (String.length phrase) phrase) in
  let key0 = Bytes.make 32 '\000' in
  for i = 0 to 7 do
    Bytes.set_uint8 key0 i
      (Int64.to_int (Int64.logand (Int64.shift_right_logical digest (8 * i)) 0xFFL))
  done;
  (* Mix in the raw passphrase bytes cyclically before expanding. *)
  String.iteri
    (fun i c ->
      let j = 8 + (i mod 24) in
      Bytes.set_uint8 key0 j (Bytes.get_uint8 key0 j lxor Char.code c))
    phrase;
  let nonce = Bytes.make 12 '\000' in
  Bytes.blit_string "seedderiv" 0 nonce 0 9;
  Chacha20.keystream ~key:key0 ~nonce ~counter:0 32

let generate () =
  match open_in_bin "/dev/urandom" with
  | ic ->
      let b = Bytes.create 32 in
      really_input ic b 0 32;
      close_in ic;
      b
  | exception Sys_error _ ->
      let state = Splitmix64.create (Int64.of_float (Unix.gettimeofday () *. 1e6)) in
      let b = Bytes.create 32 in
      for i = 0 to 3 do
        Bytes.set_int64_le b (8 * i) (Splitmix64.next state)
      done;
      b

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_hex contents
  | exception Sys_error msg -> Error msg

let save path t =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o600 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_hex t ^ "\n"))

let equal a b = Bytes.equal a b
