let key_length = 32
let nonce_length = 12
let mask32 = 0xFFFFFFFF

(* 32-bit helpers on native ints (OCaml ints are 63-bit here). *)
let ( +% ) a b = (a + b) land mask32
let rotl32 x k = ((x lsl k) lor (x lsr (32 - k))) land mask32

let quarter_round st a b c d =
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl32 (st.(d) lxor st.(a)) 16;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl32 (st.(b) lxor st.(c)) 12;
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl32 (st.(d) lxor st.(a)) 8;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl32 (st.(b) lxor st.(c)) 7

let le32 buf off =
  Bytes.get_uint8 buf off
  lor (Bytes.get_uint8 buf (off + 1) lsl 8)
  lor (Bytes.get_uint8 buf (off + 2) lsl 16)
  lor (Bytes.get_uint8 buf (off + 3) lsl 24)

let store_le32 buf off v =
  Bytes.set_uint8 buf off (v land 0xFF);
  Bytes.set_uint8 buf (off + 1) ((v lsr 8) land 0xFF);
  Bytes.set_uint8 buf (off + 2) ((v lsr 16) land 0xFF);
  Bytes.set_uint8 buf (off + 3) ((v lsr 24) land 0xFF)

let block ~key ~counter ~nonce =
  if Bytes.length key <> key_length then
    invalid_arg "Chacha20.block: key must be 32 bytes";
  if Bytes.length nonce <> nonce_length then
    invalid_arg "Chacha20.block: nonce must be 12 bytes";
  if counter < 0 then invalid_arg "Chacha20.block: negative counter";
  let init = Array.make 16 0 in
  init.(0) <- 0x61707865;
  init.(1) <- 0x3320646e;
  init.(2) <- 0x79622d32;
  init.(3) <- 0x6b206574;
  for i = 0 to 7 do
    init.(4 + i) <- le32 key (4 * i)
  done;
  init.(12) <- counter land mask32;
  for i = 0 to 2 do
    init.(13 + i) <- le32 nonce (4 * i)
  done;
  let st = Array.copy init in
  for _ = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    store_le32 out (4 * i) (st.(i) +% init.(i))
  done;
  out

let keystream ~key ~nonce ~counter len =
  if len < 0 then invalid_arg "Chacha20.keystream: negative length";
  let out = Bytes.create len in
  let blocks = (len + 63) / 64 in
  for b = 0 to blocks - 1 do
    let chunk = block ~key ~counter:(counter + b) ~nonce in
    let off = b * 64 in
    Bytes.blit chunk 0 out off (min 64 (len - off))
  done;
  out

let xor_with ~key ~nonce ~counter data =
  let ks = keystream ~key ~nonce ~counter (Bytes.length data) in
  Bytes.mapi (fun i c -> Char.chr (Char.code c lxor Bytes.get_uint8 ks i)) data
