(** Deterministic regeneration of client-side share polynomials.

    The client tree is generated pseudorandomly and discarded; only the
    seed survives.  [client_poly] regenerates the client polynomial of
    the node at pre-order position [pre]: ChaCha20 keyed by the seed,
    nonce domain-separated by [pre], coefficients drawn uniformly in
    [0, q) by rejection sampling (so the shares are uniform — the
    secret-sharing hiding property depends on this). *)

val client_poly :
  ring:Secshare_poly.Ring.t -> seed:Seed.t -> pre:int -> Secshare_poly.Cyclic.t
(** The client polynomial for node [pre].  Deterministic in
    [(seed, ring, pre)].  @raise Invalid_argument on negative
    [pre]. *)

val coefficients : seed:Seed.t -> pre:int -> q:int -> count:int -> int array
(** The underlying uniform draw in [0, q), exposed for statistical
    tests. *)
