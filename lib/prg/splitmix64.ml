type t = { mutable state : int64 }

let create seed = { state = seed }
let golden_gamma = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int t ~bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound must be positive";
  (* Rejection sampling on the top 62 bits to stay unbiased and within
     OCaml's native int range. *)
  let rec go () =
    let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    let limit = max_int - (max_int mod bound) in
    if raw < limit then raw mod bound else go ()
  in
  go ()

let next_float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let copy t = { state = t.state }
