(** ChaCha20 (RFC 8439 core), used as the scheme's pseudorandom
    generator.

    The client tree of shares is never stored: each node's share is
    regenerated on demand from the secret seed (the 256-bit key) and
    the node's [pre] number (domain-separating the nonce), exactly the
    "pseudorandom generator with the secret seed and the pre location"
    of the paper's §5.2.  Test vectors from RFC 8439 §2.3.2 are
    checked in the test suite. *)

val key_length : int
(** 32 bytes. *)

val nonce_length : int
(** 12 bytes. *)

val block : key:bytes -> counter:int -> nonce:bytes -> bytes
(** One 64-byte keystream block.
    @raise Invalid_argument on wrong key/nonce length or a negative
    counter. *)

val keystream : key:bytes -> nonce:bytes -> counter:int -> int -> bytes
(** [keystream ~key ~nonce ~counter len]: [len] keystream bytes
    starting at the given block counter. *)

val xor_with : key:bytes -> nonce:bytes -> counter:int -> bytes -> bytes
(** Encrypt/decrypt by xor with the keystream (the same operation both
    ways). *)
