type t = { state : int64 array }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let create seed =
  let sm = Splitmix64.create seed in
  { state = Array.init 4 (fun _ -> Splitmix64.next sm) }

let of_state words =
  if Array.length words <> 4 then
    invalid_arg "Xoshiro.of_state: expected 4 state words";
  if Array.for_all (fun w -> Int64.equal w 0L) words then
    invalid_arg "Xoshiro.of_state: all-zero state is invalid";
  { state = Array.copy words }

let next t =
  let s = t.state in
  let result = Int64.mul (rotl (Int64.mul s.(1) 5L) 7) 9L in
  let tmp = Int64.shift_left s.(1) 17 in
  s.(2) <- Int64.logxor s.(2) s.(0);
  s.(3) <- Int64.logxor s.(3) s.(1);
  s.(1) <- Int64.logxor s.(1) s.(2);
  s.(0) <- Int64.logxor s.(0) s.(3);
  s.(2) <- Int64.logxor s.(2) tmp;
  s.(3) <- rotl s.(3) 45;
  result

let next_int t ~bound =
  if bound <= 0 then invalid_arg "Xoshiro.next_int: bound must be positive";
  let rec go () =
    let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    let limit = max_int - (max_int mod bound) in
    if raw < limit then raw mod bound else go ()
  in
  go ()

let next_float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Xoshiro.pick: empty array";
  arr.(next_int t ~bound:(Array.length arr))

let copy t = { state = Array.copy t.state }
