(** xoshiro256** 1.0 (Blackman & Vigna): the workhorse
    non-cryptographic generator used by the XMark workload generator.
    Deterministic from a small integer seed (expanded with
    {!Splitmix64}, as the authors recommend). *)

type t

val create : int64 -> t
(** Seeded via SplitMix64 expansion of the given value. *)

val of_state : int64 array -> t
(** Exact state injection (4 words, not all zero) — used by tests.
    @raise Invalid_argument on wrong length or the all-zero state. *)

val next : t -> int64
val next_int : t -> bound:int -> int
(** Uniform in [0, bound); rejection-sampled.
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val copy : t -> t
