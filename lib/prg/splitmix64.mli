(** SplitMix64 (Steele, Lea & Flood 2014): a tiny, fast, splittable
    64-bit generator.  Used for non-cryptographic randomness (workload
    generation, test-case generation) and to expand small seeds into
    xoshiro state.  Not used for the secret shares — those come from
    {!Chacha20}. *)

type t

val create : int64 -> t
val next : t -> int64
(** Next 64-bit output; advances the state. *)

val next_int : t -> bound:int -> int
(** Uniform in [0, bound) by rejection sampling.
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** Uniform in [0, 1). *)

val copy : t -> t
