(** The client's secret seed — the encryption key of the scheme.

    "The seed file acts as the encryption key and should therefore be
    kept secure.  Without the seed file it is impossible to regenerate
    the client tree, and without the client tree the data on the server
    is meaningless." (paper §5.1)

    A seed is 32 bytes (a ChaCha20 key).  Seed files store it as 64
    hexadecimal characters on a single line. *)

type t

val of_bytes : bytes -> t
(** @raise Invalid_argument unless exactly 32 bytes. *)

val to_bytes : t -> bytes
(** A fresh copy; callers cannot mutate the seed in place. *)

val of_hex : string -> (t, string) result
val to_hex : t -> string

val of_passphrase : string -> t
(** Deterministic seed derivation from a passphrase (iterated ChaCha20
    expansion of a length-prefixed FNV-1a digest; not a
    memory-hard KDF — convenience for examples and tests). *)

val generate : unit -> t
(** Fresh random seed from the OS entropy source
    ([/dev/urandom]); falls back to [Random.self_init]-style stateful
    entropy if unavailable. *)

val load : string -> (t, string) result
(** Read a seed file (64 hex chars, surrounding whitespace
    ignored). *)

val save : string -> t -> unit
(** Write a seed file with permissions 0o600. *)

val equal : t -> t -> bool
