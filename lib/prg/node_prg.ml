let bytes_needed q =
  let rec go k cap = if cap >= q then k else go (k + 1) (cap * 256) in
  go 1 256

let nonce_of_pre pre =
  let nonce = Bytes.make Chacha20.nonce_length '\000' in
  (* 8 bytes of pre, little-endian, then a 4-byte domain tag. *)
  Bytes.set_int64_le nonce 0 (Int64.of_int pre);
  Bytes.blit_string "poly" 0 nonce 8 4;
  nonce

let coefficients ~seed ~pre ~q ~count =
  if pre < 0 then invalid_arg "Node_prg: negative pre";
  if q < 2 then invalid_arg "Node_prg: field order must be >= 2";
  if count < 0 then invalid_arg "Node_prg: negative count";
  let key = Seed.to_bytes seed in
  let nonce = nonce_of_pre pre in
  let k = bytes_needed q in
  let cap =
    let rec pow acc i = if i = 0 then acc else pow (acc * 256) (i - 1) in
    pow 1 k
  in
  let accept_below = cap - (cap mod q) in
  let out = Array.make count 0 in
  (* Pull the keystream in chunks; rejection means we occasionally need
     more, so grow on demand. *)
  let buf = ref (Chacha20.keystream ~key ~nonce ~counter:0 (max 64 (count * k * 2))) in
  let pos = ref 0 in
  let next_counter = ref (Bytes.length !buf / 64) in
  let refill () =
    let extra = Chacha20.keystream ~key ~nonce ~counter:!next_counter 256 in
    next_counter := !next_counter + 4;
    buf := Bytes.cat !buf extra
  in
  let draw () =
    let rec attempt () =
      if !pos + k > Bytes.length !buf then refill ();
      let v = ref 0 in
      for i = 0 to k - 1 do
        v := (!v lsl 8) lor Bytes.get_uint8 !buf (!pos + i)
      done;
      pos := !pos + k;
      if !v < accept_below then !v mod q else attempt ()
    in
    attempt ()
  in
  for i = 0 to count - 1 do
    out.(i) <- draw ()
  done;
  out

let client_poly ~ring ~seed ~pre =
  let n = Secshare_poly.Ring.(ring.n) and q = Secshare_poly.Ring.(ring.order) in
  Secshare_poly.Cyclic.of_int_array ring (coefficients ~seed ~pre ~q ~count:n)
