(* Quickstart: the paper's figure-1 example, end to end.

   We encode the six-node document over F_5 with the map
   a = 2, b = 1, c = 3, look at the shares, and run queries with both
   engines and both tests.

     dune exec examples/quickstart.exe *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common

let xml = "<a><b><c/></b><c><a/><b/></c></a>"

let () =
  (* The map and the seed are the client's secrets; the server sees
     neither. *)
  let mapping =
    Result.get_ok (Secshare_core.Mapping.of_file_string "q = 5\na = 2\nb = 1\nc = 3\n")
  in
  let config =
    {
      DB.default_config with
      p = 5;
      mapping = `Explicit mapping;
      seed = Some (Secshare_prg.Seed.of_passphrase "quickstart");
    }
  in
  let db = Result.get_ok (DB.create ~config xml) in

  print_endline "document:";
  Printf.printf "  %s\n\n" xml;

  (* What the server stores: pre/post/parent plus an opaque share. *)
  print_endline "server table (what an attacker sees):";
  Secshare_store.Node_table.iter (DB.table db) ~f:(fun row ->
      Printf.printf "  pre=%d post=%d parent=%d share=%s\n" row.Secshare_store.Page.pre
        row.Secshare_store.Page.post row.Secshare_store.Page.parent
        (String.concat ""
           (List.init
              (Bytes.length row.Secshare_store.Page.share)
              (fun i ->
                Printf.sprintf "%02x" (Bytes.get_uint8 row.Secshare_store.Page.share i)))));

  (* What the client can reconstruct: the true polynomials of fig 1(d). *)
  print_endline "\nreconstructed node polynomials (client side, fig 1(d)):";
  let ring = DB.ring db in
  Secshare_store.Node_table.iter (DB.table db) ~f:(fun row ->
      let server = Secshare_poly.Codec.unpack_cyclic ring row.Secshare_store.Page.share in
      let poly =
        Secshare_core.Share.reconstruct ring ~seed:(DB.seed db)
          ~pre:row.Secshare_store.Page.pre ~server
      in
      Printf.printf "  pre=%d  %s\n" row.Secshare_store.Page.pre
        (Format.asprintf "%a" Secshare_poly.Dense.pp
           (Secshare_poly.Cyclic.to_dense ring poly)));

  (* Queries. *)
  print_endline "\nqueries:";
  let show q engine strictness label =
    match DB.query ~engine ~strictness db q with
    | Error e -> Printf.printf "  %-22s %-22s error: %s\n" q label e
    | Ok r ->
        Printf.printf "  %-22s %-22s -> nodes %s (%d evaluations)\n" q label
          (String.concat ","
             (List.map
                (fun (m : Secshare_rpc.Protocol.node_meta) ->
                  string_of_int m.Secshare_rpc.Protocol.pre)
                (DB.result_nodes r)))
          r.DB.metrics.Secshare_core.Metrics.evaluations
  in
  show "/a" DB.Advanced QC.Strict "advanced+equality";
  show "//a" DB.Simple QC.Strict "simple+equality";
  show "//a" DB.Simple QC.Non_strict "simple+containment";
  show "/a/c/b" DB.Advanced QC.Strict "advanced+equality";
  print_endline
    "\nNote how //a with the containment test also returns node 4 (the second\n\
     c), whose subtree merely *contains* an a — that is the accuracy gap of\n\
     the paper's figure 7.";
  DB.close db
