(* The paper's §5.3 walkthrough: querying an XMark auction document
   with /site/*/person//city and friends, comparing SimpleQuery and
   AdvancedQuery on real workload shapes.

     dune exec examples/auction_search.exe *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common
module Metrics = Secshare_core.Metrics

let () =
  let doc = Secshare_xmark.Generate.generate_bytes ~target_bytes:300_000 () in
  Printf.printf "XMark auction document: %d elements, %d bytes serialised\n"
    (Secshare_xml.Tree.element_count doc)
    (String.length (Secshare_xml.Print.to_string doc));

  let config =
    { DB.default_config with seed = Some (Secshare_prg.Seed.of_passphrase "auction") }
  in
  let db = Result.get_ok (DB.create_tree ~config doc) in
  let stats = DB.storage_stats db in
  Printf.printf "encoded: %d nodes, %.2f MB of shares, %.2f MB of index\n\n" stats.DB.rows
    (float_of_int stats.DB.data_bytes /. 1048576.0)
    (float_of_int stats.DB.index_bytes /. 1048576.0);

  let queries =
    [
      "/site/*/person//city" (* the walkthrough query of §5.3 *);
      "/site/regions/europe/item";
      "//bidder/date";
      "/*/*/open_auction/bidder/date";
    ]
  in
  Printf.printf "%-32s %10s %12s %12s %10s\n" "query" "matches" "evals(simp)" "evals(adv)"
    "accuracy";
  List.iter
    (fun q ->
      let simple = Result.get_ok (DB.query ~engine:DB.Simple ~strictness:QC.Non_strict db q) in
      let advanced =
        Result.get_ok (DB.query ~engine:DB.Advanced ~strictness:QC.Non_strict db q)
      in
      let strict = Result.get_ok (DB.query ~engine:DB.Advanced ~strictness:QC.Strict db q) in
      let accuracy = Result.get_ok (DB.accuracy db q) in
      ignore advanced;
      Printf.printf "%-32s %10d %12d %12d %9.0f%%\n" q (List.length (DB.result_nodes strict))
        simple.DB.metrics.Metrics.evaluations advanced.DB.metrics.Metrics.evaluations
        (100.0 *. accuracy))
    queries;

  print_endline
    "\nThe advanced engine checks every remaining query name at each node\n\
     (look-ahead), killing dead branches early: on queries with '//' it does\n\
     far fewer evaluations than the simple engine.  The equality test turns\n\
     the containment approximation into exact answers.";
  DB.close db
