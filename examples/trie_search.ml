(* Searching inside text data (§4): with the trie enhancement the data
   content — not just the tags — becomes queryable.  The paper's
   running example: find the person named Joan via
   //name[contains(text(), "joan")].

     dune exec examples/trie_search.exe *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common
module Tree = Secshare_xml.Tree

let xml =
  {|<people>
  <person><name>Joan Johnson</name><city>Enschede</city></person>
  <person><name>Berry Smith</name><city>Eindhoven</city></person>
  <person><name>Joan Miller</name><city>Toronto</city></person>
</people>|}

let () =
  print_endline "document:";
  print_endline xml;

  (* Compressed tries lose word order and multiplicity; uncompressed
     tries are lossless.  Both make the letters searchable. *)
  let doc = Result.get_ok (Tree.of_string xml) in
  let expanded, stats = Secshare_trie.Expand.expand ~mode:Secshare_trie.Expand.Compressed doc in
  Printf.printf
    "\ntrie expansion: %d words (%d chars) became %d character nodes + %d markers\n"
    stats.Secshare_trie.Expand.total_words stats.Secshare_trie.Expand.total_chars
    stats.Secshare_trie.Expand.trie_nodes stats.Secshare_trie.Expand.marker_nodes;
  ignore expanded;

  let config =
    {
      DB.default_config with
      trie = Some Secshare_trie.Expand.Compressed;
      seed = Some (Secshare_prg.Seed.of_passphrase "trie-example");
    }
  in
  let db = Result.get_ok (DB.create_tree ~config doc) in

  let show q =
    match DB.query ~engine:DB.Advanced ~strictness:QC.Strict db q with
    | Error e -> Printf.printf "%-44s error: %s\n" q e
    | Ok r ->
        Printf.printf "%-44s -> %d match(es) at pre %s\n" q (List.length (DB.result_nodes r))
          (String.concat ","
             (List.map
                (fun (m : Secshare_rpc.Protocol.node_meta) ->
                  string_of_int m.Secshare_rpc.Protocol.pre)
                (DB.result_nodes r)))
  in
  print_endline "\nqueries over the encrypted trie:";
  show "//name[contains(text(), \"joan\")]";
  show "//name[contains(text(), \"jo\")]" (* prefixes match too *);
  show "//city[contains(text(), \"enschede\")]";
  show "//name[contains(text(), \"berry\")]";
  show "//name[contains(text(), \"nobody\")]";
  print_endline
    "\nEach query was translated to character steps (joan -> //j/o/a/n) and\n\
     evaluated over polynomial shares; the server never saw a single letter.";
  DB.close db
