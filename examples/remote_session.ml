(* The client/server deployment of figure 3: a thin client talks to a
   big server over a socket.  The server holds only shares and tree
   numbers; the seed and the map never leave the client.

     dune exec examples/remote_session.exe *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common

let () =
  (* --- server side: encode and serve --- *)
  let doc = Secshare_xmark.Generate.generate_bytes ~target_bytes:150_000 () in
  let seed = Secshare_prg.Seed.of_passphrase "remote-demo" in
  let config = { DB.default_config with seed = Some seed } in
  let db = Result.get_ok (DB.create_tree ~config doc) in
  let path = Filename.temp_file "secshare-demo" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  Printf.printf "server: %d encoded nodes on %s\n" (DB.storage_stats db).DB.rows path;

  Fun.protect
    ~finally:(fun () -> Secshare_rpc.Server.stop server)
    (fun () ->
      (* --- client side: connect with the secrets --- *)
      let remote =
        Result.get_ok (DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db) ~seed ~path ())
      in
      Fun.protect
        ~finally:(fun () -> DB.close remote)
        (fun () ->
          List.iter
            (fun q ->
              match DB.query ~engine:DB.Advanced ~strictness:QC.Strict remote q with
              | Error e -> Printf.printf "%-32s error: %s\n" q e
              | Ok r ->
                  Printf.printf
                    "%-32s -> %3d matches | %4d round trips | %6d bytes | %.3f s\n" q
                    (List.length (DB.result_nodes r)) r.DB.rpc_calls r.DB.rpc_bytes r.DB.seconds)
            [ "/site"; "/site/regions/europe/item"; "//bidder/date" ]);

      (* --- an attacker connecting without the seed learns nothing --- *)
      let attacker =
        Result.get_ok
          (DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db)
             ~seed:(Secshare_prg.Seed.of_passphrase "guess") ~path ())
      in
      Fun.protect
        ~finally:(fun () -> DB.close attacker)
        (fun () ->
          match DB.query ~engine:DB.Simple ~strictness:QC.Non_strict attacker "/site" with
          | Ok r ->
              Printf.printf
                "\nattacker with a wrong seed: /site matched %d nodes (the shares are\n\
                 uniformly random without the right PRG key)\n"
                (List.length (DB.result_nodes r))
          | Error e -> Printf.printf "attacker query failed: %s\n" e));
  DB.close db
