module DB = Secshare_core.Database
module QC = Secshare_core.Query_common
module Reference = Secshare_core.Reference
module Metrics = Secshare_core.Metrics
module Ast = Secshare_xpath.Ast
module Parser = Secshare_xpath.Parser
module Tree = Secshare_xml.Tree

let check = Alcotest.check
let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let pres = Test_support.pres_of_metas

let query_pres db ~engine ~strictness q =
  DB.result_nodes (Test_support.must_query ~engine ~strictness db q) |> pres

(* --- reference evaluator sanity --- *)

let doc_small =
  match
    Tree.of_string
      "<site><people><person><name/><address><city/></address></person><person><name/></person></people><regions><europe><item><name/></item></europe></regions></site>"
  with
  | Ok t -> t
  | Error e -> failwith e

let parse q = Parser.parse_exn q

let test_reference_basics () =
  check Alcotest.(list int) "/site" [ 1 ] (Reference.run doc_small (parse "/site"));
  check Alcotest.(list int) "//person" [ 3; 7 ] (Reference.run doc_small (parse "//person"));
  check Alcotest.(list int) "//city" [ 6 ] (Reference.run doc_small (parse "//city"));
  check Alcotest.(list int) "/site/people/person/name" [ 4; 8 ]
    (Reference.run doc_small (parse "/site/people/person/name"));
  check Alcotest.(list int) "* step" [ 2; 9 ] (Reference.run doc_small (parse "/site/*"));
  check Alcotest.(list int) "parent step" [ 3 ]
    (Reference.run doc_small (parse "//city/../.."));
  check Alcotest.(list int) "no match" [] (Reference.run doc_small (parse "/nothing"));
  check Alcotest.(list int) "//name" [ 4; 8; 12 ] (Reference.run doc_small (parse "//name"))

let test_reference_containment_semantics () =
  (* containment: nodes whose subtree contains the name *)
  check Alcotest.(list int) "/site loose" [ 1 ]
    (Reference.run ~semantics:Reference.Containment doc_small (parse "/site"));
  check Alcotest.(list int) "//city loose: everything on the path"
    [ 1; 2; 3; 5; 6 ]
    (Reference.run ~semantics:Reference.Containment doc_small (parse "//city"))

let test_pre_of_path () =
  check Alcotest.(option int) "root" (Some 1) (Reference.pre_of_path doc_small []);
  check Alcotest.(option int) "people" (Some 2) (Reference.pre_of_path doc_small [ 0 ]);
  check Alcotest.(option int) "city" (Some 6) (Reference.pre_of_path doc_small [ 0; 0; 1; 0 ]);
  check Alcotest.(option int) "oob" None (Reference.pre_of_path doc_small [ 9 ])

(* --- engines vs reference on the small doc, all four configurations --- *)

let engines = [ ("simple", DB.Simple); ("advanced", DB.Advanced) ]

let small_queries =
  [
    "/site";
    "//person";
    "/site/people/person";
    "/site/people/person/name";
    "/site/*/person";
    "//city";
    "/site//city";
    "//city/..";
    "/site/*";
    "/nothing";
    "//absent";
    "/site/people//name";
  ]

let test_engines_match_reference_small () =
  let db = Test_support.db_of_tree doc_small in
  List.iter
    (fun q ->
      let ast = parse q in
      let exact = Reference.run doc_small ast in
      let loose = Reference.run ~semantics:Reference.Containment doc_small ast in
      List.iter
        (fun (ename, engine) ->
          check Alcotest.(list int)
            (Printf.sprintf "%s strict %s" ename q)
            exact
            (query_pres db ~engine ~strictness:QC.Strict q);
          check Alcotest.(list int)
            (Printf.sprintf "%s non-strict %s" ename q)
            loose
            (query_pres db ~engine ~strictness:QC.Non_strict q))
        engines)
    small_queries

(* --- random documents, random queries, engines vs reference --- *)

let gen_case = QCheck2.Gen.pair Test_support.gen_tree Test_support.gen_query

let engine_reference_suite =
  List.concat_map
    (fun (ename, engine) ->
      [
        qtest
          (Printf.sprintf "%s strict = reference exact" ename)
          gen_case
          (fun (tree, query) ->
            let db = Test_support.db_of_tree tree in
            let expected = Reference.run tree query in
            let got =
              pres
                (DB.result_nodes
                   (Test_support.must_query ~engine ~strictness:QC.Strict db
                      (Ast.to_string query)))
            in
            got = expected);
        qtest
          (Printf.sprintf "%s non-strict = reference containment" ename)
          gen_case
          (fun (tree, query) ->
            let db = Test_support.db_of_tree tree in
            let expected = Reference.run ~semantics:Reference.Containment tree query in
            let got =
              pres
                (DB.result_nodes
                   (Test_support.must_query ~engine ~strictness:QC.Non_strict db
                      (Ast.to_string query)))
            in
            got = expected);
      ])
    engines

let cross_engine_suite =
  [
    qtest "strict result is a subset of non-strict" gen_case (fun (tree, query) ->
        let db = Test_support.db_of_tree tree in
        let q = Ast.to_string query in
        List.for_all
          (fun (_, engine) ->
            let strict = query_pres db ~engine ~strictness:QC.Strict q in
            let loose = query_pres db ~engine ~strictness:QC.Non_strict q in
            List.for_all (fun p -> List.mem p loose) strict)
          engines);
    qtest "simple and advanced agree" gen_case (fun (tree, query) ->
        let db = Test_support.db_of_tree tree in
        let q = Ast.to_string query in
        List.for_all
          (fun strictness ->
            query_pres db ~engine:DB.Simple ~strictness q
            = query_pres db ~engine:DB.Advanced ~strictness q)
          [ QC.Strict; QC.Non_strict ]);
  ]

(* --- extension fields: the whole pipeline over F_{3^4} --- *)

let test_engine_extension_field () =
  let db = Test_support.db_of_tree ~p:3 ~e:4 doc_small in
  List.iter
    (fun q ->
      check Alcotest.(list int) ("F_81 " ^ q)
        (Reference.run doc_small (parse q))
        (query_pres db ~engine:DB.Advanced ~strictness:QC.Strict q))
    [ "/site"; "//person"; "//city"; "/site/*/person" ]

(* --- small field F_5 from figure 1 --- *)

let test_engine_fig1_field () =
  let tree = Result.get_ok (Tree.of_string "<a><b><c/></b><c><a/><b/></c></a>") in
  let db = Test_support.db_of_tree ~p:5 tree in
  check Alcotest.(list int) "//a strict" [ 1; 5 ]
    (query_pres db ~engine:DB.Simple ~strictness:QC.Strict "//a");
  check Alcotest.(list int) "//a non-strict" [ 1; 4; 5 ]
    (query_pres db ~engine:DB.Simple ~strictness:QC.Non_strict "//a")

(* --- metrics --- *)

let test_metrics_counting () =
  let db = Test_support.db_of_tree doc_small in
  let r = Test_support.must_query ~engine:DB.Simple ~strictness:QC.Non_strict db "/site" in
  (* one candidate (the root), one containment evaluation *)
  check Alcotest.int "evaluations" 1 r.DB.metrics.Metrics.evaluations;
  check Alcotest.int "no reconstructions" 0 r.DB.metrics.Metrics.reconstructions;
  let r = Test_support.must_query ~engine:DB.Simple ~strictness:QC.Strict db "/site" in
  check Alcotest.int "strict does equality tests" 1 r.DB.metrics.Metrics.equality_tests;
  (* root + its 2 children reconstructed *)
  check Alcotest.int "reconstructions" 3 r.DB.metrics.Metrics.reconstructions;
  check Alcotest.bool "rpc calls counted" true (r.DB.rpc_calls > 0);
  check Alcotest.bool "rpc bytes counted" true (r.DB.rpc_bytes > 0)

let test_advanced_prunes () =
  (* a query whose names never co-occur: the advanced engine must stop
     at the root while the simple engine scans descendants *)
  let tree =
    Result.get_ok
      (Tree.of_string
         "<site><a><b/><b/><b/></a><c><d/><d/></c></site>")
  in
  let db = Test_support.db_of_tree tree in
  let simple = Test_support.must_query ~engine:DB.Simple ~strictness:QC.Non_strict db "//b/d" in
  let advanced =
    Test_support.must_query ~engine:DB.Advanced ~strictness:QC.Non_strict db "//b/d"
  in
  (* containment semantics: only c (pre 6) has a d inside *)
  check Alcotest.(list int) "containment result" [ 6 ] (pres (DB.result_nodes simple));
  check Alcotest.(list int) "containment result (advanced)" [ 6 ] (pres (DB.result_nodes advanced));
  (* strict: no d is a child of a b anywhere *)
  check Alcotest.(list int) "strict result empty" []
    (pres (DB.result_nodes (Test_support.must_query ~engine:DB.Advanced ~strictness:QC.Strict db "//b/d")));
  check Alcotest.bool "advanced evaluates fewer nodes" true
    (advanced.DB.metrics.Metrics.evaluations < simple.DB.metrics.Metrics.evaluations)

(* --- accuracy (figure 7 mechanics) --- *)

let test_accuracy () =
  let db = Test_support.db_of_tree doc_small in
  (* absolute query without //: containment = equality -> 100% *)
  (match DB.accuracy db "/site/people/person/name" with
  | Ok a -> check (Alcotest.float 0.0001) "absolute query" 1.0 a
  | Error e -> Alcotest.fail e);
  (* //city: containment result has the whole root path -> 1/5 *)
  match DB.accuracy db "//city" with
  | Ok a -> check (Alcotest.float 0.0001) "descendant query" 0.2 a
  | Error e -> Alcotest.fail e

(* --- trie-backed contains() queries --- *)

let test_contains_query () =
  let tree =
    Result.get_ok
      (Tree.of_string
         "<people><person><name>Joan Johnson</name></person><person><name>Bob Smith</name></person></people>")
  in
  let db = Test_support.db_of_tree ~trie:Secshare_trie.Expand.Compressed tree in
  let joan = Test_support.must_query ~strictness:QC.Strict db "//name[contains(text(), \"joan\")]" in
  (* pre numbers follow the trie-expanded document; check via names *)
  check Alcotest.int "one name matches joan" 1 (List.length (DB.result_nodes joan));
  let jo = Test_support.must_query ~strictness:QC.Strict db "//name[contains(text(), \"jo\")]" in
  check Alcotest.int "prefix jo matches joan+johnson's name" 1 (List.length (DB.result_nodes jo));
  let smith = Test_support.must_query ~strictness:QC.Strict db "//name[contains(text(), \"smith\")]" in
  check Alcotest.int "smith matches the other name" 1 (List.length (DB.result_nodes smith));
  check Alcotest.bool "different nodes" true (pres (DB.result_nodes smith) <> pres (DB.result_nodes joan));
  let nobody = Test_support.must_query ~strictness:QC.Strict db "//name[contains(text(), \"zzz\")]" in
  check Alcotest.int "no match" 0 (List.length (DB.result_nodes nobody))

let test_contains_uncompressed () =
  let tree = Result.get_ok (Tree.of_string "<d><t>ab ab cd</t></d>") in
  let db = Test_support.db_of_tree ~trie:Secshare_trie.Expand.Uncompressed tree in
  let hits = Test_support.must_query ~strictness:QC.Strict db "//t[contains(text(), \"ab\")]" in
  (* uncompressed: each of the two "ab" occurrences is its own chain *)
  check Alcotest.int "both chains found" 2 (List.length (DB.result_nodes hits))

(* --- the nextNode() pipeline: server-side cursor accounting --- *)

let test_cursor_accounting () =
  let ring = Secshare_poly.Ring.of_prime ~p:83 in
  let mapping = Result.get_ok (Secshare_core.Mapping.of_tree ~q:83 doc_small) in
  let table = Secshare_store.Node_table.create () in
  (match
     Secshare_core.Encode.encode_tree ring ~mapping ~seed:Test_support.test_seed ~table
       doc_small
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Secshare_core.Encode.error_to_string e));
  let server = Secshare_core.Server_filter.create ring table in
  let transport =
    Secshare_rpc.Transport.local ~handler:(Secshare_core.Server_filter.handler server)
  in
  let filter =
    Secshare_core.Client_filter.create ring ~seed:Test_support.test_seed ~batch_size:2
      transport
  in
  let root = Option.get (Secshare_core.Client_filter.root filter) in
  (* tiny batches force several Cursor_next round trips *)
  let visited = ref 0 in
  Secshare_core.Client_filter.iter_descendants filter root ~f:(fun _ -> incr visited);
  check Alcotest.int "all descendants streamed" 11 !visited;
  check Alcotest.int "drained cursors are freed" 0
    (Secshare_core.Server_filter.open_cursors server);
  (* an abandoned cursor stays open until closed explicitly *)
  let open Secshare_rpc.Protocol in
  (match
     Secshare_rpc.Transport.call transport
       (Descendants { pre = root.pre; post = root.post })
   with
  | Cursor id ->
      check Alcotest.int "abandoned cursor counted" 1
        (Secshare_core.Server_filter.open_cursors server);
      (match Secshare_rpc.Transport.call transport (Cursor_close id) with
      | Pong -> ()
      | r -> Alcotest.failf "close: %s" (Format.asprintf "%a" pp_response r));
      check Alcotest.int "closed cursor freed" 0
        (Secshare_core.Server_filter.open_cursors server)
  | r -> Alcotest.failf "descendants: %s" (Format.asprintf "%a" pp_response r));
  (* unknown cursors are an error, not a crash *)
  match Secshare_rpc.Transport.call transport (Cursor_next { cursor = 999; max_items = 5 }) with
  | Error_msg _ -> ()
  | r -> Alcotest.failf "unknown cursor: %s" (Format.asprintf "%a" pp_response r)

(* --- corrupted share detection --- *)

let test_corrupt_share_surfaces () =
  (* a share whose decoded coefficient is out of range must produce a
     server-side error, not a wrong answer *)
  let ring = Secshare_poly.Ring.of_prime ~p:83 in
  let table = Secshare_store.Node_table.create () in
  Secshare_store.Node_table.insert table
    {
      Secshare_store.Page.pre = 1;
      post = 1;
      parent = 0;
      share = Bytes.make (Secshare_poly.Codec.byte_length ~q:83 ~n:82) '\xFF';
    };
  let server = Secshare_core.Server_filter.create ring table in
  match
    Secshare_core.Server_filter.handler server (Secshare_rpc.Protocol.Eval { pre = 1; point = 5 })
  with
  | Secshare_rpc.Protocol.Error_msg _ -> ()
  | r ->
      Alcotest.failf "corrupt share answered: %s"
        (Format.asprintf "%a" Secshare_rpc.Protocol.pp_response r)

(* --- error handling --- *)

let test_query_errors () =
  let db = Test_support.db_of_tree doc_small in
  (match DB.query db "not a query" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed query accepted");
  match DB.query db "/unmapped_tag_name" with
  | Ok r -> check Alcotest.(list int) "unmapped name matches nothing" [] (pres (DB.result_nodes r))
  | Error e -> Alcotest.fail e

let test_create_errors () =
  (match DB.create "<broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad xml accepted");
  (match DB.create ~config:{ DB.default_config with p = 6 } "<a/>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "composite p accepted");
  match DB.create ~config:{ DB.default_config with p = 2 } "<a><b/><c/></a>" with
  | Error _ -> () (* 3 names cannot map into F_2 *)
  | Ok _ -> Alcotest.fail "overflowing map accepted"

let () =
  Alcotest.run "engine"
    [
      ( "reference",
        [
          Alcotest.test_case "basics" `Quick test_reference_basics;
          Alcotest.test_case "containment semantics" `Quick test_reference_containment_semantics;
          Alcotest.test_case "pre_of_path" `Quick test_pre_of_path;
        ] );
      ( "engines vs reference",
        Alcotest.test_case "small document, all configs" `Quick
          test_engines_match_reference_small
        :: engine_reference_suite
        @ cross_engine_suite );
      ( "fields",
        [
          Alcotest.test_case "extension field F_81" `Slow test_engine_extension_field;
          Alcotest.test_case "figure 1 field F_5" `Quick test_engine_fig1_field;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counting" `Quick test_metrics_counting;
          Alcotest.test_case "advanced prunes dead branches" `Quick test_advanced_prunes;
        ] );
      ("accuracy", [ Alcotest.test_case "E/C quotient" `Quick test_accuracy ]);
      ( "trie queries",
        [
          Alcotest.test_case "contains() compressed" `Quick test_contains_query;
          Alcotest.test_case "contains() uncompressed" `Quick test_contains_uncompressed;
        ] );
      ( "server filter",
        [
          Alcotest.test_case "cursor accounting" `Quick test_cursor_accounting;
          Alcotest.test_case "corrupt shares surface" `Quick test_corrupt_share_surfaces;
        ] );
      ( "errors",
        [
          Alcotest.test_case "query errors" `Quick test_query_errors;
          Alcotest.test_case "create errors" `Quick test_create_errors;
        ] );
    ]
