(* Regression: a standalone server process must survive writing to a
   client that disconnected with its reply pending.

   The event loop writes with raw [Unix.write]; if nothing ignores
   SIGPIPE the first such write kills the whole process.  In-process
   tests mask that bug because the test client's own [Frame.send]
   installs the process-wide ignore — so the server here runs in a
   forked child with SIGPIPE at its lethal default disposition.

   This is its own executable (not a test_rpc case) because OCaml 5
   forbids [Unix.fork] once any domain has been spawned: the fork must
   happen before the first [Server.start] in the process.  Exit code 0
   = pass, 1 = fail. *)

module Protocol = Secshare_rpc.Protocol
module Transport = Secshare_rpc.Transport
module Server = Secshare_rpc.Server
module Frame = Secshare_rpc.Frame

let handler : Protocol.request -> Protocol.response = function
  | Protocol.Eval { pre; point } ->
      (* long enough for the client to close its socket before the
         reply write happens *)
      Unix.sleepf 0.3;
      Protocol.Value (pre + point)
  | _ -> Protocol.Pong

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let () =
  let path = Filename.temp_file "ssdb-fork" ".sock" in
  Sys.remove path;
  let ready_r, ready_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (* child: the standalone server.  Belt and braces: make sure
         SIGPIPE really is at default before the server starts, so the
         test fails if [Server.start_sessions] stops installing the
         ignore itself *)
      Unix.close ready_r;
      (try Sys.set_signal Sys.sigpipe Sys.Signal_default
       with Invalid_argument _ -> ());
      let _server = Server.start ~path ~handler in
      ignore (Unix.write ready_w (Bytes.make 1 '\000') 0 1);
      Unix.close ready_w;
      while true do
        Unix.sleepf 0.05
      done
  | child ->
      Unix.close ready_w;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill child Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ())
        (fun () ->
          ignore (Unix.read ready_r (Bytes.create 1) 0 1);
          Unix.close ready_r;
          (* first client: send a request whose reply takes 0.3s, then
             vanish before it arrives *)
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          Frame.send fd (Protocol.encode_request (Protocol.Eval { pre = 1; point = 1 }));
          Unix.close fd;
          (* give the server time to attempt the doomed write *)
          Unix.sleepf 0.6;
          (match Unix.waitpid [ Unix.WNOHANG ] child with
          | 0, _ -> ()
          | _, Unix.WSIGNALED n -> fail "server process died mid-write: signal %d" n
          | _, Unix.WEXITED n -> fail "server process died mid-write: exit %d" n
          | _, Unix.WSTOPPED n -> fail "server process stopped by signal %d" n);
          (* and it must still serve: a fresh client gets a reply *)
          (match Transport.socket path with
          | Error e -> fail "reconnect after disconnect mid-write: %s" e
          | Ok t ->
              (match Transport.call t (Protocol.Eval { pre = 40; point = 2 }) with
              | Protocol.Value 42 -> ()
              | r ->
                  fail "server broken after disconnect: %s"
                    (Format.asprintf "%a" Protocol.pp_response r));
              Transport.close t);
          print_endline "server survived disconnect mid-write")
