(* The sharded serving subsystem (lib/shard): manifest format, the
   offline dealer split, and the router — golden-equality against the
   single server, threshold degradation with shards killed before and
   mid-query, and error discipline (application errors propagate,
   transport deaths fail over). *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common
module Share = Secshare_core.Share
module Server_filter = Secshare_core.Server_filter
module Manifest = Secshare_shard.Manifest
module Split = Secshare_shard.Split
module Router = Secshare_shard.Router
module Node_table = Secshare_store.Node_table
module Page = Secshare_store.Page
module Transport = Secshare_rpc.Transport
module Protocol = Secshare_rpc.Protocol
module Ring = Secshare_poly.Ring
module Seed = Secshare_prg.Seed

let check = Alcotest.check

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ring = Ring.of_prime ~p:83
let pres = Test_support.pres_of_metas

let contains ~sub s =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- manifest --- *)

let m0 =
  {
    Manifest.shard_id = 1;
    shards = 3;
    threshold = 2;
    p = 83;
    e = 1;
    rows = 100;
    bounds = [| 1; 10; 20 |];
  }

let test_manifest_roundtrip () =
  let path = Filename.temp_file "ssdb-shard" ".manifest" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Manifest.save path m0;
      match Manifest.load path with
      | Error e -> Alcotest.fail e
      | Ok m -> check Alcotest.bool "identical after the roundtrip" true (m = m0));
  match Manifest.load (path ^ ".does-not-exist") with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ()

let test_manifest_validate () =
  let bad name m =
    match Manifest.validate m with
    | Ok () -> Alcotest.failf "validate accepted %s" name
    | Error _ -> ()
  in
  check Alcotest.bool "m0 is valid" true (Manifest.validate m0 = Ok ());
  bad "threshold 0" { m0 with Manifest.threshold = 0 };
  bad "threshold > shards" { m0 with Manifest.threshold = 4 };
  bad "shard_id out of range" { m0 with Manifest.shard_id = 9 };
  bad "negative rows" { m0 with Manifest.rows = -1 };
  bad "empty bounds" { m0 with Manifest.bounds = [||] };
  bad "non-ascending bounds" { m0 with Manifest.bounds = [| 1; 10; 10 |] }

let test_manifest_group () =
  let group = List.init 3 (fun i -> { m0 with Manifest.shard_id = i + 1 }) in
  (match Manifest.group_consistent group with
  | Error e -> Alcotest.fail e
  | Ok summary ->
      check Alcotest.int "summary is the router's view" 0 summary.Manifest.shard_id;
      check Alcotest.int "geometry preserved" 2 summary.Manifest.threshold);
  let bad name group =
    match Manifest.group_consistent group with
    | Ok _ -> Alcotest.failf "group_consistent accepted %s" name
    | Error _ -> ()
  in
  bad "duplicate shard ids" [ m0; m0; { m0 with Manifest.shard_id = 3 } ];
  bad "diverging rows"
    [
      m0;
      { m0 with Manifest.shard_id = 2; rows = 99 };
      { m0 with Manifest.shard_id = 3 };
    ];
  bad "diverging bounds"
    [
      m0;
      { m0 with Manifest.shard_id = 2; bounds = [| 1; 10; 21 |] };
      { m0 with Manifest.shard_id = 3 };
    ];
  bad "empty group" []

let test_partition_of () =
  check Alcotest.int "partitions" 3 (Manifest.partitions m0);
  List.iter
    (fun (pre, want) ->
      check Alcotest.int (Printf.sprintf "pre %d" pre) want
        (Manifest.partition_of m0 ~pre))
    [ (0, 0); (1, 0); (9, 0); (10, 1); (19, 1); (20, 2); (100000, 2) ]

let test_wire_roundtrip () =
  let m = Manifest.of_info ~p:83 ~e:1 (Manifest.to_info m0) in
  check Alcotest.bool "to_info/of_info roundtrip" true (m = m0)

(* --- an in-process threshold deployment ---

   Each shard is a real [Server_filter] over its own share table,
   reached through a [Transport.local] wrapped in a fault switch so
   tests can kill a shard's transport (every call fails, including the
   router's Ping probe) or make it misbehave at the application level
   (calls fail but Ping still answers). *)

type fault = Healthy | Transport_down | App_failing

type deployment = {
  db : DB.t;  (** the single-server reference (local handle) *)
  tables : Node_table.t array;
  switches : fault ref array;
  router : Router.t;
}

let wrap switch handler request =
  match (!switch, request) with
  | Healthy, _ -> handler request
  | Transport_down, _ -> Protocol.Error_msg "injected: transport down"
  | App_failing, Protocol.Ping -> handler request
  | App_failing, _ -> Protocol.Error_msg "injected application error"

let make_deployment ?(threshold = 2) ?(shards = 3) tree =
  let db = Test_support.db_of_tree tree in
  let tables = Array.init shards (fun _ -> Node_table.create ()) in
  let manifests =
    Split.split_table ring ~threshold ~shards ~dealer_seed:(Seed.generate ())
      ~source:(DB.table db) ~sinks:tables
  in
  let switches = Array.init shards (fun _ -> ref Healthy) in
  let transports =
    List.init shards (fun i ->
        let filter =
          Server_filter.create ~manifest:(Manifest.to_info manifests.(i)) ring
            tables.(i)
        in
        Transport.local ~handler:(wrap switches.(i) (Server_filter.handler filter)))
  in
  match Router.of_transports ring transports with
  | Error e -> failwith ("router: " ^ e)
  | Ok router -> { db; tables; switches; router }

let teardown d =
  Router.close d.router;
  DB.close d.db

let client_of d =
  match
    DB.of_transport ~p:83 ~e:1 ~mapping:(DB.mapping d.db) ~seed:(DB.seed d.db)
      (Transport.local ~handler:(Router.handler d.router))
  with
  | Ok c -> c
  | Error e -> failwith e

let xmark_tree = Secshare_xmark.Generate.generate ~factor:0.5 ()

let golden_queries =
  [ "/site"; "/site/regions/europe/item"; "//bidder/date"; "/site/*/person//city" ]

let modes =
  [ (DB.Simple, QC.Non_strict); (DB.Advanced, QC.Non_strict); (DB.Advanced, QC.Strict) ]

let check_golden ?(note = "") d client =
  List.iter
    (fun q ->
      List.iter
        (fun (engine, strictness) ->
          let local = Test_support.must_query ~engine ~strictness d.db q in
          match DB.query ~engine ~strictness client q with
          | Error e -> Alcotest.failf "%s%s routed: %s" note q e
          | Ok routed ->
              check Alcotest.(list int) (note ^ q) (pres (DB.result_nodes local))
                (pres (DB.result_nodes routed)))
        modes)
    golden_queries

(* --- the dealer split --- *)

let test_split_reconstructs () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      let checked = ref 0 in
      Node_table.iter (DB.table d.db) ~f:(fun row ->
          List.iter
            (fun xs ->
              let shares =
                List.map
                  (fun i ->
                    match Node_table.find_by_pre d.tables.(i - 1) row.Page.pre with
                    | Some r -> r.Page.share
                    | None -> Alcotest.failf "shard %d misses pre" i)
                  xs
              in
              let got =
                Share.reconstruct_packed ring
                  ~lambdas:(Share.shard_lambdas ring ~xs)
                  shares
              in
              if not (Bytes.equal got row.Page.share) then
                Alcotest.failf "reconstruction differs for a row (subset %s)"
                  (String.concat "," (List.map string_of_int xs));
              incr checked)
            [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ]; [ 3; 1 ] ]);
      check Alcotest.bool "checked every row against every 2-subset" true
        (!checked = 4 * Node_table.row_count (DB.table d.db)))

let test_split_metadata_and_masking () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      let source = DB.table d.db in
      let n = Node_table.row_count source in
      Array.iter
        (fun t ->
          check Alcotest.int "every shard holds every row" n (Node_table.row_count t))
        d.tables;
      let shard1_differs = ref false and shards_differ = ref false in
      Node_table.iter source ~f:(fun row ->
          match
            ( Node_table.find_by_pre d.tables.(0) row.Page.pre,
              Node_table.find_by_pre d.tables.(1) row.Page.pre )
          with
          | Some s1, Some s2 ->
              check Alcotest.int "post preserved" row.Page.post s1.Page.post;
              check Alcotest.int "parent preserved" row.Page.parent s1.Page.parent;
              if not (Bytes.equal s1.Page.share row.Page.share) then
                shard1_differs := true;
              if not (Bytes.equal s1.Page.share s2.Page.share) then
                shards_differ := true
          | _ -> Alcotest.fail "shard misses a row");
      check Alcotest.bool "shard shares are masked (≠ server share)" true
        !shard1_differs;
      check Alcotest.bool "shards hold distinct shares" true !shards_differ)

let test_bounds_of_table () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      let bounds = Split.bounds_of_table ~shards:4 (DB.table d.db) in
      check Alcotest.int "one window per shard" 4 (Array.length bounds);
      Array.iteri
        (fun i b ->
          if i > 0 then
            check Alcotest.bool "strictly ascending" true (b > bounds.(i - 1)))
        bounds;
      check Alcotest.int "first window starts at the first pre" 1 bounds.(0))

(* --- router golden equality --- *)

let test_router_golden () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      let client = client_of d in
      Fun.protect
        ~finally:(fun () -> DB.close client)
        (fun () ->
          check_golden d client;
          check Alcotest.int "no cursor leaks" 0 (Router.open_cursors d.router)))

let test_router_single_shard () =
  (* a 1-of-1 "deployment" over a plain unsharded server: the filter
     answers the handshake with its default trivial manifest *)
  let db = Test_support.db_of_tree xmark_tree in
  Fun.protect
    ~finally:(fun () -> DB.close db)
    (fun () ->
      let filter = Server_filter.create ring (DB.table db) in
      let transport = Transport.local ~handler:(Server_filter.handler filter) in
      match Router.of_transports ring [ transport ] with
      | Error e -> Alcotest.fail e
      | Ok router ->
          Fun.protect
            ~finally:(fun () -> Router.close router)
            (fun () ->
              check Alcotest.int "threshold 1" 1 (Router.threshold router);
              let client =
                Result.get_ok
                  (DB.of_transport ~p:83 ~e:1 ~mapping:(DB.mapping db)
                     ~seed:(DB.seed db)
                     (Transport.local ~handler:(Router.handler router)))
              in
              Fun.protect
                ~finally:(fun () -> DB.close client)
                (fun () ->
                  List.iter
                    (fun q ->
                      let local = Test_support.must_query db q in
                      match DB.query client q with
                      | Error e -> Alcotest.failf "%s: %s" q e
                      | Ok routed ->
                          check Alcotest.(list int) q (pres (DB.result_nodes local))
                            (pres (DB.result_nodes routed)))
                    golden_queries)))

let test_router_qcheck =
  qtest "routed = local on random documents and queries"
    (QCheck2.Gen.pair Test_support.gen_tree Test_support.gen_query)
    (fun (tree, q) ->
      let d = make_deployment tree in
      Fun.protect
        ~finally:(fun () -> teardown d)
        (fun () ->
          let client = client_of d in
          Fun.protect
            ~finally:(fun () -> DB.close client)
            (fun () ->
              match (DB.query_ast d.db q, DB.query_ast client q) with
              | Ok local, Ok routed -> pres (DB.result_nodes local) = pres (DB.result_nodes routed)
              | Error e, _ | _, Error e -> failwith e)))

(* --- threshold degradation --- *)

let test_kill_one_before_query () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      d.switches.(1) := Transport_down;
      let client = client_of d in
      Fun.protect
        ~finally:(fun () -> DB.close client)
        (fun () ->
          check_golden ~note:"shard 2 down: " d client;
          check Alcotest.int "the dead shard was noticed" 2
            (Router.live_shards d.router)))

let test_kill_shard_hook () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      Router.kill_shard d.router 3;
      check Alcotest.int "marked dead" 2 (Router.live_shards d.router);
      let client = client_of d in
      Fun.protect
        ~finally:(fun () -> DB.close client)
        (fun () -> check_golden ~note:"shard 3 marked dead: " d client))

let test_below_threshold_fails_cleanly () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      d.switches.(0) := Transport_down;
      d.switches.(2) := Transport_down;
      let client = client_of d in
      Fun.protect
        ~finally:(fun () -> DB.close client)
        (fun () ->
          match DB.query client "//bidder/date" with
          | Ok _ -> Alcotest.fail "answered below the threshold"
          | Error e ->
              check Alcotest.bool
                (Printf.sprintf "clean unavailable error (got %S)" e)
                true
                (contains ~sub:"unavailable" e)))

let test_app_error_propagates () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      d.switches.(0) := App_failing;
      let client = client_of d in
      Fun.protect
        ~finally:(fun () -> DB.close client)
        (fun () ->
          match DB.query client "//bidder/date" with
          | Ok _ -> Alcotest.fail "a failing shard answered"
          | Error e ->
              check Alcotest.bool
                (Printf.sprintf "error propagated verbatim (got %S)" e)
                true
                (contains ~sub:"injected application error" e);
              check Alcotest.int "the shard is still considered live" 3
                (Router.live_shards d.router)))

(* --- fused scans: splitting exactness and mid-scan failover --- *)

let scan_all ?(after_first = fun () -> ()) handler ~points ~max_items target =
  match handler (Protocol.Scan_eval { target; points; max_items }) with
  | Protocol.Scan_batch { rows; cursor } ->
      after_first ();
      let rec go acc = function
        | None -> List.concat (List.rev acc)
        | Some c -> (
            match handler (Protocol.Scan_next { cursor = c; max_items }) with
            | Protocol.Scan_batch { rows; cursor } -> go (rows :: acc) cursor
            | r -> Alcotest.failf "scan_next: %a" Protocol.pp_response r)
      in
      go [ rows ] cursor
  | r -> Alcotest.failf "scan_eval: %a" Protocol.pp_response r

let points = [ 5; 17; 42 ]

let test_bounded_target_equivalence () =
  let db = Test_support.db_of_tree xmark_tree in
  Fun.protect
    ~finally:(fun () -> DB.close db)
    (fun () ->
      let filter = Server_filter.create ring (DB.table db) in
      let h = Server_filter.handler filter in
      let rows = Node_table.row_count (DB.table db) in
      let full =
        scan_all h ~points ~max_items:7 (Protocol.Pre_ranges [ (1, rows + 1) ])
      in
      check Alcotest.bool "the scan saw the whole table" true
        (List.length full = rows);
      let mid = 1 + (rows / 3) in
      let split =
        scan_all h ~points ~max_items:7
          (Protocol.Bounded_pre_ranges
             [ (1, mid, rows + 1); (mid, max_int, rows + 1) ])
      in
      check Alcotest.bool "splitting at a partition boundary is exact" true
        (full = split))

let test_mid_scan_failover () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      let rows = Node_table.row_count (DB.table d.db) in
      let reference =
        let filter = Server_filter.create ring (DB.table d.db) in
        scan_all (Server_filter.handler filter) ~points ~max_items:5
          (Protocol.Pre_ranges [ (1, rows + 1) ])
      in
      check Alcotest.bool "reference drains the table" true
        (List.length reference = rows);
      (* kill shard 1's transport after the first batch so the scan
         must fail over mid-stream *)
      let h = Router.handler d.router in
      let routed =
        scan_all h
          ~after_first:(fun () -> d.switches.(0) := Transport_down)
          ~points ~max_items:5
          (Protocol.Pre_ranges [ (1, rows + 1) ])
      in
      check Alcotest.bool "identical rows and evaluations across the failover" true
        (reference = routed);
      check Alcotest.int "the dead shard was noticed" 2 (Router.live_shards d.router);
      check Alcotest.int "no cursor leaks" 0 (Router.open_cursors d.router))

let test_connection_scoped_cursors () =
  let d = make_deployment xmark_tree in
  Fun.protect
    ~finally:(fun () -> teardown d)
    (fun () ->
      let on_request, on_close = Router.connection d.router in
      (match
         on_request
           (Protocol.Scan_eval
              {
                target = Protocol.Pre_ranges [ (1, 1_000_000) ];
                points;
                max_items = 2;
              })
       with
      | Protocol.Scan_batch { cursor = Some _; _ } -> ()
      | r -> Alcotest.failf "expected a cursor: %a" Protocol.pp_response r);
      check Alcotest.int "one open cursor" 1 (Router.open_cursors d.router);
      on_close ();
      check Alcotest.int "closed with the connection" 0
        (Router.open_cursors d.router))

let () =
  Alcotest.run "shard"
    [
      ( "manifest",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "validate" `Quick test_manifest_validate;
          Alcotest.test_case "group consistency" `Quick test_manifest_group;
          Alcotest.test_case "partition_of" `Quick test_partition_of;
          Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
        ] );
      ( "split",
        [
          Alcotest.test_case "any 2 of 3 shards reconstruct every share" `Quick
            test_split_reconstructs;
          Alcotest.test_case "metadata preserved, shares masked" `Quick
            test_split_metadata_and_masking;
          Alcotest.test_case "balanced ascending bounds" `Quick test_bounds_of_table;
        ] );
      ( "router",
        [
          Alcotest.test_case "golden equality vs single server" `Quick
            test_router_golden;
          Alcotest.test_case "trivial 1-shard deployment" `Quick
            test_router_single_shard;
          test_router_qcheck;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "2 of 3 serve identically" `Quick
            test_kill_one_before_query;
          Alcotest.test_case "kill_shard hook" `Quick test_kill_shard_hook;
          Alcotest.test_case "below threshold fails cleanly" `Quick
            test_below_threshold_fails_cleanly;
          Alcotest.test_case "application errors propagate" `Quick
            test_app_error_propagates;
        ] );
      ( "scans",
        [
          Alcotest.test_case "bounded targets split exactly" `Quick
            test_bounded_target_equivalence;
          Alcotest.test_case "mid-scan failover is invisible" `Quick
            test_mid_scan_failover;
          Alcotest.test_case "connection close evicts cursors" `Quick
            test_connection_scoped_cursors;
        ] );
    ]
