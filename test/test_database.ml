(* The Database facade: bundles, batching, pattern queries, error
   surfaces. *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common
module Tree = Secshare_xml.Tree

let check = Alcotest.check
let pres = Test_support.pres_of_metas

let with_temp_dir f =
  let dir = Filename.temp_file "ssdb-bundle" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun entry -> rm (Filename.concat path entry)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let sample_db () =
  let doc = Secshare_xmark.Generate.generate ~factor:0.4 () in
  Test_support.db_of_tree doc

let queries = [ "/site"; "/site/regions/europe/item"; "//bidder/date" ]

let test_bundle_roundtrip () =
  with_temp_dir (fun dir ->
      let db = sample_db () in
      (match DB.save_bundle db ~dir with Ok () -> () | Error e -> Alcotest.fail e);
      check Alcotest.bool "shares.db exists" true
        (Sys.file_exists (Filename.concat dir "shares.db"));
      check Alcotest.bool "map exists" true
        (Sys.file_exists (Filename.concat dir "client.map"));
      match DB.open_bundle ~dir () with
      | Error e -> Alcotest.fail e
      | Ok reopened ->
          List.iter
            (fun q ->
              let original = Test_support.must_query ~strictness:QC.Strict db q in
              let roundtrip =
                match DB.query ~strictness:QC.Strict reopened q with
                | Ok r -> r
                | Error e -> Alcotest.failf "%s: %s" q e
              in
              check Alcotest.(list int) q (pres (DB.result_nodes original)) (pres (DB.result_nodes roundtrip)))
            queries;
          DB.close reopened)

let test_bundle_missing_dir () =
  match DB.open_bundle ~dir:"/nonexistent/bundle/here" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened a missing bundle"

let test_bundle_corrupt_config () =
  with_temp_dir (fun dir ->
      let db = sample_db () in
      (match DB.save_bundle db ~dir with Ok () -> () | Error e -> Alcotest.fail e);
      Out_channel.with_open_text (Filename.concat dir "config") (fun oc ->
          output_string oc "p = not_a_number\ne = 1\n");
      match DB.open_bundle ~dir () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "opened a bundle with a corrupt config")

let test_bundle_shares_public () =
  (* re-opening the shares with a *different* seed must yield garbage:
     the published half alone is useless *)
  with_temp_dir (fun dir ->
      let db = sample_db () in
      (match DB.save_bundle db ~dir with Ok () -> () | Error e -> Alcotest.fail e);
      Secshare_prg.Seed.save (Filename.concat dir "client.seed")
        (Secshare_prg.Seed.of_passphrase "attacker guess");
      match DB.open_bundle ~dir () with
      | Error e -> Alcotest.fail e
      | Ok hijacked ->
          let r =
            Result.get_ok (DB.query ~strictness:QC.Non_strict hijacked "/site")
          in
          check Alcotest.(list int) "no matches without the real seed" []
            (pres (DB.result_nodes r));
          DB.close hijacked)

let test_rpc_batching_equivalence () =
  let doc = Secshare_xmark.Generate.generate ~factor:0.4 () in
  let mk batching =
    let config =
      {
        DB.default_config with
        seed = Some Test_support.test_seed;
        client = { DB.default_client_config with rpc_batching = batching };
      }
    in
    Result.get_ok (DB.create_tree ~config doc)
  in
  let batched = mk true and unbatched = mk false in
  List.iter
    (fun q ->
      let rb =
        Result.get_ok (DB.query ~engine:DB.Simple ~strictness:QC.Non_strict batched q)
      in
      let ru =
        Result.get_ok (DB.query ~engine:DB.Simple ~strictness:QC.Non_strict unbatched q)
      in
      check Alcotest.(list int) ("results " ^ q) (pres (DB.result_nodes rb)) (pres (DB.result_nodes ru));
      check Alcotest.int ("same evaluations " ^ q)
        rb.DB.metrics.Secshare_core.Metrics.evaluations
        ru.DB.metrics.Secshare_core.Metrics.evaluations;
      if List.length (DB.result_nodes rb) > 0 then
        check Alcotest.bool ("unbatched needs more round trips " ^ q) true
          (ru.DB.rpc_calls >= rb.DB.rpc_calls))
    queries;
  DB.close batched;
  DB.close unbatched

(* --- §4 regular expressions in contains() --- *)

let regex_db () =
  let doc =
    Result.get_ok
      (Tree.of_string
         "<people><name>joan</name><name>jean</name><name>jon</name><name>johnson</name></people>")
  in
  Test_support.db_of_tree ~trie:Secshare_trie.Expand.Compressed doc

let count_matches db q =
  List.length (DB.result_nodes (Test_support.must_query ~strictness:QC.Strict db q))

let test_contains_dot () =
  let db = regex_db () in
  (* j.an: joan and jean, not jon/johnson *)
  check Alcotest.int "j.an" 2 (count_matches db "//name[contains(text(), \"j.an\")]");
  (* j.n: jon and jean?  j-?-n: jon has j,o,n; jean j,e,a... no.  jon only *)
  check Alcotest.int "j.n" 1 (count_matches db "//name[contains(text(), \"j.n\")]")

let test_contains_dot_star () =
  let db = regex_db () in
  (* j.*n: result nodes are the final n character nodes — one per name,
     except johnson whose chain has two n's below the j *)
  check Alcotest.int "j.*n" 5 (count_matches db "//name[contains(text(), \"j.*n\")]");
  (* j.*h: only johnson *)
  check Alcotest.int "j.*h" 1 (count_matches db "//name[contains(text(), \"j.*h\")]")

let test_contains_bad_pattern () =
  let db = regex_db () in
  match DB.query db "//name[contains(text(), \"j%n\")]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an invalid pattern"

let test_storage_stats_consistency () =
  let db = sample_db () in
  let stats = DB.storage_stats db in
  check Alcotest.bool "rows positive" true (stats.DB.rows > 0);
  check Alcotest.int "encode stats agree" stats.DB.rows
    stats.DB.encode_stats.Secshare_core.Encode.nodes;
  check Alcotest.bool "data covers the shares" true
    (stats.DB.data_bytes >= stats.DB.rows * 72)

let test_field_order_overflow_rejected () =
  (* 83^20 wraps the native int: the configuration must be rejected
     with a clear error, not produce a bogus field size *)
  let tree = Tree.element "a" [ Tree.element "b" [] ] in
  List.iter
    (fun e ->
      let config = { DB.default_config with e; seed = Some Test_support.test_seed } in
      let contains_bound msg =
        let needle = "bound" in
        let n = String.length needle and len = String.length msg in
        let rec scan i = i + n <= len && (String.sub msg i n = needle || scan (i + 1)) in
        scan 0
      in
      match DB.create_tree ~config tree with
      | Error msg ->
          check Alcotest.bool
            (Printf.sprintf "e = %d names the bound: %s" e msg)
            true (contains_bound msg)
      | Ok _ -> Alcotest.failf "e = %d accepted despite overflow" e)
    [ 4; 20; 40 ];
  (* a sane extension degree still works *)
  match DB.create_tree ~config:{ DB.default_config with e = 2; p = 5 } tree with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "p=5 e=2 should be fine: %s" msg

let test_accuracy_empty_result () =
  let db = Test_support.db_of_tree (Tree.element "a" [ Tree.element "b" [] ]) in
  (* both result sets empty -> accuracy defined as 1.0 *)
  match DB.accuracy db "//zzz" with
  | Ok a -> check (Alcotest.float 0.0001) "empty/empty" 1.0 a
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "database"
    [
      ( "bundles",
        [
          Alcotest.test_case "save/open roundtrip" `Quick test_bundle_roundtrip;
          Alcotest.test_case "missing directory" `Quick test_bundle_missing_dir;
          Alcotest.test_case "corrupt config" `Quick test_bundle_corrupt_config;
          Alcotest.test_case "shares alone are useless" `Quick test_bundle_shares_public;
        ] );
      ( "batching",
        [ Alcotest.test_case "batched = unbatched" `Quick test_rpc_batching_equivalence ] );
      ( "contains patterns",
        [
          Alcotest.test_case "dot" `Quick test_contains_dot;
          Alcotest.test_case "dot-star" `Quick test_contains_dot_star;
          Alcotest.test_case "invalid pattern" `Quick test_contains_bad_pattern;
        ] );
      ( "facade",
        [
          Alcotest.test_case "storage stats" `Quick test_storage_stats_consistency;
          Alcotest.test_case "field-order overflow rejected" `Quick
            test_field_order_overflow_rejected;
          Alcotest.test_case "accuracy of empty results" `Quick test_accuracy_empty_result;
        ] );
    ]
