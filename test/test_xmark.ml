module Generate = Secshare_xmark.Generate
module Tree = Secshare_xml.Tree
module Dtd = Secshare_xml.Dtd
module Print = Secshare_xml.Print

let check = Alcotest.check

let dtd =
  match Dtd.parse Dtd.xmark with Ok d -> d | Error e -> failwith ("xmark dtd: " ^ e)

let test_valid_against_dtd () =
  List.iter
    (fun factor ->
      let doc = Generate.generate ~factor () in
      match Dtd.validate dtd doc with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "factor %.1f invalid: %s" factor msg)
    [ 0.2; 1.0; 3.0 ]

let test_deterministic () =
  let a = Generate.generate ~seed:99L ~factor:1.0 () in
  let b = Generate.generate ~seed:99L ~factor:1.0 () in
  check Alcotest.bool "same seed same doc" true (Tree.equal a b);
  let c = Generate.generate ~seed:100L ~factor:1.0 () in
  check Alcotest.bool "different seed different doc" false (Tree.equal a c)

let test_structure () =
  let doc = Generate.generate ~factor:1.0 () in
  (match doc with
  | Tree.Element { name = "site"; children; _ } ->
      let names = List.filter_map Tree.name children in
      check
        Alcotest.(list string)
        "site children"
        [ "regions"; "categories"; "catgraph"; "people"; "open_auctions"; "closed_auctions" ]
        names
  | _ -> Alcotest.fail "root is not site");
  let profile = Generate.profile_of_factor 1.0 in
  check Alcotest.int "people count" profile.Generate.people
    (List.length (Tree.find_all doc ~name:"person"));
  check Alcotest.int "items count"
    (6 * profile.Generate.items_per_region)
    (List.length (Tree.find_all doc ~name:"item"));
  check Alcotest.int "open auctions" profile.Generate.open_auctions
    (List.length (Tree.find_all doc ~name:"open_auction"))

let test_size_scaling () =
  let size factor = String.length (Print.to_string (Generate.generate ~factor ())) in
  let s1 = size 1.0 and s4 = size 4.0 in
  let ratio = float_of_int s4 /. float_of_int s1 in
  if ratio < 2.5 || ratio > 6.0 then
    Alcotest.failf "scaling not roughly linear: %d -> %d (ratio %.2f)" s1 s4 ratio

let test_generate_bytes_accuracy () =
  List.iter
    (fun target ->
      let doc = Generate.generate_bytes ~target_bytes:target () in
      let actual = String.length (Print.to_string doc) in
      let err = abs (actual - target) in
      if err * 10 > target then
        Alcotest.failf "target %d bytes, got %d (>10%% off)" target actual)
    [ 100_000; 500_000 ]

let test_generate_bytes_rejects_small () =
  Alcotest.check_raises "tiny target"
    (Invalid_argument "Xmark.generate_bytes: target must be at least 10 KB") (fun () ->
      ignore (Generate.generate_bytes ~target_bytes:100 ()))

let test_profile_minimums () =
  let p = Generate.profile_of_factor 0.0001 in
  check Alcotest.bool "at least one of each" true
    (p.Generate.items_per_region >= 1 && p.Generate.people >= 1 && p.Generate.categories >= 1);
  Alcotest.check_raises "non-positive factor"
    (Invalid_argument "Xmark: factor must be positive") (fun () ->
      ignore (Generate.profile_of_factor 0.0))

let test_tag_names_subset_of_dtd () =
  let doc = Generate.generate ~factor:2.0 () in
  let declared = Dtd.element_names dtd in
  List.iter
    (fun name ->
      if not (List.mem name declared) then Alcotest.failf "undeclared tag %s" name)
    (Tree.tag_names doc)

let test_queries_have_results () =
  (* the paper's experiments need these paths populated *)
  let doc = Generate.generate ~factor:2.0 () in
  List.iter
    (fun q ->
      let ast = Secshare_xpath.Parser.parse_exn q in
      let hits = Secshare_core.Reference.run doc ast in
      if hits = [] then Alcotest.failf "query %s matches nothing" q)
    [
      "/site";
      "/site/regions/europe/item";
      "/site/regions/europe/item/description/parlist/listitem";
      "/site/*/person//city";
      "//bidder/date";
      "/*/*/open_auction/bidder/date";
    ]

let () =
  Alcotest.run "xmark"
    [
      ( "generator",
        [
          Alcotest.test_case "valid against the auction DTD" `Quick test_valid_against_dtd;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "size scales linearly" `Quick test_size_scaling;
          Alcotest.test_case "byte targeting" `Quick test_generate_bytes_accuracy;
          Alcotest.test_case "rejects tiny targets" `Quick test_generate_bytes_rejects_small;
          Alcotest.test_case "profile minimums" `Quick test_profile_minimums;
          Alcotest.test_case "only declared tags" `Quick test_tag_names_subset_of_dtd;
          Alcotest.test_case "benchmark queries populated" `Quick test_queries_have_results;
        ] );
    ]
