(* Crash-injection harness for the durable store.

   Each trial re-executes this binary as a child process
   ([--crash-child]) that encodes a fixed document into a durable node
   table and dies at a randomized point — SIGKILL between inserts, or
   a torn write (half a buffer, then [Unix._exit]) injected into a WAL
   append, a heap page write, or the header write during flush.  The
   parent then recovers the table the way a restarted server would and
   asserts the durability contract:

   - every acknowledged insert is present, nothing else is;
   - the rebuilt indexes agree with the rows;
   - recovery is idempotent (a second open replays nothing);
   - when the child got every row in, decoded query results are
     bit-identical to the plaintext reference on the same document.

   The parent's randomness is a seeded [Random.State]; the seed is
   printed and can be pinned with SSDB_CRASH_SEED.  SSDB_CRASH_TRIALS
   bounds the randomized trial count (default 60). *)

module Tree = Secshare_xml.Tree
module Page = Secshare_store.Page
module Node_table = Secshare_store.Node_table
module Store_io = Secshare_store.Store_io
module DB = Secshare_core.Database
module Reference = Secshare_core.Reference

let check = Alcotest.check
let page_size = 512
let seed = Secshare_prg.Seed.of_passphrase "crash-harness-seed"

(* A fixed document, built identically by parent and child: branchy
   enough to span several heap pages and give the axes work. *)
let doc =
  let leaf tag word = Tree.element tag [ Tree.text word ] in
  let item i =
    Tree.element "item"
      [
        leaf "name" (Printf.sprintf "thing%d" i);
        leaf "price" (string_of_int (i * 7));
        Tree.element "seller" [ leaf "name" "joan" ];
      ]
  in
  let region tag n = Tree.element tag (List.init n item) in
  Tree.element "site"
    [
      Tree.element "regions" [ region "europe" 6; region "asia" 5; region "africa" 4 ];
      Tree.element "people"
        (List.init 5 (fun i ->
             Tree.element "person" [ leaf "name" (Printf.sprintf "p%d" i); leaf "city" "bonn" ]));
    ]

let queries = [ "/site"; "//item/name"; "/site/regions/*/item"; "//person/city"; "//seller" ]

(* The rows the encode produces, in insertion order — deterministic
   given the fixed seed and mapping, so parent and child agree. *)
let encoded_parts =
  lazy
    (let mapping =
       match Secshare_core.Mapping.of_tree ~q:83 doc with
       | Ok m -> m
       | Error e -> failwith ("mapping: " ^ e)
     in
     let ring = Secshare_poly.Ring.of_prime_power ~p:83 ~e:1 in
     let table = Node_table.create ~page_size () in
     (match Secshare_core.Encode.encode_tree ring ~mapping ~seed ~table doc with
     | Ok _ -> ()
     | Error e -> failwith ("encode: " ^ Secshare_core.Encode.error_to_string e));
     let rows = ref [] in
     Node_table.iter table ~f:(fun r -> rows := r :: !rows);
     (mapping, List.rev !rows))

let expected_rows () = snd (Lazy.force encoded_parts)

(* --- child --------------------------------------------------------- *)

let child_exit_torn = 42

let run_child mode path k ckpt =
  let rows = expected_rows () in
  let checkpoint_every = if ckpt > 0 then Some ckpt else None in
  match mode with
  | "kill" ->
      let table =
        Node_table.create_file ~page_size ~durable:true ?checkpoint_every path
      in
      List.iteri
        (fun i row ->
          if i = k then Unix.kill (Unix.getpid ()) Sys.sigkill;
          Node_table.insert table row)
        rows;
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      1 (* unreachable: killed above *)
  | "torn-wal" ->
      (* the k-th WAL write (magic is the first) tears mid-insert *)
      Store_io.arm_torn_write ~kind:Store_io.Wal_write ~after:k
        ~action:(Store_io.Torn_exit child_exit_torn);
      let table =
        Node_table.create_file ~page_size ~durable:true ?checkpoint_every path
      in
      List.iter (Node_table.insert table) rows;
      Node_table.close table;
      0 (* failpoint never fired: clean shutdown *)
  | "torn-page" | "torn-header" ->
      let table =
        Node_table.create_file ~page_size ~durable:true ?checkpoint_every path
      in
      List.iter (Node_table.insert table) rows;
      let kind =
        if mode = "torn-page" then Store_io.Page_write else Store_io.Header_write
      in
      Store_io.arm_torn_write ~kind ~after:k
        ~action:(Store_io.Torn_exit child_exit_torn);
      Node_table.flush table;
      Node_table.close table;
      0
  | other ->
      prerr_endline ("unknown crash-child mode " ^ other);
      2

(* --- parent -------------------------------------------------------- *)

type outcome = Killed | Torn | Clean

let spawn_child mode path k ckpt =
  let argv =
    [| Sys.executable_name; "--crash-child"; mode; path; string_of_int k; string_of_int ckpt |]
  in
  let pid = Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr in
  match Unix.waitpid [] pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> Killed
  | _, Unix.WEXITED c when c = child_exit_torn -> Torn
  | _, Unix.WEXITED 0 -> Clean
  | _, status ->
      let show = function
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s
      in
      Alcotest.failf "child %s died unexpectedly: %s" mode (show status)

let with_temp_db f =
  let path = Filename.temp_file "ssdb-crash" ".db" in
  let cleanup () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; path ^ ".wal" ]
  in
  Fun.protect ~finally:cleanup (fun () -> f path)

let recover path =
  match Node_table.open_file path with
  | Ok t -> t
  | Error e -> Alcotest.failf "recovery failed: %s" e

let table_rows t =
  let rows = ref [] in
  Node_table.iter t ~f:(fun r -> rows := r :: !rows);
  List.rev !rows

let rec firstn n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: firstn (n - 1) rest

(* The recovered table must hold exactly a prefix of the insertion
   sequence, and its indexes must agree with its rows. *)
let assert_integrity ~ctx t =
  let rows = table_rows t in
  let expected = firstn (List.length rows) (expected_rows ()) in
  if
    List.length rows <> List.length expected
    || not (List.for_all2 Page.row_equal rows expected)
  then Alcotest.failf "%s: recovered rows are not an insertion prefix" ctx;
  check Alcotest.int (ctx ^ ": row_count agrees") (List.length rows)
    (Node_table.row_count t);
  List.iter
    (fun (r : Page.row) ->
      match Node_table.find_by_pre t r.Page.pre with
      | Some found when Page.row_equal found r -> ()
      | Some _ -> Alcotest.failf "%s: index returns a different row for pre %d" ctx r.Page.pre
      | None -> Alcotest.failf "%s: pre %d missing from the index" ctx r.Page.pre)
    rows;
  List.iter
    (fun (r : Page.row) ->
      List.iter
        (fun (c : Page.row) ->
          if c.Page.parent <> r.Page.pre then
            Alcotest.failf "%s: child index wrong for parent %d" ctx r.Page.pre)
        (Node_table.children t ~parent:r.Page.pre))
    rows;
  List.length rows

let golden_queries ~ctx table =
  let mapping, _ = Lazy.force encoded_parts in
  match DB.of_parts ~p:83 ~e:1 ~mapping ~seed ~table () with
  | Error e -> Alcotest.failf "%s: of_parts: %s" ctx e
  | Ok db ->
      List.iter
        (fun q ->
          let want =
            Reference.run doc
              (Secshare_xpath.Ast.rewrite_contains (Secshare_xpath.Parser.parse_exn q))
          in
          match DB.query db q with
          | Error e -> Alcotest.failf "%s: query %s: %s" ctx q e
          | Ok r ->
              check
                Alcotest.(list int)
                (Printf.sprintf "%s: query %s = reference" ctx q)
                want
                (Test_support.pres_of_metas (DB.result_nodes r)))
        queries
      (* DB.close would close [table] for the caller — leave that to them *)

let run_trial ~trial mode k ckpt =
  with_temp_db (fun path ->
      let ctx = Printf.sprintf "trial %d (%s k=%d ckpt=%d)" trial mode k ckpt in
      let outcome = spawn_child mode path k ckpt in
      let n_expected = List.length (expected_rows ()) in
      let t = recover path in
      let n = assert_integrity ~ctx t in
      (match (mode, outcome) with
      | "kill", Killed ->
          check Alcotest.int (ctx ^ ": exactly the acked inserts") (min k n_expected) n
      | ("torn-page" | "torn-header"), (Torn | Clean) ->
          (* the tear hit (or missed) the flush after every insert was
             acknowledged: nothing may be lost *)
          check Alcotest.int (ctx ^ ": all rows") n_expected n
      | "torn-wal", Torn ->
          (* rows past the torn log append were never acknowledged;
             the prefix property was already asserted *)
          ()
      | "torn-wal", Clean -> check Alcotest.int (ctx ^ ": all rows") n_expected n
      | _, _ -> Alcotest.failf "%s: unexpected child outcome" ctx);
      Node_table.close t;
      (* recovery is idempotent: a second open replays nothing new *)
      let t2 = recover path in
      let n2 = assert_integrity ~ctx:(ctx ^ " (reopen)") t2 in
      check Alcotest.int (ctx ^ ": reopen sees the same rows") n n2;
      if Node_table.recovery_stats t2 <> None then
        Alcotest.failf "%s: second open claims to recover again" ctx;
      if n = n_expected then golden_queries ~ctx t2;
      Node_table.close t2)

let n_trials =
  match Sys.getenv_opt "SSDB_CRASH_TRIALS" with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 60)
  | None -> 60

let rng_seed =
  match Sys.getenv_opt "SSDB_CRASH_SEED" with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0x5eed)
  | None -> 0x5eed

let test_deterministic_modes () =
  let n = List.length (expected_rows ()) in
  run_trial ~trial:0 "kill" 0 0;
  run_trial ~trial:0 "kill" (n / 2) 0;
  run_trial ~trial:0 "kill" n 7;
  run_trial ~trial:0 "torn-wal" 5 0;
  run_trial ~trial:0 "torn-page" 1 0;
  run_trial ~trial:0 "torn-header" 1 0

let test_randomized_trials () =
  Printf.printf "crash harness: %d trials, seed %d (SSDB_CRASH_SEED to pin)\n%!"
    n_trials rng_seed;
  let rng = Random.State.make [| rng_seed |] in
  let n = List.length (expected_rows ()) in
  for trial = 1 to n_trials do
    let ckpt = match Random.State.int rng 3 with 0 -> 0 | _ -> 1 + Random.State.int rng 12 in
    match Random.State.int rng 4 with
    | 0 -> run_trial ~trial "kill" (Random.State.int rng (n + 1)) ckpt
    | 1 -> run_trial ~trial "torn-wal" (1 + Random.State.int rng (n + 2)) ckpt
    | 2 -> run_trial ~trial "torn-page" (1 + Random.State.int rng 6) ckpt
    | _ -> run_trial ~trial "torn-header" 1 ckpt
  done

let () =
  if Array.length Sys.argv >= 6 && Sys.argv.(1) = "--crash-child" then
    exit
      (run_child Sys.argv.(2) Sys.argv.(3) (int_of_string Sys.argv.(4))
         (int_of_string Sys.argv.(5)))
  else
    Alcotest.run "crash"
      [
        ( "crash recovery",
          [
            Alcotest.test_case "deterministic kill and torn-write points" `Quick
              test_deterministic_modes;
            Alcotest.test_case "randomized kill and torn-write points" `Slow
              test_randomized_trials;
          ] );
      ]
