(** Shared generators and helpers for the test suites. *)

module Tree = Secshare_xml.Tree

let small_tags = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta" ]

(* A random element tree over a small tag set: depth-bounded, with a
   size budget threaded through so documents stay small but varied. *)
let gen_tree : Tree.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let tag = oneofl small_tags in
  let text_words = oneofl [ "joan"; "johnson"; "data"; "query"; "trie"; "xml" ] in
  sized_size (int_range 1 40) @@ fix (fun self budget ->
      let* name = tag in
      if budget <= 1 then return (Tree.element name [])
      else
        let* n_children = int_range 0 (min 4 budget) in
        let child_budget = if n_children = 0 then 0 else (budget - 1) / n_children in
        let* children = list_repeat n_children (self child_budget) in
        let* with_text = bool in
        let* word = text_words in
        let children = if with_text then Tree.text word :: children else children in
        return (Tree.element name children))

let gen_query_of_tags tags : Secshare_xpath.Ast.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* len = int_range 1 4 in
  let step_gen =
    let* axis = oneofl [ Secshare_xpath.Ast.Child; Secshare_xpath.Ast.Descendant ] in
    let* test =
      oneof
        [
          map (fun n -> Secshare_xpath.Ast.Name n) (oneofl tags);
          return Secshare_xpath.Ast.Any;
        ]
    in
    return { Secshare_xpath.Ast.axis; test; contains = None }
  in
  list_repeat len step_gen

let gen_query = gen_query_of_tags small_tags

let pres_of_metas metas =
  List.map (fun (m : Secshare_rpc.Protocol.node_meta) -> m.Secshare_rpc.Protocol.pre) metas

let test_seed = Secshare_prg.Seed.of_passphrase "test-suite-seed"

let db_of_tree ?(p = 83) ?(e = 1) ?trie tree =
  let config =
    {
      Secshare_core.Database.default_config with
      p;
      e;
      trie;
      seed = Some test_seed;
      mapping = `From_document;
    }
  in
  match Secshare_core.Database.create_tree ~config tree with
  | Ok db -> db
  | Error msg -> failwith ("db_of_tree: " ^ msg)

let must_query ?engine ?strictness db q =
  match Secshare_core.Database.query ?engine ?strictness db q with
  | Ok r -> r
  | Error msg -> failwith ("query failed: " ^ msg)
