(** Shared generators and helpers for the test suites. *)

module Tree = Secshare_xml.Tree

let small_tags = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta" ]

(* A random element tree over a small tag set: depth-bounded, with a
   size budget threaded through so documents stay small but varied. *)
let gen_tree : Tree.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let tag = oneofl small_tags in
  let text_words = oneofl [ "joan"; "johnson"; "data"; "query"; "trie"; "xml" ] in
  sized_size (int_range 1 40) @@ fix (fun self budget ->
      let* name = tag in
      if budget <= 1 then return (Tree.element name [])
      else
        let* n_children = int_range 0 (min 4 budget) in
        let child_budget = if n_children = 0 then 0 else (budget - 1) / n_children in
        let* children = list_repeat n_children (self child_budget) in
        let* with_text = bool in
        let* word = text_words in
        let children = if with_text then Tree.text word :: children else children in
        return (Tree.element name children))

let gen_query_of_tags tags : Secshare_xpath.Ast.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* len = int_range 1 4 in
  let step_gen =
    let* axis = oneofl [ Secshare_xpath.Ast.Child; Secshare_xpath.Ast.Descendant ] in
    let* test =
      oneof
        [
          map (fun n -> Secshare_xpath.Ast.Name n) (oneofl tags);
          return Secshare_xpath.Ast.Any;
        ]
    in
    return { Secshare_xpath.Ast.axis; test; contains = None }
  in
  list_repeat len step_gen

let gen_query = gen_query_of_tags small_tags

let pres_of_metas metas =
  List.map (fun (m : Secshare_rpc.Protocol.node_meta) -> m.Secshare_rpc.Protocol.pre) metas

let test_seed = Secshare_prg.Seed.of_passphrase "test-suite-seed"

let db_of_tree ?(p = 83) ?(e = 1) ?trie tree =
  let config =
    {
      Secshare_core.Database.default_config with
      p;
      e;
      trie;
      seed = Some test_seed;
      mapping = `From_document;
    }
  in
  match Secshare_core.Database.create_tree ~config tree with
  | Ok db -> db
  | Error msg -> failwith ("db_of_tree: " ^ msg)

let must_query ?engine ?strictness db q =
  match Secshare_core.Database.query ?engine ?strictness db q with
  | Ok r -> r
  | Error msg -> failwith ("query failed: " ^ msg)

(** A fault-injecting protocol server, wire-compatible with
    {!Secshare_rpc.Transport.socket}.  It speaks real frames over a
    real Unix-domain socket, but consults a per-call [plan] that can
    stall, drop the connection before replying, truncate a reply
    mid-frame, or answer garbage — exercising the client's timeout,
    retry, and reconnect paths.  Call numbers are global across
    connections (so "fail call 1, serve call 2" tests reconnects). *)
module Flaky = struct
  module Frame = Secshare_rpc.Frame
  module Protocol = Secshare_rpc.Protocol

  type fault =
    | Stall of float  (** read the request, sleep, then drop the link *)
    | Close_before_reply  (** read the request, close without answering *)
    | Truncate_reply  (** send half a frame, then close *)
    | Garbage_reply  (** a well-framed but undecodable payload *)

  type t = {
    path : string;
    listen_fd : Unix.file_descr;
    mutable running : bool;
    mutable calls : int;
    mutable trace_ids : int64 list;  (** newest first; see {!trace_ids} *)
    lock : Mutex.t;
    mutable threads : Thread.t list;
    mutable client_fds : Unix.file_descr list;
  }

  let next_call t ~trace_id =
    Mutex.lock t.lock;
    t.calls <- t.calls + 1;
    t.trace_ids <- trace_id :: t.trace_ids;
    let n = t.calls in
    Mutex.unlock t.lock;
    n

  let serve_connection t ~handler ~plan fd =
    let finished = ref false in
    while (not !finished) && t.running do
      match Frame.recv_traced fd with
      | exception (Failure _ | Unix.Unix_error _) -> finished := true
      | trace_id, payload -> (
          let n = next_call t ~trace_id in
          match plan n with
          | None -> (
              let reply =
                match Protocol.decode_request payload with
                | request -> handler request
                | exception _ -> Protocol.Error_msg "undecodable request"
              in
              match Frame.send ~trace_id fd (Protocol.encode_response reply) with
              | () -> ()
              | exception (Failure _ | Unix.Unix_error _) -> finished := true)
          | Some (Stall seconds) ->
              Thread.delay seconds;
              finished := true
          | Some Close_before_reply -> finished := true
          | Some Truncate_reply ->
              let reply =
                Protocol.encode_response (Protocol.Error_msg "you will never read this")
              in
              let header = Bytes.create Frame.header_bytes in
              Bytes.set_int32_be header 0 (Int32.of_int (String.length reply));
              Bytes.set_int64_be header 4 trace_id;
              let partial = String.sub reply 0 (String.length reply / 2) in
              (try
                 ignore (Unix.write fd header 0 Frame.header_bytes);
                 ignore
                   (Unix.write fd (Bytes.of_string partial) 0 (String.length partial))
               with Failure _ | Unix.Unix_error _ -> ());
              finished := true
          | Some Garbage_reply -> (
              match Frame.send ~trace_id fd "\xde\xad\xbe\xef" with
              | () -> ()
              | exception (Failure _ | Unix.Unix_error _) -> finished := true))
    done;
    Mutex.lock t.lock;
    t.client_fds <- List.filter (fun other -> other != fd) t.client_fds;
    Mutex.unlock t.lock;
    try Unix.close fd with Unix.Unix_error _ -> ()

  let start ?(handler = fun _ -> Protocol.Pong) ~plan path =
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind listen_fd (Unix.ADDR_UNIX path);
    Unix.listen listen_fd 16;
    let t =
      {
        path;
        listen_fd;
        running = true;
        calls = 0;
        trace_ids = [];
        lock = Mutex.create ();
        threads = [];
        client_fds = [];
      }
    in
    let accept_thread =
      Thread.create
        (fun () ->
          while t.running do
            match Unix.accept t.listen_fd with
            | fd, _ ->
                Mutex.lock t.lock;
                t.client_fds <- fd :: t.client_fds;
                t.threads <- Thread.create (serve_connection t ~handler ~plan) fd :: t.threads;
                Mutex.unlock t.lock
            | exception Unix.Unix_error _ -> Thread.yield ()
          done)
        ()
    in
    Mutex.lock t.lock;
    t.threads <- accept_thread :: t.threads;
    Mutex.unlock t.lock;
    t

  let calls t =
    Mutex.lock t.lock;
    let n = t.calls in
    Mutex.unlock t.lock;
    n

  (* Trace ids seen on received frames, in arrival order — lets tests
     assert that a query's id survives the client's retry/reconnect
     machinery (every attempt carries the same id). *)
  let trace_ids t =
    Mutex.lock t.lock;
    let ids = List.rev t.trace_ids in
    Mutex.unlock t.lock;
    ids

  let stop t =
    if t.running then begin
      t.running <- false;
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try Unix.connect fd (Unix.ADDR_UNIX t.path) with Unix.Unix_error _ -> ());
         Unix.close fd
       with Unix.Unix_error _ -> ());
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      Mutex.lock t.lock;
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.client_fds;
      let threads = t.threads in
      t.threads <- [];
      Mutex.unlock t.lock;
      List.iter Thread.join threads;
      try Unix.unlink t.path with Unix.Unix_error _ -> ()
    end
end
