(* The Song-Wagner-Perrig sequential-scan baseline. *)

module Swp = Secshare_swp.Swp
module Tree = Secshare_xml.Tree
module Seed = Secshare_prg.Seed

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let key = Swp.key_of_seed (Seed.of_passphrase "swp-tests")
let other_key = Swp.key_of_seed (Seed.of_passphrase "swp-other")

let sample_words =
  [ (1, "site"); (2, "person"); (3, "name"); (3, "joan"); (3, "johnson"); (4, "city"); (4, "enschede"); (5, "person") ]

let test_search_finds_words () =
  let enc = Swp.encrypt_words key sample_words in
  check Alcotest.(list int) "joan at position 3" [ 3 ]
    (Swp.search enc (Swp.trapdoor key "joan"));
  check Alcotest.(list int) "person twice" [ 1; 7 ]
    (Swp.search enc (Swp.trapdoor key "person"));
  check Alcotest.(list int) "absent" [] (Swp.search enc (Swp.trapdoor key "zebra"));
  check Alcotest.(list int) "case folded" [ 3 ] (Swp.search enc (Swp.trapdoor key "JOAN"))

let test_search_elements () =
  let enc = Swp.encrypt_words key sample_words in
  check Alcotest.(list int) "person elements" [ 2; 5 ]
    (Swp.search_elements enc (Swp.trapdoor key "person"));
  check Alcotest.(list int) "joan element" [ 3 ]
    (Swp.search_elements enc (Swp.trapdoor key "joan"))

let test_wrong_key_finds_nothing () =
  let enc = Swp.encrypt_words key sample_words in
  List.iter
    (fun w ->
      check Alcotest.(list int) ("wrong key " ^ w) []
        (Swp.search enc (Swp.trapdoor other_key w)))
    [ "joan"; "person"; "site" ]

let test_ciphertexts_hide_repeats () =
  (* the same word at different positions must encrypt differently *)
  let enc = Swp.encrypt_words key [ (1, "person"); (2, "person") ] in
  check Alcotest.bool "repeated words differ" false
    (Bytes.equal enc.Swp.blocks.(0) enc.Swp.blocks.(1))

let test_decrypt () =
  let enc = Swp.encrypt_words key sample_words in
  List.iteri
    (fun i (_, word) -> check Alcotest.string "decrypt" word (Swp.decrypt_block key enc i))
    sample_words;
  Alcotest.check_raises "bad position"
    (Invalid_argument "Swp.decrypt_block: position 99 out of range") (fun () ->
      ignore (Swp.decrypt_block key enc 99))

let test_encrypt_tree () =
  let doc =
    Result.get_ok
      (Tree.of_string
         "<people><person><name>Joan Johnson</name></person><person><name>Bob</name></person></people>")
  in
  let enc = Swp.encrypt_tree key doc in
  (* pre numbering: people=1 person=2 name=3 person=4 name=5 *)
  check Alcotest.(list int) "tag search: person" [ 2; 4 ]
    (Swp.search_elements enc (Swp.trapdoor key "person"));
  check Alcotest.(list int) "word search: joan under name 3" [ 3 ]
    (Swp.search_elements enc (Swp.trapdoor key "joan"));
  check Alcotest.(list int) "bob under second name" [ 5 ]
    (Swp.search_elements enc (Swp.trapdoor key "bob"));
  check Alcotest.bool "storage accounted" true (Swp.storage_bytes enc > 0)

let gen_word =
  QCheck2.Gen.(
    let* len = int_range 1 24 in
    let* chars = list_repeat len (char_range 'a' 'z') in
    return (String.init len (List.nth chars)))

let property_suite =
  [
    qtest "every encrypted word is found"
      QCheck2.Gen.(list_size (int_range 1 40) gen_word)
      (fun words ->
        let pairs = List.mapi (fun i w -> (i + 1, w)) words in
        let enc = Swp.encrypt_words key pairs in
        List.for_all
          (fun (_, w) -> Swp.search enc (Swp.trapdoor key w) <> [])
          pairs);
    qtest "matches are exactly the occurrences"
      QCheck2.Gen.(pair (list_size (int_range 0 40) gen_word) gen_word)
      (fun (words, probe) ->
        let pairs = List.mapi (fun i w -> (i + 1, w)) words in
        let enc = Swp.encrypt_words key pairs in
        let expected =
          List.filteri (fun _ (_, w) -> String.equal w probe) pairs
          |> List.map (fun (pre, _) -> pre - 1)
        in
        Swp.search enc (Swp.trapdoor key probe) = expected);
    qtest "decrypt recovers short words"
      QCheck2.Gen.(list_size (int_range 1 20) gen_word)
      (fun words ->
        let pairs = List.mapi (fun i w -> (i + 1, w)) words in
        let enc = Swp.encrypt_words key pairs in
        List.for_all
          (fun (i, (_, w)) ->
            String.length w > 16 || String.equal w (Swp.decrypt_block key enc i))
          (List.mapi (fun i p -> (i, p)) pairs));
  ]

let () =
  Alcotest.run "swp"
    [
      ( "baseline",
        [
          Alcotest.test_case "search finds words" `Quick test_search_finds_words;
          Alcotest.test_case "element aggregation" `Quick test_search_elements;
          Alcotest.test_case "wrong key finds nothing" `Quick test_wrong_key_finds_nothing;
          Alcotest.test_case "repeats hidden" `Quick test_ciphertexts_hide_repeats;
          Alcotest.test_case "decrypt" `Quick test_decrypt;
          Alcotest.test_case "tree flattening" `Quick test_encrypt_tree;
        ]
        @ property_suite );
    ]
