module Sax = Secshare_xml.Sax
module Tree = Secshare_xml.Tree
module Print = Secshare_xml.Print
module Dtd = Secshare_xml.Dtd
module Entity = Secshare_xml.Entity

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let tree_testable = Alcotest.testable Tree.pp Tree.equal

let parse_ok s =
  match Tree.of_string s with Ok t -> t | Error e -> Alcotest.failf "parse %S: %s" s e

let parse_err s =
  match Tree.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse error for %S" s

(* --- entities --- *)

let test_escape () =
  check Alcotest.string "text" "a&amp;b&lt;c&gt;d" (Entity.escape_text "a&b<c>d");
  check Alcotest.string "attr" "&quot;&apos;" (Entity.escape_attribute "\"'")

let test_decode () =
  check Alcotest.(result string string) "named" (Ok "<&>\"'")
    (Entity.decode "&lt;&amp;&gt;&quot;&apos;");
  check Alcotest.(result string string) "decimal" (Ok "A") (Entity.decode "&#65;");
  check Alcotest.(result string string) "hex" (Ok "A") (Entity.decode "&#x41;");
  check Alcotest.(result string string) "utf8 2-byte" (Ok "\xC3\xA9") (Entity.decode "&#233;");
  (match Entity.decode "&bogus;" with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "bogus entity decoded to %S" s);
  match Entity.decode "&unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated entity accepted"

(* --- parser happy paths --- *)

let test_parse_basics () =
  check tree_testable "self closing" (Tree.element "a" []) (parse_ok "<a/>");
  check tree_testable "nested"
    (Tree.element "a" [ Tree.element "b" []; Tree.element "c" [] ])
    (parse_ok "<a><b/><c></c></a>");
  check tree_testable "text"
    (Tree.element "a" [ Tree.text "hello world" ])
    (parse_ok "<a>hello world</a>");
  check tree_testable "mixed"
    (Tree.element "a" [ Tree.text "x"; Tree.element "b" []; Tree.text "y" ])
    (parse_ok "<a>x<b/>y</a>")

let test_parse_attributes () =
  match parse_ok "<a x=\"1\" y='two'/>" with
  | Tree.Element { attrs; _ } ->
      check Alcotest.(list (pair string string)) "attrs" [ ("x", "1"); ("y", "two") ] attrs
  | Tree.Text _ -> Alcotest.fail "expected element"

let test_parse_entities_in_text () =
  check tree_testable "entities"
    (Tree.element "a" [ Tree.text "x < y & z" ])
    (parse_ok "<a>x &lt; y &amp; z</a>")

let test_parse_cdata () =
  check tree_testable "cdata"
    (Tree.element "a" [ Tree.text "<raw>&stuff;" ])
    (parse_ok "<a><![CDATA[<raw>&stuff;]]></a>")

let test_parse_comments_dropped () =
  check tree_testable "comment"
    (Tree.element "a" [ Tree.element "b" [] ])
    (parse_ok "<a><!-- hi --><b/><!-- bye --></a>")

let test_parse_decl_doctype () =
  check tree_testable "prolog"
    (Tree.element "a" [])
    (parse_ok
       "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
        <!DOCTYPE a [<!ELEMENT a EMPTY>]>\n\
        <a/>")

let test_parse_whitespace_and_newlines () =
  check tree_testable "surrounding space" (Tree.element "a" []) (parse_ok "  \n <a/> \n ")

(* --- parser error paths --- *)

let test_parse_errors () =
  List.iter parse_err
    [
      "";
      "   ";
      "<a>";
      "</a>";
      "<a></b>";
      "<a><b></a></b>";
      "<a/><b/>";
      "text only";
      "<a x=1/>";
      "<a x=\"1/>";
      "<a 1x=\"1\"/>";
      "<a x=\"1\" x=\"2\"/>";
      "<a>&bogus;</a>";
      "<a>&amp</a>";
      "<a><!-- -- --></a>";
      "<1a/>";
      "<a><![CDATA[x]]</a>";
      "trailing<a/>";
      "<a/>trailing";
    ]

let test_error_position () =
  match Tree.of_string "<a>\n<b>\n</c>\n</a>" with
  | Error msg ->
      check Alcotest.bool "mentions line 3" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 3")
  | Ok _ -> Alcotest.fail "expected error"

(* --- events --- *)

let test_sax_events () =
  let events = ref [] in
  Sax.iter (Sax.input_of_string "<a x=\"1\">t<b/></a>") ~f:(fun e -> events := e :: !events);
  let got = List.rev !events in
  check Alcotest.int "event count" 5 (List.length got);
  match got with
  | [
   Sax.Start_element ("a", [ ("x", "1") ]);
   Sax.Text "t";
   Sax.Start_element ("b", []);
   Sax.End_element "b";
   Sax.End_element "a";
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected event stream"

let test_tree_to_events_roundtrip () =
  let t = parse_ok "<a><b>x</b><c/></a>" in
  match Tree.of_events (Tree.to_events t) with
  | Ok t' -> check tree_testable "roundtrip" t t'
  | Error e -> Alcotest.fail e

(* --- printing --- *)

let test_print_escapes () =
  let t = Tree.element ~attrs:[ ("k", "a\"b") ] "a" [ Tree.text "x<y&z" ] in
  check Alcotest.string "escaped" "<a k=\"a&quot;b\">x&lt;y&amp;z</a>" (Print.to_string t)

(* Pretty printing inserts padding between element-only children; a
   reparse sees that padding as ignorable whitespace text.  Compare
   modulo whitespace-only text nodes. *)
let rec strip_ws = function
  | Tree.Text _ as t -> Some t
  | Tree.Element { name; attrs; children } ->
      let children =
        List.filter_map
          (fun c ->
            match c with
            | Tree.Text s
              when String.for_all (fun ch -> ch = ' ' || ch = '\n' || ch = '\t' || ch = '\r') s
              -> None
            | c -> strip_ws c)
          children
      in
      Some (Tree.element ~attrs name children)

let equal_modulo_ws a b =
  match (strip_ws a, strip_ws b) with
  | Some a, Some b -> Tree.equal a b
  | _ -> false

let test_print_indent_preserves_data () =
  let t = parse_ok "<a><b>text stays</b><c><d/></c></a>" in
  let pretty = Print.to_string ~indent:2 t in
  check Alcotest.bool "pretty print reparses equal modulo padding" true
    (equal_modulo_ws t (parse_ok pretty))

(* --- random roundtrips --- *)

let roundtrip_suite =
  [
    qtest ~count:200 "parse(print(t)) = t" Test_support.gen_tree (fun t ->
        match Tree.of_string (Print.to_string t) with
        | Ok t' -> Tree.equal t t'
        | Error _ -> false);
    qtest ~count:100 "pretty parse(print(t)) = t modulo padding" Test_support.gen_tree
      (fun t ->
        match Tree.of_string (Print.to_string ~indent:3 ~decl:true t) with
        | Ok t' -> equal_modulo_ws t t'
        | Error _ -> false);
  ]

(* --- parser fuzzing --- *)

let fuzz_suite =
  [
    qtest ~count:500 "parser never crashes on garbage"
      QCheck2.Gen.(string_size (int_range 0 200))
      (fun s -> match Tree.of_string s with Ok _ | Error _ -> true);
    qtest ~count:300 "parser survives mutated valid documents"
      QCheck2.Gen.(
        triple Test_support.gen_tree (int_range 0 10000) (int_range 0 255))
      (fun (t, pos, byte) ->
        let doc = Bytes.of_string (Print.to_string t) in
        if Bytes.length doc = 0 then true
        else begin
          Bytes.set doc (pos mod Bytes.length doc) (Char.chr byte);
          match Tree.of_string (Bytes.to_string doc) with Ok _ | Error _ -> true
        end);
  ]

(* --- tree utilities --- *)

let test_tree_measures () =
  let t = parse_ok "<a><b><c/></b><b/>txt</a>" in
  check Alcotest.int "element_count" 4 (Tree.element_count t);
  check Alcotest.int "depth" 3 (Tree.depth t);
  check Alcotest.int "text_bytes" 3 (Tree.text_bytes t);
  check Alcotest.(list string) "tag_names" [ "a"; "b"; "c" ] (Tree.tag_names t);
  check Alcotest.int "find_all b" 2 (List.length (Tree.find_all t ~name:"b"))

(* --- DTD --- *)

let test_dtd_parse_xmark () =
  match Dtd.parse Dtd.xmark with
  | Error e -> Alcotest.fail e
  | Ok dtd -> (
      check Alcotest.int "77 elements" 77 (List.length (Dtd.element_names dtd));
      check Alcotest.bool "site declared" true (Dtd.content_model dtd "site" <> None);
      (match Dtd.content_model dtd "incategory" with
      | Some Dtd.Empty -> ()
      | _ -> Alcotest.fail "incategory should be EMPTY");
      (match Dtd.content_model dtd "name" with
      | Some Dtd.Pcdata -> ()
      | _ -> Alcotest.fail "name should be #PCDATA");
      match Dtd.content_model dtd "text" with
      | Some (Dtd.Mixed names) ->
          check Alcotest.(list string) "mixed names" [ "bold"; "keyword"; "emph" ] names
      | _ -> Alcotest.fail "text should be mixed")

let validate_case dtd_src doc expect_ok =
  match Dtd.parse dtd_src with
  | Error e -> Alcotest.fail e
  | Ok dtd -> (
      match Dtd.validate dtd (parse_ok doc) with
      | Ok () -> if not expect_ok then Alcotest.failf "expected invalid: %s" doc
      | Error msg -> if expect_ok then Alcotest.failf "expected valid: %s (%s)" doc msg)

let simple_dtd =
  "<!ELEMENT root (a, b?, c*)> <!ELEMENT a (#PCDATA)> <!ELEMENT b EMPTY> <!ELEMENT c (a | b)+>"

let test_dtd_validation () =
  validate_case simple_dtd "<root><a/></root>" true;
  validate_case simple_dtd "<root><a/><b/></root>" true;
  validate_case simple_dtd "<root><a/><c><a/><b/></c><c><b/></c></root>" true;
  validate_case simple_dtd "<root><b/></root>" false;
  validate_case simple_dtd "<root><a/><b/><b/></root>" false;
  validate_case simple_dtd "<root><a/><c/></root>" false;
  validate_case simple_dtd "<root><a/><unknown/></root>" false;
  validate_case simple_dtd "<root><a>text ok</a></root>" true;
  validate_case simple_dtd "<root><a/>stray text</root>" false;
  validate_case simple_dtd "<root><a/><b>not empty</b></root>" false

let test_dtd_duplicate_rejected () =
  match Dtd.parse "<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate declaration accepted"

let test_dtd_occurrences () =
  let dtd_src = "<!ELEMENT r (x+)> <!ELEMENT x EMPTY>" in
  validate_case dtd_src "<r><x/></r>" true;
  validate_case dtd_src "<r><x/><x/><x/></r>" true;
  validate_case dtd_src "<r/>" false

let () =
  Alcotest.run "xml"
    [
      ( "entities",
        [
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "decode" `Quick test_decode;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "entities in text" `Quick test_parse_entities_in_text;
          Alcotest.test_case "CDATA" `Quick test_parse_cdata;
          Alcotest.test_case "comments dropped" `Quick test_parse_comments_dropped;
          Alcotest.test_case "declaration and DOCTYPE" `Quick test_parse_decl_doctype;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace_and_newlines;
          Alcotest.test_case "malformed inputs rejected" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_position;
          Alcotest.test_case "sax events" `Quick test_sax_events;
          Alcotest.test_case "tree/events roundtrip" `Quick test_tree_to_events_roundtrip;
        ] );
      ( "printer",
        [
          Alcotest.test_case "escaping" `Quick test_print_escapes;
          Alcotest.test_case "indent preserves data" `Quick test_print_indent_preserves_data;
        ]
        @ roundtrip_suite
        @ fuzz_suite );
      ("tree", [ Alcotest.test_case "measures" `Quick test_tree_measures ]);
      ( "dtd",
        [
          Alcotest.test_case "xmark DTD parses" `Quick test_dtd_parse_xmark;
          Alcotest.test_case "validation" `Quick test_dtd_validation;
          Alcotest.test_case "duplicates rejected" `Quick test_dtd_duplicate_rejected;
          Alcotest.test_case "occurrence operators" `Quick test_dtd_occurrences;
        ] );
    ]
