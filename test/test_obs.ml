(* Tests for the observability subsystem (lib/obs) and its wiring:
   histogram bucket semantics and mergeability, registry exposition
   well-formedness, trace-id propagation across the transport's
   retry/reconnect machinery and across a real client/server split,
   the /metrics + /healthz endpoint, the JSONL trace sink, and the
   slow-query log's redaction guarantee. *)

module Obs = Secshare_obs
module Registry = Obs.Registry
module Histogram = Obs.Histogram
module Trace = Obs.Trace
module Span = Obs.Span
module Events = Obs.Events
module DB = Secshare_core.Database
module Tree = Secshare_xml.Tree
module Transport = Secshare_rpc.Transport
module Protocol = Secshare_rpc.Protocol
module Flaky = Test_support.Flaky

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let must = function Ok v -> v | Error m -> Alcotest.fail m

(* --- histograms --------------------------------------------------- *)

let test_bucket_boundaries () =
  let h = Histogram.create ~bounds:[| 1.0; 2.0; 4.0 |] () in
  (* bounds are inclusive upper limits (the Prometheus [le]
     convention): 1.0 lands in the first bucket, 4.0 in the last
     bounded one, anything above in the overflow bucket *)
  List.iter (Histogram.observe h) [ 1.0; 1.5; 4.0; 9.0 ];
  Alcotest.(check (array int)) "per-bucket counts" [| 1; 1; 1; 1 |] (Histogram.counts h);
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 15.5 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "max is exact" 9.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "p50 is its bucket's bound" 2.0 (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9))
    "overflow quantile is the exact max" 9.0 (Histogram.quantile h 0.99);
  let empty = Histogram.create ~bounds:[| 1.0 |] () in
  Alcotest.(check (float 1e-9)) "empty quantile" 0.0 (Histogram.p50 empty);
  (match Histogram.create ~bounds:[| 2.0; 1.0 |] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "descending bounds accepted");
  match Histogram.merge ~into:h (Histogram.create ~bounds:[| 1.0 |] ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "merge across layouts accepted"

let hist_of xs =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) xs;
  h

let hist_key h =
  (Histogram.counts h, Histogram.count h, Histogram.max_value h, Histogram.sum h)

let gen_samples =
  QCheck2.Gen.(small_list (map (fun i -> float_of_int i /. 7.0) (int_bound 100_000)))

let merge_associative =
  QCheck2.Test.make ~count:200 ~name:"histogram merge is associative"
    QCheck2.Gen.(triple gen_samples gen_samples gen_samples)
    (fun (a, b, c) ->
      let left =
        let ab = hist_of a in
        Histogram.merge ~into:ab (hist_of b);
        Histogram.merge ~into:ab (hist_of c);
        ab
      in
      let right =
        let bc = hist_of b in
        Histogram.merge ~into:bc (hist_of c);
        let h = hist_of a in
        Histogram.merge ~into:h bc;
        h
      in
      let flat = hist_of (a @ b @ c) in
      let close x y = Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x) in
      let eq (counts1, n1, max1, sum1) (counts2, n2, max2, sum2) =
        counts1 = counts2 && n1 = n2 && close max1 max2 && close sum1 sum2
      in
      eq (hist_key left) (hist_key right) && eq (hist_key left) (hist_key flat))

(* --- registry exposition ------------------------------------------ *)

let test_render_wellformed () =
  let r = Registry.create () in
  let c =
    Registry.counter ~registry:r ~help:"Requests handled."
      ~labels:[ ("op", "scan\"1\nx\\y") ]
      "t_requests_total"
  in
  Registry.inc ~by:3 c;
  let g = Registry.gauge ~registry:r ~help:"Open things." "t_open" in
  Registry.gauge_set g 5;
  let h = Registry.histogram ~registry:r ~help:"Latency." "t_seconds" in
  Histogram.observe h 0.01;
  let text = Registry.render r in
  let check_has what needle =
    Alcotest.(check bool) what true (contains text needle)
  in
  check_has "counter HELP" "# HELP t_requests_total Requests handled.";
  check_has "counter TYPE" "# TYPE t_requests_total counter";
  check_has "gauge TYPE" "# TYPE t_open gauge";
  check_has "histogram TYPE" "# TYPE t_seconds histogram";
  (* label values escape backslash, quote and newline *)
  check_has "label escaping" "op=\"scan\\\"1\\nx\\\\y\"";
  check_has "counter sample" "} 3";
  check_has "+Inf bucket" "t_seconds_bucket{le=\"+Inf\"} 1";
  check_has "histogram sum" "t_seconds_sum";
  check_has "histogram count" "t_seconds_count 1";
  (* every non-comment line is "name_or_labels SP value" with a
     numeric value *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.fail ("no sample value: " ^ line)
        | Some i -> (
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt v with
            | Some _ -> ()
            | None -> Alcotest.fail ("non-numeric sample value: " ^ line)))
    (String.split_on_char '\n' text)

let test_counter_and_gauge_values () =
  let r = Registry.create () in
  let c = Registry.counter ~registry:r "t_c" in
  Registry.inc c;
  Registry.inc ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (Registry.counter_value c);
  let c' = Registry.counter ~registry:r "t_c" in
  Alcotest.(check int) "same family, same child" 42 (Registry.counter_value c');
  let g = Registry.gauge ~registry:r "t_g" in
  Registry.gauge_set g 10;
  Registry.gauge_add g (-3);
  Alcotest.(check int) "gauge arithmetic" 7 (Registry.gauge_value g)

(* --- trace propagation -------------------------------------------- *)

let fast_policy =
  {
    Transport.call_timeout = Some 1.0;
    max_retries = 2;
    backoff_base = 0.02;
    backoff_max = 0.1;
    backoff_jitter = 0.5;
  }

let with_flaky ?handler plan f =
  let path = Filename.temp_file "ssdb-obs-flaky" ".sock" in
  Sys.remove path;
  let flaky = Flaky.start ?handler ~plan path in
  Fun.protect ~finally:(fun () -> Flaky.stop flaky) (fun () -> f flaky path)

let test_trace_id_survives_retry () =
  (* the first attempt dies before the reply; the retry must carry the
     same trace id over the re-established connection *)
  with_flaky
    (fun n -> if n = 1 then Some Flaky.Close_before_reply else None)
    (fun flaky path ->
      let t =
        match Transport.socket ~policy:fast_policy path with
        | Ok t -> t
        | Error e -> Alcotest.fail ("connect: " ^ e)
      in
      let tid = Trace.genid () in
      let response = Trace.with_ambient tid (fun () -> Transport.call t Protocol.Ping) in
      Transport.close t;
      (match response with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "expected Pong after retry");
      let ids = Flaky.trace_ids flaky in
      Alcotest.(check int) "server saw both attempts" 2 (List.length ids);
      List.iter (fun id -> Alcotest.(check int64) "same trace id" tid id) ids)

let test_untraced_calls_send_zero () =
  with_flaky
    (fun _ -> None)
    (fun flaky path ->
      let t =
        match Transport.socket ~policy:fast_policy path with
        | Ok t -> t
        | Error e -> Alcotest.fail ("connect: " ^ e)
      in
      ignore (Transport.call t Protocol.Ping);
      Transport.close t;
      Alcotest.(check (list int64)) "no ambient trace -> id 0" [ 0L ]
        (Flaky.trace_ids flaky))

let small_tree =
  Tree.element "alpha"
    [
      Tree.element "beta" [ Tree.element "gamma" [] ];
      Tree.element "beta" [];
      Tree.element "delta" [ Tree.element "beta" [] ];
    ]

let test_trace_joins_client_and_server () =
  (* the acceptance criterion: one query over a real socket produces
     client-side and server-side spans under a single trace id *)
  let db = Test_support.db_of_tree small_tree in
  let path = Filename.temp_file "ssdb-obs-e2e" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  Fun.protect
    ~finally:(fun () ->
      Secshare_rpc.Server.stop server;
      DB.close db)
    (fun () ->
      let session =
        must (DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db) ~seed:(DB.seed db) ~path ())
      in
      Fun.protect
        ~finally:(fun () -> DB.close session)
        (fun () ->
          Trace.clear_recent ();
          let r = must (DB.query session "/alpha/beta") in
          Alcotest.(check bool) "nonzero trace id" true (r.DB.trace_id <> 0L);
          let spans =
            List.filter
              (fun (s : Span.t) -> s.Span.trace_id = r.DB.trace_id)
              (Trace.recent ())
          in
          let has kind = List.exists (fun (s : Span.t) -> s.Span.kind = kind) spans in
          Alcotest.(check bool) "client-side spans recorded" true (has Span.Client);
          Alcotest.(check bool) "server-side spans joined the trace" true
            (has Span.Server);
          let root =
            List.exists
              (fun (s : Span.t) -> s.Span.name = "query" && s.Span.parent_id = None)
              spans
          in
          Alcotest.(check bool) "root query span" true root))

let test_trace_log_jsonl () =
  let file = Filename.temp_file "ssdb-obs-trace" ".jsonl" in
  Trace.set_log_file (Some file);
  let tid = Trace.genid () in
  Trace.with_ambient tid (fun () ->
      Trace.with_span ~kind:Span.Internal "unit-test-span" (fun () -> ()));
  Trace.set_log_file None;
  let ic = open_in file in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove file;
  Alcotest.(check bool) "sink wrote at least one line" true (lines <> []);
  List.iter
    (fun line ->
      Alcotest.(check bool) "JSON object shape" true
        (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}');
      Alcotest.(check bool) "carries the trace id" true
        (contains line (Span.trace_id_to_hex tid)))
    lines

(* --- the metrics endpoint ----------------------------------------- *)

let http_get port target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let request = "GET " ^ target ^ " HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd request 0 (String.length request));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      Buffer.contents buf)

let test_metrics_endpoint_live () =
  (* scrape /metrics while queries are actually running; the scrape
     must be well-formed and expose the full ssdb_ metric surface *)
  let db = Test_support.db_of_tree small_tree in
  let path = Filename.temp_file "ssdb-obs-scrape" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  let healthy = ref true in
  let http = Obs.Metrics_http.start ~port:0 ~healthy:(fun () -> !healthy) () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics_http.stop http;
      Secshare_rpc.Server.stop server;
      DB.close db)
    (fun () ->
      let stop_queries = ref false in
      let worker =
        Thread.create
          (fun () ->
            let session =
              must
                (DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db) ~seed:(DB.seed db)
                   ~path ())
            in
            Fun.protect
              ~finally:(fun () -> DB.close session)
              (fun () ->
                while not !stop_queries do
                  ignore (must (DB.query session "//beta"))
                done))
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          stop_queries := true;
          Thread.join worker)
        (fun () ->
          let port = Obs.Metrics_http.port http in
          let body = http_get port "/metrics" in
          Alcotest.(check bool) "200" true (contains body "200");
          let type_lines =
            List.filter
              (fun l ->
                String.length l > 12 && String.sub l 0 12 = "# TYPE ssdb_")
              (String.split_on_char '\n' body)
          in
          Alcotest.(check bool)
            (Printf.sprintf "at least 12 ssdb_ families (got %d)"
               (List.length type_lines))
            true
            (List.length type_lines >= 12);
          let health = http_get port "/healthz" in
          Alcotest.(check bool) "healthy" true (contains health "ok");
          healthy := false;
          let drained = http_get port "/healthz" in
          Alcotest.(check bool) "503 while draining" true (contains drained "503");
          Alcotest.(check bool) "draining body" true (contains drained "draining")))

let test_metrics_handler_reaping () =
  (* a long-lived endpoint must not accumulate one dead Thread.t per
     scrape: handlers self-remove on completion, so after a burst of
     scrapes the tracked-handler count settles back to zero *)
  let http = Obs.Metrics_http.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Obs.Metrics_http.stop http)
    (fun () ->
      let port = Obs.Metrics_http.port http in
      let scrapes = 50 in
      for _ = 1 to scrapes do
        let body = http_get port "/metrics" in
        Alcotest.(check bool) "scrape ok" true (contains body "200")
      done;
      (* each handler reaps itself just after writing its response; give
         the last few a moment to get there *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec settle () =
        let pending = Obs.Metrics_http.pending_handlers http in
        if pending = 0 then 0
        else if Unix.gettimeofday () > deadline then pending
        else begin
          Thread.yield ();
          Unix.sleepf 0.01;
          settle ()
        end
      in
      let remaining = settle () in
      Alcotest.(check int)
        (Printf.sprintf "handlers reaped after %d scrapes" scrapes)
        0 remaining)

(* --- slow-query log redaction ------------------------------------- *)

let test_slow_query_redaction () =
  (* with a zero threshold every query is "slow"; the logged line must
     carry only trace/opcode/count/duration fields — never tag names
     or anything derived from shares *)
  let captured = ref [] in
  let previous_level = Events.level () in
  Events.set_level Events.Info;
  Events.set_sink (Some (fun _level message -> captured := message :: !captured));
  Fun.protect
    ~finally:(fun () ->
      Events.set_sink None;
      Events.set_level previous_level)
    (fun () ->
      let config =
        {
          DB.default_config with
          seed = Some Test_support.test_seed;
          mapping = `From_document;
          client = { DB.default_client_config with slow_query_ms = Some 0.0 };
        }
      in
      let db = must (DB.create_tree ~config small_tree) in
      Fun.protect
        ~finally:(fun () -> DB.close db)
        (fun () ->
          ignore (must (DB.query db "/alpha/beta"));
          ignore (must (DB.query db "//gamma"))));
  let slow_lines = List.filter (fun m -> contains m "slow-query") !captured in
  Alcotest.(check bool) "slow-query lines were emitted" true (slow_lines <> []);
  List.iter
    (fun line ->
      List.iter
        (fun tag ->
          Alcotest.(check bool) ("no tag name leaks: " ^ tag) false (contains line tag))
        Test_support.small_tags;
      List.iter
        (fun field ->
          Alcotest.(check bool) ("has " ^ field) true (contains line field))
        [ "trace="; "ops="; "batches="; "rows="; "bytes="; "duration_ms="; "reason=" ])
    slow_lines

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          QCheck_alcotest.to_alcotest merge_associative;
        ] );
      ( "registry",
        [
          Alcotest.test_case "render well-formed" `Quick test_render_wellformed;
          Alcotest.test_case "counter and gauge values" `Quick
            test_counter_and_gauge_values;
        ] );
      ( "trace",
        [
          Alcotest.test_case "id survives retry/reconnect" `Quick
            test_trace_id_survives_retry;
          Alcotest.test_case "untraced calls send zero" `Quick
            test_untraced_calls_send_zero;
          Alcotest.test_case "client and server spans join" `Quick
            test_trace_joins_client_and_server;
          Alcotest.test_case "JSONL sink" `Quick test_trace_log_jsonl;
        ] );
      ( "endpoint",
        [
          Alcotest.test_case "scrape while serving" `Quick test_metrics_endpoint_live;
          Alcotest.test_case "handler threads are reaped" `Quick
            test_metrics_handler_reaping;
        ] );
      ( "slow-query",
        [ Alcotest.test_case "redaction" `Quick test_slow_query_redaction ] );
    ]
