(* End-to-end client/server deployment over a Unix-domain socket — the
   paper's figure-3 architecture with real message passing. *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common

let check = Alcotest.check

let with_served_db f =
  let doc = Secshare_xmark.Generate.generate ~factor:0.5 () in
  let config =
    { DB.default_config with seed = Some Test_support.test_seed }
  in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let path = Filename.temp_file "ssdb-remote" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  Fun.protect
    ~finally:(fun () -> Secshare_rpc.Server.stop server)
    (fun () -> f db path)

let connect db path =
  match DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db) ~seed:(DB.seed db) ~path () with
  | Ok session -> session
  | Error e -> failwith e

let queries =
  [ "/site"; "/site/regions/europe/item"; "//bidder/date"; "/site/*/person//city" ]

let test_remote_matches_local () =
  with_served_db (fun db path ->
      let session = connect db path in
      Fun.protect
        ~finally:(fun () -> DB.session_close session)
        (fun () ->
          List.iter
            (fun q ->
              List.iter
                (fun (engine, strictness) ->
                  let local = Test_support.must_query ~engine ~strictness db q in
                  match DB.session_query ~engine ~strictness session q with
                  | Error e -> Alcotest.failf "%s remote: %s" q e
                  | Ok remote ->
                      check
                        Alcotest.(list int)
                        (Printf.sprintf "%s" q)
                        (Test_support.pres_of_metas local.DB.nodes)
                        (Test_support.pres_of_metas remote.DB.nodes))
                [
                  (DB.Simple, QC.Non_strict);
                  (DB.Advanced, QC.Non_strict);
                  (DB.Advanced, QC.Strict);
                ])
            queries))

let test_remote_wrong_seed_finds_nothing () =
  (* without the right seed the client regenerates garbage shares: the
     data is meaningless, exactly as the paper promises *)
  with_served_db (fun db path ->
      match
        DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db)
          ~seed:(Secshare_prg.Seed.of_passphrase "wrong seed") ~path ()
      with
      | Error e -> Alcotest.fail e
      | Ok session ->
          Fun.protect
            ~finally:(fun () -> DB.session_close session)
            (fun () ->
              match DB.session_query ~engine:DB.Simple ~strictness:QC.Non_strict session "/site" with
              | Error e -> Alcotest.fail e
              | Ok r ->
                  check Alcotest.(list int) "root does not even match /site" []
                    (Test_support.pres_of_metas r.DB.nodes)))

let test_remote_sessions_are_independent () =
  with_served_db (fun db path ->
      let s1 = connect db path and s2 = connect db path in
      Fun.protect
        ~finally:(fun () ->
          DB.session_close s1;
          DB.session_close s2)
        (fun () ->
          let r1 = Result.get_ok (DB.session_query s1 "/site") in
          let r2 = Result.get_ok (DB.session_query s2 "//bidder/date") in
          check Alcotest.bool "both answered" true
            (List.length r1.DB.nodes = 1 && r2.DB.nodes <> [])))

let test_session_after_server_stop () =
  let doc = Secshare_xmark.Generate.generate ~factor:0.2 () in
  let config = { DB.default_config with seed = Some Test_support.test_seed } in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let path = Filename.temp_file "ssdb-remote" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  let session = connect db path in
  Secshare_rpc.Server.stop server;
  (match DB.session_query session "/site" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "query succeeded after server stop");
  DB.session_close session

let () =
  Alcotest.run "remote"
    [
      ( "socket deployment",
        [
          Alcotest.test_case "remote = local on all configs" `Slow test_remote_matches_local;
          Alcotest.test_case "wrong seed yields nothing" `Quick
            test_remote_wrong_seed_finds_nothing;
          Alcotest.test_case "independent sessions" `Quick test_remote_sessions_are_independent;
          Alcotest.test_case "server stop surfaces errors" `Quick test_session_after_server_stop;
        ] );
    ]
