(* End-to-end client/server deployment over a Unix-domain socket — the
   paper's figure-3 architecture with real message passing. *)

module DB = Secshare_core.Database
module QC = Secshare_core.Query_common

let check = Alcotest.check

let with_served_db f =
  let doc = Secshare_xmark.Generate.generate ~factor:0.5 () in
  let config =
    { DB.default_config with seed = Some Test_support.test_seed }
  in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let path = Filename.temp_file "ssdb-remote" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  Fun.protect
    ~finally:(fun () -> Secshare_rpc.Server.stop server)
    (fun () -> f db path)

let connect db path =
  match DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db) ~seed:(DB.seed db) ~path () with
  | Ok session -> session
  | Error e -> failwith e

let queries =
  [ "/site"; "/site/regions/europe/item"; "//bidder/date"; "/site/*/person//city" ]

let test_remote_matches_local () =
  with_served_db (fun db path ->
      let session = connect db path in
      Fun.protect
        ~finally:(fun () -> DB.close session)
        (fun () ->
          List.iter
            (fun q ->
              List.iter
                (fun (engine, strictness) ->
                  let local = Test_support.must_query ~engine ~strictness db q in
                  match DB.query ~engine ~strictness session q with
                  | Error e -> Alcotest.failf "%s remote: %s" q e
                  | Ok remote ->
                      check
                        Alcotest.(list int)
                        (Printf.sprintf "%s" q)
                        (Test_support.pres_of_metas (DB.result_nodes local))
                        (Test_support.pres_of_metas (DB.result_nodes remote)))
                [
                  (DB.Simple, QC.Non_strict);
                  (DB.Advanced, QC.Non_strict);
                  (DB.Advanced, QC.Strict);
                ])
            queries))

let test_remote_wrong_seed_finds_nothing () =
  (* without the right seed the client regenerates garbage shares: the
     data is meaningless, exactly as the paper promises *)
  with_served_db (fun db path ->
      match
        DB.connect ~p:83 ~e:1 ~mapping:(DB.mapping db)
          ~seed:(Secshare_prg.Seed.of_passphrase "wrong seed") ~path ()
      with
      | Error e -> Alcotest.fail e
      | Ok session ->
          Fun.protect
            ~finally:(fun () -> DB.close session)
            (fun () ->
              match DB.query ~engine:DB.Simple ~strictness:QC.Non_strict session "/site" with
              | Error e -> Alcotest.fail e
              | Ok r ->
                  check Alcotest.(list int) "root does not even match /site" []
                    (Test_support.pres_of_metas (DB.result_nodes r))))

let test_remote_sessions_are_independent () =
  with_served_db (fun db path ->
      let s1 = connect db path and s2 = connect db path in
      Fun.protect
        ~finally:(fun () ->
          DB.close s1;
          DB.close s2)
        (fun () ->
          let r1 = Result.get_ok (DB.query s1 "/site") in
          let r2 = Result.get_ok (DB.query s2 "//bidder/date") in
          check Alcotest.bool "both answered" true
            (List.length (DB.result_nodes r1) = 1 && (DB.result_nodes r2) <> [])))

let test_session_after_server_stop () =
  let doc = Secshare_xmark.Generate.generate ~factor:0.2 () in
  let config = { DB.default_config with seed = Some Test_support.test_seed } in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let path = Filename.temp_file "ssdb-remote" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  let session = connect db path in
  Secshare_rpc.Server.stop server;
  (match DB.query session "/site" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "query succeeded after server stop");
  DB.close session

(* --- resilience: cursor lifecycle across connection failures --- *)

module Transport = Secshare_rpc.Transport
module Protocol = Secshare_rpc.Protocol
module Server_filter = Secshare_core.Server_filter

(* Open a Descendants cursor over the whole document on a raw
   transport and pull a single batch, leaving the cursor mid-drain. *)
let open_dangling_cursor transport =
  let root =
    match Transport.call transport Protocol.Root with
    | Protocol.Node_opt (Some meta) -> meta
    | r -> Alcotest.failf "root: %a" (fun fmt -> Protocol.pp_response fmt) r
  in
  (match
     Transport.call transport
       (Protocol.Descendants { pre = root.Protocol.pre; post = root.Protocol.post })
   with
  | Protocol.Cursor id -> id
  | r -> Alcotest.failf "descendants: %a" (fun fmt -> Protocol.pp_response fmt) r)
  |> fun cursor ->
  (match Transport.call transport (Protocol.Cursor_next { cursor; max_items = 1 }) with
  | Protocol.Batch (_, false) -> ()
  | Protocol.Batch (_, true) -> Alcotest.fail "document too small: cursor drained"
  | r -> Alcotest.failf "cursor_next: %a" (fun fmt -> Protocol.pp_response fmt) r);
  cursor

let wait_for ~msg predicate =
  let rec go n =
    if predicate () then ()
    else if n = 0 then Alcotest.fail msg
    else begin
      Thread.delay 0.02;
      go (n - 1)
    end
  in
  go 150

let test_disconnect_evicts_cursors () =
  (* a client that vanishes mid-drain must not leak its cursor: the
     per-connection close hook evicts it *)
  with_served_db (fun db path ->
      let transport =
        match Transport.socket path with Ok t -> t | Error e -> Alcotest.fail e
      in
      ignore (open_dangling_cursor transport);
      check Alcotest.int "cursor open while draining" 1 (DB.open_cursors db);
      Transport.close transport;
      wait_for ~msg:"cursor leaked after disconnect" (fun () -> DB.open_cursors db = 0);
      let stats = DB.cursor_stats db in
      check Alcotest.bool "eviction counted" true
        (stats.Server_filter.evicted_cursors >= 1))

let test_drain_evicts_cursors () =
  (* after a graceful server drain every connection's close hook has
     run: zero cursors remain open *)
  let doc = Secshare_xmark.Generate.generate ~factor:0.2 () in
  let config = { DB.default_config with seed = Some Test_support.test_seed } in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let path = Filename.temp_file "ssdb-remote" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  let transport =
    match Transport.socket path with Ok t -> t | Error e -> Alcotest.fail e
  in
  ignore (open_dangling_cursor transport);
  check Alcotest.int "cursor open mid-drain" 1 (DB.open_cursors db);
  Secshare_rpc.Server.stop server;
  check Alcotest.int "no cursors after drain" 0 (DB.open_cursors db);
  Transport.close transport

let test_cursor_ttl_eviction () =
  (* abandoned cursors expire once idle past the TTL, with a fake
     clock so the test needs no sleeps *)
  let clock = ref 1000.0 in
  let doc = Secshare_xmark.Generate.generate ~factor:0.2 () in
  let config = { DB.default_config with seed = Some Test_support.test_seed } in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let filter =
    Server_filter.create ~cursor_ttl:30.0 ~now:(fun () -> !clock) (DB.ring db)
      (DB.table db)
  in
  let root =
    match Server_filter.handler filter Protocol.Root with
    | Protocol.Node_opt (Some meta) -> meta
    | _ -> Alcotest.fail "no root"
  in
  (match
     Server_filter.handler filter
       (Protocol.Descendants { pre = root.Protocol.pre; post = root.Protocol.post })
   with
  | Protocol.Cursor _ -> ()
  | _ -> Alcotest.fail "no cursor");
  check Alcotest.int "cursor open" 1 (Server_filter.open_cursors filter);
  clock := !clock +. 10.0;
  check Alcotest.int "young cursor survives sweep" 0 (Server_filter.sweep_cursors filter);
  clock := !clock +. 25.0;
  check Alcotest.int "stale cursor swept" 1 (Server_filter.sweep_cursors filter);
  check Alcotest.int "none left" 0 (Server_filter.open_cursors filter);
  let stats = Server_filter.cursor_stats filter in
  check Alcotest.int "expiry counted" 1 stats.Server_filter.expired_cursors

let test_cursor_cap_evicts_lru () =
  let clock = ref 0.0 in
  let doc = Secshare_xmark.Generate.generate ~factor:0.2 () in
  let config = { DB.default_config with seed = Some Test_support.test_seed } in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let filter =
    Server_filter.create ~max_cursors:3 ~now:(fun () -> !clock) (DB.ring db) (DB.table db)
  in
  let root =
    match Server_filter.handler filter Protocol.Root with
    | Protocol.Node_opt (Some meta) -> meta
    | _ -> Alcotest.fail "no root"
  in
  let open_cursor () =
    clock := !clock +. 1.0;
    match
      Server_filter.handler filter
        (Protocol.Descendants { pre = root.Protocol.pre; post = root.Protocol.post })
    with
    | Protocol.Cursor id -> id
    | _ -> Alcotest.fail "no cursor"
  in
  let first = open_cursor () in
  let _ = open_cursor () and _ = open_cursor () and _ = open_cursor () in
  check Alcotest.int "cap respected" 3 (Server_filter.open_cursors filter);
  (match
     Server_filter.handler filter (Protocol.Cursor_next { cursor = first; max_items = 1 })
   with
  | Protocol.Error_msg _ -> () (* the oldest cursor was the LRU victim *)
  | _ -> Alcotest.fail "LRU cursor should have been evicted");
  let stats = Server_filter.cursor_stats filter in
  check Alcotest.int "one cap eviction" 1 stats.Server_filter.evicted_cursors

let test_remote_recovers_across_server_restart () =
  (* the acceptance scenario at the query level: the server dies and
     comes back between queries; a session with retries recovers *)
  let doc = Secshare_xmark.Generate.generate ~factor:0.2 () in
  let config = { DB.default_config with seed = Some Test_support.test_seed } in
  let db = match DB.create_tree ~config doc with Ok db -> db | Error e -> failwith e in
  let path = Filename.temp_file "ssdb-remote" ".sock" in
  Sys.remove path;
  let server = DB.serve db ~path in
  let session =
    match
      DB.connect
        ~client:{ DB.default_client_config with timeout = Some 2.0; max_retries = 5 }
        ~p:83 ~e:1 ~mapping:(DB.mapping db) ~seed:(DB.seed db) ~path ()
    with
    | Ok session -> session
    | Error e -> Alcotest.fail e
  in
  let expected =
    Test_support.pres_of_metas (DB.result_nodes (Test_support.must_query db "/site"))
  in
  (match DB.query session "/site" with
  | Ok r ->
      check Alcotest.(list int) "before restart" expected
        (Test_support.pres_of_metas (DB.result_nodes r))
  | Error e -> Alcotest.failf "before restart: %s" e);
  Secshare_rpc.Server.stop server;
  let server = DB.serve db ~path in
  Fun.protect
    ~finally:(fun () -> Secshare_rpc.Server.stop server)
    (fun () ->
      (match DB.query session "/site" with
      | Ok r ->
          check Alcotest.(list int) "after restart" expected
            (Test_support.pres_of_metas (DB.result_nodes r))
      | Error e -> Alcotest.failf "after restart: %s" e);
      let counters = DB.rpc_counters session in
      check Alcotest.bool "recovery used reconnect" true
        (counters.Transport.reconnects >= 1);
      DB.close session)

let () =
  Alcotest.run "remote"
    [
      ( "socket deployment",
        [
          Alcotest.test_case "remote = local on all configs" `Slow test_remote_matches_local;
          Alcotest.test_case "wrong seed yields nothing" `Quick
            test_remote_wrong_seed_finds_nothing;
          Alcotest.test_case "independent sessions" `Quick test_remote_sessions_are_independent;
          Alcotest.test_case "server stop surfaces errors" `Quick test_session_after_server_stop;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "disconnect evicts cursors" `Quick
            test_disconnect_evicts_cursors;
          Alcotest.test_case "drain evicts cursors" `Quick test_drain_evicts_cursors;
          Alcotest.test_case "cursor ttl eviction" `Quick test_cursor_ttl_eviction;
          Alcotest.test_case "cursor cap evicts lru" `Quick test_cursor_cap_evicts_lru;
          Alcotest.test_case "session recovers across restart" `Quick
            test_remote_recovers_across_server_restart;
        ] );
    ]
