module Prime = Secshare_field.Prime
module Modp = Secshare_field.Modp
module Gf = Secshare_field.Gf

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- primes --- *)

let test_is_prime_small () =
  let primes = [ 2; 3; 5; 7; 11; 13; 29; 83; 97; 101; 7919 ] in
  List.iter (fun p -> check Alcotest.bool (string_of_int p) true (Prime.is_prime p)) primes;
  let composites = [ -7; 0; 1; 4; 9; 15; 77; 91; 7917; 1 lsl 20 ] in
  List.iter (fun n -> check Alcotest.bool (string_of_int n) false (Prime.is_prime n)) composites

let test_is_prime_carmichael () =
  (* classic Fermat pseudoprimes must be rejected *)
  List.iter
    (fun n -> check Alcotest.bool (string_of_int n) false (Prime.is_prime n))
    [ 561; 1105; 1729; 2465; 2821; 6601; 8911; 41041; 825265 ]

let test_is_prime_large () =
  check Alcotest.bool "2^31-1" true (Prime.is_prime 2147483647);
  check Alcotest.bool "10^9+7" true (Prime.is_prime 1_000_000_007);
  check Alcotest.bool "10^9+8" false (Prime.is_prime 1_000_000_008);
  check Alcotest.bool "(2^31-1)^2 factor" false (Prime.is_prime (2147483647 * 3))

let test_next_prev_prime () =
  check Alcotest.int "next 84" 89 (Prime.next_prime 84);
  check Alcotest.int "next 83" 83 (Prime.next_prime 83);
  check Alcotest.int "next of small" 2 (Prime.next_prime (-5));
  check Alcotest.(option int) "prev 84" (Some 83) (Prime.prev_prime 84);
  check Alcotest.(option int) "prev 2" (Some 2) (Prime.prev_prime 2);
  check Alcotest.(option int) "prev 1" None (Prime.prev_prime 1)

let test_primes_up_to () =
  check
    Alcotest.(list int)
    "primes <= 30"
    [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 ]
    (Prime.primes_up_to 30);
  check Alcotest.(list int) "primes <= 1" [] (Prime.primes_up_to 1)

let test_factorize () =
  check Alcotest.(list (pair int int)) "12" [ (2, 2); (3, 1) ] (Prime.factorize 12);
  check Alcotest.(list (pair int int)) "1" [] (Prime.factorize 1);
  check Alcotest.(list (pair int int)) "83" [ (83, 1) ] (Prime.factorize 83);
  check
    Alcotest.(list (pair int int))
    "2^10 * 3^4" [ (2, 10); (3, 4) ]
    (Prime.factorize (1024 * 81));
  Alcotest.check_raises "factorize 0" (Invalid_argument "Prime.factorize: argument must be >= 1")
    (fun () -> ignore (Prime.factorize 0))

let test_is_prime_power () =
  check Alcotest.(option (pair int int)) "8" (Some (2, 3)) (Prime.is_prime_power 8);
  check Alcotest.(option (pair int int)) "83" (Some (83, 1)) (Prime.is_prime_power 83);
  check Alcotest.(option (pair int int)) "729" (Some (3, 6)) (Prime.is_prime_power 729);
  check Alcotest.(option (pair int int)) "12" None (Prime.is_prime_power 12);
  check Alcotest.(option (pair int int)) "1" None (Prime.is_prime_power 1)

let test_primitive_root () =
  List.iter
    (fun p ->
      let g = Prime.primitive_root p in
      (* g generates: its order is exactly p-1 *)
      let rec order acc k = if acc = 1 then k else order (acc * g mod p) (k + 1) in
      let ord = order (g mod p) 1 in
      check Alcotest.int (Printf.sprintf "order of %d mod %d" g p) (p - 1) ord)
    [ 3; 5; 7; 29; 83; 101 ]

(* --- field axioms, shared for any packed field --- *)

let field_axiom_tests name (field : Secshare_field.Field_intf.packed) =
  let module F = (val field) in
  let elt = QCheck2.Gen.map F.of_int (QCheck2.Gen.int_range 0 (F.order - 1)) in
  let pair = QCheck2.Gen.pair elt elt in
  let triple = QCheck2.Gen.triple elt elt elt in
  [
    qtest (name ^ ": add commutative") pair (fun (a, b) -> F.equal (F.add a b) (F.add b a));
    qtest (name ^ ": add associative") triple (fun (a, b, c) ->
        F.equal (F.add (F.add a b) c) (F.add a (F.add b c)));
    qtest (name ^ ": mul commutative") pair (fun (a, b) -> F.equal (F.mul a b) (F.mul b a));
    qtest (name ^ ": mul associative") triple (fun (a, b, c) ->
        F.equal (F.mul (F.mul a b) c) (F.mul a (F.mul b c)));
    qtest (name ^ ": distributivity") triple (fun (a, b, c) ->
        F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
    qtest (name ^ ": additive inverse") elt (fun a -> F.is_zero (F.add a (F.neg a)));
    qtest (name ^ ": sub = add neg") pair (fun (a, b) ->
        F.equal (F.sub a b) (F.add a (F.neg b)));
    qtest (name ^ ": multiplicative inverse") elt (fun a ->
        F.is_zero a || F.equal F.one (F.mul a (F.inv a)));
    qtest (name ^ ": Fermat/Lagrange a^(q-1)=1") elt (fun a ->
        F.is_zero a || F.equal F.one (F.pow a (F.order - 1)));
    qtest (name ^ ": of_int/to_int canonical") elt (fun a ->
        F.equal a (F.of_int (F.to_int a)));
    qtest (name ^ ": pow matches repeated mul")
      (QCheck2.Gen.pair elt (QCheck2.Gen.int_range 0 12))
      (fun (a, k) ->
        let rec slow acc i = if i = 0 then acc else slow (F.mul acc a) (i - 1) in
        F.equal (F.pow a k) (slow F.one k));
  ]

let field_unit_tests name (field : Secshare_field.Field_intf.packed) =
  let module F = (val field) in
  [
    Alcotest.test_case (name ^ ": constants") `Quick (fun () ->
        check Alcotest.bool "zero is zero" true (F.is_zero F.zero);
        check Alcotest.bool "one not zero" false (F.is_zero F.one);
        check Alcotest.int "elements count" F.order (List.length (F.elements ()));
        check Alcotest.int "nonzero count" (F.order - 1) (List.length (F.nonzero_elements ())));
    Alcotest.test_case (name ^ ": inv zero raises") `Quick (fun () ->
        Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (F.inv F.zero));
        Alcotest.check_raises "div by 0" Division_by_zero (fun () ->
            ignore (F.div F.one F.zero)));
    Alcotest.test_case (name ^ ": negative of_int normalises") `Quick (fun () ->
        check Alcotest.bool "-1 = q-1" true (F.equal (F.of_int (-1)) (F.of_int (F.order - 1))));
  ]

(* --- Gf specifics --- *)

let test_gf_irreducible () =
  List.iter
    (fun (p, e) ->
      let m = Gf.irreducible ~p ~e in
      check Alcotest.int "degree" (e + 1) (Array.length m);
      check Alcotest.int "monic" 1 m.(e);
      check Alcotest.bool "irreducible" true (Gf.is_irreducible ~p m))
    [ (2, 2); (2, 3); (2, 4); (3, 2); (3, 3); (5, 2); (7, 2); (29, 2) ]

let test_gf_reducible_detected () =
  (* x^2 - 1 = (x-1)(x+1) over F_5 *)
  check Alcotest.bool "x^2-1 over F5" false (Gf.is_irreducible ~p:5 [| 4; 0; 1 |]);
  (* x^2 over F_3 *)
  check Alcotest.bool "x^2 over F3" false (Gf.is_irreducible ~p:3 [| 0; 0; 1 |]);
  (* x^2+1 over F_5: roots 2,3 *)
  check Alcotest.bool "x^2+1 over F5" false (Gf.is_irreducible ~p:5 [| 1; 0; 1 |])

let test_gf_char_freshman () =
  (* (a+b)^p = a^p + b^p in characteristic p *)
  let (module F) = Gf.create ~p:3 ~e:2 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let lhs = F.pow (F.add a b) 3 in
          let rhs = F.add (F.pow a 3) (F.pow b 3) in
          check Alcotest.bool "freshman's dream" true (F.equal lhs rhs))
        (F.elements ()))
    (F.elements ())

let test_gf_rejects_bad_params () =
  Alcotest.check_raises "p not prime" (Invalid_argument "Gf.create: 6 is not prime")
    (fun () -> ignore (Gf.create ~p:6 ~e:2));
  Alcotest.check_raises "e < 1" (Invalid_argument "Gf.create: e must be >= 1") (fun () ->
      ignore (Gf.create ~p:5 ~e:0));
  Alcotest.check_raises "too large" (Invalid_argument "Gf.create: p^e must be <= 2^30")
    (fun () -> ignore (Gf.create ~p:2 ~e:40))

let test_modp_rejects_composite () =
  Alcotest.check_raises "Modp 4" (Invalid_argument "Modp.create: 4 is not prime") (fun () ->
      ignore (Modp.create ~p:4))

let () =
  Alcotest.run "field"
    [
      ( "prime",
        [
          Alcotest.test_case "small primes" `Quick test_is_prime_small;
          Alcotest.test_case "carmichael numbers" `Quick test_is_prime_carmichael;
          Alcotest.test_case "large values" `Quick test_is_prime_large;
          Alcotest.test_case "next/prev prime" `Quick test_next_prev_prime;
          Alcotest.test_case "sieve" `Quick test_primes_up_to;
          Alcotest.test_case "factorize" `Quick test_factorize;
          Alcotest.test_case "prime powers" `Quick test_is_prime_power;
          Alcotest.test_case "primitive roots" `Quick test_primitive_root;
        ] );
      ("modp F_5 axioms", field_axiom_tests "F5" (Modp.create ~p:5));
      ("modp F_83 axioms", field_axiom_tests "F83" (Modp.create ~p:83));
      ("modp units", field_unit_tests "F83" (Modp.create ~p:83) @ [
          Alcotest.test_case "rejects composite" `Quick test_modp_rejects_composite ]);
      ("gf F_9 axioms", field_axiom_tests "F9" (Gf.create ~p:3 ~e:2));
      ("gf F_8 axioms", field_axiom_tests "F8" (Gf.create ~p:2 ~e:3));
      ("gf F_25 axioms", field_axiom_tests "F25" (Gf.create ~p:5 ~e:2));
      ( "gf units",
        field_unit_tests "F9" (Gf.create ~p:3 ~e:2)
        @ [
            Alcotest.test_case "irreducible search" `Quick test_gf_irreducible;
            Alcotest.test_case "reducible detected" `Quick test_gf_reducible_detected;
            Alcotest.test_case "freshman's dream" `Quick test_gf_char_freshman;
            Alcotest.test_case "bad parameters" `Quick test_gf_rejects_bad_params;
          ] );
    ]
